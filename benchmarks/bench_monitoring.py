"""E9 — the radius ball as a runtime monitor.

Replays canonical load-drift traces (ramp, spike, random walk, sinusoid)
through the paper's operating-point procedure and tabulates when the
monitor alarmed vs when the QoS actually broke.  The soundness guarantee
(alarm never after violation) is asserted; the lead time is the new
information this experiment adds over the static radius.
"""

from repro.analysis.monitoring import monitoring_experiment
from repro.systems.hiperd.constraints import build_analysis
from repro.systems.hiperd.traces import ramp_trace


def test_monitoring_experiment(benchmark, show, bench_hiperd, bench_qos):
    analysis = build_analysis(bench_hiperd, bench_qos, kinds=("loads",),
                              seed=2005)
    result = benchmark.pedantic(
        lambda: monitoring_experiment(bench_hiperd, analysis, n_steps=60,
                                      ramp_factor=2.5, seed=2005),
        rounds=1, iterations=1)
    show(result)
    assert result.summary[
        "all traces sound (alarm never after violation)"] is True


def test_single_check_latency(benchmark, bench_hiperd, bench_qos):
    """Per-data-set cost of the monitor (the deployable operation)."""
    analysis = build_analysis(bench_hiperd, bench_qos, kinds=("loads",),
                              seed=2005)
    analysis.rho()  # warm the caches, as a deployed monitor would
    trace = ramp_trace(bench_hiperd.original_loads(), 2, end_factor=1.5)
    from repro.core.feasibility import FeasibilityChecker
    checker = FeasibilityChecker(analysis)
    benchmark(checker.check, {"loads": trace[1]})
