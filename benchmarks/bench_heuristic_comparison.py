"""E5 — heuristic comparison on the independent-task substrate.

The companion paper's evaluation style: candidate allocations from the
standard heuristic lineup, all held to one shared makespan deadline, are
ranked by makespan and by the robustness metric.  The headline observation
— the shortest-makespan allocation is usually not the most robust — is
asserted over the Braun-style scenario grid (it need not hold on every
single instance, so the assertion is aggregate).

The benchmark times one full heuristic-comparison experiment.
"""

import math

from repro.analysis.comparison import compare_heuristics
from repro.systems.independent import generate_workload
from repro.systems.independent.workloads import braun_suite
from repro.utils.tables import format_table


def _one_comparison():
    from repro.systems.independent import generate_etc_gamma
    etc = generate_etc_gamma(24, 6, task_cov=0.9, machine_cov=0.3,
                             consistency="inconsistent", seed=2005)
    return compare_heuristics(etc, tau_factor=1.3, seed=2005)


def test_single_instance_comparison(benchmark, show):
    result = benchmark.pedantic(_one_comparison, rounds=3, iterations=1)
    show(result)
    feasible = [row for row in result.rows
                if isinstance(row[2], float) and not math.isnan(row[2])]
    assert len(feasible) >= 2


def test_braun_grid_rankings(benchmark, show):
    def run_grid():
        rows = []
        disagreements = 0
        scenarios = braun_suite(n_tasks=24, n_machines=6)
        for i, spec in enumerate(scenarios):
            etc = generate_workload(spec, seed=100 + i)
            result = compare_heuristics(etc, tau_factor=1.3, seed=100 + i)
            best_ms = result.summary["shortest-makespan heuristic"]
            best_rho = result.summary["most-robust heuristic"]
            if best_ms != best_rho:
                disagreements += 1
            rows.append([spec.name, best_ms, best_rho,
                         "differs" if best_ms != best_rho else ""])
        return rows, disagreements, len(scenarios)

    rows, disagreements, n_scen = benchmark.pedantic(run_grid, rounds=1,
                                                     iterations=1)
    rows.append(["TOTAL", "", "", f"{disagreements}/{n_scen} differ"])
    show(format_table(
        ["scenario", "best makespan", "best robustness", "note"],
        rows,
        title="[E5] makespan-optimal vs robustness-optimal heuristic "
              "across the Braun grid"))
    # The metric must disagree with raw makespan on a nontrivial fraction
    # of scenarios — that is its entire point.  (Threshold is aggregate:
    # on any single instance the two rankings may coincide.)
    assert disagreements >= 2
