"""Scenario lab — replay throughput, serial vs supervised fan-out.

Replays the makespan shock catalogue both in-process and through a
:class:`~repro.resilience.SupervisedExecutor`, asserts the trajectories
come back bit-identical, and writes the ``repro-bench-lab-v1`` payload
to ``benchmarks/results/BENCH_lab.json`` so replay throughput
(steps/sec) can be tracked across commits.  CI runs the lab itself at
tiny scale through ``python -m repro lab`` (the ``lab-smoke`` job).
"""

import json
import pathlib

from repro.parallel.bench import validate_bench_payload, write_benchmark
from repro.scenarios.bench import run_lab_benchmark

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def test_lab_benchmark(benchmark, show):
    payload = benchmark.pedantic(
        lambda: run_lab_benchmark(workers=2, tasks=24, machines=6,
                                  n_trajectories=8, n_steps=60),
        rounds=1, iterations=1)
    validate_bench_payload(payload)
    RESULTS_DIR.mkdir(exist_ok=True)
    write_benchmark(payload, RESULTS_DIR / "BENCH_lab.json")
    show(json.dumps(payload, indent=2))
    assert payload["identical"], \
        "supervised replay diverged from the serial replay"
    assert payload["serial_steps_per_sec"] > 0
    assert payload["supervised_steps_per_sec"] > 0
