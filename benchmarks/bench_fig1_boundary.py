"""E1 — Figure 1: the boundary set, the original point, and pi*.

Regenerates the paper's conceptual figure as data on two systems:

* a linear machine-finish-time feature (the hyperplane boundary of the
  TPDS 2004 example — the ``beta_min`` boundary being the axes);
* a bilinear HiPer-D computation-time slice (a genuinely curved boundary,
  the shape sketched in the paper).

The benchmark times the boundary tracing + radius computation; the table
and ASCII rendering are printed once.
"""

import numpy as np

from repro.core.features import ToleranceBounds
from repro.core.mappings import LinearMapping, QuadraticMapping
from repro.reporting.figures import boundary_figure


def _linear_figure():
    # Machine finish time F = e1 + e2 from original times (3, 4), with
    # tau = 1.4 * 7.
    mapping = LinearMapping([1.0, 1.0])
    origin = np.array([3.0, 4.0])
    bounds = ToleranceBounds.upper(1.4 * mapping.value(origin))
    return boundary_figure(mapping, origin, bounds, n_curve_points=192,
                           sweep_degrees=(0.0, 360.0))


def _bilinear_figure():
    # T_comp = e * lambda from original (unit time 0.002 s/object, load
    # 100 objects/set) with a 1.5x tolerance.  The two coordinates have
    # different units, so — this being the paper's whole point — the curve
    # is traced in the *normalized* P-space (P = pi/pi_orig, P_orig =
    # (1, 1)), where the boundary is the dimensionless hyperbola
    # P_1 * P_2 = 1.5 and the Euclidean radius is meaningful.
    from repro.core.mappings import ReweightedMapping

    Q = np.array([[0.0, 0.5], [0.5, 0.0]])
    raw = QuadraticMapping(Q)
    pi_orig = np.array([0.002, 100.0])
    mapping = ReweightedMapping(raw, 1.0 / pi_orig)   # P = pi / pi_orig
    origin = np.ones(2)
    bounds = ToleranceBounds.upper(1.5 * raw.value(pi_orig))
    return boundary_figure(mapping, origin, bounds, n_curve_points=192)


def test_fig1_linear_boundary(benchmark, show):
    fig = benchmark(_linear_figure)
    show("[E1] Figure 1 (linear finish-time feature):\n"
         + fig.render(width=68, height=20))
    assert fig.radius > 0


def test_fig1_bilinear_boundary(benchmark, show):
    fig = benchmark(_bilinear_figure)
    show("[E1] Figure 1 (bilinear load x unit-time feature, curved "
         "boundary):\n" + fig.render(width=68, height=20))
    assert fig.radius > 0
