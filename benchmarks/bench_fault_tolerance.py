"""Fault-tolerance benchmark: the solver cascade under injected faults.

Sweeps the fault-injection cocktail (exception/NaN/latency rates) over a
structurally opaque problem and tabulates, per rate level: how often each
quality tier is reached, the worst reported radius relative to the
fault-free answer, and the number of faults actually injected.  The
cascade must never raise and a usable answer must never under-cut the
fault-free radius (every degraded answer is an upper bound).
"""

import math

import numpy as np

from repro.core.features import ToleranceBounds
from repro.core.mappings import CallableMapping
from repro.core.radius import RadiusProblem
from repro.resilience import (
    CascadeConfig,
    FaultInjector,
    FaultSpec,
    Quality,
    RetryPolicy,
    SolverCascade,
)
from repro.utils.tables import format_table

FAST_RETRY = RetryPolicy(max_retries=2, backoff_base=0.0, backoff_cap=0.0,
                         jitter=0.0)
N_TRIALS = 8


def _problem(mapping=None):
    if mapping is None:
        mapping = CallableMapping(
            lambda x: 3.0 * x[0] + 4.0 * x[1], 2,
            gradient_fn=lambda x: np.array([3.0, 4.0]), name="hidden")
    return RadiusProblem(mapping, np.array([1.0, 1.0]),
                         ToleranceBounds.upper(12.0))


def test_cascade_under_faults(benchmark, show):
    fault_free = SolverCascade(seed=0).compute(_problem()).radius

    levels = [
        ("none", FaultSpec()),
        ("mild", FaultSpec(exception_rate=0.1, nan_rate=0.05)),
        ("issue", FaultSpec(exception_rate=0.3, nan_rate=0.2)),
        ("harsh", FaultSpec(exception_rate=0.6, nan_rate=0.3,
                            nonconvergence_rate=0.2)),
        ("hostile", FaultSpec(exception_rate=0.9, nan_rate=0.5)),
    ]

    def run_sweep():
        rows = []
        sound = True
        for label, spec in levels:
            tally = {q: 0 for q in Quality}
            worst = -math.inf
            injected = 0
            for trial in range(N_TRIALS):
                injector = FaultInjector(spec, seed=100 + trial)
                cascade = SolverCascade(
                    CascadeConfig(solver_timeout=0.5, retry=FAST_RETRY,
                                  warn_on_degraded=False),
                    seed=trial, fault_injector=injector)
                mapping = injector.wrap_mapping(_problem().mapping)
                result = cascade.compute(_problem(mapping))  # never raises
                tally[result.quality] += 1
                injected += injector.total_injected()
                if result.quality is not Quality.FAILED:
                    sound = sound and result.radius >= fault_free - 1e-6
                    worst = max(worst, result.radius)
            rows.append([
                label,
                *(tally[q] for q in Quality),
                worst if math.isfinite(worst) else "-",
                injected,
            ])
        return rows, sound

    rows, sound = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    show(format_table(
        ["faults", *(q.value for q in Quality), "worst radius",
         "injected"],
        rows,
        title=(f"[resilience] cascade under injected faults "
               f"({N_TRIALS} trials/level, fault-free radius "
               f"{fault_free:g})")))
    assert sound
