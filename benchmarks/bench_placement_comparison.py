"""E18 — placement-heuristic comparison on the HiPer-D substrate.

The E5 experiment transplanted to the paper's motivating system: rank
constructive placements by the robustness metric, then measure how much
headroom hill-climbing finds beyond the best heuristic.
"""

import math

from repro.analysis.placement_comparison import compare_placements
from repro.systems.hiperd import HiPerDGenerationSpec, generate_hiperd_system


def test_placement_comparison(benchmark, show, bench_qos):
    spec = HiPerDGenerationSpec(n_sensors=2, n_actuators=2, n_machines=4,
                                app_layers=(3, 2))
    system = generate_hiperd_system(spec, seed=2005)
    result = benchmark.pedantic(
        lambda: compare_placements(system, bench_qos, seed=2005),
        rounds=1, iterations=1)
    show(result)
    feasible = [row[1] for row in result.rows
                if isinstance(row[1], float) and not math.isnan(row[1])]
    assert feasible
    # at least one constructive heuristic beats the random baseline
    by_name = {row[0]: row[1] for row in result.rows}
    if not math.isnan(by_name.get("random", float("nan"))):
        best_constructive = max(
            by_name[n] for n in ("balanced", "fastest", "colocate")
            if isinstance(by_name.get(n), float)
            and not math.isnan(by_name[n]))
        assert best_constructive >= by_name["random"] - 1e-9
