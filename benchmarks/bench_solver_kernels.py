"""Solver-kernel benchmark — scalar loops vs in-worker vectorisation.

Solves the same 32-dim MaxMapping robustness problem through the scalar
reference kernels and the batched ones (lock-step directional bisection,
one-shot finite-difference stencil), asserting the bit-identity contract
and the promised reduction in Python-level ``value``/``value_many``
calls, then writes the stable ``repro-bench-solvers-v1`` payload to
``benchmarks/results/BENCH_solvers.json`` so kernel speedups can be
tracked across commits.  CI runs the same harness through
``python -m repro bench-solvers``.
"""

import json
import pathlib

from repro.core.solvers.bench import run_solver_kernel_benchmark
from repro.parallel.bench import validate_bench_payload, write_benchmark

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def test_solver_kernel_benchmark(benchmark, show):
    payload = benchmark.pedantic(
        lambda: run_solver_kernel_benchmark(dimension=32, directions=128),
        rounds=1, iterations=1)
    validate_bench_payload(payload)
    RESULTS_DIR.mkdir(exist_ok=True)
    write_benchmark(payload, RESULTS_DIR / "BENCH_solvers.json")
    show(json.dumps(payload, indent=2))
    assert payload["identical"], "batched kernels diverged from scalar"
    bis = payload["bisection"]
    assert bis["eval_reduction"] >= 5.0, \
        f"batched bisection saved only {bis['eval_reduction']:.1f}x calls"
    assert bis["speedup"] > 1.0, \
        f"batched bisection slower than scalar ({bis['speedup']:.2f}x)"
    grad = payload["gradient"]
    assert grad["eval_reduction"] >= 5.0, \
        f"stencil gradient saved only {grad['eval_reduction']:.1f}x calls"
