"""E14 — link-failure robustness of a HiPer-D allocation.

The discrete counterpart of E13 on the communication side: which link's
degradation hurts the original QoS promises most, and how many
simultaneous link failures the allocation survives.
"""

from repro.systems.hiperd.failures import (
    critical_links,
    link_failure_radius,
    used_link_pairs,
)
from repro.utils.tables import format_table


def test_critical_link_ranking(benchmark, show, bench_hiperd, bench_qos):
    ranking = benchmark.pedantic(
        lambda: critical_links(bench_hiperd, bench_qos, degraded_factor=0.05),
        rounds=1, iterations=1)
    rows = [["-".join(pair), margin,
             "VIOLATES" if margin > 0 else ""]
            for pair, margin in ranking[:10]]
    show(format_table(
        ["link", "worst relative margin after failure", ""],
        rows,
        title=(f"[E14] single-link criticality "
               f"({len(used_link_pairs(bench_hiperd))} links, "
               "bandwidth degraded to 5%)")))
    margins = [m for _, m in ranking]
    assert margins == sorted(margins, reverse=True)


def test_link_failure_radius(benchmark, show, bench_hiperd, bench_qos):
    analysis = benchmark.pedantic(
        lambda: link_failure_radius(bench_hiperd, bench_qos,
                                    degraded_factor=0.05, max_k=2),
        rounds=1, iterations=1)
    breaking = ("-" if analysis.breaking_set is None
                else "; ".join("-".join(p) for p in analysis.breaking_set))
    show(format_table(
        ["quantity", "value"],
        [["links", analysis.n_links],
         ["failure radius (max_k=2 search)", analysis.radius],
         ["smallest breaking set", breaking]],
        title="[E14] adversarial link-failure radius"))
    assert 0 <= analysis.radius <= 2
