"""E13 — discrete robustness against machine failures.

The paper lists "sudden machine or link failures" among the uncertainties
a general robustness approach must cover.  This experiment compares the
heuristic lineup's allocations by their adversarial **failure radius**
(largest number of simultaneous machine failures survivable under MCT
re-balancing and a shared deadline) and by survival probability under
independent random failures — the discrete analogues of rho.
"""

from repro.systems.heuristics import MCT, MaxMin, MinMin, OLB, Sufferage
from repro.systems.independent import (
    failure_radius,
    generate_etc_gamma,
    survival_probability,
)
from repro.utils.tables import format_table


def test_failure_radius_comparison(benchmark, show):
    etc = generate_etc_gamma(18, 6, seed=2005)
    heuristics = [OLB(), MCT(), MinMin(), MaxMin(), Sufferage()]
    allocations = [(h.name, h.allocate(etc)) for h in heuristics]
    tau = 2.0 * min(a.makespan(etc) for _, a in allocations)

    def run():
        rows = []
        for name, alloc in allocations:
            ms = alloc.makespan(etc)
            if ms > tau:
                rows.append([name, ms, "-", "-", "-"])
                continue
            analysis = failure_radius(etc, alloc, tau)
            p_survive = survival_probability(etc, alloc, tau, p_fail=0.2,
                                             n_samples=1500, seed=7)
            rows.append([name, ms, analysis.radius,
                         "-" if analysis.breaking_set is None
                         else ",".join(map(str, analysis.breaking_set)),
                         p_survive])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(
        ["heuristic", "makespan", "failure radius",
         "smallest breaking set", "P(survive | p_fail=0.2)"],
        rows,
        title=f"[E13] machine-failure robustness, shared tau = {tau:.4g}"))
    radii = [r[2] for r in rows if r[2] != "-"]
    assert radii and all(isinstance(r, int) and r >= 0 for r in radii)


def test_single_failure_radius_timing(benchmark):
    etc = generate_etc_gamma(18, 6, seed=2005)
    alloc = MCT().allocate(etc)
    tau = 2.0 * alloc.makespan(etc)
    benchmark.pedantic(lambda: failure_radius(etc, alloc, tau),
                       rounds=3, iterations=1)
