"""E7 — Monte-Carlo validation of the solvers.

For random linear and convex-quadratic features across dimensions, the
analytic/numeric radii must be sound (no sampled violation strictly inside
the ball) and tight (witness on the boundary; overshooting violates).
Also prints a violation-probability curve around one radius, the empirical
picture of the boundary the scalar metric summarises.
"""

import numpy as np

from repro.core.features import ToleranceBounds
from repro.core.mappings import LinearMapping, QuadraticMapping
from repro.core.radius import RadiusProblem, compute_radius
from repro.montecarlo.validate import validate_radius
from repro.montecarlo.violation import violation_probability_curve
from repro.utils.rng import default_rng
from repro.utils.tables import format_table


def _random_problem(rng, dim, quadratic):
    if quadratic:
        A = rng.normal(size=(dim, dim))
        mapping = QuadraticMapping(A @ A.T + np.eye(dim),
                                   rng.normal(size=dim))
    else:
        mapping = LinearMapping(rng.normal(size=dim) + 0.1)
    origin = 0.2 * rng.normal(size=dim)
    bound = mapping.value(origin) + rng.uniform(1.0, 10.0)
    return RadiusProblem(mapping=mapping, origin=origin,
                         bounds=ToleranceBounds.upper(bound))


def test_mc_validation_grid(benchmark, show):
    def run_grid():
        rng = default_rng(2005)
        rows = []
        all_pass = True
        for quadratic in (False, True):
            for dim in (2, 4, 8, 16):
                problem = _random_problem(rng, dim, quadratic)
                result = compute_radius(problem, seed=0)
                v = validate_radius(problem, result, n_samples=8000, seed=1)
                all_pass = all_pass and v.passed
                rows.append([
                    "quadratic" if quadratic else "linear", dim,
                    result.method, result.radius,
                    "yes" if v.sound else "NO",
                    "yes" if v.tight else "NO", v.min_violation_distance])
        return rows, all_pass

    rows, all_pass = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    show(format_table(
        ["feature", "dim", "solver", "radius", "sound", "tight",
         "closest sampled violation"],
        rows, title="[E7] Monte-Carlo validation of computed radii"))
    assert all_pass


def test_violation_curve(benchmark, show):
    mapping = QuadraticMapping(np.eye(3), [0.5, -0.3, 0.1])
    origin = np.zeros(3)
    bounds = ToleranceBounds.upper(mapping.value(origin) + 4.0)
    problem = RadiusProblem(mapping=mapping, origin=origin, bounds=bounds)
    result = compute_radius(problem, seed=0)
    curve = benchmark.pedantic(
        lambda: violation_probability_curve(
            mapping, origin, bounds,
            distances=np.linspace(0.25 * result.radius,
                                  2.5 * result.radius, 10),
            n_directions=4000, seed=2),
        rounds=1, iterations=1)
    rows = [[f"{d:.4f}", f"{p:.4f}",
             "<- radius" if abs(d - result.radius) ==
             min(abs(curve.distances - result.radius)) else ""]
            for d, p in zip(curve.distances, curve.probabilities)]
    show(format_table(
        ["distance", "P(violation)", ""],
        rows,
        title=f"[E7] violation probability vs distance "
              f"(computed radius = {result.radius:.4f})"))
    assert curve.first_violation_distance() >= result.radius - 1e-9


def test_validation_timing(benchmark):
    rng = default_rng(7)
    problem = _random_problem(rng, 8, True)
    result = compute_radius(problem, seed=0)
    benchmark(lambda: validate_radius(problem, result, n_samples=4000,
                                      seed=1))
