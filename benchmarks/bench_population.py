"""E12 — robustness statistics across generated system populations.

E12a: the distribution of rho over a family of HiPer-D systems and which
feature family is critical how often.  E12b: the scaling of rho with
system size — rho is a minimum over per-feature radii, so the population
mean shrinks as systems (and their feature counts) grow.
"""

from repro.analysis.study import population_study, scaling_study
from repro.systems.hiperd.generator import HiPerDGenerationSpec


def test_population_distribution(benchmark, show):
    spec = HiPerDGenerationSpec(n_sensors=2, n_actuators=2, n_machines=4,
                                app_layers=(3, 2))
    result = benchmark.pedantic(
        lambda: population_study(n_systems=12, spec=spec, seed=2005),
        rounds=1, iterations=1)
    show(result)
    stats = {row[0]: row[1] for row in result.rows}
    assert stats["rho min"] > 0


def test_scaling_with_system_size(benchmark, show):
    result = benchmark.pedantic(
        lambda: scaling_study(layer_sizes=((2, 2), (3, 3), (4, 4)),
                              systems_per_size=4, seed=2005),
        rounds=1, iterations=1)
    show(result)
    mean_rhos = [row[2] for row in result.rows]
    # aggregate trend: the largest family is no more robust than the
    # smallest (min over more features)
    assert mean_rhos[-1] <= mean_rhos[0] + 1e-12
