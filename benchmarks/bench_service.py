"""Radius service — persistent pool vs per-call pools vs serial.

Replays one seeded stream of radius requests through the three serving
architectures (:func:`repro.service.bench.run_service_benchmark`),
asserts the determinism contract (bit-identical results on all three
paths) and the headline claim of the serving layer — the persistent
service beats building a pool per call by at least 1.5× — and writes
the stable ``repro-bench-service-v1`` payload to
``benchmarks/results/BENCH_service.json`` so the speedup can be tracked
across commits.  CI runs the same harness at tiny scale through
``python -m repro bench-service``.
"""

import json
import pathlib

from repro.parallel.bench import validate_bench_payload, write_benchmark
from repro.service import assert_no_leaked_segments
from repro.service.bench import run_service_benchmark

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def test_service_benchmark(benchmark, show):
    payload = benchmark.pedantic(
        lambda: run_service_benchmark(workers=2, requests=10,
                                      problems_per_request=8),
        rounds=1, iterations=1)
    validate_bench_payload(payload)
    assert_no_leaked_segments()
    RESULTS_DIR.mkdir(exist_ok=True)
    write_benchmark(payload, RESULTS_DIR / "BENCH_service.json")
    show(json.dumps(payload, indent=2))
    assert payload["identical"], "service results diverged from serial"
    assert payload["service"]["shed"] == 0
    assert payload["service"]["completed"] == payload["requests"]
    # the point of the persistent pool: most requests reuse warm workers
    assert payload["executor"]["pool_reuses"] >= payload["requests"] - 1
    assert payload["speedup"] >= 1.5, (
        f"service only {payload['speedup']:.2f}x of the per-call pool")
