"""Self-hosting closed loop — radius-predicted chaos recovery.

Runs :func:`~repro.resilience.calibrate.run_selfhost_loop` end to end
(radius solve on the executor's own dispatch policy → supervisor
calibration → real chaos legs inside/outside the radius), asserts the
loop closes, re-runs it with a different runtime worker count, and
asserts the two ``repro-selfhost-v1`` artifacts are byte-identical —
the worker-invariance contract the acceptance suite pins.  The payload
lands in ``benchmarks/results/SELFHOST.json`` so the loop's verdicts
can be tracked across commits.  CI exercises the same loop at the same
scale through ``python -m repro selfhost`` (the ``selfhost-smoke`` job).
"""

import json
import pathlib

from repro.parallel.bench import validate_bench_payload, write_benchmark
from repro.resilience.calibrate import run_selfhost_loop

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def test_selfhost_loop_benchmark(benchmark, show):
    payload = benchmark.pedantic(
        lambda: run_selfhost_loop(seed=7, runtime_workers=1),
        rounds=1, iterations=1)
    validate_bench_payload(payload)
    RESULTS_DIR.mkdir(exist_ok=True)
    write_benchmark(payload, RESULTS_DIR / "SELFHOST.json")
    show(json.dumps({k: payload[k] for k in
                     ("rho", "critical_feature", "in_radius_recovered",
                      "out_of_radius_violates", "closed_loop")}, indent=2))
    assert payload["closed_loop"], \
        "the analytic-empirical loop did not close at the pinned seed"

    pooled = run_selfhost_loop(seed=7, runtime_workers=2)
    assert json.dumps(payload, sort_keys=True) \
        == json.dumps(pooled, sort_keys=True), \
        "artifact differs across runtime worker counts"
