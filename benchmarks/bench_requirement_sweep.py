"""E11 — rho vs the requirement beta: the paper's complaint, plotted.

Loosening ``beta_max = beta * phi_orig`` must increase a sane robustness
measure.  The normalized radius grows linearly in ``beta - 1``; the
sensitivity-weighted radius is a flat line — "the fact that an increase in
the robustness requirement does not change the robustness value is
troubling" (Sec. 3.1).
"""

from repro.analysis.requirement_sweep import requirement_sweep


def test_requirement_sweep(benchmark, show):
    result = benchmark.pedantic(
        lambda: requirement_sweep(
            [2.0, 3.0, 0.5], [4.0, 2.0, 10.0],
            betas=(1.05, 1.1, 1.2, 1.4, 1.7, 2.0, 2.5, 3.0)),
        rounds=3, iterations=1)
    show(result)
    show(result.summary["plot"])
    assert result.summary["sensitivity curve spread (paper: exactly 0)"] < 1e-12
    norm = [row[2] for row in result.rows]
    assert all(b > a for a, b in zip(norm, norm[1:]))
