"""E4 — the operating-point feasibility procedure (Sec. 3.1 steps a-c).

Samples random operating points around a two-kind system, runs the
paper's radius-ball test against direct constraint evaluation, and prints
the confusion table.  The procedure must be *sound* (no inside-ball point
may be infeasible); the conservative (outside-ball but feasible) fraction
is the price of collapsing the boundary's geometry to one scalar.

The benchmark times a single feasibility check (the operation a runtime
monitor would run per data set).
"""

import numpy as np

from repro.core.feasibility import FeasibilityChecker
from repro.core.features import PerformanceFeature, ToleranceBounds
from repro.core.fepia import FeatureSpec, RobustnessAnalysis
from repro.core.mappings import LinearMapping
from repro.core.perturbation import PerturbationParameter
from repro.utils.rng import default_rng
from repro.utils.tables import format_table


def _build_checker():
    exec_times = PerturbationParameter.nonnegative(
        "exec", [2.0, 3.0, 1.5], unit="s")
    msg_sizes = PerturbationParameter.nonnegative(
        "msg", [1e4, 5e3], unit="bytes")
    mapping = LinearMapping([1.0, 1.0, 1.0, 1e-6, 2e-6])
    phi0 = mapping.value(np.array([2.0, 3.0, 1.5, 1e4, 5e3]))
    feature = PerformanceFeature(
        "latency", ToleranceBounds.relative(phi0, 1.3), unit="s")
    ana = RobustnessAnalysis([FeatureSpec(feature, mapping)],
                             [exec_times, msg_sizes])
    return FeasibilityChecker(ana)


def test_feasibility_procedure(benchmark, show):
    checker = _build_checker()
    rng = default_rng(2005)
    ps = checker.analysis.pspace()
    rho = checker.analysis.rho()

    points = []
    for _ in range(400):
        direction = rng.normal(size=ps.dimension)
        direction /= np.linalg.norm(direction)
        p = ps.p_orig + direction * rho * rng.uniform(0.0, 2.5)
        pi = np.maximum(ps.from_p(p), 1e-9)
        points.append(ps.split_values(pi))

    verdicts = checker.check_many(points)
    show("[E4] " + FeasibilityChecker.summary_table(verdicts))

    inside_bad = sum(1 for v in verdicts
                     if v.within_radius and not v.actually_feasible)
    assert inside_bad == 0, "feasibility procedure must be sound"

    conservative = sum(1 for v in verdicts if v.is_conservative)
    total_outside = sum(1 for v in verdicts if not v.within_radius)
    show(format_table(
        ["quantity", "value"],
        [["rho", rho],
         ["points sampled", len(verdicts)],
         ["soundness violations", inside_bad],
         ["conservatism (feasible but outside ball)",
          f"{conservative}/{total_outside}"]],
        title="[E4] summary"))

    benchmark(checker.check, points[0])
