"""Shared fixtures for the benchmark harness.

Every benchmark prints the experiment table it regenerates (the rows the
paper's derivations imply) through the ``show`` fixture, which bypasses
pytest's output capture, and additionally appends it to
``benchmarks/results/experiments.txt`` so a complete record survives the
run.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def show(capsys):
    """Print an experiment artifact to the real terminal and the log file."""
    RESULTS_DIR.mkdir(exist_ok=True)
    log = RESULTS_DIR / "experiments.txt"

    def _show(artifact) -> None:
        text = str(artifact)
        with capsys.disabled():
            print()
            print(text)
        with log.open("a", encoding="utf-8") as fh:
            fh.write(text + "\n\n")

    return _show


@pytest.fixture(scope="session")
def bench_hiperd():
    """A mid-sized HiPer-D system shared by the HiPer-D benches."""
    from repro.systems.hiperd import HiPerDGenerationSpec, generate_hiperd_system

    spec = HiPerDGenerationSpec(n_sensors=3, n_actuators=2, n_machines=4,
                                app_layers=(3, 3, 2))
    return generate_hiperd_system(spec, seed=2005)


@pytest.fixture(scope="session")
def bench_qos():
    from repro.systems.hiperd import QoSSpec

    return QoSSpec(latency_slack=1.4, throughput_margin=0.9)
