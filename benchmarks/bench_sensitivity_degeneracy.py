"""E2 — Section 3.1: sensitivity weighting degenerates to 1/sqrt(n).

Regenerates the paper's central negative result as a table: for every
``n``, random instances with coefficients and originals spread over three
decades and random ``beta`` all collapse to the same radius ``1/sqrt(n)``.
The benchmark times one full pipeline sweep.
"""

from repro.analysis.linear_case import sensitivity_degeneracy_sweep


def _sweep():
    return sensitivity_degeneracy_sweep(ns=(2, 3, 4, 8, 16, 32, 64),
                                        cases_per_n=8, seed=2005)


def test_sensitivity_degeneracy(benchmark, show):
    result = benchmark.pedantic(_sweep, rounds=3, iterations=1)
    show(result)
    assert result.summary["worst relative deviation from 1/sqrt(n)"] < 1e-9
    assert result.summary["worst spread across random instances"] < 1e-9
