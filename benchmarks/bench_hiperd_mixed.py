"""E6 — multi-kind robustness of a HiPer-D allocation.

The IPDPS'05 setting proper: sensor loads (objects/set), unit execution
times (s/object), and message sizes (bytes) perturb simultaneously.  The
bench prints rho and the critical feature per weighting scheme and per
kind-subset, and times the full three-kind analysis.
"""

import math

from repro.analysis.comparison import compare_weightings
from repro.core.weighting import NormalizedWeighting
from repro.systems.hiperd.constraints import build_analysis
from repro.utils.tables import format_table


def test_weighting_comparison(benchmark, show, bench_hiperd, bench_qos):
    result = benchmark.pedantic(
        lambda: compare_weightings(bench_hiperd, bench_qos,
                                   kinds=("loads", "exec", "msgsize"),
                                   seed=2005),
        rounds=3, iterations=1)
    show(result)
    for row in result.rows:
        assert row[1] > 0 and math.isfinite(row[1])


def test_kind_subsets(benchmark, show, bench_hiperd, bench_qos):
    subsets = [("loads",), ("exec",), ("msgsize",),
               ("loads", "exec"), ("loads", "msgsize"),
               ("exec", "msgsize"), ("loads", "exec", "msgsize")]

    def run_subsets():
        rows = []
        rhos = {}
        for kinds in subsets:
            ana = build_analysis(bench_hiperd, bench_qos, kinds=kinds,
                                 weighting=NormalizedWeighting(), seed=2005)
            rho = ana.rho()
            rhos[kinds] = rho
            rows.append(["+".join(kinds), ana.dimension, rho,
                         ana.critical_feature().name])
        return rows, rhos

    rows, rhos = benchmark.pedantic(run_subsets, rounds=1, iterations=1)
    show(format_table(
        ["perturbed kinds", "dim", "rho (normalized)", "critical feature"],
        rows,
        title="[E6] robustness vs which kinds may perturb"))
    # More perturbed kinds = more adversary freedom = smaller radius.
    full = rhos[("loads", "exec", "msgsize")]
    for kinds, rho in rhos.items():
        assert full <= rho + 1e-9


def test_three_kind_analysis_timing(benchmark, bench_hiperd, bench_qos):
    def run():
        ana = build_analysis(bench_hiperd, bench_qos,
                             kinds=("loads", "exec", "msgsize"), seed=2005)
        return ana.rho()

    rho = benchmark.pedantic(run, rounds=3, iterations=1)
    assert rho > 0
