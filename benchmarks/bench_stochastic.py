"""E17 — stochastic robustness vs the deterministic radius.

For the heuristic lineup under a shared deadline, reports side by side the
deterministic radius (how far times can drift) and the survival
probability under gamma noise (how likely the deadline holds), with the
CLT approximation cross-checked against Monte Carlo.  The two views agree
on the ranking here, and the radius supplies a guarantee the probability
cannot: drift within the ball *never* violates.
"""

from repro.systems.heuristics import MCT, MaxMin, MinMin, Sufferage
from repro.systems.independent import MakespanSystem, generate_etc_gamma
from repro.systems.independent.stochastic import (
    stochastic_robustness_clt,
    stochastic_robustness_mc,
)
from repro.utils.tables import format_table


def test_stochastic_vs_deterministic(benchmark, show):
    etc = generate_etc_gamma(24, 6, seed=2005)
    heuristics = [MCT(), MinMin(), MaxMin(), Sufferage()]
    allocations = [(h.name, h.allocate(etc)) for h in heuristics]
    tau = 1.3 * min(a.makespan(etc) for _, a in allocations)

    def run():
        rows = []
        for name, alloc in allocations:
            system = MakespanSystem(etc, alloc)
            if system.makespan() >= tau:
                rows.append([name, system.makespan(), "-", "-", "-"])
                continue
            rho = system.analytic_rho(tau=tau)
            p_mc = stochastic_robustness_mc(etc, alloc, tau, cov=0.15,
                                            n_samples=8000, seed=7)
            p_clt = stochastic_robustness_clt(etc, alloc, tau, cov=0.15)
            rows.append([name, system.makespan(), rho, p_mc, p_clt])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(
        ["heuristic", "makespan", "radius rho",
         "P(survive) MC", "P(survive) CLT"],
        rows,
        title=f"[E17] deterministic radius vs survival probability, "
              f"tau = {tau:.4g}, cov = 0.15"))
    # CLT and MC must agree to a few percent wherever both computed
    for row in rows:
        if row[3] != "-":
            assert abs(row[3] - row[4]) < 0.05
