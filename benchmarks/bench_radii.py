"""Radius-batch benchmark — per-problem loop vs the tensorised kernel.

Solves one structural group of 32 radius problems (a shared near-
isotropic quadratic feature probed from 32 operating points) through the
plain ``compute_radius`` loop and through
:func:`~repro.core.solvers.tensor.solve_group`, asserting the
bit-identity contract and the promised reduction in Python-level
``value``/``value_many`` calls, then writes the stable
``repro-bench-radii-v1`` payload to
``benchmarks/results/BENCH_radii.json`` so the group-kernel speedup can
be tracked across commits.  CI runs the same harness through
``python -m repro bench-radii``.
"""

import json
import pathlib

from repro.core.solvers.radii_bench import run_radius_batch_benchmark
from repro.parallel.bench import validate_bench_payload, write_benchmark

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def test_radius_batch_benchmark(benchmark, show):
    payload = benchmark.pedantic(
        lambda: run_radius_batch_benchmark(problems=32, dimension=12),
        rounds=1, iterations=1)
    validate_bench_payload(payload)
    RESULTS_DIR.mkdir(exist_ok=True)
    write_benchmark(payload, RESULTS_DIR / "BENCH_radii.json")
    show(json.dumps(payload, indent=2))
    assert payload["identical"], \
        "tensorised results diverged from the per-problem loop"
    assert payload["eval_reduction"] >= 10.0, \
        f"tensor kernel saved only {payload['eval_reduction']:.1f}x calls"
    assert payload["speedup"] >= 3.0, \
        f"tensor kernel only {payload['speedup']:.2f}x of the loop"
