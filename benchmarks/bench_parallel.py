"""Parallel execution engine — serial vs process-pool experiment sweep.

Runs the registered experiment suite twice (serial, then fanned out over
a :class:`~repro.parallel.executor.ParallelExecutor`), asserts the
determinism contract (bit-identical serialized results), and writes the
stable ``repro-bench-parallel-v1`` payload to
``benchmarks/results/BENCH_parallel.json`` so speedups and cache hit
rates can be tracked across commits.  CI runs the same harness at tiny
scale through ``python -m repro bench-parallel``.
"""

import json
import pathlib

from repro.parallel.bench import (
    run_parallel_benchmark,
    validate_bench_payload,
    write_benchmark,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def test_parallel_benchmark(benchmark, show):
    payload = benchmark.pedantic(
        lambda: run_parallel_benchmark(
            workers=2, ids=["E2", "E3", "E5", "E11", "E16"]),
        rounds=1, iterations=1)
    validate_bench_payload(payload)
    RESULTS_DIR.mkdir(exist_ok=True)
    write_benchmark(payload, RESULTS_DIR / "BENCH_parallel.json")
    show(json.dumps(payload, indent=2))
    assert payload["identical"], "parallel results diverged from serial"
    # waves of `workers` tasks; a trailing single-task wave runs in-process
    assert payload["executor"]["dispatched"] == 4
    assert payload["executor"]["fallbacks"] == 0
