"""Chaos harness — recovery overhead under a seeded fault schedule.

Runs the experiment sweep three times (plain executor, fault-free
supervised, supervised under a seeded chaos schedule), asserts
bit-identical recovery, and writes the stable ``repro-bench-chaos-v1``
payload to ``benchmarks/results/BENCH_chaos.json`` so supervision and
recovery overheads can be tracked across commits.  CI runs the same
harness at tiny scale through ``python -m repro chaos``.
"""

import json
import pathlib

from repro.parallel.bench import validate_bench_payload, write_benchmark
from repro.resilience.chaos import ChaosPolicy, run_chaos_benchmark

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Every fault kind fires somewhere in the sweep, yet each task stays
#: recoverable by construction (the cap bounds fatal injections per task).
POLICY = ChaosPolicy(kill_rate=0.1, exception_rate=0.15, latency_rate=0.2,
                     latency=0.002, corrupt_rate=0.1, seed=2005,
                     max_injections_per_task=1)


def test_chaos_benchmark(benchmark, show):
    payload = benchmark.pedantic(
        lambda: run_chaos_benchmark(
            workers=2, ids=["E2", "E3", "E5", "E11", "E16"], policy=POLICY),
        rounds=1, iterations=1)
    validate_bench_payload(payload)
    RESULTS_DIR.mkdir(exist_ok=True)
    write_benchmark(payload, RESULTS_DIR / "BENCH_chaos.json")
    show(json.dumps(payload, indent=2))
    assert payload["identical"], "chaos run diverged from the plain sweep"
    assert payload["executor"]["quarantined"] == 0
