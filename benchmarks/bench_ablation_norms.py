"""E8 — ablations: distance norm and solver choice.

* Norm ablation: the radius under l1 / l2 / linf on the same HiPer-D
  analysis (the l2 choice the paper makes sits between the other two).
* Solver ablation: analytic vs numeric vs bisection on the same affine
  problems — identical answers, very different costs; this is the
  empirical justification for the dispatcher's analytic fast path.
"""

import numpy as np

from repro.analysis.comparison import compare_norms
from repro.core.features import ToleranceBounds
from repro.core.mappings import LinearMapping
from repro.core.radius import RadiusProblem, compute_radius
from repro.utils.rng import default_rng
from repro.utils.tables import format_table


def test_norm_ablation(benchmark, show, bench_hiperd, bench_qos):
    result = benchmark.pedantic(
        lambda: compare_norms(bench_hiperd, bench_qos,
                              kinds=("loads", "msgsize"), seed=2005),
        rounds=3, iterations=1)
    show(result)
    assert result.summary[
        "r_l1 >= r_l2 >= r_linf (expected for norms 1,2,inf)"] is True


def _affine_problem(dim=24, seed=2005):
    rng = default_rng(seed)
    mapping = LinearMapping(rng.uniform(0.1, 2.0, size=dim))
    origin = rng.uniform(1.0, 5.0, size=dim)
    bound = 1.3 * mapping.value(origin)
    return RadiusProblem(mapping=mapping, origin=origin,
                         bounds=ToleranceBounds.upper(bound))


def test_solver_agreement(benchmark, show):
    problem = _affine_problem()

    def run_all():
        rows = []
        radii = {}
        for method in ("analytic", "numeric", "bisection"):
            res = compute_radius(problem, method=method, seed=0)
            radii[method] = res.radius
            rows.append([method, res.radius,
                         abs(res.radius - radii["analytic"])
                         / radii["analytic"]])
        return rows, radii

    rows, radii = benchmark.pedantic(run_all, rounds=1, iterations=1)
    show(format_table(
        ["solver", "radius", "rel. gap vs analytic"], rows,
        title="[E8] solver ablation on a 24-D affine feature"))
    assert abs(radii["numeric"] - radii["analytic"]) <= (
        1e-6 * radii["analytic"])
    # Bisection is a rigorous upper bound, but with a fixed direction
    # budget its slack grows with dimension (random directions rarely
    # align with the hyperplane normal in 24-D) — the instructive part of
    # this ablation.  A sqrt(dim) factor comfortably bounds the effect.
    assert radii["bisection"] >= radii["analytic"] - 1e-12
    assert radii["bisection"] <= radii["analytic"] * np.sqrt(24.0)


def test_analytic_solver_speed(benchmark):
    problem = _affine_problem()
    benchmark(lambda: compute_radius(problem, method="analytic"))


def test_numeric_solver_speed(benchmark):
    problem = _affine_problem()
    benchmark.pedantic(lambda: compute_radius(problem, method="numeric",
                                              seed=0),
                       rounds=3, iterations=1)


def test_bisection_solver_speed(benchmark):
    problem = _affine_problem()
    benchmark.pedantic(lambda: compute_radius(problem, method="bisection",
                                              seed=0),
                       rounds=3, iterations=1)
