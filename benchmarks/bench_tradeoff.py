"""E10 — the makespan-robustness Pareto frontier.

Samples classical heuristics, random allocations, and blended
simulated-annealing runs on one instance, evaluates each under a shared
deadline, and prints the frontier with an ASCII scatter.  Asserts the
structural claims: the frontier is non-empty, non-dominated, and contains
at least one point that is not the makespan-optimal allocation (robustness
buys something makespan alone does not).
"""

import math

from repro.analysis.tradeoff import tradeoff_experiment
from repro.systems.independent import generate_etc_gamma


def test_tradeoff_frontier(benchmark, show):
    etc = generate_etc_gamma(20, 5, task_cov=0.9, machine_cov=0.3, seed=2005)
    result = benchmark.pedantic(
        lambda: tradeoff_experiment(etc, n_random=10,
                                    sa_weights=(0.0, 0.25, 0.5, 0.75, 1.0),
                                    seed=2005),
        rounds=1, iterations=1)
    show(result)
    assert result.summary["frontier size"] >= 1

    feasible = [(r[0], r[1], r[2]) for r in result.rows
                if isinstance(r[2], float) and not math.isnan(r[2])]
    starred = [r for r in result.rows if r[3] == "*"]
    # the most robust allocation must be on the frontier
    best_rho_label = max(feasible, key=lambda t: t[2])[0]
    assert any(r[0] == best_rho_label for r in starred)
