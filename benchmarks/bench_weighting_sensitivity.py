"""E16 — how much the arbitrary exchange rate matters.

Sweeping the bytes<->seconds weight over six decades moves rho by orders
of magnitude — the quantitative case for a canonical weighting scheme,
which is the paper's whole subject.
"""

from repro.analysis.weighting_sensitivity import weighting_sensitivity_experiment


def test_weighting_sensitivity(benchmark, show):
    result = benchmark.pedantic(
        lambda: weighting_sensitivity_experiment(),
        rounds=3, iterations=1)
    show(result)
    show(result.summary["plot"])
    assert result.summary["spread across exchange rates (max/min)"] > 10.0
    # the custom rhos bracket the canonical normalized value
    rhos = [row[1] for row in result.rows]
    reference = result.summary["rho(normalized reference)"]
    assert min(rhos) < reference < max(rhos) * 1.0001
