"""E3 — Section 3.2: the normalized radius is informative again.

Regenerates the positive result: under normalization by original values
the pipeline radius matches the closed form
``(beta-1) |sum k pi| / sqrt(sum (k pi)^2)`` to machine precision and
spreads widely across random systems (the measure distinguishes them).
"""

from repro.analysis.linear_case import normalized_dependence_sweep


def _sweep():
    return normalized_dependence_sweep(ns=(2, 3, 4, 8, 16),
                                       cases_per_n=8, seed=2005)


def test_normalized_radius(benchmark, show):
    result = benchmark.pedantic(_sweep, rounds=3, iterations=1)
    show(result)
    assert result.summary[
        "worst pipeline-vs-closed-form relative error"] < 1e-9
    assert result.summary[
        "smallest relative spread across instances"] > 0.05
