"""E15 — robustness-aware placement optimisation.

Hill-climbs single-application moves to maximise rho (the papers'
motivating question: *which* resource allocation tolerates the largest
load increase).  Asserts the search only ever improves and reports the
before/after radii and the accepted moves.
"""

from repro.systems.hiperd import HiPerDGenerationSpec, generate_hiperd_system
from repro.systems.hiperd.placement import improve_placement, placement_rho
from repro.utils.tables import format_table


def test_placement_improvement(benchmark, show, bench_qos):
    spec = HiPerDGenerationSpec(n_sensors=2, n_actuators=2, n_machines=4,
                                app_layers=(3, 2),
                                balanced_placement=False)
    system = generate_hiperd_system(spec, seed=2005)
    before = placement_rho(system, bench_qos)

    improved, steps = benchmark.pedantic(
        lambda: improve_placement(system, bench_qos, max_rounds=6),
        rounds=1, iterations=1)
    after = placement_rho(improved, bench_qos)

    rows = [["start", "-", "-", before]]
    for s in steps:
        rows.append([s.application, s.from_machine, s.to_machine, s.rho])
    show(format_table(
        ["move", "from", "to", "rho after"],
        rows,
        title=(f"[E15] robustness-aware placement search: rho "
               f"{before:.4g} -> {after:.4g} in {len(steps)} moves")))
    assert after >= before - 1e-12
