#!/usr/bin/env python
"""The paper's central result, executed: 1/sqrt(n) degeneracy and its fix.

Sweeps random instances of the general linear case (random coefficients,
random original values, random beta over several orders of magnitude) and
shows:

* Section 3.1 — under sensitivity-based weighting every instance with the
  same number of parameters ``n`` has radius exactly ``1/sqrt(n)``: the
  measure cannot distinguish systems;
* Section 3.2 — under normalization by original values the radius matches
  the closed form ``(beta-1) |sum k pi| / sqrt(sum (k pi)^2)`` and spreads
  widely across instances: the measure is informative again.

Run:  python examples/degeneracy_demo.py
"""

from repro.analysis import (
    normalized_dependence_sweep,
    sensitivity_degeneracy_sweep,
)
from repro.analysis.linear_case import analysis_for_case, random_linear_case
from repro.core.degeneracy import (
    normalized_radius_linear,
    sensitivity_radius_linear,
)
from repro.core.weighting import NormalizedWeighting, SensitivityWeighting
from repro.utils.rng import default_rng
from repro.utils.tables import format_table

SEED = 2005


def main() -> None:
    print(sensitivity_degeneracy_sweep(seed=SEED).to_table())
    print()
    print(normalized_dependence_sweep(seed=SEED).to_table())

    # A close-up: five wildly different 3-parameter systems.
    rng = default_rng(SEED)
    rows = []
    for i in range(5):
        case = random_linear_case(3, rng, decades=4.0)
        sens = analysis_for_case(case, SensitivityWeighting()).rho()
        norm = analysis_for_case(case, NormalizedWeighting()).rho()
        rows.append([
            i,
            f"{case.coefficients[0]:.3g},{case.coefficients[1]:.3g},"
            f"{case.coefficients[2]:.3g}",
            f"{case.beta:.3f}",
            sens,
            sensitivity_radius_linear(case),
            norm,
            normalized_radius_linear(case),
        ])
    print()
    print(format_table(
        ["case", "k values", "beta", "rho (sens)", "closed (sens)",
         "rho (norm)", "closed (norm)"],
        rows,
        title="five different 3-parameter systems: sensitivity weighting "
              "cannot tell them apart, normalized weighting can"))


if __name__ == "__main__":
    main()
