#!/usr/bin/env python
"""Operating a robust system: monitoring, criticality, failures, archiving.

A day-in-the-life script for the extensions around the core metric:

1. generate a HiPer-D system and measure its multi-kind robustness;
2. decompose the critical direction — *which* sensor load or message size
   threatens the QoS first (``criticality_report``);
3. deploy the radius-ball monitor against four canonical load-drift
   shapes and report the alarm lead times (E9);
4. switch to the independent-task substrate and measure the *discrete*
   robustness against machine failures the paper also motivates (E13);
5. archive the HiPer-D system as JSON and reload it bit-identically.

Run:  python examples/monitoring_and_failures.py
"""

import tempfile
from pathlib import Path

from repro import criticality_report
from repro.analysis.monitoring import monitoring_experiment
from repro.core.metric import robustness_metric
from repro.io import dump_json, load_json
from repro.systems.heuristics import MCT, Sufferage
from repro.systems.hiperd import (
    QoSSpec,
    build_analysis,
    generate_hiperd_system,
)
from repro.systems.independent import (
    MakespanSystem,
    failure_radius,
    generate_etc_gamma,
    survival_probability,
)

SEED = 11


def main() -> None:
    # --- 1) robustness of a generated HiPer-D allocation ---------------
    system = generate_hiperd_system(seed=SEED)
    qos = QoSSpec(latency_slack=1.4)
    analysis = build_analysis(system, qos, kinds=("loads", "msgsize"),
                              seed=SEED)
    print(system)
    print()
    print(robustness_metric(analysis))

    # --- 2) what limits it? ---------------------------------------------
    print()
    print(criticality_report(analysis))

    # --- 3) runtime monitoring ------------------------------------------
    print()
    print(monitoring_experiment(system, analysis, n_steps=50, seed=SEED))

    # --- 4) discrete failure robustness ----------------------------------
    etc = generate_etc_gamma(18, 5, seed=SEED)
    print()
    for heuristic in (MCT(), Sufferage()):
        alloc = heuristic.allocate(etc)
        tau = 2.0 * MakespanSystem(etc, alloc).makespan()
        fa = failure_radius(etc, alloc, tau)
        p = survival_probability(etc, alloc, tau, p_fail=0.25,
                                 n_samples=1000, seed=SEED)
        print(f"{heuristic.name}: survives any {fa.radius} machine "
              f"failure(s) under tau={tau:.4g}; "
              f"P(survive | each machine fails w.p. 0.25) = {p:.3f}")

    # --- 5) archive and reload -------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "system.json"
        dump_json(system, path)
        reloaded = load_json(path)
        same = all(
            abs(reloaded.path_latency(p) - system.path_latency(p)) < 1e-12
            for p in system.sensor_actuator_paths())
        print(f"\narchived to JSON and reloaded: behavioural match = {same}")


if __name__ == "__main__":
    main()
