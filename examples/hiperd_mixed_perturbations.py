#!/usr/bin/env python
"""HiPer-D: multi-kind robustness analysis of a sensor/application DAG.

Generates a random HiPer-D-like system (sensors -> application DAG ->
actuators on heterogeneous machines), builds its latency and throughput
features, and measures robustness against *three kinds* of perturbation
simultaneously — sensor loads, unit execution times, and message sizes —
under the paper's normalized weighting.  Then:

* compares the weighting schemes (the sensitivity scheme's degeneracy is
  visible on real features too);
* validates every radius by Monte-Carlo sampling;
* renders a Figure-1-style boundary curve for a 2-D slice (one sensor
  load x one unit execution time — a curved, bilinear boundary);
* replays a drifting load trace through the dataflow simulator and checks
  when the radius-ball monitor first flags danger vs when a deadline is
  actually missed.

Run:  python examples/hiperd_mixed_perturbations.py
"""

import numpy as np

from repro.core import RestrictedMapping, ToleranceBounds
from repro.core.feasibility import FeasibilityChecker
from repro.core.metric import robustness_metric
from repro.montecarlo import validate_analysis
from repro.reporting import boundary_figure
from repro.analysis import compare_weightings
from repro.systems.hiperd import (
    FlatLayout,
    HiPerDGenerationSpec,
    MappingAssembler,
    QoSSpec,
    build_analysis,
    generate_hiperd_system,
    simulate_dataflow,
)

SEED = 42


def main() -> None:
    spec = HiPerDGenerationSpec(n_sensors=3, n_actuators=2, n_machines=4,
                                app_layers=(3, 3, 2))
    system = generate_hiperd_system(spec, seed=SEED)
    print(system)
    qos = QoSSpec(latency_slack=1.4, throughput_margin=0.9)

    # --- full three-kind analysis -----------------------------------
    analysis = build_analysis(system, qos,
                              kinds=("loads", "exec", "msgsize"), seed=SEED)
    report = robustness_metric(analysis)
    print("\n" + report.to_table())

    # --- weighting comparison ----------------------------------------
    print("\n" + compare_weightings(system, qos,
                                    kinds=("loads", "exec", "msgsize"),
                                    seed=SEED).to_table())

    # --- Monte-Carlo validation --------------------------------------
    checks = validate_analysis(analysis, n_samples=4000, seed=SEED)
    bad = [name for name, v in checks.items() if not v.passed]
    print(f"\nMonte-Carlo validation: {len(checks) - len(bad)}/{len(checks)} "
          f"radii sound and tight" + (f"; FAILED: {bad}" if bad else ""))

    # --- Figure-1 style boundary slice --------------------------------
    # Slice the critical feature's mapping down to (first sensor load,
    # first unit execution time): a bilinear, curved boundary.
    layout = FlatLayout(system, ("loads", "exec"))
    assembler = MappingAssembler(layout)
    critical_path = system.sensor_actuator_paths()[0]
    mapping = assembler.path_latency(critical_path)
    origin_full = layout.flat_origin()
    free = np.array([0, layout.index("exec", 0)])
    sliced = RestrictedMapping(mapping, free, origin_full)
    origin2 = origin_full[free]
    phi0 = sliced.value(origin2)
    fig = boundary_figure(sliced, origin2,
                          ToleranceBounds.upper(1.4 * phi0),
                          n_curve_points=128)
    print("\n" + fig.render(width=70, height=20))

    # --- runtime monitoring on a drifting load trace -------------------
    n_steps = 40
    drift = np.linspace(1.0, 2.2, n_steps)          # loads ramp to +120%
    trace = system.original_loads()[None, :] * drift[:, None]
    checker = FeasibilityChecker(analysis)
    deadline_feature = analysis.features[0]
    first_ball_alarm = first_violation = None
    for t in range(n_steps):
        verdict = checker.check({"loads": trace[t]})
        if first_ball_alarm is None and not verdict.within_radius:
            first_ball_alarm = t
        if first_violation is None and not verdict.actually_feasible:
            first_violation = t
    print(f"\nload ramp: radius-ball monitor first alarms at step "
          f"{first_ball_alarm}, first actual QoS violation at step "
          f"{first_violation} (alarm must come first: "
          f"{first_ball_alarm <= (first_violation or n_steps)})")

    # cross-check with the dataflow simulator at the violation step
    if first_violation is not None:
        rec = simulate_dataflow(system, trace[first_violation:first_violation + 1])
        print(f"simulated worst latency at violation step: "
              f"{rec.actuator_latencies.max():.4f} s "
              f"(bound {deadline_feature.feature.bounds.beta_max:.4f} s)")


if __name__ == "__main__":
    main()
