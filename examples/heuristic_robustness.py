#!/usr/bin/env python
"""Robust resource allocation on the independent-task substrate.

The companion paper's use-case: given several candidate allocations of
independent tasks onto heterogeneous machines, the robustness metric ranks
them by how much execution-time drift they tolerate before the makespan
deadline breaks — a ranking that disagrees with ranking by raw makespan.

The script:

1. generates an ETC matrix (gamma/CVB method, inconsistent heterogeneity);
2. runs the standard heuristic lineup and compares makespan vs robustness
   under a shared absolute deadline;
3. uses simulated annealing to *maximise the robustness metric directly*
   and shows it beating every classical heuristic on rho (usually paying a
   little makespan for it).

Run:  python examples/heuristic_robustness.py
"""

from repro.analysis import compare_heuristics
from repro.systems.heuristics import MCT, SimulatedAnnealer
from repro.systems.independent import MakespanSystem, generate_etc_gamma

SEED = 7


def main() -> None:
    etc = generate_etc_gamma(24, 6, task_cov=0.9, machine_cov=0.3,
                             consistency="inconsistent", seed=SEED)
    result = compare_heuristics(etc, tau_factor=1.3, seed=SEED)
    print(result.to_table())

    # Shared deadline used above: rebuild it for the optimiser.
    mct_alloc = MCT().allocate(etc)
    tau = 1.3 * min(MakespanSystem(etc, mct_alloc).makespan(),
                    *(row[1] for row in result.rows))

    def negative_rho_factory(etc_matrix):
        def objective(allocation):
            system = MakespanSystem(etc_matrix, allocation)
            if system.makespan() >= tau:
                # Infeasible under the deadline: push the optimiser back
                # toward feasibility with a makespan-based penalty.
                return system.makespan() / tau
            return -system.analytic_rho(tau=tau)
        return objective

    annealer = SimulatedAnnealer(negative_rho_factory, n_steps=3000,
                                 seed=SEED)
    best = annealer.allocate(etc)
    system = MakespanSystem(etc, best)
    print(f"\nsimulated annealing on -rho (same deadline tau={tau:.4g}):")
    print(f"  makespan = {system.makespan():.4f}")
    print(f"  rho      = {system.analytic_rho(tau=tau):.4f}")
    feasible_rhos = [row[2] for row in result.rows
                     if row[2] == row[2]]  # drop NaNs
    print(f"  best classical rho was {max(feasible_rhos):.4f} -> "
          f"SA {'improves' if system.analytic_rho(tau=tau) > max(feasible_rhos) else 'matches/trails'} it")


if __name__ == "__main__":
    main()
