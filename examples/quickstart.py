#!/usr/bin/env python
"""Quickstart: robustness of a system with two *kinds* of perturbations.

The paper's motivating setting in miniature: a performance feature (an
end-to-end latency) depends on task execution times ``e_j`` (seconds) and
message lengths ``m_k`` (bytes).  Because the two kinds have different
units, they cannot be concatenated into one perturbation vector directly —
this script shows the library refusing the illegal combination, then
computing the robustness metric with the paper's normalized weighting and
with the (degenerate) sensitivity weighting.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    FeasibilityChecker,
    FeatureSpec,
    IdentityWeighting,
    LinearMapping,
    NormalizedWeighting,
    PerformanceFeature,
    PerturbationParameter,
    RobustnessAnalysis,
    SensitivityWeighting,
    ToleranceBounds,
    UnitMismatchError,
    robustness_metric,
)


def main() -> None:
    # Two execution times (seconds) and two message lengths (bytes): four
    # uncertain quantities of two different kinds.
    exec_times = PerturbationParameter.nonnegative(
        "exec_times", [2.0, 3.0], unit="s",
        description="actual execution times of the two pipeline stages")
    msg_sizes = PerturbationParameter.nonnegative(
        "msg_sizes", [1e4, 5e3], unit="bytes",
        description="actual sizes of the two inter-stage messages")

    # Latency = e1 + e2 + m1/bw1 + m2/bw2 over the flat vector
    # [e1, e2, m1, m2]; bandwidths 1 MB/s and 0.5 MB/s.
    bw1, bw2 = 1e6, 5e5
    mapping = LinearMapping([1.0, 1.0, 1.0 / bw1, 1.0 / bw2])
    phi_orig = mapping.value(np.array([2.0, 3.0, 1e4, 5e3]))
    print(f"original latency: {phi_orig:.4f} s")

    # Robustness requirement: latency must stay below 1.3x its original.
    feature = PerformanceFeature(
        "latency", ToleranceBounds.relative(phi_orig, 1.3), unit="s")
    spec = FeatureSpec(feature, mapping)

    # 1) The illegal direct concatenation is refused.
    try:
        RobustnessAnalysis([spec], [exec_times, msg_sizes],
                           weighting=IdentityWeighting()).rho()
    except UnitMismatchError as exc:
        print(f"\nidentity weighting rejected, as the paper requires:\n  {exc}")

    # 2) The paper's proposal: normalize by original values (Sec. 3.2).
    normalized = RobustnessAnalysis([spec], [exec_times, msg_sizes],
                                    weighting=NormalizedWeighting())
    print("\n" + robustness_metric(normalized).to_table())

    # 3) The degenerate sensitivity weighting (Sec. 3.1) for contrast.
    sensitivity = RobustnessAnalysis([spec], [exec_times, msg_sizes],
                                     weighting=SensitivityWeighting())
    print("\n" + robustness_metric(sensitivity).to_table())

    # 4) The operating-point feasibility procedure (steps a-c of Sec. 3.1):
    # can the system run at +20% execution times and +10% message sizes?
    checker = FeasibilityChecker(normalized)
    verdict = checker.check({
        "exec_times": [2.4, 3.6],
        "msg_sizes": [1.1e4, 5.5e3],
    })
    print(f"\noperating point: ||P - P_orig|| = {verdict.distance:.4f} "
          f"vs rho = {verdict.rho:.4f}")
    print(f"ball test says safe: {verdict.within_radius}; "
          f"direct evaluation says feasible: {verdict.actually_feasible}")


if __name__ == "__main__":
    main()
