#!/usr/bin/env python
"""Scenario lab: stochastic shock replay against the analytic radius.

Builds a makespan instance, runs the full lab pipeline — shock
catalogue, seeded trajectory replay, block-bootstrap confidence
intervals, pass/fail robustness gates, perturbation-kind ablation — and
shows the headline result: along the system's *critical direction* the
empirical violation rate matches the radius-based FePIA prediction step
for step, and the bootstrap CI brackets it.

Everything is a pure function of the seed, so re-running this script
(or fanning it out over worker processes with ``executor=``) reproduces
the artifact byte for byte.

Run:  python examples/scenario_lab.py
"""

import json

from repro.parallel.bench import validate_bench_payload
from repro.scenarios import RobustnessGates, parse_shock_spec, run_lab
from repro.systems.heuristics import MCT
from repro.systems.independent import generate_etc_gamma
from repro.systems.independent.makespan import MakespanSystem
from repro.systems.independent.scenarios import makespan_scenario_catalogue

SEED = 2005
BETA = 1.2


def main() -> None:
    etc = generate_etc_gamma(24, 6, seed=SEED)
    system = MakespanSystem(etc, MCT().allocate(etc))
    analysis = system.robustness_analysis(beta=BETA, seed=SEED)

    # --- the catalogue, plus one custom shock from a CLI-style spec --
    catalogue = makespan_scenario_catalogue(system, BETA, n_steps=30)
    catalogue.append(parse_shock_spec(
        "kind=spike,magnitude=40,rate=0.5,steps=30,name=burst"))
    print("catalogue:", ", ".join(sc.name for sc in catalogue))

    # --- gates: what "robust enough" means for this run --------------
    gates = RobustnessGates({"violation_rate": ("<=", 0.75),
                             "worst_drawdown": ("<", 10.0)})

    payload = run_lab(analysis, catalogue, seed=SEED, n_trajectories=8,
                      n_boot=200, block=10, gates=gates,
                      system="makespan")
    validate_bench_payload(payload)

    print(f"\nanalytic rho = {payload['rho']:.4g} "
          f"(weighting {payload['weighting']})")
    for entry in payload["scenarios"]:
        sc, ci = entry["scenario"], entry["bootstrap"]
        print(f"  {sc['name']:<16} empirical {entry['violation_rate']:.3f} "
              f"CI [{ci['lo']:.3f}, {ci['hi']:.3f}]  "
              f"predicted {entry['predicted_violation_rate']:.3f}  "
              f"brackets={entry['ci_brackets_prediction']}  "
              f"gates={'PASS' if entry['gates']['passed'] else 'FAIL'}")

    abl = payload["ablation"]
    dominant = next(e for e in abl["entries"]
                    if e["param"] == abl["dominant_param"])
    print(f"\nablation of {abl['scenario']}: freezing "
          f"{abl['dominant_param']} removes "
          f"{dominant['delta_violation_rate']:.3f} of the violation "
          f"rate (Eq. 1 rank agreement: {abl['rank_agreement']})")
    print(f"gates passed overall: {payload['gates_passed']}")

    with open("LAB.json", "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print("full artifact written to LAB.json")


if __name__ == "__main__":
    main()
