"""Tests for repro.utils.tables."""

import pytest

from repro.utils.tables import format_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["a", "bb"], [["x", 1.0], ["yyyy", 2.5]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, sep, two rows
        # all lines equal width
        assert len({len(line) for line in lines}) == 1

    def test_title(self):
        out = format_table(["c"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        out = format_table(["v"], [[0.123456789]], float_fmt=".3g")
        assert "0.123" in out
        assert "0.123456789" not in out

    def test_ints_not_float_formatted(self):
        out = format_table(["v"], [[7]])
        assert "7" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError, match="row 0"):
            format_table(["a", "b"], [["only one"]])

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "a" in out

    def test_header_separator_dashes(self):
        out = format_table(["col"], [["val"]])
        assert set(out.splitlines()[1]) <= {"-", "+"}
