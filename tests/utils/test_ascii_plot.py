"""Tests for repro.utils.ascii_plot."""

import pytest

from repro.exceptions import SpecificationError
from repro.utils.ascii_plot import AsciiCanvas, line_plot, scatter_plot


class TestAsciiCanvas:
    def test_point_lands_in_grid(self):
        c = AsciiCanvas(10, 5, (0, 1), (0, 1))
        c.plot_points([0.5], [0.5], "X")
        assert "X" in c.render()

    def test_off_canvas_ignored(self):
        c = AsciiCanvas(10, 5, (0, 1), (0, 1))
        c.plot_points([2.0], [2.0], "X")
        assert "X" not in c.render()

    def test_corners(self):
        c = AsciiCanvas(10, 5, (0, 1), (0, 1))
        c.plot_points([0.0, 1.0], [0.0, 1.0], "X")
        rendered = c.render()
        assert rendered.count("X") == 2

    def test_multichar_marker_rejected(self):
        c = AsciiCanvas()
        with pytest.raises(SpecificationError):
            c.plot_points([0.5], [0.5], "XY")

    def test_bad_limits(self):
        with pytest.raises(SpecificationError):
            AsciiCanvas(10, 5, (1, 0), (0, 1))

    def test_too_small(self):
        with pytest.raises(SpecificationError):
            AsciiCanvas(1, 1)

    def test_line_connects(self):
        c = AsciiCanvas(20, 10, (0, 1), (0, 1))
        c.plot_line(0.0, 0.0, 1.0, 1.0, "*")
        assert c.render().count("*") >= 10

    def test_render_annotations(self):
        c = AsciiCanvas(10, 5, (0, 1), (0, 1))
        out = c.render(xlabel="xx", ylabel="yy", title="tt")
        assert "xx" in out and "yy" in out and "tt" in out


class TestHighLevelPlots:
    def test_scatter_contains_markers(self):
        out = scatter_plot([1, 2, 3], [1, 4, 9])
        assert "*" in out

    def test_scatter_empty_rejected(self):
        with pytest.raises(SpecificationError):
            scatter_plot([], [])

    def test_scatter_constant_values_ok(self):
        out = scatter_plot([1, 1], [2, 2])
        assert "*" in out

    def test_line_plot(self):
        out = line_plot([0, 1, 2], [0, 1, 0])
        assert "." in out

    def test_line_needs_two_points(self):
        with pytest.raises(SpecificationError):
            line_plot([1], [1])
