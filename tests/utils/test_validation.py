"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError, SpecificationError
from repro.utils.validation import (
    as_1d_float_array,
    as_2d_float_array,
    check_finite,
    check_nonnegative,
    check_positive,
    check_probability,
    check_same_length,
)


class TestAs1dFloatArray:
    def test_list_coerced(self):
        arr = as_1d_float_array([1, 2, 3])
        assert arr.dtype == np.float64
        assert arr.tolist() == [1.0, 2.0, 3.0]

    def test_scalar_becomes_length_one(self):
        assert as_1d_float_array(np.float64(5.0)).shape == (1,)

    def test_generator_accepted(self):
        arr = as_1d_float_array(x * 0.5 for x in range(4))
        assert arr.tolist() == [0.0, 0.5, 1.0, 1.5]

    def test_returns_fresh_array_for_lists(self):
        src = [1.0, 2.0]
        arr = as_1d_float_array(src)
        arr[0] = 99.0
        assert src[0] == 1.0

    def test_2d_rejected(self):
        with pytest.raises(SpecificationError, match="1-dimensional"):
            as_1d_float_array(np.zeros((2, 2)))

    def test_empty_rejected(self):
        with pytest.raises(SpecificationError, match="non-empty"):
            as_1d_float_array([])

    def test_non_numeric_rejected(self):
        with pytest.raises(SpecificationError, match="numeric"):
            as_1d_float_array(["a", "b"])

    def test_name_in_message(self):
        with pytest.raises(SpecificationError, match="myvec"):
            as_1d_float_array([[1], [2]], name="myvec")


class TestAs2dFloatArray:
    def test_nested_list(self):
        arr = as_2d_float_array([[1, 2], [3, 4]])
        assert arr.shape == (2, 2)
        assert arr.dtype == np.float64

    def test_1d_rejected(self):
        with pytest.raises(SpecificationError, match="2-dimensional"):
            as_2d_float_array([1, 2, 3])

    def test_empty_rejected(self):
        with pytest.raises(SpecificationError, match="non-empty"):
            as_2d_float_array(np.zeros((0, 3)))

    def test_contiguous(self):
        arr = as_2d_float_array(np.zeros((4, 4))[::2])
        assert arr.flags["C_CONTIGUOUS"]


class TestScalarChecks:
    def test_check_finite_passes(self):
        arr = np.array([1.0, 2.0])
        assert check_finite(arr) is arr

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_check_finite_rejects(self, bad):
        with pytest.raises(SpecificationError, match="finite"):
            check_finite(np.array([1.0, bad]))

    def test_check_positive(self):
        check_positive(np.array([1e-300, 5.0]))
        with pytest.raises(SpecificationError, match="positive"):
            check_positive(np.array([1.0, 0.0]))

    def test_check_nonnegative(self):
        check_nonnegative(np.array([0.0, 5.0]))
        with pytest.raises(SpecificationError, match="non-negative"):
            check_nonnegative(np.array([-1e-12]))

    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_check_probability_accepts(self, ok):
        assert check_probability(ok) == ok

    @pytest.mark.parametrize("bad", [-0.01, 1.01, 2.0])
    def test_check_probability_rejects(self, bad):
        with pytest.raises(SpecificationError):
            check_probability(bad)


class TestCheckSameLength:
    def test_equal_lengths(self):
        assert check_same_length([1, 2], (3, 4), np.zeros(2)) == 2

    def test_mismatch_raises_with_names(self):
        with pytest.raises(DimensionMismatchError, match="a=2.*b=3"):
            check_same_length([1, 2], [1, 2, 3], names=["a", "b"])

    def test_mismatch_default_names(self):
        with pytest.raises(DimensionMismatchError, match="argument 1"):
            check_same_length([1], [1, 2])
