"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import default_rng, spawn_rngs


class TestDefaultRng:
    def test_none_gives_generator(self):
        assert isinstance(default_rng(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = default_rng(42).random(5)
        b = default_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passed_through(self):
        g = np.random.default_rng(0)
        assert default_rng(g) is g

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(7)
        g = default_rng(ss)
        assert isinstance(g, np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_streams(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_streams_differ(self):
        a, b = spawn_rngs(123, 2)
        assert not np.allclose(a.random(10), b.random(10))

    def test_reproducible_across_calls(self):
        a1, b1 = spawn_rngs(9, 2)
        a2, b2 = spawn_rngs(9, 2)
        np.testing.assert_array_equal(a1.random(4), a2.random(4))
        np.testing.assert_array_equal(b1.random(4), b2.random(4))

    def test_spawn_from_generator(self):
        g = np.random.default_rng(3)
        kids = spawn_rngs(g, 3)
        assert len(kids) == 3

    def test_spawn_from_seed_sequence(self):
        kids = spawn_rngs(np.random.SeedSequence(1), 2)
        assert len(kids) == 2
