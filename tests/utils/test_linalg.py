"""Tests for repro.utils.linalg (Equation 4 and sampling geometry)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import DimensionMismatchError, SpecificationError
from repro.utils.linalg import (
    point_to_hyperplane_distance,
    project_point_to_hyperplane,
    sample_in_ball,
    sample_on_sphere,
    unit_vector,
    vector_norm,
    vector_norm_many,
)

finite_floats = st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False)


class TestPointToHyperplaneDistance:
    def test_textbook_2d(self):
        # Plane x + y = 2, point at origin: distance sqrt(2).
        d = point_to_hyperplane_distance(np.zeros(2), np.ones(2), 2.0)
        assert d == pytest.approx(np.sqrt(2))

    def test_point_on_plane(self):
        d = point_to_hyperplane_distance(np.array([1.0, 1.0]), np.ones(2), 2.0)
        assert d == 0.0

    def test_sign_irrelevant(self):
        p = np.array([3.0, -1.0])
        d1 = point_to_hyperplane_distance(p, np.array([2.0, 1.0]), 5.0)
        d2 = point_to_hyperplane_distance(p, -np.array([2.0, 1.0]), -5.0)
        assert d1 == pytest.approx(d2)

    def test_zero_normal_rejected(self):
        with pytest.raises(SpecificationError, match="nonzero"):
            point_to_hyperplane_distance(np.zeros(2), np.zeros(2), 1.0)

    def test_shape_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            point_to_hyperplane_distance(np.zeros(2), np.zeros(3), 1.0)

    @given(point=arrays(np.float64, 4, elements=finite_floats),
           normal=arrays(np.float64, 4, elements=finite_floats),
           offset=finite_floats)
    @settings(max_examples=50)
    def test_projection_realises_distance(self, point, normal, offset):
        if np.linalg.norm(normal) < 1e-6:
            return
        d = point_to_hyperplane_distance(point, normal, offset)
        proj = project_point_to_hyperplane(point, normal, offset)
        # projection lies on the plane and at exactly the distance; the
        # residual tolerance scales with the magnitudes involved.
        scale = 1 + abs(offset) + float(
            np.linalg.norm(normal) * np.linalg.norm(point))
        assert normal @ proj == pytest.approx(offset, abs=1e-9 * scale)
        assert np.linalg.norm(proj - point) == pytest.approx(
            d, abs=1e-8 * (1 + d))


class TestProjection:
    def test_projection_of_on_plane_point_is_identity(self):
        p = np.array([1.0, 1.0])
        proj = project_point_to_hyperplane(p, np.ones(2), 2.0)
        np.testing.assert_allclose(proj, p)

    def test_zero_normal_rejected(self):
        with pytest.raises(SpecificationError):
            project_point_to_hyperplane(np.zeros(2), np.zeros(2), 1.0)


class TestVectorNorm:
    def test_l2(self):
        assert vector_norm(np.array([3.0, 4.0])) == 5.0

    def test_l1(self):
        assert vector_norm(np.array([3.0, -4.0]), 1) == 7.0

    def test_linf(self):
        assert vector_norm(np.array([3.0, -4.0]), np.inf) == 4.0

    def test_inf_string(self):
        assert vector_norm(np.array([1.0, -2.0]), "inf") == 2.0

    def test_unsupported_order(self):
        with pytest.raises(SpecificationError, match="unsupported"):
            vector_norm(np.ones(2), 3)


class TestVectorNormMany:
    @pytest.mark.parametrize("order", [1, 2, np.inf, "inf"])
    def test_bit_identical_to_scalar(self, order, rng):
        xs = rng.standard_normal((200, 7)) * 10.0 ** rng.integers(-3, 4, 200)[:, None]
        got = vector_norm_many(xs, order)
        want = np.array([vector_norm(row, order) for row in xs])
        np.testing.assert_array_equal(got, want)

    def test_empty_batch(self):
        assert vector_norm_many(np.empty((0, 3))).shape == (0,)

    def test_rejects_1d(self):
        with pytest.raises(DimensionMismatchError):
            vector_norm_many(np.ones(3))

    def test_unsupported_order(self):
        with pytest.raises(SpecificationError, match="unsupported"):
            vector_norm_many(np.ones((2, 2)), 3)


class TestUnitVector:
    def test_normalises(self):
        v = unit_vector(np.array([0.0, 5.0]))
        np.testing.assert_allclose(v, [0.0, 1.0])

    def test_zero_rejected(self):
        with pytest.raises(SpecificationError):
            unit_vector(np.zeros(3))


class TestSphereSampling:
    def test_unit_norms(self, rng):
        pts = sample_on_sphere(rng, 500, 6)
        np.testing.assert_allclose(np.linalg.norm(pts, axis=1), 1.0,
                                   atol=1e-12)

    def test_shape(self, rng):
        assert sample_on_sphere(rng, 10, 3).shape == (10, 3)

    def test_dim_one(self, rng):
        pts = sample_on_sphere(rng, 100, 1)
        assert set(np.unique(pts)) <= {-1.0, 1.0}

    def test_bad_dim(self, rng):
        with pytest.raises(SpecificationError):
            sample_on_sphere(rng, 10, 0)

    def test_mean_near_zero(self, rng):
        pts = sample_on_sphere(rng, 20000, 3)
        assert np.linalg.norm(pts.mean(axis=0)) < 0.05


class TestBallSampling:
    def test_within_radius(self, rng):
        pts = sample_in_ball(rng, 1000, 4, radius=2.5)
        assert np.all(np.linalg.norm(pts, axis=1) <= 2.5 + 1e-12)

    def test_negative_radius_rejected(self, rng):
        with pytest.raises(SpecificationError):
            sample_in_ball(rng, 10, 2, radius=-1.0)

    def test_radius_distribution_uniform_in_volume(self, rng):
        # For uniform-in-ball samples in dim d, P(r <= t*R) = t^d.
        pts = sample_in_ball(rng, 50000, 2, radius=1.0)
        r = np.linalg.norm(pts, axis=1)
        frac_inside_half = np.mean(r <= 0.5)
        assert frac_inside_half == pytest.approx(0.25, abs=0.02)
