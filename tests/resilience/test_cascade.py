"""Tests for the graceful-degradation solver cascade.

Every degradation path is forced deterministically with the fault
injector; the acceptance test at the bottom runs the cascade under the
fault cocktail from the issue (exception rate 0.3, NaN rate 0.2,
per-solver timeout 0.5 s) and checks it never raises and never
under-reports a radius.
"""

import math
import warnings

import numpy as np
import pytest

from repro.core.features import ToleranceBounds
from repro.core.mappings import CallableMapping, LinearMapping, QuadraticMapping
from repro.core.radius import RadiusProblem, compute_radius
from repro.exceptions import (
    DegradedResultWarning,
    InfeasibleAllocationError,
    SpecificationError,
)
from repro.resilience import (
    CascadeConfig,
    FaultInjector,
    FaultSpec,
    Quality,
    RetryPolicy,
    SolverCascade,
)

FAST_RETRY = RetryPolicy(max_retries=2, backoff_base=0.0, backoff_cap=0.0,
                         jitter=0.0)


def linear_problem(**kwargs):
    """f(x) = 3 x1 + 4 x2 from (1, 1), upper bound 12 -> radius 1.0."""
    return RadiusProblem(LinearMapping([3.0, 4.0]), np.array([1.0, 1.0]),
                         ToleranceBounds.upper(12.0), **kwargs)


def hidden_linear_problem(**kwargs):
    """Same geometry, but opaque to the structural probes."""
    mapping = CallableMapping(
        lambda x: 3.0 * x[0] + 4.0 * x[1], 2,
        gradient_fn=lambda x: np.array([3.0, 4.0]), name="hidden")
    return RadiusProblem(mapping, np.array([1.0, 1.0]),
                         ToleranceBounds.upper(12.0), **kwargs)


class TargetedInjector(FaultInjector):
    """Injector that only faults the named solver stages."""

    def __init__(self, targets, spec, *, seed=None):
        super().__init__(spec, seed=seed)
        self.targets = set(targets)

    def wrap_callable(self, fn, name="solver"):
        if name in self.targets:
            return super().wrap_callable(fn, name)
        return fn


class TestCleanPaths:
    def test_analytic_exact(self):
        cascade = SolverCascade(seed=0)
        result = cascade.compute(linear_problem())
        assert result.quality is Quality.EXACT
        assert not result.is_degraded
        assert result.radius == pytest.approx(1.0)
        assert result.method == "analytic"
        assert result.radius == pytest.approx(
            compute_radius(linear_problem()).radius)

    def test_analytic_box_exact(self):
        problem = linear_problem(lower=np.zeros(2),
                                 upper=np.full(2, 10.0))
        result = SolverCascade(seed=0).compute(problem)
        assert result.quality is Quality.EXACT
        assert result.method == "analytic-box"
        assert result.radius == pytest.approx(
            compute_radius(problem).radius)

    def test_ellipsoid_exact(self):
        mapping = QuadraticMapping(np.diag([1.0, 2.0]), np.zeros(2))
        problem = RadiusProblem(mapping, np.array([0.5, 0.5]),
                                ToleranceBounds.upper(4.0))
        result = SolverCascade(seed=0).compute(problem)
        assert result.quality is Quality.EXACT
        assert result.method == "ellipsoid"
        assert result.radius == pytest.approx(
            compute_radius(problem).radius)

    def test_numeric_converged(self):
        result = SolverCascade(seed=0).compute(hidden_linear_problem())
        assert result.quality is Quality.CONVERGED
        assert result.method == "numeric"
        assert result.radius == pytest.approx(1.0, rel=1e-4)

    def test_bisection_upper_bound_in_l1(self):
        # No numeric stage outside the Euclidean norm, so a structurally
        # opaque mapping lands on directional bisection.
        with pytest.warns(DegradedResultWarning):
            result = SolverCascade(seed=0).compute(
                hidden_linear_problem(norm=1))
        assert result.quality is Quality.UPPER_BOUND
        assert result.method == "bisection"
        # l1 radius = gap / ||k||_inf = 5/4; the axis directions find it.
        assert result.radius == pytest.approx(1.25, rel=1e-6)

    def test_degenerate_on_bound(self):
        problem = RadiusProblem(LinearMapping([1.0]), np.array([2.0]),
                                ToleranceBounds(-math.inf, 2.0))
        result = SolverCascade(seed=0).compute(problem)
        assert result.radius == 0.0
        assert result.quality is Quality.EXACT
        assert result.method == "degenerate"

    def test_proven_unreachable_is_exact_infinity(self):
        problem = RadiusProblem(LinearMapping([0.0, 0.0], constant=1.0),
                                np.array([1.0, 1.0]),
                                ToleranceBounds.upper(5.0))
        result = SolverCascade(seed=0).compute(problem)
        assert math.isinf(result.radius)
        assert result.quality is Quality.EXACT

    def test_evidence_unreachable_is_converged_infinity(self):
        mapping = CallableMapping(lambda x: 0.0, 1, name="flat")
        problem = RadiusProblem(mapping, np.array([1.0]),
                                ToleranceBounds.upper(5.0))
        result = SolverCascade(seed=0).compute(problem)
        assert math.isinf(result.radius)
        assert result.quality is Quality.CONVERGED

    def test_infeasible_origin_still_raises(self):
        problem = RadiusProblem(LinearMapping([3.0, 4.0]),
                                np.array([10.0, 10.0]),
                                ToleranceBounds.upper(12.0))
        with pytest.raises(InfeasibleAllocationError):
            SolverCascade(seed=0).compute(problem)

    def test_method_argument_accepted_for_compat(self):
        result = SolverCascade(seed=0).compute(linear_problem(),
                                               method="numeric")
        assert result.radius == pytest.approx(1.0)

    def test_rejects_non_problem(self):
        with pytest.raises(SpecificationError):
            SolverCascade(seed=0).compute("not a problem")

    def test_diagnostics_trail_recorded(self):
        result = SolverCascade(seed=0).compute(hidden_linear_problem())
        assert result.diagnostics
        assert {a.solver for a in result.diagnostics} >= {"numeric"}
        assert all(a.elapsed >= 0 for a in result.diagnostics)


class TestForcedDegradation:
    def test_numeric_faults_degrade_to_bisection(self):
        injector = TargetedInjector(
            {"numeric"}, FaultSpec(exception_rate=1.0), seed=0)
        cascade = SolverCascade(CascadeConfig(retry=FAST_RETRY,
                                              warn_on_degraded=False),
                                seed=0, fault_injector=injector)
        result = cascade.compute(hidden_linear_problem())
        assert result.quality is Quality.UPPER_BOUND
        assert result.method == "bisection"
        assert result.radius >= 1.0 - 1e-9
        assert injector.counts["numeric:exception"] == 3  # 1 + 2 retries
        outcomes = [a.outcome for a in result.diagnostics
                    if a.solver == "numeric"]
        assert outcomes == ["error"] * 3

    def test_all_ladder_faults_degrade_to_sampling(self):
        injector = TargetedInjector(
            {"numeric", "bisection"}, FaultSpec(exception_rate=1.0), seed=0)
        cascade = SolverCascade(CascadeConfig(retry=FAST_RETRY,
                                              warn_on_degraded=False),
                                seed=0, fault_injector=injector)
        result = cascade.compute(hidden_linear_problem())
        assert result.quality is Quality.UPPER_BOUND
        assert result.method == "sampling"
        assert result.radius >= 1.0 - 1e-9
        assert math.isfinite(result.radius)

    def test_total_failure_returns_failed_nan(self):
        injector = TargetedInjector(
            {"numeric", "bisection", "sampling"},
            FaultSpec(exception_rate=1.0), seed=0)
        cascade = SolverCascade(CascadeConfig(retry=FAST_RETRY,
                                              warn_on_degraded=False),
                                seed=0, fault_injector=injector)
        result = cascade.compute(hidden_linear_problem())
        assert result.quality is Quality.FAILED
        assert math.isnan(result.radius)
        assert not result.quality.is_usable

    def test_unevaluable_origin_returns_failed(self):
        injector = FaultInjector(FaultSpec(exception_rate=1.0), seed=0)
        mapping = injector.wrap_mapping(LinearMapping([3.0, 4.0]))
        problem = RadiusProblem(mapping, np.array([1.0, 1.0]),
                                ToleranceBounds.upper(12.0))
        cascade = SolverCascade(CascadeConfig(warn_on_degraded=False),
                                seed=0)
        result = cascade.compute(problem)
        assert result.quality is Quality.FAILED
        assert math.isnan(result.radius)

    def test_timeout_degrades_without_retry(self):
        injector = TargetedInjector(
            {"numeric"}, FaultSpec(latency_rate=1.0, latency=5.0), seed=0)
        cascade = SolverCascade(
            CascadeConfig(solver_timeout=0.2, retry=FAST_RETRY,
                          warn_on_degraded=False),
            seed=0, fault_injector=injector)
        result = cascade.compute(hidden_linear_problem())
        assert result.quality is Quality.UPPER_BOUND
        assert result.method == "bisection"
        numeric = [a for a in result.diagnostics if a.solver == "numeric"]
        assert [a.outcome for a in numeric] == ["timeout"]  # no retry

    def test_degraded_result_warns(self):
        injector = TargetedInjector(
            {"numeric"}, FaultSpec(exception_rate=1.0), seed=0)
        cascade = SolverCascade(CascadeConfig(retry=FAST_RETRY),
                                seed=0, fault_injector=injector)
        with pytest.warns(DegradedResultWarning):
            cascade.compute(hidden_linear_problem())

    def test_warning_suppressible(self):
        injector = TargetedInjector(
            {"numeric"}, FaultSpec(exception_rate=1.0), seed=0)
        cascade = SolverCascade(
            CascadeConfig(retry=FAST_RETRY, warn_on_degraded=False),
            seed=0, fault_injector=injector)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cascade.compute(hidden_linear_problem())


class TestDeterminism:
    def test_identical_seeds_identical_results(self):
        def run():
            injector = FaultInjector(
                FaultSpec(exception_rate=0.3, nan_rate=0.2), seed=11)
            cascade = SolverCascade(
                CascadeConfig(retry=FAST_RETRY, warn_on_degraded=False),
                seed=5, fault_injector=injector)
            mapping = injector.wrap_mapping(LinearMapping([3.0, 4.0]))
            problem = RadiusProblem(mapping, np.array([1.0, 1.0]),
                                    ToleranceBounds.upper(12.0))
            return cascade.compute(problem)

        a, b = run(), run()
        assert repr(a.radius) == repr(b.radius)
        assert a.quality is b.quality
        assert a.method == b.method
        assert len(a.diagnostics) == len(b.diagnostics)


class TestAcceptance:
    """The issue's acceptance criterion: under exception rate 0.3, NaN
    rate 0.2 and a 0.5 s per-solver timeout the cascade never raises and
    reports honest qualities whose values never under-cut the fault-free
    radius."""

    @pytest.mark.parametrize("fault_seed", [1, 2, 3, 4, 5])
    def test_never_raises_and_never_undercuts(self, fault_seed):
        fault_free = SolverCascade(seed=0).compute(linear_problem()).radius
        assert fault_free == pytest.approx(1.0)

        injector = FaultInjector(
            FaultSpec(exception_rate=0.3, nan_rate=0.2), seed=fault_seed)
        cascade = SolverCascade(
            CascadeConfig(solver_timeout=0.5, retry=FAST_RETRY,
                          warn_on_degraded=False),
            seed=fault_seed, fault_injector=injector)
        mapping = injector.wrap_mapping(LinearMapping([3.0, 4.0]))
        problem = RadiusProblem(mapping, np.array([1.0, 1.0]),
                                ToleranceBounds.upper(12.0))

        result = cascade.compute(problem)  # must not raise
        assert result.quality in tuple(Quality)
        if result.quality is Quality.FAILED:
            assert math.isnan(result.radius)
        else:
            # every usable answer is a valid upper bound on the radius
            assert result.radius >= fault_free - 1e-6
        assert result.diagnostics
