"""Tests for the radius -> supervisor-config calibration layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SpecificationError
from repro.resilience.calibrate import (
    PerTaskChaosPolicy,
    calibrate_supervisor,
    run_selfhost_loop,
)
from repro.systems.selfhost.model import DispatchModel


@pytest.fixture
def model():
    return DispatchModel(n_tasks=4, workers=2, max_task_retries=2)


class TestPerTaskChaosPolicy:
    def test_from_rates_maps_round_robin(self, model):
        policy = PerTaskChaosPolicy.from_rates(
            model, [0.2, 0.7], seed=3, max_injections_per_task=2)
        assert policy.task_exception_rates == (0.2, 0.7, 0.2, 0.7)
        assert policy.seed == 3

    def test_from_rates_clips_overshooting_directions(self, model):
        policy = PerTaskChaosPolicy.from_rates(
            model, [1.4, -0.2], seed=0, max_injections_per_task=1)
        assert policy.task_exception_rates == (1.0, 0.0, 1.0, 0.0)

    def test_from_rates_checks_length(self, model):
        with pytest.raises(SpecificationError, match="length 2"):
            PerTaskChaosPolicy.from_rates(model, [0.1],
                                          seed=0, max_injections_per_task=1)

    def test_direct_construction_validates_rates(self):
        with pytest.raises(SpecificationError, match="per-task"):
            PerTaskChaosPolicy(seed=0, max_injections_per_task=1,
                               task_exception_rates=(1.5,))

    def test_rate_one_task_faults_until_cap(self, model):
        policy = PerTaskChaosPolicy.from_rates(
            model, [1.0, 0.0], seed=5, max_injections_per_task=2)
        # task 0 draws at rate 1: attempts 1 and 2 are exceptions, then
        # the per-task cap silences the schedule.
        assert policy.fatal_kind(0, 1) == "exception"
        assert policy.fatal_kind(0, 2) == "exception"
        assert policy.fatal_kind(0, 3) is None
        assert policy.fatal_injections_before(0, 3) == 2
        # task 1 draws at rate 0: never faulted.
        for attempt in (1, 2, 3):
            assert policy.fatal_kind(1, attempt) is None

    def test_draws_are_pure_in_seed_index_attempt(self, model):
        a = PerTaskChaosPolicy.from_rates(model, [0.5, 0.5], seed=11,
                                          max_injections_per_task=3)
        b = PerTaskChaosPolicy.from_rates(model, [0.5, 0.5], seed=11,
                                          max_injections_per_task=3)
        schedule_a = [a.fatal_kind(i, t) for i in range(4)
                      for t in range(1, 5)]
        schedule_b = [b.fatal_kind(i, t) for i in range(4)
                      for t in range(1, 5)]
        assert schedule_a == schedule_b

    def test_index_outside_schedule_rejected(self, model):
        policy = PerTaskChaosPolicy.from_rates(
            model, [0.5, 0.5], seed=0, max_injections_per_task=1)
        with pytest.raises(SpecificationError, match="task index"):
            policy.fatal_kind(4, 1)

    def test_to_dict_round_trips_rates(self, model):
        policy = PerTaskChaosPolicy.from_rates(
            model, [0.25, 0.5], seed=9, max_injections_per_task=2)
        payload = policy.to_dict()
        assert payload["task_exception_rates"] == [0.25, 0.5, 0.25, 0.5]
        clone = PerTaskChaosPolicy(
            seed=payload["seed"],
            max_injections_per_task=payload["max_injections_per_task"],
            task_exception_rates=tuple(payload["task_exception_rates"]))
        assert clone == policy


class TestCalibrateSupervisor:
    def test_finds_smallest_sufficient_retry_budget(self):
        model = DispatchModel(n_tasks=10, workers=1, max_task_retries=0)
        # rate 0.5: residual mass is 10 * 0.5^(R+1); budget 0.5 task
        # needs 10 * 0.5^(R+1) < 0.5, i.e. R >= 4.
        config, diag = calibrate_supervisor(
            model, np.ones(10), [0.5], quarantine_budget=0.5)
        assert diag["required_retries"] == 4
        assert config.max_task_retries == 4
        assert diag["boundary_quarantined_mass"] < 0.5

    def test_never_weakens_the_analysed_policy(self):
        model = DispatchModel(n_tasks=4, workers=1, max_task_retries=6)
        config, diag = calibrate_supervisor(
            model, np.ones(4), [0.1], quarantine_budget=0.5)
        # one retry would suffice at rate 0.1, but the radius was
        # computed for a 6-retry policy; calibration must keep it.
        assert diag["required_retries"] <= 1
        assert config.max_task_retries == 6

    def test_harsher_boundary_needs_more_retries(self):
        model = DispatchModel(n_tasks=10, workers=1, max_task_retries=0)
        _, mild = calibrate_supervisor(model, np.ones(10), [0.3],
                                       quarantine_budget=0.5)
        _, harsh = calibrate_supervisor(model, np.ones(10), [0.6],
                                        quarantine_budget=0.5)
        assert harsh["required_retries"] > mild["required_retries"]

    def test_unrecoverable_boundary_is_an_error(self):
        model = DispatchModel(n_tasks=2, workers=1, max_task_retries=0)
        with pytest.raises(SpecificationError, match="not recoverable"):
            calibrate_supervisor(model, np.ones(2), [1.0],
                                 quarantine_budget=0.5)

    def test_budget_must_be_positive(self):
        model = DispatchModel(n_tasks=2, workers=1)
        with pytest.raises(SpecificationError, match="quarantine_budget"):
            calibrate_supervisor(model, np.ones(2), [0.1],
                                 quarantine_budget=0.0)

    def test_deadline_becomes_task_timeout(self):
        model = DispatchModel(n_tasks=2, workers=1, deadline=3.0)
        config, diag = calibrate_supervisor(model, np.ones(2), [0.2])
        assert config.task_timeout == 3.0
        assert diag["task_timeout"] == 3.0


class TestRunSelfhostLoop:
    def test_empty_ratios_rejected(self):
        with pytest.raises(SpecificationError, match="leg ratio"):
            run_selfhost_loop(ratios=())
