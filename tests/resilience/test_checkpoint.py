"""Tests for atomic checkpoint/resume of long chunked runs.

The acceptance-level tests simulate a mid-run kill (a thunk or a mapping
that raises partway through) and check that resuming from the checkpoint
produces results identical to an uninterrupted seeded run.
"""

import json
import math

import numpy as np
import pytest

from repro.core.features import ToleranceBounds
from repro.core.mappings import CallableMapping, LinearMapping
from repro.core.radius import RadiusProblem, compute_radius
from repro.exceptions import CheckpointError, SpecificationError
from repro.montecarlo import validate_radius
from repro.resilience import Checkpoint, run_checkpointed
from repro.utils.rng import spawn_rngs


class TestCheckpoint:
    def test_missing_file_loads_empty(self, tmp_path):
        ckpt = Checkpoint(tmp_path / "none.json")
        assert not ckpt.exists()
        assert ckpt.load() == {}

    def test_save_load_roundtrip(self, tmp_path):
        ckpt = Checkpoint(tmp_path / "ck.json")
        ckpt.save({"a": 1, "b": [2, 3]}, {"seed": 7})
        assert ckpt.exists()
        assert ckpt.load(expect_meta={"seed": 7}) == {"a": 1, "b": [2, 3]}

    def test_save_creates_parent_dirs(self, tmp_path):
        ckpt = Checkpoint(tmp_path / "deep" / "nested" / "ck.json")
        ckpt.save({"x": 0}, None)
        assert ckpt.load() == {"x": 0}

    def test_meta_mismatch_refuses(self, tmp_path):
        ckpt = Checkpoint(tmp_path / "ck.json")
        ckpt.save({"a": 1}, {"seed": 7})
        with pytest.raises(CheckpointError, match="different run"):
            ckpt.load(expect_meta={"seed": 8})

    def test_corrupt_file_refuses(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("{ not json", encoding="utf-8")
        with pytest.raises(CheckpointError, match="unreadable"):
            Checkpoint(path).load()

    def test_foreign_json_refuses(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({"hello": "world"}), encoding="utf-8")
        with pytest.raises(CheckpointError, match="not a"):
            Checkpoint(path).load()

    def test_delete_is_idempotent(self, tmp_path):
        ckpt = Checkpoint(tmp_path / "ck.json")
        ckpt.save({}, None)
        ckpt.delete()
        assert not ckpt.exists()
        ckpt.delete()  # no error on a missing file

    def test_atomic_save_leaves_no_temp_files(self, tmp_path):
        ckpt = Checkpoint(tmp_path / "ck.json")
        for i in range(3):
            ckpt.save({"i": i}, None)
        assert [p.name for p in tmp_path.iterdir()] == ["ck.json"]


class TestRunCheckpointed:
    def test_runs_all_items_without_path(self):
        out = run_checkpointed([("a", lambda: 1), ("b", lambda: 2)])
        assert out == {"a": 1, "b": 2}

    def test_duplicate_keys_rejected(self):
        with pytest.raises(SpecificationError, match="duplicate"):
            run_checkpointed([("a", lambda: 1), ("a", lambda: 2)])

    def test_bad_every_rejected(self, tmp_path):
        with pytest.raises(SpecificationError, match="every"):
            run_checkpointed([("a", lambda: 1)], path=tmp_path / "c.json",
                             every=0)

    def test_completed_items_skipped_on_resume(self, tmp_path):
        path = tmp_path / "ck.json"
        calls = []

        def make(key, value):
            def thunk():
                calls.append(key)
                return value
            return (key, thunk)

        first = run_checkpointed([make("a", 1), make("b", 2)], path=path)
        assert first == {"a": 1, "b": 2}
        assert calls == ["a", "b"]
        second = run_checkpointed(
            [make("a", 10), make("b", 20), make("c", 3)], path=path)
        # a and b come from the checkpoint, only c runs
        assert second == {"a": 1, "b": 2, "c": 3}
        assert calls == ["a", "b", "c"]

    def test_resume_false_discards_checkpoint(self, tmp_path):
        path = tmp_path / "ck.json"
        run_checkpointed([("a", lambda: 1)], path=path)
        out = run_checkpointed([("a", lambda: 99)], path=path, resume=False)
        assert out == {"a": 99}

    def test_encode_decode_bridge(self, tmp_path):
        path = tmp_path / "ck.json"
        run_checkpointed(
            [("v", lambda: np.array([1.0, 2.0]))], path=path,
            encode=lambda a: a.tolist(), decode=np.asarray)
        out = run_checkpointed(
            [("v", lambda: pytest.fail("must resume, not rerun"))],
            path=path, encode=lambda a: a.tolist(), decode=np.asarray)
        np.testing.assert_allclose(out["v"], [1.0, 2.0])

    def test_kill_and_resume_matches_uninterrupted(self, tmp_path):
        """A run killed mid-way resumes to the exact uninterrupted result."""
        seed = 2005
        keys = [f"item-{i}" for i in range(8)]

        def items(kill_at=None):
            # each item draws from its own spawned stream, so partial
            # execution cannot shift any other item's randomness
            rngs = spawn_rngs(seed, len(keys))

            def make(i):
                def thunk():
                    if kill_at is not None and i >= kill_at:
                        raise KeyboardInterrupt  # simulated kill
                    return float(rngs[i].random())
                return (keys[i], thunk)

            return [make(i) for i in range(len(keys))]

        uninterrupted = run_checkpointed(
            items(), path=tmp_path / "full.json", meta={"seed": seed})

        partial_path = tmp_path / "partial.json"
        with pytest.raises(KeyboardInterrupt):
            run_checkpointed(items(kill_at=5), path=partial_path,
                             meta={"seed": seed})
        stored = Checkpoint(partial_path).load(expect_meta={"seed": seed})
        assert sorted(stored) == keys[:5]

        resumed = run_checkpointed(items(), path=partial_path,
                                   meta={"seed": seed})
        assert resumed == uninterrupted


class TestCheckpointedValidation:
    """Chunked Monte-Carlo validation: kill mid-run, resume, identical."""

    @staticmethod
    def problem_and_result(mapping=None):
        if mapping is None:
            mapping = LinearMapping([3.0, 4.0])
        problem = RadiusProblem(mapping, np.array([1.0, 1.0]),
                                ToleranceBounds.upper(12.0))
        return problem, compute_radius(problem)

    def test_chunked_matches_itself(self, tmp_path):
        problem, result = self.problem_and_result()
        a = validate_radius(problem, result, n_samples=2000, seed=7,
                            chunk_size=500)
        b = validate_radius(problem, result, n_samples=2000, seed=7,
                            chunk_size=500,
                            checkpoint_path=tmp_path / "ck.json")
        assert a == b
        assert a.n_samples == 2000
        assert a.sound

    def test_kill_and_resume_matches_uninterrupted(self, tmp_path):
        problem, result = self.problem_and_result()
        uninterrupted = validate_radius(problem, result, n_samples=2000,
                                        seed=7, chunk_size=400)

        calls = {"n": 0}
        base = problem.mapping

        def flaky_value_many(xs):
            calls["n"] += 1
            if calls["n"] > 3:
                raise KeyboardInterrupt  # killed mid-run after 3 chunks
            return base.value_many(xs)

        flaky = CallableMapping(base.value, 2, name="flaky")
        flaky.value_many = flaky_value_many
        killed_problem = RadiusProblem(flaky, problem.origin,
                                       problem.bounds)
        path = tmp_path / "mc.json"
        with pytest.raises(KeyboardInterrupt):
            validate_radius(killed_problem, result, n_samples=2000, seed=7,
                            chunk_size=400, checkpoint_path=path)
        stored = Checkpoint(path).load()
        assert 0 < len(stored) < 5  # genuinely partial

        resumed = validate_radius(problem, result, n_samples=2000, seed=7,
                                  chunk_size=400, checkpoint_path=path)
        assert resumed == uninterrupted

    def test_mismatched_seed_refuses_resume(self, tmp_path):
        problem, result = self.problem_and_result()
        path = tmp_path / "ck.json"
        validate_radius(problem, result, n_samples=1000, seed=7,
                        chunk_size=500, checkpoint_path=path)
        with pytest.raises(CheckpointError):
            validate_radius(problem, result, n_samples=1000, seed=8,
                            chunk_size=500, checkpoint_path=path)

    def test_infinite_radius_chunked(self, tmp_path):
        mapping = LinearMapping([0.0, 0.0], constant=1.0)
        problem = RadiusProblem(mapping, np.array([1.0, 1.0]),
                                ToleranceBounds.upper(5.0))
        result = compute_radius(problem)
        assert math.isinf(result.radius)
        validation = validate_radius(problem, result, n_samples=1000,
                                     seed=3, chunk_size=250,
                                     checkpoint_path=tmp_path / "inf.json")
        assert validation.sound
        assert validation.n_samples == 1000


class TestCheckpointRegressions:
    """Regression tests for PR-1 checkpoint bugs."""

    def test_tuple_valued_meta_resumes(self, tmp_path):
        # Regression: stored meta goes through a JSON round-trip, so tuple
        # values come back as lists; comparing the raw expectation made
        # resume with tuple-valued meta *always* fail.
        ckpt = Checkpoint(tmp_path / "ck.json")
        meta = {"seed": 7, "shape": (3, 2), "scales": ((1.0, 2.0), (3.0, 4.0))}
        ckpt.save({"a": 1}, meta)
        assert ckpt.load(expect_meta=meta) == {"a": 1}

    def test_tuple_valued_meta_mismatch_still_refuses(self, tmp_path):
        ckpt = Checkpoint(tmp_path / "ck.json")
        ckpt.save({"a": 1}, {"shape": (3, 2)})
        with pytest.raises(CheckpointError, match="different run"):
            ckpt.load(expect_meta={"shape": (3, 3)})

    def test_unserialisable_expect_meta_raises_checkpoint_error(self, tmp_path):
        ckpt = Checkpoint(tmp_path / "ck.json")
        ckpt.save({"a": 1}, {"seed": 7})
        with pytest.raises(CheckpointError, match="JSON"):
            ckpt.load(expect_meta={"seed": object()})

    def test_run_checkpointed_resumes_with_tuple_meta(self, tmp_path):
        path = tmp_path / "ck.json"
        meta = {"chunks": (4, 5), "seed": 3}
        run_checkpointed([("a", lambda: 1)], path=path, meta=meta)
        out = run_checkpointed(
            [("a", lambda: pytest.fail("must resume, not rerun")),
             ("b", lambda: 2)],
            path=path, meta=meta)
        assert out == {"a": 1, "b": 2}

    @pytest.mark.parametrize("umask,expected", [(0o022, 0o644), (0o077, 0o600)])
    def test_checkpoint_file_honors_umask(self, tmp_path, umask, expected):
        # Regression: mkstemp creates the temp file 0600 and os.replace
        # preserved that, so checkpoints ignored the umask and were
        # unreadable by group CI caches.
        import os

        old = os.umask(umask)
        try:
            ckpt = Checkpoint(tmp_path / "ck.json")
            ckpt.save({"a": 1}, None)
            mode = ckpt.path.stat().st_mode & 0o777
        finally:
            os.umask(old)
        assert mode == expected
