"""Tests for the deterministic fault injector."""

import math
import time

import numpy as np
import pytest

from repro.core.boundary import as_linear
from repro.core.mappings import LinearMapping
from repro.exceptions import ConvergenceError, SpecificationError
from repro.resilience import FaultInjector, FaultSpec, InjectedFaultError


class TestFaultSpecValidation:
    def test_defaults_are_transparent(self):
        spec = FaultSpec()
        assert spec.exception_rate == 0.0
        assert spec.nan_rate == 0.0

    @pytest.mark.parametrize("field", ["exception_rate", "nan_rate",
                                       "inf_rate", "latency_rate",
                                       "nonconvergence_rate"])
    def test_rates_must_be_probabilities(self, field):
        with pytest.raises(SpecificationError):
            FaultSpec(**{field: 1.5})
        with pytest.raises(SpecificationError):
            FaultSpec(**{field: -0.1})

    def test_negative_latency_rejected(self):
        with pytest.raises(SpecificationError):
            FaultSpec(latency=-1.0)

    def test_injector_rejects_non_spec(self):
        with pytest.raises(SpecificationError):
            FaultInjector(spec="high")


class TestWrapMapping:
    def test_transparent_injector_passes_through(self):
        mapping = LinearMapping([2.0, 3.0])
        faulty = FaultInjector(seed=0).wrap_mapping(mapping)
        x = np.array([1.0, 1.0])
        assert faulty.value(x) == mapping.value(x)
        np.testing.assert_allclose(faulty.gradient(x), mapping.gradient(x))

    def test_structure_is_hidden(self):
        # A faulty linear mapping must not be routed to the closed-form
        # solver, which would read clean coefficients and bypass faults.
        faulty = FaultInjector(seed=0).wrap_mapping(LinearMapping([1.0]))
        assert as_linear(faulty) is None

    def test_nan_faults_fire(self):
        injector = FaultInjector(FaultSpec(nan_rate=0.5), seed=42)
        faulty = injector.wrap_mapping(LinearMapping([1.0]))
        values = [faulty.value(np.array([1.0])) for _ in range(200)]
        n_nan = sum(math.isnan(v) for v in values)
        assert 0 < n_nan < 200
        assert injector.counts["mapping:nan"] == n_nan

    def test_inf_faults_fire(self):
        injector = FaultInjector(FaultSpec(inf_rate=0.5), seed=42)
        faulty = injector.wrap_mapping(LinearMapping([1.0]))
        values = [faulty.value(np.array([1.0])) for _ in range(200)]
        assert any(math.isinf(v) for v in values)

    def test_exception_faults_fire(self):
        injector = FaultInjector(FaultSpec(exception_rate=1.0), seed=0)
        faulty = injector.wrap_mapping(LinearMapping([1.0]))
        with pytest.raises(InjectedFaultError):
            faulty.value(np.array([1.0]))
        assert injector.counts["mapping:exception"] == 1

    def test_mappings_skip_nonconvergence(self):
        # non-convergence is a solver-only fault kind
        injector = FaultInjector(FaultSpec(nonconvergence_rate=1.0), seed=0)
        faulty = injector.wrap_mapping(LinearMapping([1.0]))
        assert faulty.value(np.array([2.0])) == 2.0

    def test_value_many_corrupts_per_row(self):
        injector = FaultInjector(FaultSpec(nan_rate=0.3), seed=9)
        faulty = injector.wrap_mapping(LinearMapping([1.0, 1.0]))
        xs = np.ones((500, 2))
        values = faulty.value_many(xs)
        n_nan = int(np.isnan(values).sum())
        assert 0 < n_nan < 500  # partial corruption, like a flaky batch
        clean = values[~np.isnan(values)]
        np.testing.assert_allclose(clean, 2.0)

    def test_deterministic_under_seed(self):
        def run():
            injector = FaultInjector(
                FaultSpec(nan_rate=0.3, exception_rate=0.2), seed=7)
            faulty = injector.wrap_mapping(LinearMapping([1.0]))
            out = []
            for _ in range(100):
                try:
                    out.append(faulty.value(np.array([1.0])))
                except InjectedFaultError:
                    out.append("raised")
            return out, dict(injector.counts)

        a, counts_a = run()
        b, counts_b = run()
        assert counts_a == counts_b
        assert [repr(v) for v in a] == [repr(v) for v in b]

    def test_rejects_non_mapping(self):
        with pytest.raises(SpecificationError):
            FaultInjector().wrap_mapping(lambda x: x)


class TestWrapCallable:
    def test_passthrough_preserves_arguments(self):
        wrapped = FaultInjector(seed=0).wrap_callable(
            lambda a, b=1: a + b, name="adder")
        assert wrapped(2, b=3) == 5

    def test_exception_raised_before_call(self):
        calls = []
        injector = FaultInjector(FaultSpec(exception_rate=1.0), seed=0)
        wrapped = injector.wrap_callable(lambda: calls.append(1), name="s")
        with pytest.raises(InjectedFaultError):
            wrapped()
        assert calls == []  # the real callable never ran
        assert injector.counts["s:exception"] == 1

    def test_nonconvergence_raises_convergence_error(self):
        injector = FaultInjector(FaultSpec(nonconvergence_rate=1.0), seed=0)
        wrapped = injector.wrap_callable(lambda: 1, name="s")
        with pytest.raises(ConvergenceError):
            wrapped()

    def test_latency_fault_delays(self):
        injector = FaultInjector(
            FaultSpec(latency_rate=1.0, latency=0.05), seed=0)
        wrapped = injector.wrap_callable(lambda: 1, name="s")
        t0 = time.perf_counter()
        assert wrapped() == 1
        assert time.perf_counter() - t0 >= 0.05
        assert injector.counts["s:latency"] == 1

    def test_total_injected_sums_counts(self):
        injector = FaultInjector(FaultSpec(exception_rate=1.0), seed=0)
        wrapped = injector.wrap_callable(lambda: 1)
        for _ in range(3):
            with pytest.raises(InjectedFaultError):
                wrapped()
        assert injector.total_injected() == 3
