"""Tests for wall-clock timeout enforcement."""

import threading
import time

import pytest

from repro.exceptions import SolverTimeoutError, SpecificationError
from repro.observability import observing
from repro.resilience import abandoned_thread_count, call_with_timeout


class TestCallWithTimeout:
    def test_returns_value(self):
        assert call_with_timeout(lambda: 42, timeout=5.0) == 42

    def test_none_timeout_runs_inline(self):
        assert call_with_timeout(lambda: "x", timeout=None) == "x"

    def test_nonpositive_timeout_disables(self):
        assert call_with_timeout(lambda: 1, timeout=0) == 1
        assert call_with_timeout(lambda: 1, timeout=-3.0) == 1

    def test_nan_timeout_rejected(self):
        with pytest.raises(SpecificationError):
            call_with_timeout(lambda: 1, timeout=float("nan"))

    def test_slow_call_times_out(self):
        t0 = time.perf_counter()
        with pytest.raises(SolverTimeoutError, match="wall-clock budget"):
            call_with_timeout(lambda: time.sleep(5.0), timeout=0.1,
                              name="sleepy")
        # the caller is released promptly, not after the full sleep
        assert time.perf_counter() - t0 < 2.0

    def test_timeout_error_names_the_solver(self):
        with pytest.raises(SolverTimeoutError, match="sleepy"):
            call_with_timeout(lambda: time.sleep(5.0), timeout=0.05,
                              name="sleepy")

    def test_worker_exception_propagates(self):
        def boom():
            raise ValueError("inner failure")

        with pytest.raises(ValueError, match="inner failure"):
            call_with_timeout(boom, timeout=5.0)

    def test_worker_exception_propagates_inline(self):
        def boom():
            raise KeyError("inline")

        with pytest.raises(KeyError):
            call_with_timeout(boom, timeout=None)

    def test_fast_call_under_budget(self):
        assert call_with_timeout(lambda: sum(range(10)), timeout=10.0) == 45


class TestAbandonedThreadAccounting:
    def test_gauge_and_event_on_abandonment(self):
        release = threading.Event()
        before = abandoned_thread_count()
        with observing() as obs:
            with pytest.raises(SolverTimeoutError):
                call_with_timeout(release.wait, timeout=0.05, name="hung")
            # the worker is still blocked on the event: one live leak
            assert abandoned_thread_count() == before + 1
            snap = obs.metrics.snapshot()
            assert snap["timeouts.abandoned_threads"]["value"] == before + 1
            events = [e for e in obs.events.events()
                      if e.kind == "solver.abandoned"]
            assert len(events) == 1
            assert events[0].fields["name"] == "hung"
            assert events[0].fields["timeout"] == pytest.approx(0.05)
        # once released, the leaked thread finishes and the gauge drops
        release.set()
        deadline = time.perf_counter() + 5.0
        while abandoned_thread_count() > before:
            if time.perf_counter() > deadline:
                pytest.fail("abandoned-thread gauge never decremented")
            time.sleep(0.01)

    def test_fast_path_emits_no_abandonment(self):
        before = abandoned_thread_count()
        with observing() as obs:
            assert call_with_timeout(lambda: 7, timeout=5.0) == 7
        assert abandoned_thread_count() == before
        assert not [e for e in obs.events.events()
                    if e.kind == "solver.abandoned"]
