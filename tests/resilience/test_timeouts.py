"""Tests for wall-clock timeout enforcement."""

import time

import pytest

from repro.exceptions import SolverTimeoutError, SpecificationError
from repro.resilience import call_with_timeout


class TestCallWithTimeout:
    def test_returns_value(self):
        assert call_with_timeout(lambda: 42, timeout=5.0) == 42

    def test_none_timeout_runs_inline(self):
        assert call_with_timeout(lambda: "x", timeout=None) == "x"

    def test_nonpositive_timeout_disables(self):
        assert call_with_timeout(lambda: 1, timeout=0) == 1
        assert call_with_timeout(lambda: 1, timeout=-3.0) == 1

    def test_nan_timeout_rejected(self):
        with pytest.raises(SpecificationError):
            call_with_timeout(lambda: 1, timeout=float("nan"))

    def test_slow_call_times_out(self):
        t0 = time.perf_counter()
        with pytest.raises(SolverTimeoutError, match="wall-clock budget"):
            call_with_timeout(lambda: time.sleep(5.0), timeout=0.1,
                              name="sleepy")
        # the caller is released promptly, not after the full sleep
        assert time.perf_counter() - t0 < 2.0

    def test_timeout_error_names_the_solver(self):
        with pytest.raises(SolverTimeoutError, match="sleepy"):
            call_with_timeout(lambda: time.sleep(5.0), timeout=0.05,
                              name="sleepy")

    def test_worker_exception_propagates(self):
        def boom():
            raise ValueError("inner failure")

        with pytest.raises(ValueError, match="inner failure"):
            call_with_timeout(boom, timeout=5.0)

    def test_worker_exception_propagates_inline(self):
        def boom():
            raise KeyError("inline")

        with pytest.raises(KeyError):
            call_with_timeout(boom, timeout=None)

    def test_fast_call_under_budget(self):
        assert call_with_timeout(lambda: sum(range(10)), timeout=10.0) == 45
