"""Acceptance: determinism under chaos.

For a fixed seed, any chaos schedule that leaves every task recoverable
within its retry budget must yield results **bit-identical** to the
fault-free run — for workers in {1, 4}, with tracing on or off.  This is
the contract ``docs/CHAOS.md`` documents and the supervisor's module
docstring promises; here it is exercised rather than assumed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.observability import observing
from repro.parallel.executor import Task
from repro.resilience.chaos import ChaosPolicy, bit_identical
from repro.resilience.retry import RetryPolicy
from repro.resilience.supervisor import SupervisedExecutor, SupervisorConfig

#: Seeded schedules covering every fault kind plus two storm shapes.
SCHEDULES = {
    "mixed": ChaosPolicy(kill_rate=0.3, exception_rate=0.3,
                         latency_rate=0.3, latency=0.001,
                         corrupt_rate=0.25, seed=101,
                         max_injections_per_task=1),
    "exception-storm": ChaosPolicy(exception_rate=0.9, seed=7,
                                   max_injections_per_task=2),
    "kill-heavy": ChaosPolicy(kill_rate=0.6, seed=13,
                              max_injections_per_task=1),
    "latency+corrupt": ChaosPolicy(latency_rate=0.8, latency=0.001,
                                   corrupt_rate=0.5, seed=29,
                                   max_injections_per_task=1),
}

#: Generous retry budget: every scheduled fatal fault plus headroom for
#: collateral pool breaks (a worker kill fails every task in flight).
CONFIG = SupervisorConfig(
    max_task_retries=20,
    retry=RetryPolicy(backoff_base=1e-5, backoff_cap=1e-4))


def _noisy_stat(seed: int, n: int) -> float:
    """A seeded numeric task: same seed, same bits, any process."""
    rng = np.random.default_rng(seed)
    return float(rng.standard_normal(n) @ rng.standard_normal(n))


def _tasks() -> list[Task]:
    return [Task(_noisy_stat, (1000 + i, 64)) for i in range(8)]


BASELINE = [task() for task in _tasks()]


@pytest.mark.parametrize("workers", [1, 4])
@pytest.mark.parametrize("traced", [False, True], ids=["untraced", "traced"])
@pytest.mark.parametrize("name", sorted(SCHEDULES))
class TestChaosInvariance:
    def test_recovered_results_are_bit_identical(self, name, traced,
                                                 workers):
        policy = SCHEDULES[name]
        with SupervisedExecutor(workers, config=CONFIG, chaos=policy,
                                seed=0) as ex:
            if traced:
                with observing():
                    results, report = ex.run_report(_tasks())
            else:
                results, report = ex.run_report(_tasks())
        assert report.ok, report.to_dict()
        assert len(results) == len(BASELINE)
        for got, want in zip(results, BASELINE):
            assert bit_identical(got, want)


@pytest.mark.parametrize("workers", [1, 4])
def test_supervision_alone_changes_nothing(workers):
    """Fault-free supervised execution matches plain in-process results."""
    with SupervisedExecutor(workers, config=CONFIG, seed=0) as ex:
        results, report = ex.run_report(_tasks())
    assert report.ok
    assert report.total_retries == 0
    assert results == BASELINE


def test_tracing_does_not_change_chaos_results():
    """The traced and untraced replays of one schedule agree exactly."""
    policy = SCHEDULES["mixed"]
    with SupervisedExecutor(4, config=CONFIG, chaos=policy, seed=0) as ex:
        untraced, _ = ex.run_report(_tasks())
    with observing():
        with SupervisedExecutor(4, config=CONFIG, chaos=policy,
                                seed=0) as ex:
            traced, _ = ex.run_report(_tasks())
    assert all(bit_identical(a, b) for a, b in zip(untraced, traced))
