"""Tests for the deterministic chaos harness."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.exceptions import SpecificationError
from repro.parallel.bench import CHAOS_BENCH_SCHEMA, validate_bench_payload
from repro.parallel.executor import Task
from repro.resilience.chaos import (
    ChaosError,
    ChaosPolicy,
    ChaosReport,
    ChaosRunner,
    bit_identical,
    run_chaos_benchmark,
)
from repro.resilience.chaos import _Unpicklable
from repro.resilience.retry import RetryPolicy
from repro.resilience.supervisor import SupervisorConfig


def _square(x):
    return x * x


class TestChaosPolicyParse:
    def test_full_spec(self):
        policy = ChaosPolicy.parse(
            "kill=0.2,exception=0.3,latency=0.1:0.05,corrupt=0.1,"
            "seed=7,cap=2")
        assert policy == ChaosPolicy(kill_rate=0.2, exception_rate=0.3,
                                     latency_rate=0.1, latency=0.05,
                                     corrupt_rate=0.1, seed=7,
                                     max_injections_per_task=2)

    def test_aliases_and_defaults(self):
        policy = ChaosPolicy.parse("exc=0.5,max=3,latency=0.2")
        assert policy.exception_rate == 0.5
        assert policy.max_injections_per_task == 3
        assert policy.latency_rate == 0.2
        assert policy.latency == ChaosPolicy().latency  # default seconds

    @pytest.mark.parametrize("spec", [
        "", "   ", "kill", "kill=", "frobnicate=0.5", "kill=high",
        "kill=0.1,,exception",
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(SpecificationError):
            ChaosPolicy.parse(spec)

    def test_non_string_rejected(self):
        with pytest.raises(SpecificationError):
            ChaosPolicy.parse(None)

    def test_parse_errors_are_typed_value_errors(self):
        # Satellite contract: a malformed spec raises a typed ValueError
        # (SpecGrammarError) naming the bad token and the valid grammar.
        from repro.exceptions import SpecGrammarError

        with pytest.raises(ValueError) as excinfo:
            ChaosPolicy.parse("kill=0.1,frobnicate=0.5")
        err = excinfo.value
        assert isinstance(err, SpecGrammarError)
        assert err.token == "frobnicate=0.5"
        assert "frobnicate" in str(err)
        assert "kill" in err.grammar and "latency" in err.grammar

    def test_parse_error_names_bad_value_token(self):
        from repro.exceptions import SpecGrammarError

        with pytest.raises(SpecGrammarError) as excinfo:
            ChaosPolicy.parse("kill=high")
        assert excinfo.value.token == "kill=high"
        assert "kill=high" in str(excinfo.value)

    def test_invalid_value_message_includes_hint(self):
        # Regression: a bad value must say what shape was expected, not
        # just that conversion failed.
        from repro.exceptions import SpecGrammarError

        with pytest.raises(SpecGrammarError) as excinfo:
            ChaosPolicy.parse("latency=often")
        msg = str(excinfo.value)
        assert "RATE or RATE:SECONDS" in msg
        assert excinfo.value.token == "latency=often"
        with pytest.raises(SpecGrammarError) as excinfo:
            ChaosPolicy.parse("kill=high")
        assert "a worker-kill rate in [0, 1]" in str(excinfo.value)

    def test_unknown_key_message_lists_described_keys(self):
        from repro.exceptions import SpecGrammarError

        with pytest.raises(SpecGrammarError) as excinfo:
            ChaosPolicy.parse("kaboom=1")
        msg = str(excinfo.value)
        assert "unknown key 'kaboom'" in msg
        assert "exception (alias exc)" in msg
        assert "cap (alias max)" in msg

    def test_duplicate_keys_rejected(self):
        from repro.exceptions import SpecGrammarError

        with pytest.raises(SpecGrammarError):
            ChaosPolicy.parse("kill=0.1,kill=0.2")
        with pytest.raises(SpecGrammarError):
            ChaosPolicy.parse("exception=0.1,exc=0.2")


class TestChaosPolicyValidation:
    @pytest.mark.parametrize("kwargs", [
        {"kill_rate": -0.1}, {"exception_rate": 1.5},
        {"latency_rate": 2.0}, {"corrupt_rate": -1.0},
        {"latency": -0.5}, {"seed": -1}, {"seed": "seven"},
        {"max_injections_per_task": -1},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(SpecificationError):
            ChaosPolicy(**kwargs)

    def test_wrap_rejects_bad_coordinates(self):
        policy = ChaosPolicy()
        with pytest.raises(SpecificationError):
            policy.wrap(lambda: 1, index=-1, attempt=1)
        with pytest.raises(SpecificationError):
            policy.wrap(lambda: 1, index=0, attempt=0)


class TestDeterministicSchedule:
    def test_decisions_are_pure_functions(self):
        a = ChaosPolicy(kill_rate=0.3, exception_rate=0.3,
                        latency_rate=0.5, corrupt_rate=0.2, seed=42)
        b = ChaosPolicy(kill_rate=0.3, exception_rate=0.3,
                        latency_rate=0.5, corrupt_rate=0.2, seed=42)
        for index in range(6):
            for attempt in range(1, 5):
                assert a.fatal_kind(index, attempt) == \
                    b.fatal_kind(index, attempt)
                assert a.latency_decision(index, attempt) == \
                    b.latency_decision(index, attempt)

    def test_seed_changes_the_schedule(self):
        kinds = set()
        for seed in range(20):
            policy = ChaosPolicy(kill_rate=0.5, exception_rate=0.5,
                                 seed=seed)
            kinds.add(policy.fatal_kind(0, 1))
        assert len(kinds) > 1  # not the same decision for every seed

    def test_cap_limits_fatal_injections(self):
        policy = ChaosPolicy(kill_rate=1.0, seed=0,
                             max_injections_per_task=2)
        assert policy.fatal_kind(5, 1) == "kill"
        assert policy.fatal_kind(5, 2) == "kill"
        assert policy.fatal_kind(5, 3) is None
        assert policy.fatal_injections_before(5, 3) == 2
        assert policy.fatal_injections_before(5, 10) == 2

    def test_zero_cap_means_no_fatal_faults(self):
        policy = ChaosPolicy(kill_rate=1.0, exception_rate=1.0,
                             corrupt_rate=1.0, seed=0,
                             max_injections_per_task=0)
        assert policy.fatal_kind(0, 1) is None

    def test_kill_takes_priority_over_exception(self):
        policy = ChaosPolicy(kill_rate=1.0, exception_rate=1.0, seed=3)
        assert policy.fatal_kind(0, 1) == "kill"

    def test_scheduled_injections_recounts_the_run(self):
        policy = ChaosPolicy(kill_rate=0.4, exception_rate=0.4,
                             latency_rate=0.5, latency=0.001,
                             corrupt_rate=0.3, seed=9,
                             max_injections_per_task=1)
        attempts = [3, 1, 2, 4]
        scheduled = policy.scheduled_injections(attempts)
        expected: dict[str, int] = {}
        for index, n in enumerate(attempts):
            for a in range(1, n + 1):
                kind = policy.fatal_kind(index, a)
                if kind is not None:
                    expected[kind] = expected.get(kind, 0) + 1
                if policy.latency_decision(index, a):
                    expected["latency"] = expected.get("latency", 0) + 1
        assert scheduled == expected


class TestInProcessDowngrades:
    def test_kill_downgrades_to_chaos_error_in_process(self):
        policy = ChaosPolicy(kill_rate=1.0, seed=0)
        call = policy.wrap(Task(_square, (2,)), index=0, attempt=1)
        with pytest.raises(ChaosError, match="downgraded"):
            call()

    def test_exception_fault_raises_before_the_task_runs(self):
        ran = []
        policy = ChaosPolicy(exception_rate=1.0, seed=0)
        call = policy.wrap(lambda: ran.append(1), index=0, attempt=1)
        with pytest.raises(ChaosError, match="injected exception"):
            call()
        assert not ran

    def test_corrupt_downgrades_to_chaos_error_in_process(self):
        policy = ChaosPolicy(corrupt_rate=1.0, seed=0)
        call = policy.wrap(Task(_square, (2,)), index=0, attempt=1)
        with pytest.raises(ChaosError, match="corruption"):
            call()

    def test_capped_attempt_runs_clean(self):
        policy = ChaosPolicy(exception_rate=1.0, seed=0,
                             max_injections_per_task=1)
        assert policy.wrap(Task(_square, (3,)), index=0, attempt=2)() == 9

    def test_unpicklable_wrapper_refuses_pickling(self):
        with pytest.raises(ChaosError, match="corruption"):
            pickle.dumps(_Unpicklable(42))

    def test_chaos_call_is_picklable_when_the_task_is(self):
        policy = ChaosPolicy(exception_rate=1.0, seed=0)
        call = policy.wrap(Task(_square, (4,)), index=0, attempt=1)
        clone = pickle.loads(pickle.dumps(call))
        with pytest.raises(ChaosError):
            clone()


class TestBitIdentical:
    def test_floats_and_arrays(self):
        assert bit_identical(0.1 + 0.2, 0.1 + 0.2)
        assert not bit_identical(0.1 + 0.2, 0.3)
        assert bit_identical(np.arange(4.0), np.arange(4.0))
        assert not bit_identical(np.arange(4.0), np.arange(4.0) + 1e-16)

    def test_unpicklable_falls_back_to_repr(self):
        assert bit_identical(_Unpicklable(1), _Unpicklable(2)) in \
            (True, False)  # must not raise


class TestChaosRunner:
    def test_rejects_non_policy(self):
        with pytest.raises(SpecificationError, match="ChaosPolicy"):
            ChaosRunner(object())

    def test_serial_replay_recovers_bit_identically(self):
        policy = ChaosPolicy(kill_rate=0.3, exception_rate=0.3,
                             latency_rate=0.4, latency=0.0005,
                             corrupt_rate=0.25, seed=17,
                             max_injections_per_task=1)
        runner = ChaosRunner(policy, workers=1, seed=0)
        tasks = [Task(_square, (i,)) for i in range(8)]
        results, report = runner.run(tasks)
        assert results == [i * i for i in range(8)]
        assert report.ok
        report.assert_recovered()
        assert report.batch["tasks"] == 8
        # faults actually fired, otherwise the replay proves nothing
        assert sum(report.scheduled.values()) > 0

    def test_report_round_trips_to_dict(self):
        runner = ChaosRunner(ChaosPolicy(exception_rate=1.0, seed=1,
                                         max_injections_per_task=1),
                             workers=1, seed=0)
        _, report = runner.run([Task(_square, (2,))])
        payload = report.to_dict()
        assert payload["identical"] is True
        assert payload["quarantined"] == 0
        assert payload["scheduled"] == {"exception": 1}

    def test_assert_recovered_raises_on_divergence(self):
        report = ChaosReport(identical=False, quarantined=2,
                             baseline_seconds=0.0, chaos_seconds=0.0,
                             scheduled={"kill": 2}, batch={}, executor={})
        with pytest.raises(ChaosError, match="2 task\\(s\\) quarantined"):
            report.assert_recovered()

    def test_unrecoverable_schedule_is_reported_honestly(self):
        # Retry budget below the injection cap: the task cannot recover.
        policy = ChaosPolicy(exception_rate=1.0, seed=5,
                             max_injections_per_task=10)
        config = SupervisorConfig(
            max_task_retries=2,
            retry=RetryPolicy(backoff_base=1e-5, backoff_cap=1e-4))
        runner = ChaosRunner(policy, workers=1, config=config, seed=0)
        _, report = runner.run([Task(_square, (2,))])
        assert not report.ok
        assert report.quarantined == 1
        with pytest.raises(ChaosError):
            report.assert_recovered()


class TestChaosBenchmark:
    def test_payload_validates_and_recovers(self):
        payload = run_chaos_benchmark(
            workers=2, seed=2005, ids=["E2"],
            policy=ChaosPolicy(kill_rate=0.2, exception_rate=0.3,
                               latency_rate=0.3, latency=0.001,
                               corrupt_rate=0.2, seed=11,
                               max_injections_per_task=1))
        assert payload["schema"] == CHAOS_BENCH_SCHEMA
        assert validate_bench_payload(payload) is payload
        assert payload["identical"] is True
        assert payload["executor"]["quarantined"] == 0

    def test_rejects_bad_workers(self):
        with pytest.raises(SpecificationError, match="workers"):
            run_chaos_benchmark(workers=0, ids=["E2"])
