"""Acceptance: the self-hosting radius->chaos loop closes, byte-stably.

The tentpole contract of the self-host subsystem: for pinned seeds, the
chaos schedule calibrated *inside* the computed robustness radius
recovers cleanly (``BatchReport.ok`` and every measured feature within
its bound) while the schedule scaled *outside* the radius measurably
violates the requirement — and the emitted ``repro-selfhost-v1``
artifact is byte-identical for runtime workers in {1, 4}, with tracing
on or off.  Wall-clock never enters the payload; everything is
recomputed from per-task attempt counts through the same wave
accounting the prediction used.
"""

from __future__ import annotations

import functools
import json

import pytest

from repro.observability import Observability, observing
from repro.parallel.bench import validate_bench_payload
from repro.resilience.calibrate import run_selfhost_loop

#: Pinned seeds with comfortable closed-loop margins (see CLI defaults
#: for the canonical 2005 workload; these two are the CI anchors).
SEEDS = (7, 42)


@functools.lru_cache(maxsize=None)
def _payload_json(seed: int, workers: int, traced: bool) -> str:
    if traced:
        obs = Observability()
        with observing(obs):
            payload = run_selfhost_loop(seed=seed, runtime_workers=workers)
    else:
        payload = run_selfhost_loop(seed=seed, runtime_workers=workers)
    validate_bench_payload(payload)
    return json.dumps(payload, sort_keys=True)


@pytest.mark.slow
@pytest.mark.parametrize("seed", SEEDS)
class TestClosedLoop:
    def test_in_radius_recovers_out_of_radius_violates(self, seed):
        payload = json.loads(_payload_json(seed, 1, False))
        assert payload["closed_loop"]
        assert payload["in_radius_recovered"]
        assert payload["out_of_radius_violates"]
        ratios = {leg["ratio"]: leg for leg in payload["legs"]}
        assert any(r < 1.0 for r in ratios) and any(r > 1.0 for r in ratios)
        for ratio, leg in ratios.items():
            injected = sum(leg["injections"].values())
            if leg["inside_radius"]:
                # the chaos was real, yet the batch fully recovered and
                # every measured feature sits inside its bound
                assert injected > 0
                assert leg["report"]["quarantined"] == 0
                assert leg["predicted_feasible"]
                assert leg["measured_feasible"]
            else:
                assert injected > 0
                assert not leg["predicted_feasible"]
                assert not leg["measured_feasible"]
                violated = [name for name, f in
                            leg["measured_features"].items()
                            if not f["satisfied"]]
                assert violated, "out-of-radius leg violated no feature"

    def test_prediction_and_measurement_share_units(self, seed):
        # Every measured feature must carry the same bound the analytic
        # side solved against — the comparison is meaningful only if
        # both sides went through the identical wave accounting.
        payload = json.loads(_payload_json(seed, 1, False))
        beta = payload["beta"]
        origin = payload["system"]["origin_metrics"]
        for leg in payload["legs"]:
            for name, f in leg["measured_features"].items():
                metric = name.removeprefix("selfhost_")
                assert f["bound"] == pytest.approx(beta * origin[metric])

    def test_artifact_byte_stable_across_workers_and_tracing(self, seed):
        reference = _payload_json(seed, 1, False)
        for workers in (1, 4):
            for traced in (False, True):
                assert _payload_json(seed, workers, traced) == reference, \
                    f"artifact drifted at workers={workers}, " \
                    f"traced={traced}"
