"""Tests for supervised task execution (retries, quarantine, breaker)."""

from __future__ import annotations

import os
import pickle
import signal

import pytest

from repro.core.diagnostics import Quality
from repro.exceptions import SpecificationError
from repro.observability import observing
from repro.parallel.executor import Task
from repro.resilience.retry import RetryPolicy
from repro.resilience.supervisor import (
    BatchReport,
    BreakerConfig,
    CircuitBreaker,
    SupervisedExecutor,
    SupervisorConfig,
    TaskFailure,
    TaskOutcome,
    resolve_task_failures,
)

#: Near-zero backoff so retry waves never slow the suite down.
FAST = SupervisorConfig(retry=RetryPolicy(backoff_base=1e-5,
                                          backoff_cap=1e-4))


def _fast_config(**overrides) -> SupervisorConfig:
    defaults = dict(retry=RetryPolicy(backoff_base=1e-5, backoff_cap=1e-4))
    defaults.update(overrides)
    return SupervisorConfig(**defaults)


def _square(x):
    return x * x


def _boom():
    raise ValueError("task exploded")


def _die_on_worker(parent_pid):
    """SIGKILL any worker process; succeed when run in the parent."""
    if os.getpid() != parent_pid:
        os.kill(os.getpid(), signal.SIGKILL)
    return "serial"


def _kill_once(marker_path):
    """SIGKILL the current process the first time, succeed afterwards."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w", encoding="utf-8") as fh:
            fh.write(str(os.getpid()))
        os.kill(os.getpid(), signal.SIGKILL)
    return "survived"


class _Flaky:
    """Fails the first ``fail_times`` calls, then succeeds (in-process)."""

    def __init__(self, fail_times: int) -> None:
        self.remaining = fail_times

    def __call__(self) -> str:
        if self.remaining > 0:
            self.remaining -= 1
            raise ValueError("flaky")
        return "ok"


class TestConfigs:
    def test_supervisor_config_validation(self):
        with pytest.raises(SpecificationError, match="task_timeout"):
            SupervisorConfig(task_timeout=0.0)
        with pytest.raises(SpecificationError, match="max_task_retries"):
            SupervisorConfig(max_task_retries=-1)

    def test_breaker_config_validation(self):
        with pytest.raises(SpecificationError, match="failure_threshold"):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(SpecificationError, match="cooldown"):
            BreakerConfig(cooldown=0)

    def test_executor_rejects_wrong_config_type(self):
        with pytest.raises(SpecificationError, match="SupervisorConfig"):
            SupervisedExecutor(1, config=object())


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=3,
                                               cooldown=2))
        assert breaker.allow_pool()
        breaker.record_pool_failure()
        breaker.record_pool_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_pool_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow_pool()
        assert breaker.opens == 1

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=2))
        breaker.record_pool_failure()
        breaker.record_pool_success()
        breaker.record_pool_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_cooldown_leads_to_half_open_then_close(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=1,
                                               cooldown=3))
        breaker.record_pool_failure()
        assert breaker.state == CircuitBreaker.OPEN
        breaker.record_serial_execution(2)
        assert breaker.state == CircuitBreaker.OPEN
        breaker.record_serial_execution(1)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow_pool()  # probe wave may dispatch
        breaker.record_pool_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_failure_retrips(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=1,
                                               cooldown=1))
        breaker.record_pool_failure()
        breaker.record_serial_execution(1)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_pool_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 2

    def test_emits_state_change_events(self):
        with observing() as obs:
            breaker = CircuitBreaker(BreakerConfig(failure_threshold=1,
                                                   cooldown=1))
            breaker.record_pool_failure()
            breaker.record_serial_execution(1)
            breaker.record_pool_success()
        kinds = [e.kind for e in obs.events.events()]
        assert kinds == ["breaker.open", "breaker.half_open",
                         "breaker.close"]
        snap = obs.metrics.snapshot()
        assert snap["breaker.opens"]["value"] == 1
        assert snap["breaker.half_opens"]["value"] == 1
        assert snap["breaker.closes"]["value"] == 1

    def test_snapshot_shape(self):
        snap = CircuitBreaker().snapshot()
        assert snap == {"state": "closed", "opens": 0,
                        "consecutive_failures": 0}

    def test_snapshot_tracks_half_open_retrip(self):
        # The snapshot surfaced by `repro serve`/`repro chaos` must show
        # the full half-open -> re-trip history, not just boolean health.
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=1,
                                               cooldown=1))
        breaker.record_pool_failure()
        breaker.record_serial_execution(1)
        assert breaker.snapshot()["state"] == "half_open"
        breaker.record_pool_failure()
        assert breaker.snapshot() == {"state": "open", "opens": 2,
                                      "consecutive_failures": 2}


class TestSupervisedRun:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_clean_batch_matches_plain_execution(self, workers):
        with SupervisedExecutor(workers, config=FAST) as ex:
            results, report = ex.run_report(
                [Task(_square, (i,)) for i in range(6)])
        assert results == [i * i for i in range(6)]
        assert report.ok
        assert report.waves == 1
        assert report.total_retries == 0
        assert report.quality is Quality.EXACT
        assert all(o.status == "ok" and o.attempts == 1
                   for o in report.outcomes)

    def test_empty_batch(self):
        with SupervisedExecutor(1, config=FAST) as ex:
            results, report = ex.run_report([])
        assert results == []
        assert report.outcomes == ()
        assert report.ok

    def test_transient_failure_is_retried_to_success(self):
        with SupervisedExecutor(1, config=_fast_config(max_task_retries=3),
                                seed=0) as ex:
            results, report = ex.run_report(
                [_Flaky(2), Task(_square, (4,))])
        assert results == ["ok", 16]
        assert report.ok
        assert report.outcomes[0].attempts == 3
        assert report.outcomes[0].retries == 2
        assert report.outcomes[1].attempts == 1
        assert ex.retries == 2

    def test_poison_task_is_quarantined_not_raised(self):
        with SupervisedExecutor(1, config=_fast_config(max_task_retries=2),
                                seed=0) as ex:
            results, report = ex.run_report(
                [Task(_square, (2,)), _boom, Task(_square, (3,))])
        assert results[0] == 4
        assert results[2] == 9
        failure = results[1]
        assert isinstance(failure, TaskFailure)
        assert failure.index == 1
        assert failure.attempts == 3
        assert "task exploded" in failure.error
        assert failure.quality is Quality.DEGRADED
        assert not failure.quality.is_usable
        assert "quarantined" in str(failure)
        assert report.n_quarantined == 1
        assert report.quality is Quality.DEGRADED
        assert not report.ok

    def test_quarantine_on_pool_path(self):
        with SupervisedExecutor(2, config=_fast_config(max_task_retries=1),
                                seed=0) as ex:
            results, report = ex.run_report(
                [Task(_square, (i,)) for i in range(3)] + [Task(_boom)])
        assert results[:3] == [0, 1, 4]
        assert isinstance(results[3], TaskFailure)
        assert report.n_ok == 3
        assert report.n_quarantined == 1

    def test_fail_fast_raises_the_genuine_exception(self):
        config = _fast_config(max_task_retries=1, fail_fast=True)
        with SupervisedExecutor(1, config=config, seed=0) as ex:
            with pytest.raises(ValueError, match="task exploded"):
                ex.run([Task(_square, (2,)), _boom])

    def test_retry_and_quarantine_events_and_metrics(self):
        with observing() as obs:
            with SupervisedExecutor(
                    1, config=_fast_config(max_task_retries=1),
                    seed=0) as ex:
                ex.run([_boom, _Flaky(1)])
        kinds = [e.kind for e in obs.events.events()]
        assert kinds.count("task.retry") == 2  # both tasks, wave one
        assert kinds.count("task.quarantined") == 1
        snap = obs.metrics.snapshot()
        assert snap["supervisor.retries"]["value"] == 2
        assert snap["supervisor.quarantined"]["value"] == 1
        assert snap["supervisor.degraded_batches"]["value"] == 1

    def test_task_timeout_quarantines_hung_task(self):
        import time as _time

        config = _fast_config(task_timeout=0.05, max_task_retries=1)
        with SupervisedExecutor(1, config=config, seed=0) as ex:
            results, report = ex.run_report(
                [lambda: _time.sleep(3.0), Task(_square, (3,))])
        assert isinstance(results[0], TaskFailure)
        assert "wall-clock" in results[0].error
        assert results[1] == 9

    def test_worker_kill_breaks_pool_then_recovers(self, tmp_path):
        marker = str(tmp_path / "killed-once")
        config = _fast_config(max_task_retries=4)
        with observing() as obs:
            with SupervisedExecutor(2, config=config, seed=0) as ex:
                results, report = ex.run_report(
                    [Task(_kill_once, (marker,))]
                    + [Task(_square, (i,)) for i in range(3)])
        assert results == ["survived", 0, 1, 4]
        assert report.ok
        assert report.pool_breaks >= 1
        assert report.respawns >= 1
        assert ex.pool_breaks >= 1
        kinds = [e.kind for e in obs.events.events()]
        assert "pool.respawn" in kinds
        snap = obs.metrics.snapshot()
        assert snap["pool.respawns"]["value"] >= 1

    def test_breaker_degrades_dispatch_to_serial(self):
        # Every pool wave is killed by tasks that die on a worker but
        # succeed in-process, so only the open breaker's serial waves
        # can finish the batch.
        parent = os.getpid()
        config = _fast_config(
            max_task_retries=10,
            breaker=BreakerConfig(failure_threshold=2, cooldown=4))
        with observing() as obs:
            with SupervisedExecutor(2, config=config, seed=0) as ex:
                results, report = ex.run_report(
                    [Task(_die_on_worker, (parent,)),
                     Task(_die_on_worker, (parent,))])
        assert results == ["serial", "serial"]
        assert report.ok
        assert ex.breaker.opens >= 1
        assert "breaker.open" in [e.kind for e in obs.events.events()]

    def test_non_picklable_batch_supervised_serially(self):
        with SupervisedExecutor(2, config=FAST, seed=0) as ex:
            results, report = ex.run_report([lambda: 1, lambda: 2])
        assert results == [1, 2]
        assert report.ok
        assert ex.fallbacks == 1
        assert "non-picklable" in ex.last_fallback_reason

    def test_run_returns_results_and_sets_last_report(self):
        with SupervisedExecutor(1, config=FAST) as ex:
            assert ex.last_report is None
            assert ex.run([Task(_square, (3,))]) == [9]
            assert isinstance(ex.last_report, BatchReport)

    def test_pickled_executor_degrades_to_serial_supervision(self):
        config = _fast_config(max_task_retries=5)
        with SupervisedExecutor(4, config=config, seed=1) as ex:
            clone = pickle.loads(pickle.dumps(ex))
        assert isinstance(clone, SupervisedExecutor)
        assert clone.workers == 1
        assert clone.config.max_task_retries == 5
        assert clone.run([_Flaky(1), Task(_square, (2,))]) == ["ok", 4]

    def test_stats_include_supervision_counters(self):
        with SupervisedExecutor(1, config=_fast_config(max_task_retries=1),
                                seed=0) as ex:
            ex.run([_boom])
            stats = ex.stats()
        assert stats["retries"] == 1
        assert stats["quarantined"] == 1
        assert stats["breaker"]["state"] == "closed"
        assert "pool_breaks" in stats and "respawns" in stats


class TestBatchReport:
    def test_to_dict_shape(self):
        report = BatchReport(
            outcomes=(TaskOutcome(0, "ok", 1, None, Quality.EXACT),
                      TaskOutcome(1, "quarantined", 3, "ValueError: x",
                                  Quality.DEGRADED)),
            waves=3, pool_breaks=1, respawns=1, breaker_state="closed")
        payload = report.to_dict()
        assert payload == {
            "tasks": 2, "ok": 1, "quarantined": 1, "recovered": 0,
            "retries": 2, "waves": 3, "pool_breaks": 1, "respawns": 1,
            "breaker_state": "closed", "quality": "DEGRADED",
        }

    def test_quality_tag_round_trips_through_to_dict(self):
        # Satellite contract: the serialized quality tag must rebuild
        # the exact Quality member, for clean and degraded batches.
        exact = BatchReport(
            outcomes=(TaskOutcome(0, "ok", 1, None, Quality.EXACT),),
            waves=1, pool_breaks=0, respawns=0, breaker_state="closed")
        assert exact.quality is Quality.EXACT
        assert Quality[exact.to_dict()["quality"]] is Quality.EXACT
        degraded = BatchReport(
            outcomes=(TaskOutcome(0, "recovered", 2, None,
                                  Quality.DEGRADED),),
            waves=2, pool_breaks=0, respawns=0, breaker_state="closed")
        assert Quality[degraded.to_dict()["quality"]] is degraded.quality
        assert degraded.quality is Quality.DEGRADED


class TestResolveTaskFailures:
    def test_passthrough_without_sentinels(self):
        tasks = [Task(_square, (2,))]
        assert resolve_task_failures([4], tasks) == [4]

    def test_sentinel_is_rerun_in_process(self):
        tasks = [Task(_square, (2,)), Task(_square, (5,))]
        results = [4, TaskFailure(index=1, error="transient", attempts=3)]
        assert resolve_task_failures(results, tasks) == [4, 25]

    def test_genuine_failure_propagates_like_serial(self):
        tasks = [Task(_boom)]
        results = [TaskFailure(index=0, error="ValueError", attempts=3)]
        with pytest.raises(ValueError, match="task exploded"):
            resolve_task_failures(results, tasks)

    def test_resolution_keeps_degraded_tag_in_report(self):
        # Regression: a quarantined task that resolve_task_failures
        # re-runs successfully must stay DEGRADED in the batch report —
        # the value is real, but it did go through quarantine, and the
        # summary must not launder that into EXACT.
        with SupervisedExecutor(1, config=_fast_config(max_task_retries=1),
                                seed=0) as ex:
            results, report = ex.run_report([_boom, Task(_square, (5,))])
            assert isinstance(results[0], TaskFailure)
            assert report.quality is Quality.DEGRADED
            tasks = [Task(_square, (7,)), Task(_square, (5,))]
            resolved = resolve_task_failures(results, tasks, executor=ex)
        assert resolved == [49, 25]
        updated = report if ex.last_report is None else ex.last_report
        assert updated.n_quarantined == 0
        assert updated.n_recovered == 1
        assert updated.outcomes[0].status == "recovered"
        assert updated.outcomes[0].quality is Quality.DEGRADED
        assert updated.quality is Quality.DEGRADED
        assert updated.to_dict()["recovered"] == 1
        assert updated.to_dict()["quality"] == "DEGRADED"

    def test_all_quarantined_batch_does_not_report_ok(self):
        # An all-degraded batch must not silently report ok: every task
        # quarantined -> ok is False, and even after resolution re-runs
        # every sentinel successfully the DEGRADED tag must survive.
        with SupervisedExecutor(1, config=_fast_config(max_task_retries=1),
                                seed=0) as ex:
            results, report = ex.run_report([_boom, _boom, _boom])
            assert all(isinstance(r, TaskFailure) for r in results)
            assert not report.ok
            assert report.n_quarantined == 3
            assert all(o.status == "quarantined" for o in report.outcomes)
            assert report.quality is Quality.DEGRADED
            payload = report.to_dict()
            assert payload["ok"] == 0 and payload["quarantined"] == 3
            assert Quality[payload["quality"]] is Quality.DEGRADED
            tasks = [Task(_square, (i,)) for i in range(3)]
            resolved = resolve_task_failures(results, tasks, executor=ex)
        assert resolved == [0, 1, 4]
        updated = ex.last_report
        assert updated.ok  # values are real now...
        assert updated.n_quarantined == 0
        assert updated.n_recovered == 3
        assert updated.quality is Quality.DEGRADED  # ...but history stays
        assert Quality[updated.to_dict()["quality"]] is Quality.DEGRADED

    def test_resolution_without_executor_keeps_old_signature(self):
        results = [TaskFailure(index=0, error="transient", attempts=2)]
        assert resolve_task_failures(results, [Task(_square, (3,))]) == [9]

    def test_resolution_tolerates_plain_executor(self):
        # Checkpoint waves may hand a plain ParallelExecutor (no
        # last_report attribute); resolution must not blow up on it.
        from repro.parallel.executor import ParallelExecutor

        results = [TaskFailure(index=0, error="transient", attempts=2)]
        with ParallelExecutor(1) as ex:
            assert resolve_task_failures(
                results, [Task(_square, (3,))], executor=ex) == [9]
