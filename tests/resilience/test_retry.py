"""Tests for the jittered-backoff retry policy."""

import numpy as np
import pytest

from repro.exceptions import SpecificationError
from repro.resilience import RetryPolicy


class TestRetryPolicyValidation:
    def test_defaults_valid(self):
        policy = RetryPolicy()
        assert policy.max_retries == 2

    def test_negative_retries_rejected(self):
        with pytest.raises(SpecificationError):
            RetryPolicy(max_retries=-1)

    def test_negative_backoff_rejected(self):
        with pytest.raises(SpecificationError):
            RetryPolicy(backoff_base=-0.1)
        with pytest.raises(SpecificationError):
            RetryPolicy(backoff_cap=-1.0)

    def test_negative_jitter_rejected(self):
        with pytest.raises(SpecificationError):
            RetryPolicy(jitter=-0.5)

    def test_negative_retry_index_rejected(self):
        with pytest.raises(SpecificationError):
            RetryPolicy().delay(-1, np.random.default_rng(0))


class TestDelay:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=10.0, jitter=0.0)
        rng = np.random.default_rng(0)
        assert policy.delay(0, rng) == pytest.approx(0.1)
        assert policy.delay(1, rng) == pytest.approx(0.2)
        assert policy.delay(2, rng) == pytest.approx(0.4)

    def test_cap_limits_delay(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_cap=2.5, jitter=0.0)
        rng = np.random.default_rng(0)
        assert policy.delay(10, rng) == pytest.approx(2.5)

    def test_jitter_bounded(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=10.0, jitter=0.5)
        rng = np.random.default_rng(7)
        for i in range(5):
            d = policy.delay(i, rng)
            base = min(10.0, 0.1 * 2.0 ** i)
            assert base <= d <= base * 1.5

    def test_jitter_deterministic_under_seed(self):
        policy = RetryPolicy(jitter=0.9)
        a = [policy.delay(i, np.random.default_rng(3)) for i in range(4)]
        b = [policy.delay(i, np.random.default_rng(3)) for i in range(4)]
        assert a == b

    def test_jittered_delay_never_exceeds_cap(self):
        # Regression: the cap used to be applied to the exponential base
        # *before* jitter, so the real sleep could exceed it by up to
        # ``jitter``x once the base saturated the cap.
        policy = RetryPolicy(backoff_base=1.0, backoff_cap=1.5, jitter=1.0)
        rng = np.random.default_rng(11)
        for i in range(8):
            for _ in range(20):
                assert policy.delay(i, rng) <= policy.backoff_cap

    def test_stall_bound_holds_with_jitter(self):
        # The module promises a persistent failure stalls at most
        # ``max_retries * backoff_cap`` seconds per solver.
        policy = RetryPolicy(max_retries=3, backoff_base=2.0,
                             backoff_cap=0.5, jitter=0.9)
        rng = np.random.default_rng(4)
        total = sum(policy.delay(i, rng) for i in range(policy.max_retries))
        assert total <= policy.max_retries * policy.backoff_cap
