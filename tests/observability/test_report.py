"""Tests for the repro stats renderer."""

from repro.observability import Observability, get_metrics, observing, span
from repro.observability.report import (
    render_events,
    render_metrics,
    render_report,
    render_span_tree,
)


def _span(id, name, parent=None, elapsed=0.0, start=0.0):
    return {"type": "span", "id": id, "parent": parent, "name": name,
            "start": start, "elapsed": elapsed, "tags": {}}


class TestSpanTree:
    def test_aggregates_same_name_same_position(self):
        spans = [
            _span(0, "sweep", elapsed=1.0),
            _span(1, "solve", parent=0, elapsed=0.3),
            _span(2, "solve", parent=0, elapsed=0.2),
        ]
        out = render_span_tree(spans)
        assert out.count("solve") == 1  # one aggregated row, not two
        lines = [l for l in out.splitlines() if "solve" in l]
        assert "2" in lines[0].split()  # count column

    def test_self_time_is_total_minus_children(self):
        spans = [
            _span(0, "outer", elapsed=1.0),
            _span(1, "inner", parent=0, elapsed=0.4),
        ]
        out = render_span_tree(spans)
        outer_line = next(l for l in out.splitlines() if "outer" in l)
        assert "0.600s" in outer_line  # 1.0s total - 0.4s child

    def test_same_name_different_parent_stays_separate(self):
        spans = [
            _span(0, "a", elapsed=1.0),
            _span(1, "b", elapsed=1.0),
            _span(2, "solve", parent=0, elapsed=0.1),
            _span(3, "solve", parent=1, elapsed=0.1),
        ]
        assert render_span_tree(spans).count("solve") == 2

    def test_empty_spans(self):
        assert "no spans" in render_span_tree([])


class TestMetricsAndEvents:
    def test_metric_table_lists_kinds_and_values(self):
        out = render_metrics({
            "cache.hits": {"kind": "counter", "value": 12.0},
            "pool.size": {"kind": "gauge", "value": 4.0},
            "lat": {"kind": "histogram", "buckets": [1.0],
                    "counts": [2, 0], "count": 2, "total": 0.5},
        })
        assert "cache.hits" in out and "12" in out
        assert "gauge" in out
        assert "n=2" in out

    def test_empty_metrics(self):
        assert "none recorded" in render_metrics({})

    def test_event_tail_shows_only_last_n(self):
        events = [{"type": "event", "seq": i, "t": 0.0, "kind": "retry",
                   "fields": {"attempt": i}} for i in range(20)]
        out = render_events(events, tail=3)
        assert "last 3 of 20" in out
        assert "attempt=19" in out
        assert "attempt=0" not in out

    def test_empty_events(self):
        assert "none recorded" in render_events([])


class TestFullReport:
    def test_report_of_captured_session(self, tmp_path):
        obs = Observability()
        with observing(obs):
            with span("cli.demo"):
                with span("radius.solve"):
                    get_metrics().inc("cache.misses")
        path = obs.write(tmp_path / "run.jsonl", command="demo")
        out = render_report(path, events_tail=5)
        assert "repro-events-v1" in out
        assert "cli.demo" in out
        assert "  radius.solve" in out  # indented under its parent
        assert "cache.misses" in out
