"""Tests for the event log and the repro-events-v1 JSON-lines sink."""

import json

import pytest

from repro.exceptions import SpecificationError
from repro.observability.events import (
    EVENTS_SCHEMA,
    Event,
    EventLog,
    read_trace_file,
    validate_trace_file,
    write_trace_records,
)


class TestEventLog:
    def test_emit_sequences_and_snapshots(self):
        log = EventLog()
        log.emit("cache.hit", key="abc")
        log.emit("cache.miss", key="def")
        events = log.events()
        assert [e.seq for e in events] == [0, 1]
        assert [e.kind for e in events] == ["cache.hit", "cache.miss"]
        assert events[0].fields == {"key": "abc"}
        assert len(log) == 2

    def test_tail(self):
        log = EventLog()
        for i in range(5):
            log.emit("retry", attempt=i)
        assert [e.seq for e in log.tail(2)] == [3, 4]
        assert log.tail(0) == []

    def test_round_trip(self):
        event = Event(seq=2, t=0.5, kind="pool.fallback", fields={"n": 3})
        assert Event.from_record(event.to_record()) == event

    def test_absorb_resequences(self):
        worker = EventLog()
        worker.emit("cache.hit")
        worker.emit("cache.miss")
        parent = EventLog()
        parent.emit("checkpoint.save")
        parent.absorb(worker.to_records())
        assert [(e.seq, e.kind) for e in parent.events()] == [
            (0, "checkpoint.save"), (1, "cache.hit"), (2, "cache.miss")]


class TestTraceFileSink:
    def _write(self, path, **kwargs):
        defaults = dict(
            header_extra={"command": "test"},
            span_records=[{"type": "span", "id": 0, "parent": None,
                           "name": "root", "start": 0.0, "elapsed": 0.1,
                           "tags": {}}],
            metric_snapshot={"cache.hits": {"kind": "counter", "value": 2.0}},
            event_records=[{"type": "event", "seq": 0, "t": 0.05,
                            "kind": "cache.hit", "fields": {}}],
        )
        defaults.update(kwargs)
        return write_trace_records(path, **defaults)

    def test_write_read_round_trip(self, tmp_path):
        path = self._write(tmp_path / "t.jsonl")
        trace = read_trace_file(path)
        assert trace.header["schema"] == EVENTS_SCHEMA
        assert trace.header["command"] == "test"
        assert [s["name"] for s in trace.spans] == ["root"]
        assert trace.metrics["cache.hits"]["value"] == 2.0
        assert [e["kind"] for e in trace.events] == ["cache.hit"]

    def test_validate_alias(self, tmp_path):
        path = self._write(tmp_path / "t.jsonl")
        assert validate_trace_file(path).header["schema"] == EVENTS_SCHEMA

    def test_every_line_is_json(self, tmp_path):
        path = self._write(tmp_path / "t.jsonl")
        for line in path.read_text().splitlines():
            assert isinstance(json.loads(line), dict)

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"schema": "other-v9"}) + "\n")
        with pytest.raises(SpecificationError, match="schema"):
            read_trace_file(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(SpecificationError, match="empty"):
            read_trace_file(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SpecificationError, match="unreadable"):
            read_trace_file(tmp_path / "nope.jsonl")

    def test_problems_are_collected_not_first_only(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        lines = [
            json.dumps({"schema": EVENTS_SCHEMA}),
            json.dumps({"type": "span"}),          # missing id/name/tags
            json.dumps({"type": "mystery"}),       # unknown type
            "not json at all",
        ]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(SpecificationError) as err:
            read_trace_file(path)
        message = str(err.value)
        assert "span missing" in message
        assert "mystery" in message
        assert "not valid JSON" in message

    def test_malformed_metric_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        lines = [
            json.dumps({"schema": EVENTS_SCHEMA}),
            json.dumps({"type": "metric", "name": "x", "kind": "exotic"}),
        ]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(SpecificationError, match="known 'kind'"):
            read_trace_file(path)
