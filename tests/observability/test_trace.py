"""Tests for spans and the per-process trace recorder."""

import threading

from repro.observability.trace import Span, TraceRecorder


class TestSpanRecords:
    def test_round_trip(self):
        span = Span(name="radius.solve", span_id=3, parent_id=1,
                    start=0.25, elapsed=0.5, tags={"solver": "analytic"})
        assert Span.from_record(span.to_record()) == span

    def test_open_span_round_trips_none_elapsed(self):
        span = Span(name="x", span_id=0, parent_id=None, start=0.0)
        record = span.to_record()
        assert record["elapsed"] is None
        assert Span.from_record(record).elapsed is None


class TestNesting:
    def test_children_nest_under_open_parent(self):
        rec = TraceRecorder()
        outer = rec.start_span("outer")
        inner = rec.start_span("inner")
        assert inner.parent_id == outer.span_id
        rec.end_span(inner)
        sibling = rec.start_span("sibling")
        assert sibling.parent_id == outer.span_id
        rec.end_span(sibling)
        rec.end_span(outer)
        assert outer.parent_id is None
        assert all(s.elapsed is not None for s in rec.spans())

    def test_ids_assigned_in_start_order(self):
        rec = TraceRecorder()
        ids = [rec.start_span(f"s{i}").span_id for i in range(4)]
        assert ids == [0, 1, 2, 3]

    def test_closing_outer_pops_abandoned_inner(self):
        rec = TraceRecorder()
        outer = rec.start_span("outer")
        rec.start_span("abandoned")  # never closed explicitly
        rec.end_span(outer)
        assert rec.current_span() is None
        fresh = rec.start_span("fresh")
        assert fresh.parent_id is None

    def test_helper_thread_nests_under_blocked_caller(self):
        # The resilience layer runs solver bodies on helper threads while
        # the caller blocks; the shared (non-thread-local) stack makes the
        # blocked caller's span the logical parent.
        rec = TraceRecorder()
        outer = rec.start_span("caller")
        child_parent = []

        def body():
            inner = rec.start_span("helper")
            child_parent.append(inner.parent_id)
            rec.end_span(inner)

        t = threading.Thread(target=body)
        t.start()
        t.join()
        rec.end_span(outer)
        assert child_parent == [outer.span_id]


class TestAbsorb:
    def _worker_records(self):
        worker = TraceRecorder()
        root = worker.start_span("task", {"n": 1})
        leaf = worker.start_span("leaf")
        worker.end_span(leaf)
        worker.end_span(root)
        return worker.to_records()

    def test_reparents_roots_under_open_span(self):
        parent = TraceRecorder()
        dispatch = parent.start_span("dispatch")
        parent.absorb(self._worker_records())
        parent.end_span(dispatch)
        spans = {s.name: s for s in parent.spans()}
        assert spans["task"].parent_id == dispatch.span_id
        assert spans["leaf"].parent_id == spans["task"].span_id

    def test_remaps_ids_without_collisions(self):
        parent = TraceRecorder()
        parent.start_span("a")
        parent.absorb(self._worker_records())
        ids = [s.span_id for s in parent.spans()]
        assert len(ids) == len(set(ids))

    def test_extra_tags_do_not_override_existing(self):
        parent = TraceRecorder()
        parent.absorb(self._worker_records(),
                      extra_tags={"worker_pid": 42, "n": 9})
        spans = {s.name: s for s in parent.spans()}
        assert spans["task"].tags["worker_pid"] == 42
        assert spans["task"].tags["n"] == 1  # original wins
        assert spans["leaf"].tags["worker_pid"] == 42

    def test_absorb_at_top_level_keeps_foreign_roots_rootless(self):
        parent = TraceRecorder()
        parent.absorb(self._worker_records())
        spans = {s.name: s for s in parent.spans()}
        assert spans["task"].parent_id is None

    def test_submission_order_is_preserved(self):
        parent = TraceRecorder()
        parent.absorb(self._worker_records())
        parent.absorb(self._worker_records())
        names = [s.name for s in parent.spans()]
        assert names == ["task", "leaf", "task", "leaf"]
