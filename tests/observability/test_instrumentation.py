"""The instrumented layers actually record: spans, metrics, events.

Each test runs a real slice of the stack under an observability session
and asserts on what the session collected — the contract the
``repro stats`` report and the CI trace smoke-test depend on.
"""

import numpy as np
import pytest

from repro.core.features import ToleranceBounds
from repro.core.mappings import LinearMapping
from repro.core.radius import RadiusProblem, compute_radius
from repro.observability import observing
from repro.parallel.cache import RadiusCache
from repro.parallel.executor import ParallelExecutor, Task
from repro.resilience.cascade import SolverCascade
from repro.resilience.checkpoint import Checkpoint
from repro.resilience.faults import FaultInjector, FaultSpec, InjectedFaultError


def _problem() -> RadiusProblem:
    return RadiusProblem(LinearMapping([1.0, 2.0]), np.array([2.0, 1.0]),
                         ToleranceBounds(beta_min=1.0, beta_max=9.0))


class TestRadiusInstrumentation:
    def test_solve_records_spans_and_metrics(self):
        with observing() as obs:
            compute_radius(_problem(), cache=False)
        names = [s.name for s in obs.recorder.spans()]
        assert "radius.solve" in names
        assert "radius.bound" in names
        snap = obs.metrics.snapshot()
        assert snap["radius.solves"]["value"] == 1
        assert snap["radius.method.analytic"]["value"] == 1

    def test_bound_spans_nest_under_solve(self):
        with observing() as obs:
            compute_radius(_problem(), cache=False)
        spans = {s.name: s for s in obs.recorder.spans()}
        assert spans["radius.bound"].parent_id == \
            spans["radius.solve"].span_id

    def test_cache_miss_then_hit_events(self):
        cache = RadiusCache()
        with observing() as obs:
            compute_radius(_problem(), cache=cache)
            compute_radius(_problem(), cache=cache)
        kinds = [e.kind for e in obs.events.events()]
        assert kinds.count("cache.miss") == 1
        assert kinds.count("cache.hit") == 1
        snap = obs.metrics.snapshot()
        assert snap["cache.misses"]["value"] == 1
        assert snap["cache.hits"]["value"] == 1
        # the cached replay does not re-solve
        assert snap["radius.solves"]["value"] == 1


class TestCascadeInstrumentation:
    def test_tier_spans_and_quality_counter(self):
        with observing() as obs:
            result = SolverCascade(seed=0).compute(_problem())
        spans = {s.name for s in obs.recorder.spans()}
        assert "cascade.compute" in spans
        assert "cascade.tier" in spans
        snap = obs.metrics.snapshot()
        assert snap[f"cascade.quality.{result.quality.name}"]["value"] == 1
        tier_events = [e for e in obs.events.events()
                       if e.kind == "cascade.tier"]
        assert tier_events and all(
            "outcome" in e.fields for e in tier_events)


class TestFaultInstrumentation:
    def test_injection_emits_event_and_metric(self):
        injector = FaultInjector(FaultSpec(exception_rate=1.0), seed=1)
        faulty = injector.wrap_callable(lambda: 1.0, name="numeric")
        with observing() as obs:
            with pytest.raises(InjectedFaultError):
                faulty()
        events = obs.events.events()
        assert [e.kind for e in events] == ["fault.injected"]
        assert events[0].fields == {"site": "numeric", "kind": "exception"}
        assert obs.metrics.snapshot()["faults.exception"]["value"] == 1


class TestCheckpointInstrumentation:
    def test_save_and_resume_events(self, tmp_path):
        ckpt = Checkpoint(tmp_path / "run.json")
        with observing() as obs:
            ckpt.save({"k0": 1}, {"kind": "t"})
            ckpt.load(expect_meta={"kind": "t"})
        kinds = [e.kind for e in obs.events.events()]
        assert kinds == ["checkpoint.save", "checkpoint.resume"]
        snap = obs.metrics.snapshot()
        assert snap["checkpoint.saves"]["value"] == 1
        assert snap["checkpoint.resumes"]["value"] == 1


class TestExecutorInstrumentation:
    def test_parallel_dispatch_merges_worker_spans(self):
        with observing() as obs:
            with ParallelExecutor(2) as pool:
                results = pool.run([Task(_noop_work, (i,))
                                    for i in range(3)])
        assert results == [0, 10, 20]
        names = [s.name for s in obs.recorder.spans()]
        assert "parallel.dispatch" in names
        assert names.count("parallel.task") == 3
        spans = {s.name: s for s in obs.recorder.spans()}
        assert spans["parallel.task"].tags.get("worker_pid") is not None
        assert obs.metrics.snapshot()["executor.dispatched"]["value"] == 3

    def test_unpicklable_task_records_fallback(self):
        with observing() as obs:
            with ParallelExecutor(2) as pool:
                # closures cannot pickle (two tasks, so the batch does
                # reach the pickling pre-flight)
                results = pool.run([lambda: 5, lambda: 6])
        assert results == [5, 6]
        events = [e for e in obs.events.events()
                  if e.kind == "pool.fallback"]
        assert len(events) == 1
        assert obs.metrics.snapshot()["executor.fallbacks"]["value"] == 1
        assert "parallel.fallback" in \
            [s.name for s in obs.recorder.spans()]


def _noop_work(i: int) -> int:
    return i * 10


class TestValidationInstrumentation:
    def test_validate_radius_records_chunk_spans(self):
        from repro.montecarlo.validate import validate_radius
        problem = _problem()
        result = compute_radius(problem, cache=False)
        with observing() as obs:
            validate_radius(problem, result, n_samples=300, chunk_size=100,
                            seed=3)
        chunk_spans = [s for s in obs.recorder.spans()
                       if s.name == "validate.chunk"]
        assert len(chunk_spans) == 3
        assert all(s.tags["samples"] == 100 for s in chunk_spans)
