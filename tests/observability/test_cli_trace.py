"""End-to-end CLI tests: --trace capture, repro stats, and -v levels."""

import logging

import pytest

from repro.cli import build_parser, log_level, main
from repro.observability import validate_trace_file


class TestVerbosityLevels:
    """Regression: a single -v used to map to WARNING (a no-op)."""

    def test_zero_leaves_logging_unconfigured(self):
        assert log_level(0) is None

    def test_single_v_means_info(self):
        assert log_level(1) == logging.INFO

    def test_double_v_means_debug(self):
        assert log_level(2) == logging.DEBUG

    def test_more_than_two_stays_debug(self):
        assert log_level(5) == logging.DEBUG

    @pytest.mark.parametrize("flags,count", [
        ([], 0), (["-v"], 1), (["-vv"], 2), (["-v", "-v"], 2)])
    def test_parser_counts_flags(self, flags, count):
        args = build_parser().parse_args([*flags, "demo"])
        assert args.verbose == count


class TestTraceFlag:
    def test_experiments_trace_writes_valid_file(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        assert main(["--trace", str(out), "experiments",
                     "--only", "E11"]) == 0
        trace = validate_trace_file(out)
        assert trace.header["command"] == "experiments"
        names = {s["name"] for s in trace.spans}
        assert {"cli.experiments", "experiment", "radius.solve",
                "radius.bound"} <= names
        assert "radius.solves" in trace.metrics

    def test_cascade_tiers_appear_under_solver_timeout(self, tmp_path,
                                                       capsys):
        out = tmp_path / "demo.jsonl"
        assert main(["--solver-timeout", "10", "--trace", str(out),
                     "demo"]) == 0
        names = {s["name"] for s in validate_trace_file(out).spans}
        assert "cascade.compute" in names
        assert "cascade.tier" in names

    def test_parallel_trace_merges_worker_spans(self, tmp_path, capsys):
        out = tmp_path / "par.jsonl"
        assert main(["--workers", "2", "--trace", str(out), "experiments",
                     "--only", "E11,E16"]) == 0
        names = {s["name"] for s in validate_trace_file(out).spans}
        assert {"parallel.dispatch", "parallel.task", "experiment"} <= names

    def test_no_trace_flag_writes_nothing(self, tmp_path, capsys):
        assert main(["experiments", "--only", "E16"]) == 0
        assert list(tmp_path.iterdir()) == []


class TestStatsCommand:
    def test_stats_renders_captured_trace(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        main(["--trace", str(out), "experiments", "--only", "E11"])
        capsys.readouterr()
        assert main(["stats", str(out)]) == 0
        report = capsys.readouterr().out
        assert "span tree" in report
        assert "cli.experiments" in report
        assert "radius.solve" in report
        assert "metrics" in report
        assert "cache.misses" in report

    def test_stats_events_tail_option(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        main(["--trace", str(out), "experiments", "--only", "E11"])
        capsys.readouterr()
        assert main(["stats", str(out), "--events", "2"]) == 0
        assert "last 2 of" in capsys.readouterr().out

    def test_stats_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{\"schema\": \"nope\"}\n")
        from repro.exceptions import SpecificationError
        with pytest.raises(SpecificationError):
            main(["stats", str(bad)])
