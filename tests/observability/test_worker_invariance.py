"""Tracing must never change a computed number.

The acceptance bar for the observability subsystem: results are
bit-identical with tracing enabled for any worker count, and identical to
an untraced run — wall-clock numbers in a trace are observational
metadata, never inputs.
"""

import json

import numpy as np

from repro.core.features import ToleranceBounds
from repro.core.mappings import LinearMapping
from repro.core.radius import RadiusProblem, compute_radius
from repro.observability import Observability, observing
from repro.parallel.executor import ParallelExecutor

EXPERIMENT_IDS = ["E2", "E11", "E16"]  # seeded, deterministic, fast mix


def _experiments_payload(results) -> str:
    from repro.io.serialize import to_dict
    return json.dumps({k: to_dict(v) for k, v in results.items()},
                      sort_keys=True)


def _run_sweep(*, traced: bool, workers: int = 1):
    from repro.analysis.runner import run_all_experiments
    if not traced:
        return run_all_experiments(seed=2005, ids=EXPERIMENT_IDS,
                                   workers=workers), None
    obs = Observability()
    with observing(obs):
        results = run_all_experiments(seed=2005, ids=EXPERIMENT_IDS,
                                      workers=workers)
    return results, obs


class TestSweepInvariance:
    def test_traced_equals_untraced(self):
        untraced, _ = _run_sweep(traced=False)
        traced, obs = _run_sweep(traced=True)
        assert _experiments_payload(untraced) == _experiments_payload(traced)
        assert len(obs.recorder) > 0  # the trace did record

    def test_traced_workers_1_vs_4_bit_identical(self):
        serial, _ = _run_sweep(traced=True, workers=1)
        parallel, obs = _run_sweep(traced=True, workers=4)
        assert _experiments_payload(serial) == _experiments_payload(parallel)
        # the parallel trace carries the merged worker sub-trees
        names = [s.name for s in obs.recorder.spans()]
        assert "parallel.dispatch" in names
        assert "parallel.task" in names
        assert "experiment" in names

    def test_worker_metrics_ride_home(self):
        from repro.parallel.cache import (
            get_default_cache,
            install_default_cache,
            uninstall_default_cache,
        )
        from repro.parallel.executor import reset_shared_executor
        # A process-wide default cache (e.g. installed by a CLI test in
        # this pytest process) is inherited by forked workers and would
        # turn every solve into a cache hit; clear it so the solves
        # demonstrably happen inside the workers.  The shared pool must
        # also be reset: its workers forked earlier in this pytest
        # process and carry whatever cache was installed at fork time.
        previous = get_default_cache()
        uninstall_default_cache()
        reset_shared_executor()
        try:
            _, obs = _run_sweep(traced=True, workers=4)
        finally:
            if previous is not None:
                install_default_cache(previous)
        snap = obs.metrics.snapshot()
        # the solves happen inside worker processes; the parent only sees
        # them because the payloads were absorbed
        assert snap["radius.solves"]["value"] > 0
        assert snap["executor.dispatched"]["value"] == len(EXPERIMENT_IDS)


class TestRadiusFanOutInvariance:
    def test_traced_per_bound_fan_out_matches_untraced_serial(self):
        problem = RadiusProblem(
            LinearMapping([1.0, 2.0]), np.array([2.0, 1.0]),
            ToleranceBounds(beta_min=1.0, beta_max=9.0))
        baseline = compute_radius(problem, cache=False)
        with observing():
            with ParallelExecutor(2) as pool:
                traced = compute_radius(problem, cache=False, executor=pool)
        assert traced.radius == baseline.radius
        assert traced.bound_hit == baseline.bound_hit
        assert traced.per_bound == baseline.per_bound
        np.testing.assert_array_equal(traced.boundary_point,
                                      baseline.boundary_point)
