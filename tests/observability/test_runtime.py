"""Tests for the active-session helpers: span / emit_event / get_metrics."""

import os

from repro.observability import (
    NULL_METRICS,
    Observability,
    disable_observability,
    emit_event,
    get_metrics,
    get_observability,
    observed_call,
    observing,
    span,
    validate_trace_file,
)


class TestDisabledDefaults:
    def test_no_session_by_default(self):
        assert get_observability() is None

    def test_get_metrics_hands_out_null_registry(self):
        assert get_metrics() is NULL_METRICS

    def test_span_yields_none_and_records_nothing(self):
        with span("radius.solve", solver="analytic") as open_span:
            assert open_span is None

    def test_emit_event_is_a_no_op(self):
        emit_event("cache.hit", key="x")  # must not raise


class TestObserving:
    def test_activates_and_restores(self):
        obs = Observability()
        with observing(obs) as active:
            assert active is obs
            assert get_observability() is obs
            assert get_metrics() is obs.metrics
        assert get_observability() is None

    def test_nested_scopes_restore_the_outer_session(self):
        outer, inner = Observability(), Observability()
        with observing(outer):
            with observing(inner):
                assert get_observability() is inner
            assert get_observability() is outer

    def test_fresh_session_created_when_none_given(self):
        with observing() as obs:
            assert isinstance(obs, Observability)
        assert get_observability() is None

    def test_disable_observability_clears(self):
        with observing():
            disable_observability()
            assert get_observability() is None


class TestSpanHelper:
    def test_records_into_active_session(self):
        with observing() as obs:
            with span("outer", feature="latency") as outer:
                assert outer.tags == {"feature": "latency"}
                with span("inner"):
                    pass
        spans = obs.recorder.spans()
        assert [s.name for s in spans] == ["outer", "inner"]
        assert spans[1].parent_id == spans[0].span_id
        assert all(s.elapsed is not None for s in spans)

    def test_outcome_tags_added_before_close_persist(self):
        with observing() as obs:
            with span("cascade.tier") as sp:
                sp.tags["outcome"] = "accepted"
        assert obs.recorder.spans()[0].tags["outcome"] == "accepted"

    def test_decorator_rechecks_activation_per_call(self):
        @span("decorated")
        def work():
            return 7

        assert work() == 7  # disabled: no session, still runs
        with observing() as obs:
            assert work() == 7
            assert work() == 7
        assert [s.name for s in obs.recorder.spans()] == ["decorated"] * 2
        assert work() == 7  # disabled again, nothing new recorded
        assert len(obs.recorder.spans()) == 2

    def test_span_closes_against_the_recorder_that_opened_it(self):
        first, second = Observability(), Observability()
        with observing(first):
            sp = span("swapped")
            sp.__enter__()
            with observing(second):
                sp.__exit__(None, None, None)
        spans = first.recorder.spans()
        assert len(spans) == 1 and spans[0].elapsed is not None
        assert second.recorder.spans() == []


class TestCaptureAbsorb:
    def _worker_payload(self):
        local = Observability()
        with observing(local):
            with span("task"):
                get_metrics().inc("radius.solves", 2)
                emit_event("cache.miss", key="k")
        return local.capture()

    def test_capture_is_picklable_plain_data(self):
        import pickle
        payload = self._worker_payload()
        assert pickle.loads(pickle.dumps(payload)) == payload
        assert payload["pid"] == os.getpid()

    def test_absorb_merges_all_three_collectors(self):
        parent = Observability()
        with observing(parent):
            with span("dispatch") as dispatch:
                parent.absorb(self._worker_payload())
        spans = {s.name: s for s in parent.recorder.spans()}
        assert spans["task"].parent_id == dispatch.span_id
        assert spans["task"].tags["worker_pid"] == os.getpid()
        assert parent.metrics.counter("radius.solves").value == 2
        assert [e.kind for e in parent.events.events()] == ["cache.miss"]

    def test_absorb_none_or_empty_is_a_no_op(self):
        parent = Observability()
        parent.absorb(None)
        parent.absorb({})
        assert len(parent.recorder) == 0

    def test_observed_call_returns_result_and_payload(self):
        result, payload = observed_call(lambda: 41 + 1)
        assert result == 42
        assert payload["pid"] == os.getpid()
        assert [s["name"] for s in payload["spans"]] == ["parallel.task"]

    def test_observed_call_does_not_leak_a_session(self):
        observed_call(lambda: None)
        assert get_observability() is None


class TestWrite:
    def test_written_file_validates(self, tmp_path):
        obs = Observability()
        with observing(obs):
            with span("root"):
                get_metrics().inc("n")
                emit_event("checkpoint.save", path="x")
        path = obs.write(tmp_path / "out.jsonl", command="test")
        trace = validate_trace_file(path)
        assert trace.header["command"] == "test"
        assert [s["name"] for s in trace.spans] == ["root"]
        assert trace.metrics["n"]["value"] == 1
        assert [e["kind"] for e in trace.events] == ["checkpoint.save"]
