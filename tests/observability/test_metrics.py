"""Tests for counters, gauges, histograms, and the registry merge."""

import pytest

from repro.exceptions import SpecificationError
from repro.observability.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)


class TestPrimitives:
    def test_counter_increments(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(SpecificationError, match="only increase"):
            Counter().inc(-1)

    def test_gauge_last_write_wins(self):
        g = Gauge()
        g.set(3.0)
        g.set(1.5)
        assert g.value == 1.5

    def test_histogram_buckets_and_overflow(self):
        h = Histogram(buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 100.0):
            h.observe(v)
        assert h.counts == [1, 2, 1]
        assert h.count == 4
        assert h.mean == pytest.approx((0.05 + 0.5 + 0.5 + 100.0) / 4)

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(SpecificationError, match="strictly increasing"):
            Histogram(buckets=(1.0, 1.0))
        with pytest.raises(SpecificationError, match="strictly increasing"):
            Histogram(buckets=())


class TestRegistry:
    def test_lazy_creation_and_reuse(self):
        reg = MetricsRegistry()
        reg.inc("cache.hits")
        reg.inc("cache.hits", 2)
        assert reg.counter("cache.hits").value == 3
        assert len(reg) == 1

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.inc("x")
        with pytest.raises(SpecificationError, match="counter"):
            reg.set_gauge("x", 1.0)

    def test_snapshot_is_immutable(self):
        reg = MetricsRegistry()
        reg.inc("a", 5)
        reg.observe("lat", 0.2)
        snap = reg.snapshot()
        reg.inc("a", 10)
        reg.observe("lat", 0.3)
        assert snap["a"]["value"] == 5
        assert snap["lat"]["count"] == 1
        # mutating the snapshot must not touch the registry either
        snap["a"]["value"] = -99
        assert reg.counter("a").value == 15

    def test_snapshot_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.inc("zz")
        reg.inc("aa")
        assert list(reg.snapshot()) == ["aa", "zz"]


class TestAbsorb:
    def test_counters_add_gauges_overwrite(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n", 2)
        a.set_gauge("g", 1.0)
        b.inc("n", 3)
        b.set_gauge("g", 7.0)
        a.absorb(b.snapshot())
        assert a.counter("n").value == 5
        assert a.gauge("g").value == 7.0

    def test_histograms_add_bucketwise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("lat", 0.002, buckets=(0.01, 1.0))
        b.observe("lat", 0.5, buckets=(0.01, 1.0))
        b.observe("lat", 2.0, buckets=(0.01, 1.0))
        a.absorb(b.snapshot())
        merged = a.histogram("lat", (0.01, 1.0))
        assert merged.counts == [1, 1, 1]
        assert merged.count == 3

    def test_bucket_layout_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("lat", 0.5, buckets=(0.01, 1.0))
        b.observe("lat", 0.5, buckets=(0.5, 2.0))
        with pytest.raises(SpecificationError, match="bucket layouts"):
            a.absorb(b.snapshot())

    def test_unknown_kind_raises(self):
        with pytest.raises(SpecificationError, match="unknown metric kind"):
            MetricsRegistry().absorb({"x": {"kind": "exotic"}})


class TestNullRegistry:
    def test_every_operation_is_a_no_op(self):
        null = NullMetricsRegistry()
        null.inc("a")
        null.set_gauge("b", 1.0)
        null.observe("c", 0.5)
        null.absorb({"x": {"kind": "counter", "value": 3}})
        assert null.snapshot() == {}

    def test_shared_singleton_never_accumulates(self):
        NULL_METRICS.inc("leak", 100)
        assert NULL_METRICS.snapshot() == {}
