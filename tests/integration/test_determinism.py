"""Determinism regression tests for every stochastic entry point.

Each public function that consumes randomness must accept an explicit
``seed`` and produce bit-identical results when called twice with the
same seed.  A regression here means a code path started drawing from
global NumPy state, which silently breaks checkpoint/resume identity.
"""

import numpy as np

from repro.core.features import ToleranceBounds
from repro.core.mappings import CallableMapping, LinearMapping
from repro.core.radius import RadiusProblem, compute_radius
from repro.core.solvers.bisection import solve_bisection_radius
from repro.core.solvers.numeric import solve_numeric_radius
from repro.core.solvers.sampling import sampling_upper_bound
from repro.montecarlo import validate_radius
from repro.resilience import SolverCascade
from repro.systems.heuristics import MCT
from repro.systems.hiperd.generator import generate_hiperd_system
from repro.systems.hiperd.traces import random_walk_trace
from repro.systems.independent import (
    Allocation,
    EtcMatrix,
    survival_probability,
)
from repro.systems.independent.etc import generate_etc_gamma
from repro.systems.independent.stochastic import stochastic_robustness_mc


def _hidden_mapping():
    # opaque to structural probes, so stochastic solvers actually run
    return CallableMapping(
        lambda x: 3.0 * x[0] + 4.0 * x[1], 2,
        gradient_fn=lambda x: np.array([3.0, 4.0]), name="hidden")


ORIGIN = np.array([1.0, 1.0])
BOUNDS = ToleranceBounds.upper(12.0)


class TestSolverDeterminism:
    def test_sampling_upper_bound(self):
        def run():
            return sampling_upper_bound(
                _hidden_mapping(), ORIGIN, BOUNDS,
                max_distance=2.0, n_samples=500, seed=123)

        a, b = run(), run()
        assert repr(a.min_violation_distance) == \
            repr(b.min_violation_distance)
        assert a.n_violations == b.n_violations
        if a.closest_violation is not None:
            np.testing.assert_array_equal(a.closest_violation,
                                          b.closest_violation)

    def test_numeric_multistart(self):
        def run():
            return solve_numeric_radius(_hidden_mapping(), ORIGIN, 12.0,
                                        seed=123)

        a, b = run(), run()
        assert repr(a.distance) == repr(b.distance)
        np.testing.assert_array_equal(a.point, b.point)

    def test_bisection_directions(self):
        def run():
            return solve_bisection_radius(_hidden_mapping(), ORIGIN, 12.0,
                                          n_random_directions=32, seed=123)

        a, b = run(), run()
        assert repr(a.distance) == repr(b.distance)
        np.testing.assert_array_equal(a.point, b.point)

    def test_solver_cascade(self):
        def run():
            problem = RadiusProblem(_hidden_mapping(), ORIGIN, BOUNDS)
            return SolverCascade(seed=5).compute(problem)

        a, b = run(), run()
        assert repr(a.radius) == repr(b.radius)
        assert a.quality is b.quality
        assert a.method == b.method


class TestMonteCarloDeterminism:
    def test_validate_radius(self):
        problem = RadiusProblem(LinearMapping([3.0, 4.0]), ORIGIN, BOUNDS)
        result = compute_radius(problem)
        a = validate_radius(problem, result, n_samples=800, seed=123)
        b = validate_radius(problem, result, n_samples=800, seed=123)
        assert a == b

    def test_validate_radius_chunked_matches_seeded_self(self):
        problem = RadiusProblem(LinearMapping([3.0, 4.0]), ORIGIN, BOUNDS)
        result = compute_radius(problem)
        a = validate_radius(problem, result, n_samples=800, seed=123,
                            chunk_size=200)
        b = validate_radius(problem, result, n_samples=800, seed=123,
                            chunk_size=200)
        assert a == b

    def test_stochastic_robustness_mc(self):
        etc = EtcMatrix(np.ones((4, 4)))
        alloc = Allocation(np.arange(4, dtype=np.intp), 4)
        a = stochastic_robustness_mc(etc, alloc, tau=1.5, n_samples=500,
                                     seed=123)
        assert a == stochastic_robustness_mc(etc, alloc, tau=1.5,
                                             n_samples=500, seed=123)

    def test_survival_probability(self):
        etc = EtcMatrix(np.ones((4, 4)))
        alloc = Allocation(np.arange(4, dtype=np.intp), 4)
        a = survival_probability(etc, alloc, tau=2.5, p_fail=0.3,
                                 n_samples=300, seed=123)
        assert a == survival_probability(etc, alloc, tau=2.5, p_fail=0.3,
                                         n_samples=300, seed=123)


class TestGeneratorDeterminism:
    def test_generate_etc_gamma(self):
        a = generate_etc_gamma(10, 4, seed=123)
        b = generate_etc_gamma(10, 4, seed=123)
        np.testing.assert_array_equal(a.values, b.values)

    def test_generate_hiperd_system(self):
        a = generate_hiperd_system(seed=123)
        b = generate_hiperd_system(seed=123)
        assert a.allocation == b.allocation
        assert [m.speed for m in a.machines] == \
            [m.speed for m in b.machines]
        assert [(msg.src, msg.dst) for msg in a.messages] == \
            [(msg.src, msg.dst) for msg in b.messages]

    def test_random_walk_trace(self):
        a = random_walk_trace([1.0, 2.0], 50, seed=123)
        b = random_walk_trace([1.0, 2.0], 50, seed=123)
        np.testing.assert_array_equal(a, b)

    def test_mct_allocation_on_seeded_etc(self):
        etc = generate_etc_gamma(12, 4, seed=123)
        a = MCT().allocate(etc)
        b = MCT().allocate(generate_etc_gamma(12, 4, seed=123))
        np.testing.assert_array_equal(a.assignment, b.assignment)


class TestDistinctSeedsDiffer:
    """Sanity check: the seed actually steers the stream (otherwise the
    identity tests above would pass vacuously on a constant function)."""

    def test_etc_differs_across_seeds(self):
        a = generate_etc_gamma(10, 4, seed=1)
        b = generate_etc_gamma(10, 4, seed=2)
        assert not np.array_equal(a.values, b.values)

    def test_trace_differs_across_seeds(self):
        a = random_walk_trace([1.0], 50, seed=1)
        b = random_walk_trace([1.0], 50, seed=2)
        assert not np.array_equal(a, b)
