"""Max-composite features: makespan as a single MaxMapping.

For upper-bound-only constraints the robust region of a max feature is
the intersection of the components' sublevel sets, so escaping it means
crossing *some* component's boundary:

    dist(x0, boundary{max_i f_i <= tau}) = min_i dist(x0, {f_i = tau}) .

These tests verify the identity end-to-end: the radius of the single
``MaxMapping`` makespan feature equals the minimum of the per-machine
finish-time radii — i.e. the two equivalent FePIA formulations of the
makespan example agree through the generic solvers.
"""

import numpy as np
import pytest

from repro.core.features import PerformanceFeature, ToleranceBounds
from repro.core.fepia import FeatureSpec, RobustnessAnalysis
from repro.core.mappings import LinearMapping, MaxMapping
from repro.core.radius import RadiusProblem, compute_radius
from repro.core.weighting import IdentityWeighting
from repro.systems.independent import Allocation, MakespanSystem
from repro.systems.independent.etc import generate_etc_gamma


def _machine_mappings(system: MakespanSystem) -> list[LinearMapping]:
    n = system.n_tasks
    mappings = []
    for j in range(system.n_machines):
        coeffs = np.zeros(n)
        coeffs[system.allocation.tasks_on(j)] = 1.0
        if np.any(coeffs):
            mappings.append(LinearMapping(coeffs))
    return mappings


class TestMaxEqualsMinOfComponents:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_makespan_max_feature_equals_per_machine_min(self, seed, rng):
        etc = generate_etc_gamma(10, 3, seed=seed)
        alloc = Allocation(rng.integers(0, 3, size=10).astype(np.intp), 3)
        system = MakespanSystem(etc, alloc)
        tau = 1.3 * system.makespan()

        components = _machine_mappings(system)
        max_mapping = MaxMapping(components)
        problem = RadiusProblem(
            mapping=max_mapping,
            origin=system.original_times(),
            bounds=ToleranceBounds.upper(tau))
        res = compute_radius(problem, seed=seed)

        per_machine = min(
            compute_radius(RadiusProblem(
                mapping=comp, origin=system.original_times(),
                bounds=ToleranceBounds.upper(tau))).radius
            for comp in components)
        assert res.radius == pytest.approx(per_machine, rel=1e-4)

    def test_agrees_with_analysis_formulation(self, rng):
        etc = generate_etc_gamma(8, 2, seed=5)
        alloc = Allocation(rng.integers(0, 2, size=8).astype(np.intp), 2)
        system = MakespanSystem(etc, alloc)
        tau = 1.25 * system.makespan()

        # formulation A: per-machine features through RobustnessAnalysis
        rho_components = system.robustness_analysis(tau=tau).rho()

        # formulation B: one max feature
        max_mapping = MaxMapping(_machine_mappings(system))
        feature = PerformanceFeature("makespan", ToleranceBounds.upper(tau))
        param = system.execution_time_parameter()
        rho_max = RobustnessAnalysis(
            [FeatureSpec(feature, max_mapping)], [param],
            weighting=IdentityWeighting(), seed=0).rho()

        assert rho_max == pytest.approx(rho_components, rel=1e-4)

    def test_max_value_is_makespan(self, rng):
        etc = generate_etc_gamma(12, 4, seed=6)
        alloc = Allocation(rng.integers(0, 4, size=12).astype(np.intp), 4)
        system = MakespanSystem(etc, alloc)
        max_mapping = MaxMapping(_machine_mappings(system))
        assert max_mapping.value(system.original_times()) == pytest.approx(
            system.makespan())
