"""Integration tests pinning the paper's results end to end.

These are the repository's acceptance tests: every claim the paper makes
analytically must emerge from the full pipeline (perturbation parameters ->
weighting -> P-space -> generic radius solvers -> rho), not just from the
closed-form module.
"""

import math

import numpy as np
import pytest

from repro.analysis.linear_case import analysis_for_case, random_linear_case
from repro.core.degeneracy import (
    LinearCase,
    normalized_radius_linear,
    per_parameter_radius_linear,
    sensitivity_alphas_linear,
)
from repro.core.weighting import NormalizedWeighting, SensitivityWeighting
from repro.utils.rng import default_rng


class TestSection31Degeneracy:
    """Sensitivity weighting: r == 1/sqrt(n), whatever the system."""

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 13, 21])
    def test_exact_inverse_sqrt_n_through_pipeline(self, n):
        rng = default_rng(n)
        for _ in range(3):
            case = random_linear_case(n, rng)
            rho = analysis_for_case(case, SensitivityWeighting()).rho()
            assert rho == pytest.approx(1.0 / math.sqrt(n), rel=1e-9)

    def test_two_wildly_different_systems_indistinguishable(self):
        weak = LinearCase([1.0, 1.0], [1.0, 1.0], 1.01)     # 1% slack
        strong = LinearCase([1e-3, 1e3], [1e2, 1e-2], 5.0)  # 400% slack
        r_weak = analysis_for_case(weak, SensitivityWeighting()).rho()
        r_strong = analysis_for_case(strong, SensitivityWeighting()).rho()
        assert r_weak == pytest.approx(r_strong, rel=1e-9)

    def test_same_systems_distinguished_by_normalized(self):
        weak = LinearCase([1.0, 1.0], [1.0, 1.0], 1.01)
        strong = LinearCase([1e-3, 1e3], [1e2, 1e-2], 5.0)
        r_weak = analysis_for_case(weak, NormalizedWeighting()).rho()
        r_strong = analysis_for_case(strong, NormalizedWeighting()).rho()
        assert r_strong > 10.0 * r_weak

    def test_step1_per_parameter_radii_through_pipeline(self):
        """The paper's Step 1 example formulas, via the generic solver."""
        case = LinearCase([2.0, 3.0, 0.5], [4.0, 2.0, 10.0], 1.2)
        ana = analysis_for_case(case, SensitivityWeighting())
        for j, p in enumerate(ana.params):
            res = ana.single_parameter_radius("phi", p.name)
            assert res.radius == pytest.approx(
                per_parameter_radius_linear(case, j), rel=1e-9)

    def test_step1_alphas_equation_3(self):
        case = LinearCase([2.0, 3.0], [4.0, 2.0], 1.2)
        ana = analysis_for_case(case, SensitivityWeighting())
        ps = ana.pspace("phi")
        np.testing.assert_allclose(ps.alphas,
                                   sensitivity_alphas_linear(case),
                                   rtol=1e-9)

    def test_step2_constraint_plane_in_pspace(self):
        """In P-space the constraint is P_1 + ... + P_n = beta/(beta-1)."""
        case = LinearCase([2.0, 3.0], [4.0, 2.0], 1.2)
        ana = analysis_for_case(case, SensitivityWeighting())
        ps = ana.pspace("phi")
        mapping_p = ps.transform_mapping(ana.features[0].mapping)
        rhs = case.beta / (case.beta - 1.0)
        # pick several points with sum P = rhs; all must hit beta_max
        rng = default_rng(0)
        for _ in range(5):
            p = rng.uniform(0.1, 2.0, size=case.n)
            p *= rhs / p.sum()
            assert mapping_p.value(p) == pytest.approx(case.beta_max,
                                                       rel=1e-9)


class TestSection32NormalizedMeasure:
    """Normalization by originals: dimensionless, informative radius."""

    def test_p_orig_is_all_ones(self):
        case = random_linear_case(4, default_rng(5))
        ana = analysis_for_case(case, NormalizedWeighting())
        np.testing.assert_allclose(ana.pspace().p_orig, np.ones(4))

    def test_closed_form_equals_pipeline(self):
        rng = default_rng(6)
        for n in (1, 2, 4, 7):
            case = random_linear_case(n, rng)
            rho = analysis_for_case(case, NormalizedWeighting()).rho()
            assert rho == pytest.approx(normalized_radius_linear(case),
                                        rel=1e-9)

    def test_radius_grows_with_beta(self):
        rng = default_rng(7)
        base = random_linear_case(3, rng, beta=1.1)
        radii = []
        for beta in (1.1, 1.5, 2.0, 3.0):
            case = LinearCase(base.coefficients, base.originals, beta)
            radii.append(analysis_for_case(case, NormalizedWeighting()).rho())
        assert radii == sorted(radii)
        assert radii[-1] > radii[0]

    def test_radius_depends_on_originals(self):
        k = [1.0, 1.0]
        a = LinearCase(k, [1.0, 1.0], 1.5)
        b = LinearCase(k, [10.0, 0.1], 1.5)
        ra = analysis_for_case(a, NormalizedWeighting()).rho()
        rb = analysis_for_case(b, NormalizedWeighting()).rho()
        assert ra != pytest.approx(rb, rel=1e-3)


class TestUsageProcedure:
    """The paper's steps (a)-(c) give a sound operating-point test."""

    def test_procedure_on_random_cases(self):
        from repro.core.feasibility import FeasibilityChecker
        rng = default_rng(8)
        for trial in range(5):
            case = random_linear_case(3, rng)
            ana = analysis_for_case(case, NormalizedWeighting())
            checker = FeasibilityChecker(ana)
            ps = ana.pspace()
            rho = ana.rho()
            for _ in range(30):
                direction = rng.normal(size=3)
                direction /= np.linalg.norm(direction)
                scale = rng.uniform(0.0, 2.0)
                p = ps.p_orig + direction * rho * scale
                pi_vals = ps.split_values(ps.from_p(p))
                verdict = checker.check(pi_vals)
                assert verdict.is_sound
