"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_seed_option(self):
        args = build_parser().parse_args(["--seed", "7", "demo"])
        assert args.seed == 7
        assert args.command == "demo"

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])


class TestCommands:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "rho" in out and "latency" in out

    def test_degeneracy(self, capsys):
        assert main(["--seed", "1", "degeneracy", "--cases", "2"]) == 0
        out = capsys.readouterr().out
        assert "[E2]" in out and "[E3]" in out
        assert "1/sqrt(n)" in out

    def test_heuristics(self, capsys):
        assert main(["--seed", "2", "heuristics", "--tasks", "10",
                     "--machines", "3"]) == 0
        out = capsys.readouterr().out
        assert "[E5]" in out
        assert "Sufferage" in out

    def test_hiperd_loads_only(self, capsys):
        assert main(["--seed", "3", "hiperd", "--kinds", "loads"]) == 0
        out = capsys.readouterr().out
        assert "rho" in out
        assert "criticality" in out
        assert "[E9]" in out

    def test_hiperd_without_loads_skips_monitor(self, capsys):
        assert main(["--seed", "3", "hiperd", "--kinds", "msgsize"]) == 0
        out = capsys.readouterr().out
        assert "[E9]" not in out

    def test_tradeoff(self, capsys):
        assert main(["--seed", "4", "tradeoff", "--tasks", "10",
                     "--machines", "3"]) == 0
        out = capsys.readouterr().out
        assert "[E10]" in out
        assert "frontier" in out

    def test_failures(self, capsys):
        assert main(["--seed", "5", "failures", "--tasks", "8",
                     "--machines", "3"]) == 0
        out = capsys.readouterr().out
        assert "failure radius" in out
        assert "criticality" in out

    def test_placement(self, capsys):
        assert main(["--seed", "6", "placement", "--rounds", "2"]) == 0
        out = capsys.readouterr().out
        assert "placement search" in out

    def test_experiments_only_subset(self, capsys):
        assert main(["--seed", "7", "experiments", "--only", "E11"]) == 0
        out = capsys.readouterr().out
        assert "[E11]" in out

    def test_experiments_markdown(self, capsys):
        assert main(["--seed", "7", "experiments", "--only", "E11",
                     "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "### E11" in out
        assert "|---|" in out

    def test_topology(self, capsys):
        assert main(["--seed", "8", "topology", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "tightest" in out and "busiest" in out

    def test_module_invocation(self):
        import subprocess
        import sys
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "demo"],
            capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0
        assert "rho" in proc.stdout
