"""End-to-end workflow tests: the public API as a user drives it."""

import math

import numpy as np
import pytest

import repro
from repro import (
    FeasibilityChecker,
    FeatureSpec,
    LinearMapping,
    NormalizedWeighting,
    PerformanceFeature,
    PerturbationParameter,
    RobustnessAnalysis,
    SensitivityWeighting,
    ToleranceBounds,
    robustness_metric,
)


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_flow(self):
        # the README example, verbatim in spirit
        exec_times = PerturbationParameter.nonnegative(
            "exec", [4.0], unit="s")
        msg_sizes = PerturbationParameter.nonnegative(
            "msg", [2.0], unit="bytes")
        mapping = LinearMapping([2.0, 3.0])
        phi0 = mapping.value(np.array([4.0, 2.0]))
        feature = PerformanceFeature(
            "latency", ToleranceBounds.relative(phi0, 1.2))
        analysis = RobustnessAnalysis(
            [FeatureSpec(feature, mapping)], [exec_times, msg_sizes])
        report = robustness_metric(analysis)
        assert report.rho == pytest.approx(0.28, rel=1e-9)
        assert report.critical_feature == "latency"


class TestHeuristicWorkflow:
    def test_compare_and_optimise(self):
        from repro.analysis import compare_heuristics
        from repro.systems.heuristics import SimulatedAnnealer
        from repro.systems.independent import MakespanSystem, generate_etc_gamma

        etc = generate_etc_gamma(16, 4, seed=31)
        result = compare_heuristics(etc, tau_factor=1.5, seed=31)
        feasible = [(row[0], row[2]) for row in result.rows
                    if isinstance(row[2], float) and not math.isnan(row[2])]
        assert feasible
        best_name, best_rho = feasible[0]

        tau = 1.5 * min(row[1] for row in result.rows)

        def objective_factory(etc_matrix):
            def objective(allocation):
                system = MakespanSystem(etc_matrix, allocation)
                if system.makespan() >= tau:
                    return system.makespan() / tau
                return -system.analytic_rho(tau=tau)
            return objective

        sa = SimulatedAnnealer(objective_factory, n_steps=800, seed=31)
        tuned = MakespanSystem(etc, sa.allocate(etc))
        assert tuned.makespan() < tau
        assert tuned.analytic_rho(tau=tau) >= best_rho - 1e-9


class TestHiPerDWorkflow:
    def test_generate_analyse_monitor(self):
        from repro.systems.hiperd import (
            QoSSpec,
            build_analysis,
            generate_hiperd_system,
        )

        system = generate_hiperd_system(seed=77)
        qos = QoSSpec(latency_slack=1.4)
        ana = build_analysis(system, qos, kinds=("loads", "msgsize"),
                             seed=0)
        rho = ana.rho()
        assert rho > 0 and math.isfinite(rho)

        checker = FeasibilityChecker(ana)
        # unchanged operating point is safe
        assert checker.check({}).within_radius
        # extreme load is flagged and genuinely infeasible
        verdict = checker.check({"loads": system.original_loads() * 50.0})
        assert not verdict.within_radius
        assert not verdict.actually_feasible

    def test_weighting_switch_changes_rho_not_semantics(self):
        from repro.systems.hiperd import QoSSpec, build_analysis, generate_hiperd_system

        system = generate_hiperd_system(seed=78)
        qos = QoSSpec(latency_slack=1.4)
        rho_norm = build_analysis(system, qos, kinds=("loads", "msgsize"),
                                  weighting=NormalizedWeighting(),
                                  seed=0).rho()
        rho_sens = build_analysis(system, qos, kinds=("loads", "msgsize"),
                                  weighting=SensitivityWeighting(),
                                  seed=0).rho()
        assert rho_norm > 0 and rho_sens > 0
        # both finite; values differ because the geometries differ
        assert math.isfinite(rho_norm) and math.isfinite(rho_sens)


class TestReportingWorkflow:
    def test_full_report_runs(self, two_kind_analysis):
        from repro.reporting import full_report
        out = full_report(two_kind_analysis, n_samples=500, seed=0)
        assert "rho" in out and "Monte-Carlo" in out

    def test_boundary_figure_workflow(self):
        from repro.reporting import boundary_figure
        m = LinearMapping([1.0, 2.0])
        fig = boundary_figure(m, np.array([1.0, 1.0]),
                              ToleranceBounds.upper(6.0))
        rendered = fig.render(width=40, height=12)
        assert "O" in rendered
