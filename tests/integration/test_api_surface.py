"""Meta-tests on the public API surface.

Deliverable-level guarantees: every exported name resolves, every public
class/function carries a docstring, and the package-level ``__all__``
lists stay consistent with what the modules actually define.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.core.solvers",
    "repro.systems",
    "repro.systems.independent",
    "repro.systems.hiperd",
    "repro.systems.heuristics",
    "repro.montecarlo",
    "repro.observability",
    "repro.resilience",
    "repro.analysis",
    "repro.reporting",
    "repro.io",
    "repro.utils",
]


def _all_modules():
    seen = []
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        seen.append(pkg)
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                seen.append(importlib.import_module(
                    f"{pkg_name}.{info.name}"))
    return {m.__name__: m for m in seen}.values()


class TestExports:
    @pytest.mark.parametrize("pkg_name", PACKAGES)
    def test_all_names_resolve(self, pkg_name):
        pkg = importlib.import_module(pkg_name)
        for name in getattr(pkg, "__all__", []):
            assert hasattr(pkg, name), f"{pkg_name}.__all__ lists missing {name}"

    def test_top_level_reexports_core(self):
        from repro.core import RobustnessAnalysis
        assert repro.RobustnessAnalysis is RobustnessAnalysis


class TestDocstrings:
    def test_every_module_documented(self):
        for module in _all_modules():
            assert module.__doc__, f"module {module.__name__} lacks a docstring"

    def test_every_public_object_documented(self):
        missing = []
        for module in _all_modules():
            for name in getattr(module, "__all__", []):
                obj = getattr(module, name)
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not inspect.getdoc(obj):
                        missing.append(f"{module.__name__}.{name}")
        assert not missing, f"undocumented public objects: {missing}"

    def test_public_methods_documented(self):
        from repro.core.fepia import RobustnessAnalysis
        from repro.core.pspace import ConcatenatedPerturbation
        from repro.systems.hiperd.model import HiPerDSystem
        missing = []
        for cls in (RobustnessAnalysis, ConcatenatedPerturbation,
                    HiPerDSystem):
            for name, member in inspect.getmembers(cls):
                if name.startswith("_"):
                    continue
                if callable(member) and not inspect.getdoc(member):
                    missing.append(f"{cls.__name__}.{name}")
        assert not missing, f"undocumented public methods: {missing}"


class TestVersioning:
    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)
