"""Cross-validation of the independent computation paths.

Three implementations of each quantity exist in the repository:

* closed forms (degeneracy module, makespan analytic radii);
* the generic solver pipeline (analytic hyperplane / numeric projection /
  directional bisection);
* Monte-Carlo estimates (sampling, violation curves).

These tests assert the three agree on shared instances — the strongest
correctness evidence the reproduction produces.
"""

import numpy as np
import pytest

from repro.core.features import ToleranceBounds
from repro.core.mappings import QuadraticMapping
from repro.core.radius import RadiusProblem, compute_radius
from repro.core.solvers.bisection import solve_bisection_radius
from repro.montecarlo.validate import validate_analysis, validate_radius
from repro.montecarlo.violation import violation_probability_curve
from repro.systems.hiperd.constraints import build_analysis
from repro.systems.independent import Allocation, MakespanSystem, generate_etc_gamma


class TestMakespanThreeWay:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_closed_form_vs_pipeline_vs_mc(self, seed, rng):
        etc = generate_etc_gamma(12, 4, seed=seed)
        alloc = Allocation(rng.integers(0, 4, size=12).astype(np.intp), 4)
        system = MakespanSystem(etc, alloc)
        beta = 1.25

        # closed form vs pipeline
        ana = system.robustness_analysis(beta, seed=seed)
        assert ana.rho() == pytest.approx(system.analytic_rho(beta),
                                          rel=1e-9)

        # pipeline vs Monte-Carlo (soundness + tightness of every radius)
        checks = validate_analysis(ana, n_samples=4000, seed=seed)
        assert all(v.passed for v in checks.values())

    def test_violation_curve_brackets_rho(self):
        etc = generate_etc_gamma(10, 3, seed=5)
        alloc = Allocation(np.arange(10, dtype=np.intp) % 3, 3)
        system = MakespanSystem(etc, alloc)
        ana = system.robustness_analysis(1.3)
        rho = ana.rho()
        spec = ana.critical_feature()
        curve = violation_probability_curve(
            spec.mapping, ana.pi_orig, spec.feature.bounds,
            distances=np.linspace(0.5 * rho, 2.0 * rho, 12),
            n_directions=3000, seed=6)
        first = curve.first_violation_distance()
        assert first >= rho - 1e-9
        assert first <= 2.0 * rho


class TestQuadraticThreeWay:
    def test_numeric_vs_bisection_vs_mc(self, rng):
        # random convex quadratic features in several dimensions
        for dim in (2, 4, 8):
            A = rng.normal(size=(dim, dim))
            m = QuadraticMapping(A @ A.T + np.eye(dim), rng.normal(size=dim))
            origin = 0.1 * rng.normal(size=dim)
            bound = m.value(origin) + 5.0
            problem = RadiusProblem(
                mapping=m, origin=origin,
                bounds=ToleranceBounds.upper(bound))
            res = compute_radius(problem, seed=0)
            # bisection upper bound must not be beaten by more than noise
            bis = solve_bisection_radius(m, origin, bound,
                                         n_random_directions=256, seed=1)
            assert res.radius <= bis.distance + 1e-9
            assert bis.distance <= res.radius * 1.3
            # MC validation
            v = validate_radius(problem, res, n_samples=4000, seed=2)
            assert v.passed, f"dim={dim}: {v}"


class TestHiPerDThreeWay:
    def test_all_weightings_validate(self, hiperd_system, hiperd_qos):
        from repro.core.weighting import (NormalizedWeighting,
                                          SensitivityWeighting)
        for weighting in (NormalizedWeighting(), SensitivityWeighting()):
            ana = build_analysis(hiperd_system, hiperd_qos,
                                 kinds=("loads", "exec", "msgsize"),
                                 weighting=weighting, seed=0)
            checks = validate_analysis(ana, n_samples=1500, seed=3)
            bad = {k: v for k, v in checks.items() if not v.sound}
            assert not bad, f"{weighting.name}: unsound radii {bad}"

    def test_simulator_confirms_critical_radius(self, hiperd_system,
                                                hiperd_qos):
        """Walk along the witness direction in load space; the dataflow
        simulator must agree with the feature mapping about when the
        latency deadline breaks."""
        from repro.systems.hiperd.simulate import simulate_dataflow
        ana = build_analysis(hiperd_system, hiperd_qos, kinds=("loads",),
                             seed=0)
        latency_specs = [s for s in ana.features
                         if s.name.startswith("latency[")]
        spec = min(latency_specs, key=lambda s: ana.radius(s).radius)
        res = ana.radius(spec)
        ps = ana.pspace()
        witness_loads = ps.from_p(res.boundary_point)
        # slightly beyond the witness the deadline must be broken;
        # slightly inside it must hold
        orig = hiperd_system.original_loads()
        for factor, expect_violation in ((0.98, False), (1.02, True)):
            loads = orig + factor * (witness_loads - orig)
            rec = simulate_dataflow(hiperd_system, loads[None, :],
                                    deadline=spec.feature.bounds.beta_max)
            # the simulator reports the max over actuators; the critical
            # path drives it at the witness
            mapped = spec.mapping.value(ana.flatten_values({"loads": loads}))
            assert (mapped > spec.feature.bounds.beta_max) == expect_violation
            if expect_violation:
                assert rec.actuator_latencies.max() > (
                    spec.feature.bounds.beta_max * 0.99)
