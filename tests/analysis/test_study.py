"""Tests for the population and scaling studies (E12)."""

import pytest

from repro.analysis.study import population_study, scaling_study
from repro.exceptions import SpecificationError
from repro.systems.hiperd.generator import HiPerDGenerationSpec


class TestPopulationStudy:
    @pytest.fixture(scope="class")
    def result(self):
        spec = HiPerDGenerationSpec(n_sensors=2, n_actuators=1,
                                    n_machines=3, app_layers=(2, 2))
        return population_study(n_systems=6, spec=spec, seed=13)

    def test_structure(self, result):
        assert result.experiment_id == "E12a"
        stats = {row[0]: row[1] for row in result.rows}
        assert stats["systems"] == 6

    def test_statistics_consistent(self, result):
        stats = {row[0]: row[1] for row in result.rows}
        assert stats["rho min"] <= stats["rho median"] <= stats["rho max"]
        assert stats["rho min"] <= stats["rho mean"] <= stats["rho max"]
        assert stats["rho min"] > 0

    def test_family_counts_sum(self, result):
        counts = [row[1] for row in result.rows
                  if str(row[0]).startswith("critical family")]
        total = sum(int(str(c).split("/")[0]) for c in counts)
        assert total == 6

    def test_dominant_family_reported(self, result):
        assert result.summary["dominant critical family"]

    def test_reproducible(self):
        spec = HiPerDGenerationSpec(n_sensors=2, n_actuators=1,
                                    n_machines=3, app_layers=(2,))
        a = population_study(n_systems=3, spec=spec, seed=7)
        b = population_study(n_systems=3, spec=spec, seed=7)
        assert a.rows == b.rows

    def test_too_few_systems(self):
        with pytest.raises(SpecificationError):
            population_study(n_systems=1)


class TestScalingStudy:
    def test_structure_and_trend(self):
        result = scaling_study(layer_sizes=((2, 2), (4, 4)),
                               systems_per_size=3, seed=17)
        assert result.experiment_id == "E12b"
        assert len(result.rows) == 2
        # larger systems have more features
        assert result.rows[1][1] > result.rows[0][1]

    def test_rhos_positive(self):
        result = scaling_study(layer_sizes=((2, 2), (3, 3)),
                               systems_per_size=2, seed=19)
        for row in result.rows:
            assert row[2] > 0 and row[3] > 0
