"""Tests for the experiment runner/registry."""

import pytest

from repro.analysis.experiments import ExperimentResult
from repro.analysis.runner import (
    EXPERIMENT_REGISTRY,
    run_all_experiments,
    run_experiment,
)
from repro.exceptions import SpecificationError


class TestRegistry:
    def test_core_experiments_registered(self):
        # the two headline results of the paper must be runnable
        assert "E2" in EXPERIMENT_REGISTRY
        assert "E3" in EXPERIMENT_REGISTRY
        assert "E11" in EXPERIMENT_REGISTRY

    def test_unknown_id_rejected(self):
        with pytest.raises(SpecificationError, match="unknown experiment"):
            run_experiment("E999")

    @pytest.mark.parametrize("eid", ["E2", "E3", "E11", "E16"])
    def test_fast_experiments_run(self, eid):
        result = run_experiment(eid, seed=1)
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id.startswith(eid[:2])
        assert result.rows

    def test_ids_match_results(self):
        result = run_experiment("E2", seed=1)
        assert result.experiment_id == "E2"


class TestRunAll:
    @pytest.mark.slow
    def test_run_all(self):
        results = run_all_experiments(seed=1)
        assert set(results) == set(EXPERIMENT_REGISTRY)
        for eid, result in results.items():
            assert isinstance(result, ExperimentResult)

    def test_unknown_subset_rejected(self):
        with pytest.raises(SpecificationError, match="unknown experiment"):
            run_all_experiments(seed=1, ids=["E2", "E999"])

    def test_subset_runs_in_registry_order(self):
        results = run_all_experiments(seed=1, ids=["E11", "E2"])
        assert list(results) == ["E11", "E2"]

    def test_checkpointed_sweep_resumes(self, tmp_path):
        path = tmp_path / "sweep.json"
        first = run_all_experiments(seed=1, ids=["E2", "E11"],
                                    checkpoint_path=path)

        calls = []
        orig = EXPERIMENT_REGISTRY["E2"]
        try:
            EXPERIMENT_REGISTRY["E2"] = \
                lambda seed: calls.append(seed) or orig(seed)
            resumed = run_all_experiments(seed=1, ids=["E2", "E11"],
                                          checkpoint_path=path)
        finally:
            EXPERIMENT_REGISTRY["E2"] = orig
        assert calls == []  # E2 came from the checkpoint, not a re-run
        assert set(resumed) == {"E2", "E11"}
        for eid in first:
            assert [list(r) for r in resumed[eid].rows] == \
                [list(r) for r in first[eid].rows]
            assert resumed[eid].title == first[eid].title

    def test_checkpoint_seed_mismatch_refuses(self, tmp_path):
        from repro.exceptions import CheckpointError
        path = tmp_path / "sweep.json"
        run_all_experiments(seed=1, ids=["E11"], checkpoint_path=path)
        with pytest.raises(CheckpointError):
            run_all_experiments(seed=2, ids=["E11"], checkpoint_path=path)
