"""Tests for the experiment runner/registry."""

import pytest

from repro.analysis.experiments import ExperimentResult
from repro.analysis.runner import (
    EXPERIMENT_REGISTRY,
    run_all_experiments,
    run_experiment,
)
from repro.exceptions import SpecificationError


class TestRegistry:
    def test_core_experiments_registered(self):
        # the two headline results of the paper must be runnable
        assert "E2" in EXPERIMENT_REGISTRY
        assert "E3" in EXPERIMENT_REGISTRY
        assert "E11" in EXPERIMENT_REGISTRY

    def test_unknown_id_rejected(self):
        with pytest.raises(SpecificationError, match="unknown experiment"):
            run_experiment("E999")

    @pytest.mark.parametrize("eid", ["E2", "E3", "E11", "E16"])
    def test_fast_experiments_run(self, eid):
        result = run_experiment(eid, seed=1)
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id.startswith(eid[:2])
        assert result.rows

    def test_ids_match_results(self):
        result = run_experiment("E2", seed=1)
        assert result.experiment_id == "E2"


class TestRunAll:
    @pytest.mark.slow
    def test_run_all(self):
        results = run_all_experiments(seed=1)
        assert set(results) == set(EXPERIMENT_REGISTRY)
        for eid, result in results.items():
            assert isinstance(result, ExperimentResult)
