"""Tests for the experiment result container."""

from repro.analysis.experiments import ExperimentResult


class TestExperimentResult:
    def test_table_contains_id_and_title(self):
        r = ExperimentResult("E9", "my experiment", ["a"], [[1.0]])
        out = r.to_table()
        assert "[E9]" in out and "my experiment" in out

    def test_summary_rendered(self):
        r = ExperimentResult("E9", "t", ["a"], [[1]], summary={"k": "v"})
        assert "k = v" in r.to_table()

    def test_str_matches_table(self):
        r = ExperimentResult("E9", "t", ["a"], [[1]])
        assert str(r) == r.to_table()

    def test_float_format_passthrough(self):
        r = ExperimentResult("E9", "t", ["a"], [[0.123456789]])
        assert "0.12" in r.to_table(float_fmt=".2g")
        assert "0.123456789" not in r.to_table(float_fmt=".2g")
