"""Tests for the weighting-choice sensitivity experiment (E16)."""

import math

import pytest

from repro.analysis.weighting_sensitivity import (
    two_kind_analysis_factory,
    weighting_sensitivity_experiment,
)
from repro.core.weighting import CustomWeighting, NormalizedWeighting
from repro.exceptions import SpecificationError


class TestExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return weighting_sensitivity_experiment(
            alpha_exponents=(-9, -7, -6, -5, -3))

    def test_structure(self, result):
        assert result.experiment_id == "E16"
        assert len(result.rows) == 5

    def test_rho_varies_substantially(self, result):
        assert result.summary["spread across exchange rates (max/min)"] > 10.0

    def test_all_rhos_positive_finite(self, result):
        for row in result.rows:
            assert row[1] > 0 and math.isfinite(row[1])

    def test_reference_is_normalized(self, result):
        make = two_kind_analysis_factory(beta=1.3)
        assert result.summary["rho(normalized reference)"] == pytest.approx(
            make(NormalizedWeighting()).rho())

    def test_plot_present(self, result):
        assert "exchange" in result.summary["plot"]

    def test_empty_exponents_rejected(self):
        with pytest.raises(SpecificationError):
            weighting_sensitivity_experiment(alpha_exponents=())


class TestLimitingBehaviour:
    def test_huge_alpha_approaches_frozen_parameter(self):
        """alpha_msg -> inf: msg moves become infinitely expensive, so rho
        tends to the radius with msg frozen (the exec-only restricted
        radius)."""
        make = two_kind_analysis_factory(beta=1.3)
        ana_big = make(CustomWeighting({"exec": 1.0, "msg": 1e9}))
        rho_big = ana_big.rho()
        # exec-only restricted radius of the same feature
        frozen = ana_big.single_parameter_radius("latency", "exec").radius
        assert rho_big == pytest.approx(frozen, rel=1e-6)

    def test_tiny_alpha_approaches_zero(self):
        """alpha_msg -> 0: msg moves become free; since msg alone can
        violate the latency bound, rho tends to 0."""
        make = two_kind_analysis_factory(beta=1.3)
        rho_tiny = make(CustomWeighting({"exec": 1.0, "msg": 1e-12})).rho()
        assert rho_tiny < 1e-3

    def test_monotone_in_alpha(self):
        """Raising the price of msg moves can only increase the radius."""
        make = two_kind_analysis_factory(beta=1.3)
        rhos = [make(CustomWeighting({"exec": 1.0, "msg": a})).rho()
                for a in (1e-4, 1e-2, 1.0, 1e2)]
        assert all(b >= a - 1e-12 for a, b in zip(rhos, rhos[1:]))
