"""Tests for the comparison experiments (E5/E6/E8)."""

import math


from repro.analysis.comparison import (
    compare_heuristics,
    compare_norms,
    compare_weightings,
    default_heuristics,
)
from repro.systems.independent import generate_etc_gamma


class TestCompareHeuristics:
    def test_structure(self, small_etc):
        result = compare_heuristics(small_etc, seed=0)
        assert result.experiment_id == "E5"
        assert len(result.rows) == len(default_heuristics())

    def test_feasible_candidates_have_rho(self, small_etc):
        result = compare_heuristics(small_etc, tau_factor=2.0, seed=0)
        feasible = [r for r in result.rows if r[3] == ""]
        assert feasible
        for row in feasible:
            assert row[2] > 0
            assert not math.isnan(row[2])

    def test_shared_tau_from_best_makespan(self, small_etc):
        result = compare_heuristics(small_etc, tau_factor=1.3, seed=0)
        best_ms = min(row[1] for row in result.rows)
        assert f"{1.3 * best_ms:.4g}" in result.title

    def test_infeasible_marked(self):
        etc = generate_etc_gamma(20, 5, task_cov=0.9, seed=9)
        # tau barely above the best: most heuristics become infeasible
        result = compare_heuristics(etc, tau_factor=1.01, seed=0)
        notes = [row[3] for row in result.rows]
        assert "infeasible" in notes

    def test_summary_names_best(self, small_etc):
        result = compare_heuristics(small_etc, seed=0)
        assert "most-robust heuristic" in result.summary
        assert "shortest-makespan heuristic" in result.summary

    def test_rows_sorted_by_rho_desc(self, small_etc):
        result = compare_heuristics(small_etc, tau_factor=2.0, seed=0)
        rhos = [row[2] for row in result.rows if not math.isnan(row[2])]
        assert rhos == sorted(rhos, reverse=True)


class TestCompareWeightings:
    def test_structure(self, hiperd_system, hiperd_qos):
        result = compare_weightings(hiperd_system, hiperd_qos,
                                    kinds=("loads", "msgsize"), seed=0)
        assert result.experiment_id == "E6"
        names = [row[0] for row in result.rows]
        assert "sensitivity" in names
        assert "normalized" in names

    def test_identity_included_for_single_kind(self, hiperd_system,
                                               hiperd_qos):
        result = compare_weightings(hiperd_system, hiperd_qos,
                                    kinds=("loads",), seed=0)
        names = [row[0] for row in result.rows]
        assert "identity" in names

    def test_rhos_finite(self, hiperd_system, hiperd_qos):
        result = compare_weightings(hiperd_system, hiperd_qos,
                                    kinds=("loads", "msgsize"), seed=0)
        for row in result.rows:
            assert row[1] > 0 and math.isfinite(row[1])


class TestCompareNorms:
    def test_ordering_confirmed(self, hiperd_system, hiperd_qos):
        result = compare_norms(hiperd_system, hiperd_qos, seed=0)
        assert result.experiment_id == "E8"
        key = "r_l1 >= r_l2 >= r_linf (expected for norms 1,2,inf)"
        assert result.summary[key] is True

    def test_three_rows(self, hiperd_system, hiperd_qos):
        result = compare_norms(hiperd_system, hiperd_qos, seed=0)
        assert [row[0] for row in result.rows] == ["l1", "l2", "linf"]
