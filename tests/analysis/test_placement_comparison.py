"""Tests for the HiPer-D placement comparison (E18)."""

import math

import pytest

from repro.analysis.placement_comparison import compare_placements
from repro.systems.hiperd import (
    HiPerDGenerationSpec,
    QoSSpec,
    generate_hiperd_system,
)


@pytest.fixture(scope="module")
def setup():
    spec = HiPerDGenerationSpec(n_sensors=2, n_actuators=1, n_machines=3,
                                app_layers=(2, 2))
    return (generate_hiperd_system(spec, seed=71),
            QoSSpec(latency_slack=1.5, throughput_margin=0.9))


class TestComparePlacements:
    @pytest.fixture(scope="class")
    def result(self, setup):
        system, qos = setup
        return compare_placements(system, qos, seed=71)

    def test_structure(self, result):
        assert result.experiment_id == "E18"
        names = {row[0] for row in result.rows}
        assert {"balanced", "fastest", "colocate", "random"} <= names

    def test_refined_row_present(self, result):
        assert any("+hillclimb" in str(row[0]) for row in result.rows)

    def test_refined_at_least_best(self, result):
        best_constructive = max(
            row[1] for row in result.rows
            if "+hillclimb" not in str(row[0])
            and isinstance(row[1], float) and not math.isnan(row[1]))
        refined = next(row[1] for row in result.rows
                       if "+hillclimb" in str(row[0]))
        assert refined >= best_constructive - 1e-12

    def test_sorted_descending(self, result):
        rhos = [row[1] for row in result.rows
                if isinstance(row[1], float) and not math.isnan(row[1])]
        assert rhos == sorted(rhos, reverse=True)

    def test_no_refine_option(self, setup):
        system, qos = setup
        result = compare_placements(system, qos, refine_best=False, seed=71)
        assert not any("+hillclimb" in str(row[0]) for row in result.rows)
