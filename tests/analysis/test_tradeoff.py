"""Tests for the makespan-robustness tradeoff experiment (E10)."""

import math

import pytest

from repro.analysis.tradeoff import (
    TradeoffPoint,
    pareto_frontier,
    tradeoff_experiment,
)
from repro.exceptions import SpecificationError
from repro.systems.independent import generate_etc_gamma


class TestParetoFrontier:
    def test_dominated_point_excluded(self):
        pts = [TradeoffPoint("a", 10.0, 5.0),
               TradeoffPoint("b", 12.0, 4.0),   # dominated by a
               TradeoffPoint("c", 8.0, 3.0)]
        frontier = pareto_frontier(pts)
        assert {p.label for p in frontier} == {"a", "c"}

    def test_infeasible_never_in_frontier(self):
        pts = [TradeoffPoint("a", 10.0, 5.0),
               TradeoffPoint("bad", 1.0, float("nan"))]
        frontier = pareto_frontier(pts)
        assert {p.label for p in frontier} == {"a"}

    def test_sorted_by_makespan(self):
        pts = [TradeoffPoint("a", 10.0, 5.0), TradeoffPoint("b", 8.0, 3.0)]
        frontier = pareto_frontier(pts)
        assert [p.label for p in frontier] == ["b", "a"]

    def test_duplicate_points_kept(self):
        pts = [TradeoffPoint("a", 10.0, 5.0), TradeoffPoint("b", 10.0, 5.0)]
        assert len(pareto_frontier(pts)) == 2

    def test_empty(self):
        assert pareto_frontier([]) == []


class TestTradeoffExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        etc = generate_etc_gamma(14, 4, seed=41)
        return tradeoff_experiment(etc, n_random=6,
                                   sa_weights=(0.0, 0.5, 1.0), seed=41)

    def test_structure(self, result):
        assert result.experiment_id == "E10"
        assert result.summary["frontier size"] >= 1

    def test_frontier_points_marked(self, result):
        starred = [r for r in result.rows if r[3] == "*"]
        assert len(starred) == result.summary["frontier size"]

    def test_frontier_is_nondominated_in_rows(self, result):
        feas = [(r[1], r[2]) for r in result.rows
                if isinstance(r[2], float) and not math.isnan(r[2])]
        starred = [(r[1], r[2]) for r in result.rows if r[3] == "*"]
        for ms, rho in starred:
            assert not any(
                (m2 <= ms and r2 >= rho) and (m2 < ms or r2 > rho)
                for m2, r2 in feas)

    def test_scatter_in_summary(self, result):
        assert "makespan" in result.summary["scatter"]

    def test_bad_tau_factor(self):
        etc = generate_etc_gamma(6, 2, seed=1)
        with pytest.raises(SpecificationError):
            tradeoff_experiment(etc, tau_factor=1.0)
