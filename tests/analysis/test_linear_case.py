"""Tests for the Section 3 sweep experiments (E2/E3)."""

import math

import pytest

from repro.analysis.linear_case import (
    analysis_for_case,
    normalized_dependence_sweep,
    random_linear_case,
    sensitivity_degeneracy_sweep,
)
from repro.core.weighting import NormalizedWeighting, SensitivityWeighting
from repro.utils.rng import default_rng


class TestRandomLinearCase:
    def test_dimensions(self):
        case = random_linear_case(5, default_rng(0))
        assert case.n == 5

    def test_beta_fixed(self):
        case = random_linear_case(3, default_rng(0), beta=1.7)
        assert case.beta == 1.7

    def test_decades_spread(self):
        rng = default_rng(1)
        case = random_linear_case(50, rng, decades=4.0)
        assert case.coefficients.max() / case.coefficients.min() > 10.0


class TestAnalysisForCase:
    def test_one_param_per_element(self):
        case = random_linear_case(4, default_rng(2))
        ana = analysis_for_case(case, NormalizedWeighting())
        assert len(ana.params) == 4
        assert all(p.dimension == 1 for p in ana.params)

    def test_units_are_distinct(self):
        case = random_linear_case(3, default_rng(3))
        ana = analysis_for_case(case, NormalizedWeighting())
        units = {p.unit for p in ana.params}
        assert len(units) == 3

    def test_sensitivity_gives_inverse_sqrt_n(self):
        case = random_linear_case(6, default_rng(4))
        ana = analysis_for_case(case, SensitivityWeighting())
        assert ana.rho() == pytest.approx(1.0 / math.sqrt(6), rel=1e-9)


class TestSweeps:
    def test_degeneracy_sweep_structure(self):
        result = sensitivity_degeneracy_sweep(ns=(2, 3), cases_per_n=3, seed=0)
        assert result.experiment_id == "E2"
        assert len(result.rows) == 2
        assert result.summary["worst relative deviation from 1/sqrt(n)"] < 1e-9

    def test_degeneracy_sweep_spread_is_zero(self):
        result = sensitivity_degeneracy_sweep(ns=(4,), cases_per_n=8, seed=1)
        assert result.summary["worst spread across random instances"] < 1e-12

    def test_dependence_sweep_structure(self):
        result = normalized_dependence_sweep(ns=(2, 3), cases_per_n=4, seed=0)
        assert result.experiment_id == "E3"
        assert result.summary[
            "worst pipeline-vs-closed-form relative error"] < 1e-9

    def test_dependence_sweep_has_spread(self):
        result = normalized_dependence_sweep(ns=(3,), cases_per_n=8, seed=2)
        # normalized radii must differ across random instances
        assert result.summary[
            "smallest relative spread across instances"] > 0.01

    def test_tables_render(self):
        r = sensitivity_degeneracy_sweep(ns=(2,), cases_per_n=2, seed=0)
        assert "E2" in r.to_table()
