"""Tests for the radius-ball monitoring experiment (E9)."""

import numpy as np
import pytest

from repro.analysis.monitoring import monitoring_experiment, replay_trace
from repro.exceptions import SpecificationError
from repro.systems.hiperd.constraints import build_analysis
from repro.systems.hiperd.traces import ramp_trace


@pytest.fixture(scope="module")
def monitor_setup():
    from repro.systems.hiperd import (HiPerDGenerationSpec, QoSSpec,
                                      generate_hiperd_system)
    system = generate_hiperd_system(
        HiPerDGenerationSpec(n_sensors=2, n_actuators=1, n_machines=3,
                             app_layers=(2, 2)), seed=55)
    qos = QoSSpec(latency_slack=1.3)
    analysis = build_analysis(system, qos, kinds=("loads",), seed=0)
    return system, analysis


class TestReplayTrace:
    def test_benign_trace_never_alarms(self, monitor_setup):
        system, analysis = monitor_setup
        trace = np.tile(system.original_loads(), (10, 1))
        outcome = replay_trace(analysis, trace)
        assert outcome.alarm_step is None
        assert outcome.violation_step is None
        assert outcome.sound
        assert outcome.lead_time is None

    def test_ramp_alarm_before_violation(self, monitor_setup):
        system, analysis = monitor_setup
        trace = ramp_trace(system.original_loads(), 50, end_factor=3.0)
        outcome = replay_trace(analysis, trace, name="ramp")
        assert outcome.alarm_step is not None
        assert outcome.violation_step is not None
        assert outcome.alarm_step <= outcome.violation_step
        assert outcome.lead_time >= 0
        assert outcome.sound

    def test_immediate_violation_still_sound(self, monitor_setup):
        system, analysis = monitor_setup
        trace = np.tile(50.0 * system.original_loads(), (3, 1))
        outcome = replay_trace(analysis, trace)
        assert outcome.alarm_step == 0
        assert outcome.violation_step == 0
        assert outcome.sound

    def test_unknown_param_rejected(self, monitor_setup):
        _, analysis = monitor_setup
        with pytest.raises(SpecificationError, match="no perturbation"):
            replay_trace(analysis, np.ones((2, 2)), load_param="bogus")


class TestMonitoringExperiment:
    def test_structure_and_soundness(self, monitor_setup):
        system, analysis = monitor_setup
        result = monitoring_experiment(system, analysis, n_steps=40, seed=0)
        assert result.experiment_id == "E9"
        assert len(result.rows) == 4
        assert result.summary[
            "all traces sound (alarm never after violation)"] is True

    def test_ramp_row_has_lead_time(self, monitor_setup):
        system, analysis = monitor_setup
        result = monitoring_experiment(system, analysis, n_steps=40,
                                       ramp_factor=3.0, seed=0)
        ramp_row = next(r for r in result.rows if r[0] == "ramp")
        assert ramp_row[2] != "-"      # alarmed
        assert ramp_row[4] != "-"      # lead time defined

    def test_table_renders(self, monitor_setup):
        system, analysis = monitor_setup
        out = monitoring_experiment(system, analysis, n_steps=20,
                                    seed=0).to_table()
        assert "E9" in out and "ramp" in out


class TestLeadTimePerShape:
    """Satellite coverage: lead time is reported per drift shape and the
    soundness flag means exactly 'alarm never after violation'."""

    def test_every_shape_reports_a_row(self, monitor_setup):
        system, analysis = monitor_setup
        result = monitoring_experiment(system, analysis, n_steps=40, seed=0)
        assert [r[0] for r in result.rows] == [
            "ramp", "spike", "random walk", "sinusoid"]
        assert all(r[5] == "yes" for r in result.rows)

    def test_lead_time_column_consistent_with_steps(self, monitor_setup):
        system, analysis = monitor_setup
        result = monitoring_experiment(system, analysis, n_steps=40,
                                       ramp_factor=3.0, seed=0)
        for row in result.rows:
            _, _, alarm, violation, lead, _ = row
            if alarm != "-" and violation != "-":
                assert lead == violation - alarm
                assert lead >= 0  # soundness: warning, never hindsight
            else:
                assert lead == "-"

    def test_alarm_without_violation_is_sound_with_no_lead_time(
            self, monitor_setup):
        # Falling loads leave the radius ball (alarm) but only improve the
        # QoS (no violation): sound, and lead time stays undefined.
        system, analysis = monitor_setup
        down = np.linspace(1.0, 0.01, 30)[:, None] * system.original_loads()
        outcome = replay_trace(analysis, down, name="down")
        assert outcome.alarm_step is not None
        assert outcome.violation_step is None
        assert outcome.lead_time is None
        assert outcome.sound

    def test_never_violating_flat_trace_never_alarms(self, monitor_setup):
        system, analysis = monitor_setup
        flat = np.tile(system.original_loads(), (25, 1))
        outcome = replay_trace(analysis, flat)
        assert outcome.alarm_step is None
        assert outcome.violation_step is None
        assert outcome.lead_time is None
        assert outcome.sound
