"""Tests for warm-started degradation curves.

The contract under test: a :func:`degradation_curve` walk reports, at
every operating point, exactly the radii a fresh cold analysis at that
requirement would — bit-identically, for any weighting, worker count,
and warm flag.  Plus the frontend behaviours: feasibility-boundary
points, single-point sweeps, feature selection, and stats accounting.
"""

from __future__ import annotations

import pytest

from repro.analysis.degradation import degradation_curve
from repro.analysis.linear_case import analysis_for_case
from repro.core.degeneracy import LinearCase
from repro.core.features import ToleranceBounds
from repro.core.fepia import RobustnessAnalysis
from repro.core.weighting import NormalizedWeighting, SensitivityWeighting
from repro.exceptions import SpecificationError
from repro.systems.heuristics import MCT
from repro.systems.independent import generate_etc_gamma
from repro.systems.independent.makespan import MakespanSystem

BETAS = (1.1, 1.4, 1.8, 2.5)


def _makespan_analysis(seed=2005, **kw):
    etc = generate_etc_gamma(10, 3, seed=seed)
    system = MakespanSystem(etc, MCT().allocate(etc))
    base = system.robustness_analysis(beta=BETAS[0], seed=seed)
    if not kw:
        return base
    return RobustnessAnalysis(list(base.features), list(base.params),
                              weighting=base.weighting, seed=seed, **kw)


def _cold_points(analysis, betas, specs=None):
    """The per-beta answers of fresh, warm-free analyses."""
    specs = list(analysis.features) if specs is None else specs
    phi = {s.name: float(s.mapping.value(analysis.pi_orig)) for s in specs}
    out = []
    for beta in betas:
        clone = analysis.with_feature_bounds(
            {s.name: ToleranceBounds.upper(beta * phi[s.name])
             for s in specs})
        out.append({s.name: clone.radius(s.name).radius for s in specs})
    return out


class TestCurveMatchesColdRebuild:
    def test_identity_weighting_multi_feature(self):
        analysis = _makespan_analysis()
        curve = degradation_curve(analysis, None, BETAS)
        expected = _cold_points(_makespan_analysis(), BETAS)
        for point, radii in zip(curve.points, expected):
            assert point.radii == radii
            assert point.rho == min(radii.values())
            assert point.critical in radii
            assert radii[point.critical] == point.rho

    def test_radius_dependent_weighting(self):
        case = LinearCase([2.0, 3.0, 0.5], [4.0, 2.0, 10.0], BETAS[0])
        curve = degradation_curve(
            analysis_for_case(case, NormalizedWeighting()), "phi", BETAS)
        expected = _cold_points(
            analysis_for_case(case, NormalizedWeighting()), BETAS)
        assert [p.radii["phi"] for p in curve.points] \
            == [r["phi"] for r in expected]

    def test_sensitivity_weighting_is_flat(self):
        case = LinearCase([2.0, 3.0, 0.5], [4.0, 2.0, 10.0], BETAS[0])
        curve = degradation_curve(
            analysis_for_case(case, SensitivityWeighting()), "phi", BETAS)
        rhos = curve.rhos()
        assert max(rhos) - min(rhos) < 1e-12

    def test_warm_flag_changes_nothing(self):
        warm = degradation_curve(
            _makespan_analysis(method="bisection"), None, BETAS)
        cold = degradation_curve(
            _makespan_analysis(method="bisection"), None, BETAS, warm=False)
        assert [p.radii for p in warm.points] == [p.radii for p in cold.points]
        assert warm.stats["warm_starts"] == warm.stats["solves"]
        assert cold.stats["warm_starts"] == 0

    def test_cascade_branch_matches(self):
        analysis = _makespan_analysis(solver_timeout=30.0)
        assert analysis.cascade is not None
        curve = degradation_curve(analysis, None, BETAS)
        expected = _cold_points(_makespan_analysis(), BETAS)
        for point, radii in zip(curve.points, expected):
            assert point.radii == pytest.approx(radii)


class TestWorkerInvariance:
    def test_fanned_out_curve_is_bit_identical(self):
        from repro.parallel.executor import ParallelExecutor

        serial = degradation_curve(_makespan_analysis(), None, BETAS)
        with ParallelExecutor(2) as pool:
            fanned = degradation_curve(_makespan_analysis(), None, BETAS,
                                       executor=pool)
        assert [p.radii for p in serial.points] \
            == [p.radii for p in fanned.points]
        assert serial.stats == fanned.stats


class TestCurveFrontend:
    def test_betas_validated(self):
        with pytest.raises(SpecificationError):
            degradation_curve(_makespan_analysis(), None, ())

    def test_unknown_feature_rejected(self):
        with pytest.raises(SpecificationError):
            degradation_curve(_makespan_analysis(), "no_such_feature", BETAS)

    def test_single_point_curve(self):
        curve = degradation_curve(_makespan_analysis(), None, (1.3,))
        assert len(curve.points) == 1
        assert curve.stats["points"] == 1
        with pytest.raises(SpecificationError):
            curve.plot()

    def test_plot_renders(self):
        curve = degradation_curve(_makespan_analysis(), None, BETAS)
        art = curve.plot()
        assert "beta" in art and "rho" in art

    def test_feasibility_boundary_points(self):
        """Requirements at or below the original value: rho = 0, no solve."""
        curve = degradation_curve(_makespan_analysis(), None,
                                  (0.5, 0.95, 1.5, 2.0))
        flags = [p.feasible for p in curve.points]
        assert flags == [False, False, True, True]
        for p in curve.points[:2]:
            assert p.rho == 0.0
            assert p.radii == {}
            assert p.critical is None
        assert curve.stats["feasible"] == 2
        # Only feasible points are solved.
        n_specs = len(_makespan_analysis().features)
        assert curve.stats["solves"] == 2 * n_specs

    def test_bounds_for_override(self):
        analysis = _makespan_analysis()
        tau0 = 1.01 * max(
            float(s.mapping.value(analysis.pi_orig))
            for s in analysis.features)

        def bounds_for(spec, beta):
            return ToleranceBounds.upper(beta * tau0)

        curve = degradation_curve(analysis, None, BETAS,
                                  bounds_for=bounds_for)
        expected = []
        for beta in BETAS:
            clone = _makespan_analysis().with_feature_bounds(
                {s.name: ToleranceBounds.upper(beta * tau0)
                 for s in analysis.features})
            expected.append(min(clone.radius(s).radius
                                for s in clone.features))
        assert curve.rhos() == expected

    def test_stats_accounting(self):
        analysis = _makespan_analysis(method="bisection")
        curve = degradation_curve(analysis, None, BETAS)
        stats = curve.stats
        n_specs = len(analysis.features)
        assert stats["points"] == len(BETAS)
        assert stats["families"] == n_specs
        assert stats["solves"] == len(BETAS) * n_specs
        assert stats["warm_starts"] == stats["solves"]
        assert 0 <= stats["warm_hits"] <= stats["warm_starts"]

    def test_feature_selection_by_spec(self):
        analysis = _makespan_analysis()
        spec = analysis.features[0]
        curve = degradation_curve(analysis, spec, BETAS)
        assert curve.feature == spec.name
        assert all(set(p.radii) == {spec.name} for p in curve.points)


class TestWithFeatureBounds:
    def test_returns_independent_clone(self):
        analysis = _makespan_analysis()
        name = analysis.features[0].name
        old = analysis.features[0].feature.bounds
        clone = analysis.with_feature_bounds(
            {name: ToleranceBounds.upper(old.beta_max * 2.0)})
        assert clone is not analysis
        assert analysis.features[0].feature.bounds == old
        assert clone._get_spec(name).feature.bounds.beta_max \
            == old.beta_max * 2.0

    def test_unknown_feature_rejected(self):
        with pytest.raises(SpecificationError):
            _makespan_analysis().with_feature_bounds(
                {"nope": ToleranceBounds.upper(1.0)})
