"""Tests for the rho-vs-beta requirement sweep (E11)."""

import math

import pytest

from repro.analysis.requirement_sweep import _growth_factor, requirement_sweep
from repro.exceptions import SpecificationError


class TestRequirementSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return requirement_sweep([2.0, 3.0, 0.5], [4.0, 2.0, 10.0],
                                 betas=(1.1, 1.5, 2.0, 3.0))

    def test_structure(self, result):
        assert result.experiment_id == "E11"
        assert len(result.rows) == 4

    def test_sensitivity_curve_flat(self, result):
        sens = [row[1] for row in result.rows]
        assert max(sens) - min(sens) < 1e-12
        assert result.summary[
            "sensitivity curve spread (paper: exactly 0)"] < 1e-12

    def test_sensitivity_value_is_inverse_sqrt_n(self, result):
        assert result.rows[0][1] == pytest.approx(1.0 / 3.0 ** 0.5)

    def test_normalized_curve_strictly_increasing(self, result):
        norm = [row[2] for row in result.rows]
        assert all(b > a for a, b in zip(norm, norm[1:]))

    def test_normalized_growth_linear_in_beta_minus_one(self, result):
        rows = {row[0]: row[2] for row in result.rows}
        # (beta - 1) doubles from 1.5 to 2.0: radius must double
        assert rows[2.0] == pytest.approx(2.0 * rows[1.5], rel=1e-9)

    def test_plot_in_summary(self, result):
        assert "beta" in result.summary["plot"]

    def test_betas_validated(self):
        with pytest.raises(SpecificationError):
            requirement_sweep([1.0], [1.0], betas=(1.0, 2.0))
        with pytest.raises(SpecificationError):
            requirement_sweep([1.0], [1.0], betas=())


class TestSingleElementSweep:
    """Regression: a one-point sweep used to crash building the plot."""

    @pytest.fixture(scope="class")
    def result(self):
        return requirement_sweep([2.0, 3.0, 0.5], [4.0, 2.0, 10.0],
                                 betas=(1.5,))

    def test_table_only_output(self, result):
        assert len(result.rows) == 1
        assert result.rows[0][0] == 1.5
        assert "plot" not in result.summary

    def test_values_match_multi_point_sweep(self, result):
        multi = requirement_sweep([2.0, 3.0, 0.5], [4.0, 2.0, 10.0],
                                  betas=(1.5, 2.0))
        assert result.rows[0] == multi.rows[0]

    def test_growth_factor_degenerates_to_one(self, result):
        factor = result.summary["normalized growth factor over the sweep"]
        assert factor == 1.0


class TestGrowthFactorGuard:
    """Regression: a zero or non-finite endpoint used to put inf/nan
    (or a ZeroDivisionError) into the summary."""

    def test_normal_ratio(self):
        assert _growth_factor([2.0, 3.0, 8.0]) == 4.0

    def test_zero_first_value(self):
        assert _growth_factor([0.0, 5.0]) \
            == "undefined (degenerate curve endpoint)"

    def test_non_finite_endpoints(self):
        inf, nan = float("inf"), float("nan")
        for values in ([inf, 2.0], [2.0, inf], [nan, 2.0], [2.0, nan]):
            assert _growth_factor(values) \
                == "undefined (degenerate curve endpoint)"

    def test_summary_is_finite_for_regular_sweeps(self):
        result = requirement_sweep([2.0, 3.0, 0.5], [4.0, 2.0, 10.0],
                                   betas=(1.1, 2.0))
        factor = result.summary["normalized growth factor over the sweep"]
        assert isinstance(factor, float) and math.isfinite(factor)
