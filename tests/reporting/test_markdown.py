"""Tests for markdown rendering."""

import pytest

from repro.analysis.experiments import ExperimentResult
from repro.core.metric import robustness_metric
from repro.reporting.markdown import (
    experiment_to_markdown,
    markdown_table,
    report_to_markdown,
)


class TestMarkdownTable:
    def test_structure(self):
        out = markdown_table(["a", "b"], [[1, 2.5], ["x", 0.123456]])
        lines = out.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert len(lines) == 4

    def test_float_format(self):
        out = markdown_table(["v"], [[0.123456789]], float_fmt=".3g")
        assert "0.123" in out and "0.123456789" not in out

    def test_pipe_escaped(self):
        out = markdown_table(["v"], [["a|b"]])
        assert "a\\|b" in out

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            markdown_table(["a", "b"], [["only"]])


class TestExperimentToMarkdown:
    def test_heading_and_table(self):
        r = ExperimentResult("E99", "demo", ["x"], [[1.0]],
                             summary={"key": "value"})
        out = experiment_to_markdown(r)
        assert out.startswith("### E99 — demo")
        assert "| x |" in out
        assert "- **key**: value" in out

    def test_multiline_summary_fenced(self):
        r = ExperimentResult("E99", "demo", ["x"], [[1.0]],
                             summary={"plot": "line1\nline2"})
        out = experiment_to_markdown(r)
        assert "```" in out
        assert "line1" in out

    def test_summary_suppressed(self):
        r = ExperimentResult("E99", "demo", ["x"], [[1.0]],
                             summary={"k": "v"})
        out = experiment_to_markdown(r, include_summary=False)
        assert "k" not in out.splitlines()[-1]


class TestReportToMarkdown:
    def test_renders(self, two_kind_analysis):
        report = robustness_metric(two_kind_analysis)
        out = report_to_markdown(report)
        assert out.startswith("**rho = ")
        assert "| latency |" in out
        assert "| feature |" in out
