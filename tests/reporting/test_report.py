"""Tests for the combined report."""

from repro.reporting.report import full_report


class TestFullReport:
    def test_contains_metric_table(self, two_kind_analysis):
        out = full_report(two_kind_analysis, validate=False)
        assert "rho" in out
        assert "latency" in out

    def test_validation_section(self, two_kind_analysis):
        out = full_report(two_kind_analysis, validate=True, n_samples=1000,
                          seed=0)
        assert "Monte-Carlo validation" in out
        assert "NO" not in out  # everything sound and tight

    def test_no_validation_section_when_disabled(self, two_kind_analysis):
        out = full_report(two_kind_analysis, validate=False)
        assert "Monte-Carlo" not in out
