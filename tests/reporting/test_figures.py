"""Tests for the Figure-1 boundary reproduction."""

import numpy as np
import pytest

from repro.core.features import ToleranceBounds
from repro.core.mappings import LinearMapping, QuadraticMapping
from repro.exceptions import SpecificationError
from repro.reporting.figures import boundary_figure


class TestBoundaryFigure:
    def test_linear_boundary_points_on_line(self):
        m = LinearMapping([1.0, 1.0])
        fig = boundary_figure(m, np.array([0.5, 0.5]),
                              ToleranceBounds.upper(2.0), n_curve_points=32)
        sums = fig.boundary_points.sum(axis=1)
        np.testing.assert_allclose(sums, 2.0, atol=1e-6)

    def test_radius_matches_closed_form(self):
        m = LinearMapping([1.0, 1.0])
        fig = boundary_figure(m, np.array([0.0, 0.0]),
                              ToleranceBounds.upper(2.0))
        assert fig.radius == pytest.approx(np.sqrt(2))
        np.testing.assert_allclose(fig.witness, [1.0, 1.0], atol=1e-9)

    def test_curved_boundary(self):
        # bilinear f = x*y traced from (1,1); boundary x*y = 2
        Q = np.array([[0.0, 0.5], [0.5, 0.0]])
        m = QuadraticMapping(Q)
        fig = boundary_figure(m, np.array([1.0, 1.0]),
                              ToleranceBounds.upper(2.0), n_curve_points=64)
        prods = fig.boundary_points.prod(axis=1)
        np.testing.assert_allclose(prods, 2.0, atol=1e-6)
        # min distance from (1,1) to xy=2 is at (sqrt2, sqrt2)
        assert fig.radius == pytest.approx(
            np.linalg.norm(np.sqrt(2.0) - np.array([1.0])) * np.sqrt(2),
            rel=1e-4)

    def test_render_contains_markers(self):
        m = LinearMapping([1.0, 1.0])
        fig = boundary_figure(m, np.array([0.5, 0.5]),
                              ToleranceBounds.upper(2.0))
        out = fig.render()
        assert "O" in out and "*" in out and "." in out
        assert "radius" in out

    def test_requires_2d(self):
        with pytest.raises(SpecificationError, match="2-D"):
            boundary_figure(LinearMapping([1.0]), np.array([0.0]),
                            ToleranceBounds.upper(1.0))

    def test_requires_finite_upper(self):
        with pytest.raises(SpecificationError, match="beta_max"):
            boundary_figure(LinearMapping([1.0, 1.0]), np.zeros(2),
                            ToleranceBounds.lower(0.0))

    def test_no_crossing_in_fan_raises(self):
        # f decreases in the positive quadrant: fan never reaches the bound
        m = LinearMapping([-1.0, -1.0])
        with pytest.raises(SpecificationError, match="no boundary"):
            boundary_figure(m, np.array([1.0, 1.0]),
                            ToleranceBounds.upper(0.5),
                            sweep_degrees=(0.0, 90.0))

    def test_full_sweep_finds_other_side(self):
        m = LinearMapping([-1.0, -1.0])
        fig = boundary_figure(m, np.array([1.0, 1.0]),
                              ToleranceBounds.upper(-0.5),
                              sweep_degrees=(0.0, 360.0))
        assert fig.boundary_points.shape[0] > 0
