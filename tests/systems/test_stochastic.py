"""Tests for stochastic robustness estimators."""

import numpy as np
import pytest

from repro.exceptions import SpecificationError
from repro.systems.independent import Allocation, EtcMatrix, MakespanSystem
from repro.systems.independent.etc import generate_etc_gamma
from repro.systems.independent.stochastic import (
    stochastic_robustness_clt,
    stochastic_robustness_mc,
)


@pytest.fixture
def instance():
    etc = generate_etc_gamma(20, 4, seed=61)
    alloc = Allocation(np.arange(20, dtype=np.intp) % 4, 4)
    return etc, alloc


class TestMonteCarlo:
    def test_generous_tau_near_one(self, instance):
        etc, alloc = instance
        tau = 5.0 * alloc.makespan(etc)
        p = stochastic_robustness_mc(etc, alloc, tau, cov=0.2,
                                     n_samples=1000, seed=0)
        assert p == 1.0

    def test_tight_tau_near_zero(self, instance):
        etc, alloc = instance
        tau = 0.2 * alloc.makespan(etc)
        p = stochastic_robustness_mc(etc, alloc, tau, cov=0.2,
                                     n_samples=1000, seed=0)
        assert p == 0.0

    def test_monotone_in_tau(self, instance):
        etc, alloc = instance
        ms = alloc.makespan(etc)
        ps = [stochastic_robustness_mc(etc, alloc, f * ms, cov=0.3,
                                       n_samples=2000, seed=1)
              for f in (0.9, 1.0, 1.1, 1.3)]
        assert all(b >= a for a, b in zip(ps, ps[1:]))

    def test_monotone_in_cov(self, instance):
        etc, alloc = instance
        tau = 1.3 * alloc.makespan(etc)
        ps = [stochastic_robustness_mc(etc, alloc, tau, cov=c,
                                       n_samples=3000, seed=2)
              for c in (0.05, 0.2, 0.6)]
        assert ps[0] >= ps[1] >= ps[2]

    def test_reproducible(self, instance):
        etc, alloc = instance
        tau = 1.2 * alloc.makespan(etc)
        a = stochastic_robustness_mc(etc, alloc, tau, n_samples=500, seed=3)
        b = stochastic_robustness_mc(etc, alloc, tau, n_samples=500, seed=3)
        assert a == b

    def test_bad_params(self, instance):
        etc, alloc = instance
        with pytest.raises(SpecificationError):
            stochastic_robustness_mc(etc, alloc, tau=-1.0)
        with pytest.raises(SpecificationError):
            stochastic_robustness_mc(etc, alloc, tau=1.0, cov=0.0)
        with pytest.raises(SpecificationError):
            stochastic_robustness_mc(etc, alloc, tau=1.0, n_samples=0)


class TestCltApproximation:
    def test_agrees_with_monte_carlo(self, instance):
        etc, alloc = instance
        tau = 1.15 * alloc.makespan(etc)
        mc = stochastic_robustness_mc(etc, alloc, tau, cov=0.2,
                                      n_samples=20000, seed=4)
        clt = stochastic_robustness_clt(etc, alloc, tau, cov=0.2)
        assert clt == pytest.approx(mc, abs=0.03)

    def test_extremes(self, instance):
        etc, alloc = instance
        ms = alloc.makespan(etc)
        assert stochastic_robustness_clt(etc, alloc, 5.0 * ms) > 0.999
        assert stochastic_robustness_clt(etc, alloc, 0.2 * ms) < 1e-6

    def test_empty_machines_ignored(self):
        etc = EtcMatrix(np.ones((2, 3)))
        alloc = Allocation(np.array([0, 0]), 3)
        p = stochastic_robustness_clt(etc, alloc, tau=3.0, cov=0.2)
        assert 0.9 < p <= 1.0

    def test_at_mean_half_per_machine(self):
        # One machine, tau exactly at the mean: CLT gives ~0.5.
        etc = EtcMatrix(np.ones((10, 1)))
        alloc = Allocation(np.zeros(10, dtype=np.intp), 1)
        p = stochastic_robustness_clt(etc, alloc, tau=10.0, cov=0.3)
        assert p == pytest.approx(0.5, abs=1e-9)


class TestRadiusConnection:
    def test_radius_ball_lower_bounds_survival(self, instance):
        """Noise staying within the robustness radius can never violate,
        so P(survive) >= P(||noise|| < radius).  Verified empirically:
        conditioning MC draws on the ball shows zero violations."""
        etc, alloc = instance
        system = MakespanSystem(etc, alloc)
        tau = 1.3 * system.makespan()
        radius = system.analytic_rho(tau=tau)
        means = alloc.assigned_times(etc)
        rng = np.random.default_rng(5)
        shape = 1.0 / 0.2 ** 2
        times = rng.gamma(shape=shape, scale=means / shape,
                          size=(4000, means.size))
        dists = np.linalg.norm(times - means, axis=1)
        inside = dists < radius
        if not inside.any():
            pytest.skip("no draws landed inside the ball at this cov")
        finish = np.zeros((int(inside.sum()), alloc.n_machines))
        for j in range(alloc.n_machines):
            tasks = np.flatnonzero(alloc.assignment == j)
            finish[:, j] = times[inside][:, tasks].sum(axis=1)
        assert np.all(finish.max(axis=1) <= tau + 1e-9)
