"""Tests for ETC matrix generation."""

import numpy as np
import pytest

from repro.exceptions import SpecificationError
from repro.systems.independent.etc import (
    EtcMatrix,
    generate_etc_gamma,
    generate_etc_range_based,
)


class TestEtcMatrix:
    def test_shape_accessors(self):
        etc = EtcMatrix(np.ones((4, 2)))
        assert etc.n_tasks == 4
        assert etc.n_machines == 2

    def test_nonpositive_rejected(self):
        with pytest.raises(SpecificationError, match="positive"):
            EtcMatrix(np.zeros((2, 2)))

    def test_time_lookup(self):
        etc = EtcMatrix(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert etc.time(1, 0) == 3.0

    def test_best_machine(self):
        etc = EtcMatrix(np.array([[5.0, 2.0, 9.0]]))
        assert etc.best_machine(0) == 1

    def test_heterogeneity_positive(self):
        etc = generate_etc_gamma(50, 8, seed=0)
        assert etc.task_heterogeneity() > 0
        assert etc.machine_heterogeneity() > 0


class TestRangeBased:
    def test_shape_and_positivity(self):
        etc = generate_etc_range_based(10, 4, seed=1)
        assert etc.values.shape == (10, 4)
        assert np.all(etc.values > 0)

    def test_reproducible(self):
        a = generate_etc_range_based(5, 3, seed=42)
        b = generate_etc_range_based(5, 3, seed=42)
        np.testing.assert_array_equal(a.values, b.values)

    def test_values_within_product_range(self):
        etc = generate_etc_range_based(100, 5, task_range=10.0,
                                       machine_range=5.0, seed=2)
        assert np.all(etc.values >= 1.0)
        assert np.all(etc.values <= 50.0)

    def test_consistent_rows_sorted(self):
        etc = generate_etc_range_based(20, 6, consistency="consistent", seed=3)
        assert np.all(np.diff(etc.values, axis=1) >= 0)

    def test_semiconsistent_even_columns_sorted(self):
        etc = generate_etc_range_based(20, 6, consistency="semiconsistent",
                                       seed=4)
        even = etc.values[:, ::2]
        assert np.all(np.diff(even, axis=1) >= 0)

    def test_inconsistent_not_all_sorted(self):
        etc = generate_etc_range_based(50, 6, consistency="inconsistent",
                                       seed=5)
        assert not np.all(np.diff(etc.values, axis=1) >= 0)

    def test_bad_consistency(self):
        with pytest.raises(SpecificationError, match="consistency"):
            generate_etc_range_based(5, 3, consistency="sorted")

    def test_bad_ranges(self):
        with pytest.raises(SpecificationError):
            generate_etc_range_based(5, 3, task_range=1.0)

    def test_bad_shape(self):
        with pytest.raises(SpecificationError):
            generate_etc_range_based(0, 3)


class TestGammaBased:
    def test_shape_and_positivity(self):
        etc = generate_etc_gamma(10, 4, seed=1)
        assert etc.values.shape == (10, 4)
        assert np.all(etc.values > 0)

    def test_reproducible(self):
        a = generate_etc_gamma(5, 3, seed=42)
        b = generate_etc_gamma(5, 3, seed=42)
        np.testing.assert_array_equal(a.values, b.values)

    def test_mean_roughly_controlled(self):
        etc = generate_etc_gamma(400, 10, mean_task_time=50.0,
                                 task_cov=0.3, machine_cov=0.3, seed=6)
        assert etc.values.mean() == pytest.approx(50.0, rel=0.15)

    def test_high_cov_more_heterogeneous(self):
        lo = generate_etc_gamma(300, 8, task_cov=0.1, machine_cov=0.3, seed=7)
        hi = generate_etc_gamma(300, 8, task_cov=1.2, machine_cov=0.3, seed=7)
        assert hi.task_heterogeneity() > lo.task_heterogeneity()

    def test_consistent_class(self):
        etc = generate_etc_gamma(10, 5, consistency="consistent", seed=8)
        assert np.all(np.diff(etc.values, axis=1) >= 0)

    def test_bad_cov(self):
        with pytest.raises(SpecificationError):
            generate_etc_gamma(5, 3, task_cov=0.0)

    def test_bad_mean(self):
        with pytest.raises(SpecificationError):
            generate_etc_gamma(5, 3, mean_task_time=-1.0)
