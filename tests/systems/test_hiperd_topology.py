"""Tests for the HiPer-D topology analysis."""

import numpy as np
import pytest

from repro.systems.hiperd import QoSSpec, build_analysis
from repro.systems.hiperd.topology import (
    bottleneck_stages,
    path_overlap_matrix,
    path_slack_table,
    topology_report,
)


@pytest.fixture(scope="module")
def qos():
    return QoSSpec(latency_slack=1.5, throughput_margin=0.9)


class TestPathSlackTable:
    def test_sorted_tightest_first(self, hiperd_system, qos):
        rows = path_slack_table(hiperd_system, qos)
        slacks = [r[3] for r in rows]
        assert slacks == sorted(slacks)

    def test_relative_budget(self, hiperd_system, qos):
        for path, latency, budget, slack in path_slack_table(
                hiperd_system, qos):
            assert budget == pytest.approx(1.5 * latency)
            assert slack == pytest.approx(0.5)

    def test_absolute_override(self, hiperd_system):
        path = hiperd_system.sensor_actuator_paths()[0]
        qos = QoSSpec(latency_slack=1.5,
                      absolute_latency_limits={path: 99.0})
        rows = {tuple(r[0]): r for r in path_slack_table(hiperd_system, qos)}
        assert rows[path][2] == 99.0

    def test_covers_every_path(self, hiperd_system, qos):
        assert len(path_slack_table(hiperd_system, qos)) == len(
            hiperd_system.sensor_actuator_paths())

    def test_critical_latency_feature_is_min_slack_path(self, hiperd_system):
        """With latency-only features and uniform relative budgets the
        smallest-radius latency feature belongs to a path that is also
        tightest in absolute latency terms... under normalized weighting
        the connection is through the feature mapping, so we check
        consistency rather than identity: the critical feature must be a
        real path of the table."""
        qos = QoSSpec(latency_slack=1.5, include_throughput=False)
        analysis = build_analysis(hiperd_system, qos, kinds=("loads",),
                                  seed=0)
        crit = analysis.critical_feature().name
        labels = {"latency[" + "->".join(r[0]) + "]"
                  for r in path_slack_table(hiperd_system, qos)}
        assert crit in labels


class TestBottleneckStages:
    def test_sorted_by_utilisation(self, hiperd_system):
        rows = bottleneck_stages(hiperd_system)
        utils = [r[3] for r in rows]
        assert utils == sorted(utils, reverse=True)

    def test_covers_every_app(self, hiperd_system):
        assert len(bottleneck_stages(hiperd_system)) == \
            hiperd_system.n_applications

    def test_utilisation_consistent(self, hiperd_system):
        for name, t, period, util in bottleneck_stages(hiperd_system):
            assert util == pytest.approx(t / period)
            assert t == pytest.approx(hiperd_system.computation_time(name))

    def test_generator_guarantee_reflected(self, hiperd_system):
        # generator enforces T_comp <= 0.5 * period
        assert all(r[3] <= 0.5 + 1e-9 for r in bottleneck_stages(hiperd_system))


class TestPathOverlap:
    def test_symmetric(self, hiperd_system):
        m = path_overlap_matrix(hiperd_system)
        np.testing.assert_array_equal(m, m.T)

    def test_diagonal_is_path_app_count(self, hiperd_system):
        m = path_overlap_matrix(hiperd_system)
        paths = hiperd_system.sensor_actuator_paths()
        app_names = {a.name for a in hiperd_system.applications}
        for i, p in enumerate(paths):
            assert m[i, i] == sum(1 for n in p if n in app_names)

    def test_offdiag_bounded_by_diag(self, hiperd_system):
        m = path_overlap_matrix(hiperd_system)
        n = m.shape[0]
        for i in range(n):
            for j in range(n):
                assert m[i, j] <= min(m[i, i], m[j, j])


class TestReport:
    def test_renders(self, hiperd_system, qos):
        out = topology_report(hiperd_system, qos, top_k=3)
        assert "tightest" in out
        assert "busiest" in out
