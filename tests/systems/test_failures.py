"""Tests for discrete machine-failure robustness."""

import math

import numpy as np
import pytest

from repro.exceptions import SpecificationError
from repro.systems.independent import (
    Allocation,
    EtcMatrix,
    failure_radius,
    makespan_after_failures,
    survival_probability,
)
from repro.systems.independent.etc import generate_etc_gamma


@pytest.fixture
def balanced():
    """4 identical tasks on 4 identical machines, one each."""
    etc = EtcMatrix(np.ones((4, 4)))
    return etc, Allocation(np.arange(4, dtype=np.intp), 4)


class TestMakespanAfterFailures:
    def test_no_failures_is_plain_makespan(self, balanced):
        etc, alloc = balanced
        assert makespan_after_failures(etc, alloc, ()) == 1.0

    def test_one_failure_rebalances(self, balanced):
        etc, alloc = balanced
        # task of the failed machine goes to some survivor: one machine
        # now runs two unit tasks.
        assert makespan_after_failures(etc, alloc, (0,)) == 2.0

    def test_all_failed_is_infinite(self, balanced):
        etc, alloc = balanced
        assert math.isinf(makespan_after_failures(etc, alloc, range(4)))

    def test_rebalance_uses_mct(self):
        # Failed machine's task is cheap on machine 1, expensive on 2:
        # MCT must pick machine 1.
        etc = EtcMatrix(np.array([[1.0, 2.0, 50.0],
                                  [9.0, 1.0, 1.0]]))
        alloc = Allocation(np.array([0, 2]), 3)
        ms = makespan_after_failures(etc, alloc, (0,))
        # task 0 re-mapped to machine 1 (2.0) not machine 2 (50 + 1)
        assert ms == pytest.approx(2.0)

    def test_bad_machine_index(self, balanced):
        etc, alloc = balanced
        with pytest.raises(SpecificationError):
            makespan_after_failures(etc, alloc, (9,))

    def test_monotone_in_failure_set(self, balanced):
        etc, alloc = balanced
        ms1 = makespan_after_failures(etc, alloc, (0,))
        ms2 = makespan_after_failures(etc, alloc, (0, 1))
        assert ms2 >= ms1


class TestFailureRadius:
    def test_balanced_instance(self, balanced):
        etc, alloc = balanced
        # tau = 2.5: one failure gives 2.0 (ok), two failures give 2.0
        # (4 tasks on 2 machines), three failures give 4.0 (> tau).
        analysis = failure_radius(etc, alloc, tau=2.5)
        assert analysis.radius == 2
        assert analysis.breaking_set is not None
        assert len(analysis.breaking_set) == 3

    def test_tight_tau_gives_zero_radius(self, balanced):
        etc, alloc = balanced
        analysis = failure_radius(etc, alloc, tau=1.5)
        assert analysis.radius == 0
        assert len(analysis.breaking_set) == 1

    def test_generous_tau_survives_everything(self, balanced):
        etc, alloc = balanced
        analysis = failure_radius(etc, alloc, tau=100.0)
        assert analysis.radius == 3  # n_machines - 1
        assert analysis.breaking_set is None

    def test_infeasible_base_rejected(self, balanced):
        etc, alloc = balanced
        with pytest.raises(SpecificationError, match="zero failures"):
            failure_radius(etc, alloc, tau=0.5)

    def test_worst_makespans_monotone(self, balanced):
        etc, alloc = balanced
        analysis = failure_radius(etc, alloc, tau=100.0)
        worst = analysis.worst_makespans
        assert all(b >= a for a, b in zip(worst, worst[1:]))

    def test_random_instance_consistency(self):
        etc = generate_etc_gamma(12, 4, seed=3)
        from repro.systems.heuristics import MCT
        alloc = MCT().allocate(etc)
        tau = 2.0 * alloc.makespan(etc)
        analysis = failure_radius(etc, alloc, tau)
        # the radius-th worst makespan meets tau; radius+1-th (if
        # recorded) exceeds it
        assert analysis.worst_makespans[analysis.radius] <= tau
        if analysis.breaking_set is not None:
            assert analysis.worst_makespans[analysis.radius + 1] > tau


class TestSurvivalProbability:
    def test_p_zero_always_survives(self, balanced):
        etc, alloc = balanced
        assert survival_probability(etc, alloc, tau=1.5, p_fail=0.0,
                                    n_samples=50, seed=0) == 1.0

    def test_p_one_with_generous_tau(self, balanced):
        etc, alloc = balanced
        # all machines fail -> infinite makespan -> never survives
        assert survival_probability(etc, alloc, tau=100.0, p_fail=1.0,
                                    n_samples=50, seed=0) == 0.0

    def test_monotone_in_p(self, balanced):
        etc, alloc = balanced
        probs = [survival_probability(etc, alloc, tau=2.5, p_fail=p,
                                      n_samples=800, seed=1)
                 for p in (0.05, 0.3, 0.7)]
        assert probs[0] >= probs[1] >= probs[2]

    def test_bad_p(self, balanced):
        etc, alloc = balanced
        with pytest.raises(SpecificationError):
            survival_probability(etc, alloc, tau=2.0, p_fail=1.5)

    def test_reproducible(self, balanced):
        etc, alloc = balanced
        a = survival_probability(etc, alloc, tau=2.5, p_fail=0.3,
                                 n_samples=200, seed=5)
        b = survival_probability(etc, alloc, tau=2.5, p_fail=0.3,
                                 n_samples=200, seed=5)
        assert a == b

    def test_generator_seed_matches_int_seed(self, balanced):
        # default_rng must accept an existing Generator and reproduce the
        # stream an equal int seed would produce
        etc, alloc = balanced
        a = survival_probability(etc, alloc, tau=2.5, p_fail=0.3,
                                 n_samples=200, seed=5)
        b = survival_probability(etc, alloc, tau=2.5, p_fail=0.3,
                                 n_samples=200,
                                 seed=np.random.default_rng(5))
        assert a == b

    def test_bad_n_samples(self, balanced):
        etc, alloc = balanced
        with pytest.raises(SpecificationError):
            survival_probability(etc, alloc, tau=2.0, p_fail=0.5,
                                 n_samples=0)


class TestEdgeCases:
    def test_single_machine_system(self):
        # with one machine there is no proper failure subset to search:
        # the radius degenerates to 0 with no breaking set (losing the
        # only machine is total loss, outside the adversarial search)
        etc = EtcMatrix(np.ones((3, 1)))
        alloc = Allocation(np.zeros(3, dtype=np.intp), 1)
        assert makespan_after_failures(etc, alloc, ()) == 3.0
        assert math.isinf(makespan_after_failures(etc, alloc, (0,)))
        analysis = failure_radius(etc, alloc, tau=10.0)
        assert analysis.radius == 0
        assert analysis.breaking_set is None
        assert analysis.worst_makespans == (3.0,)

    def test_tau_exactly_at_worst_makespan_survives(self, balanced):
        # the deadline semantics are "misses only when strictly past tau":
        # tau equal to the worst k-failure makespan still counts as
        # surviving k failures
        etc, alloc = balanced
        analysis = failure_radius(etc, alloc, tau=2.0)
        assert analysis.worst_makespans[2] == 2.0
        assert analysis.radius == 2

    def test_duplicate_failure_indices_collapse(self, balanced):
        etc, alloc = balanced
        assert makespan_after_failures(etc, alloc, (0, 0, 0)) == \
            makespan_after_failures(etc, alloc, (0,))

    def test_negative_machine_index_rejected(self, balanced):
        etc, alloc = balanced
        with pytest.raises(SpecificationError):
            makespan_after_failures(etc, alloc, (-1,))

    def test_zero_radius_with_breaking_singleton(self):
        # one giant task: losing its machine forces it onto the slow one
        etc = EtcMatrix(np.array([[1.0, 100.0]]))
        alloc = Allocation(np.array([0], dtype=np.intp), 2)
        analysis = failure_radius(etc, alloc, tau=50.0)
        assert analysis.radius == 0
        assert analysis.breaking_set == (0,)

    def test_survival_zero_samples_all_fail_probability_one(self, balanced):
        # p_fail=1 with finite tau: every draw fails all machines
        etc, alloc = balanced
        p = survival_probability(etc, alloc, tau=2.5, p_fail=1.0,
                                 n_samples=64, seed=0)
        assert p == 0.0
