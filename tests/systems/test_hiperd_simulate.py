"""Tests for the HiPer-D dataflow simulator and direct feature evaluation."""

import numpy as np
import pytest

from repro.exceptions import SpecificationError
from repro.systems.hiperd.constraints import build_feature_specs
from repro.systems.hiperd.simulate import simulate_dataflow, steady_state_features
from repro.systems.hiperd.timing import FlatLayout


class TestSteadyStateFeatures:
    def test_matches_mappings_at_origin(self, hiperd_system, hiperd_qos):
        layout = FlatLayout(hiperd_system, ("loads", "exec", "msgsize"))
        specs = build_feature_specs(hiperd_system, layout, hiperd_qos)
        origin = layout.flat_origin()
        direct = steady_state_features(hiperd_system)
        for s in specs:
            assert s.name in direct
            assert s.mapping.value(origin) == pytest.approx(direct[s.name])

    def test_matches_mappings_perturbed(self, hiperd_system, hiperd_qos, rng):
        layout = FlatLayout(hiperd_system, ("loads", "exec", "msgsize"))
        specs = build_feature_specs(hiperd_system, layout, hiperd_qos)
        x = layout.flat_origin() * rng.uniform(0.7, 1.6, layout.dimension)
        n_s, n_a = hiperd_system.n_sensors, hiperd_system.n_applications
        direct = steady_state_features(
            hiperd_system, loads=x[:n_s], unit_times=x[n_s:n_s + n_a],
            sizes=x[n_s + n_a:])
        for s in specs:
            assert s.mapping.value(x) == pytest.approx(direct[s.name])

    def test_includes_utilization_keys(self, hiperd_system):
        direct = steady_state_features(hiperd_system)
        assert any(k.startswith("utilization[") for k in direct)


class TestSimulateDataflow:
    def test_constant_trace_matches_max_path_latency(self, hiperd_system):
        loads = np.tile(hiperd_system.original_loads(), (4, 1))
        rec = simulate_dataflow(hiperd_system, loads)
        worst_path = max(hiperd_system.path_latency(p)
                         for p in hiperd_system.sensor_actuator_paths())
        assert rec.actuator_latencies.max() == pytest.approx(worst_path)

    def test_latencies_shape(self, hiperd_system):
        loads = np.tile(hiperd_system.original_loads(), (3, 1))
        rec = simulate_dataflow(hiperd_system, loads)
        assert rec.actuator_latencies.shape == (3, len(hiperd_system.actuators))
        assert rec.completion_times.shape[0] == 3

    def test_latency_monotone_in_load(self, hiperd_system):
        base = hiperd_system.original_loads()
        loads = np.vstack([base, 2.0 * base])
        rec = simulate_dataflow(hiperd_system, loads)
        assert np.all(rec.actuator_latencies[1] >= rec.actuator_latencies[0])

    def test_violations_flagged(self, hiperd_system):
        base = hiperd_system.original_loads()
        worst = max(hiperd_system.path_latency(p)
                    for p in hiperd_system.sensor_actuator_paths())
        loads = np.vstack([base, 10.0 * base])
        rec = simulate_dataflow(hiperd_system, loads, deadline=1.5 * worst)
        assert not rec.violations[0]
        assert rec.violations[1]

    def test_unit_time_trace(self, hiperd_system):
        base = hiperd_system.original_loads()
        loads = np.tile(base, (2, 1))
        unit = np.tile(hiperd_system.original_unit_times(), (2, 1))
        unit[1] *= 3.0
        rec = simulate_dataflow(hiperd_system, loads, unit_time_trace=unit)
        assert rec.actuator_latencies[1].max() > rec.actuator_latencies[0].max()

    def test_size_trace(self, hiperd_system):
        base = hiperd_system.original_loads()
        loads = np.tile(base, (2, 1))
        sizes = np.tile(hiperd_system.original_msg_sizes(), (2, 1))
        sizes[1] *= 5.0
        rec = simulate_dataflow(hiperd_system, loads, size_trace=sizes)
        assert rec.actuator_latencies[1].max() >= rec.actuator_latencies[0].max()

    def test_wrong_load_columns(self, hiperd_system):
        with pytest.raises(SpecificationError, match="columns"):
            simulate_dataflow(hiperd_system, np.ones((2, 99)))

    def test_wrong_trace_shape(self, hiperd_system):
        loads = np.tile(hiperd_system.original_loads(), (2, 1))
        with pytest.raises(SpecificationError, match="shape"):
            simulate_dataflow(hiperd_system, loads,
                              unit_time_trace=np.ones((3, 2)))

    def test_node_order_topological(self, hiperd_system):
        loads = np.tile(hiperd_system.original_loads(), (1, 1))
        rec = simulate_dataflow(hiperd_system, loads)
        pos = {n: i for i, n in enumerate(rec.node_order)}
        for u, v in hiperd_system.graph.edges:
            assert pos[u] < pos[v]
