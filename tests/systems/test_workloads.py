"""Tests for the canned workload suite."""

import pytest

from repro.exceptions import SpecificationError
from repro.systems.independent.workloads import (
    WorkloadSpec,
    braun_suite,
    generate_workload,
)


class TestWorkloadSpec:
    def test_valid(self):
        spec = WorkloadSpec("t", 10, 4, "high", "low", "consistent")
        assert spec.n_tasks == 10

    def test_bad_heterogeneity(self):
        with pytest.raises(SpecificationError):
            WorkloadSpec("t", 10, 4, "medium", "low", "consistent")

    def test_bad_machine_heterogeneity(self):
        with pytest.raises(SpecificationError):
            WorkloadSpec("t", 10, 4, "high", "med", "consistent")

    def test_bad_size(self):
        with pytest.raises(SpecificationError):
            WorkloadSpec("t", 0, 4, "high", "low", "consistent")


class TestBraunSuite:
    def test_twelve_scenarios(self):
        suite = braun_suite()
        assert len(suite) == 12

    def test_names_unique(self):
        names = [s.name for s in braun_suite()]
        assert len(set(names)) == 12

    def test_covers_grid(self):
        names = {s.name for s in braun_suite()}
        assert "hihi-consistent" in names
        assert "lolo-inconsistent" in names
        assert "hilo-semiconsistent" in names

    def test_size_passthrough(self):
        suite = braun_suite(n_tasks=7, n_machines=2)
        assert all(s.n_tasks == 7 and s.n_machines == 2 for s in suite)


class TestGenerateWorkload:
    def test_shape(self):
        spec = WorkloadSpec("t", 9, 3, "high", "low", "inconsistent")
        etc = generate_workload(spec, seed=0)
        assert etc.values.shape == (9, 3)

    def test_reproducible(self):
        spec = WorkloadSpec("t", 5, 2, "low", "low", "consistent")
        a = generate_workload(spec, seed=3)
        b = generate_workload(spec, seed=3)
        assert (a.values == b.values).all()

    def test_high_vs_low_heterogeneity(self):
        hi = WorkloadSpec("hi", 400, 4, "high", "low", "inconsistent")
        lo = WorkloadSpec("lo", 400, 4, "low", "low", "inconsistent")
        etc_hi = generate_workload(hi, seed=1)
        etc_lo = generate_workload(lo, seed=1)
        assert etc_hi.task_heterogeneity() > etc_lo.task_heterogeneity()

    def test_bad_consistency_propagates(self):
        spec = WorkloadSpec("t", 5, 2, "low", "low", "diagonal")
        with pytest.raises(SpecificationError):
            generate_workload(spec, seed=0)
