"""Tests for the allocation heuristics."""

import numpy as np
import pytest

from repro.systems.heuristics import (
    MCT,
    MET,
    OLB,
    MaxMin,
    MinMin,
    RandomAllocator,
    RoundRobin,
    Sufferage,
)
from repro.systems.independent.etc import EtcMatrix, generate_etc_gamma

ALL = [OLB(), MET(), MCT(), RoundRobin(), MinMin(), MaxMin(), Sufferage(),
       RandomAllocator(0)]


@pytest.fixture
def etc():
    return generate_etc_gamma(20, 4, seed=11)


class TestAllHeuristics:
    @pytest.mark.parametrize("heuristic", ALL, ids=lambda h: h.name)
    def test_valid_allocation(self, heuristic, etc):
        alloc = heuristic.allocate(etc)
        assert alloc.n_tasks == etc.n_tasks
        assert alloc.n_machines == etc.n_machines

    @pytest.mark.parametrize("heuristic", ALL, ids=lambda h: h.name)
    def test_single_machine_trivial(self, heuristic):
        etc = generate_etc_gamma(5, 1, seed=0)
        alloc = heuristic.allocate(etc)
        assert np.all(alloc.assignment == 0)

    @pytest.mark.parametrize(
        "heuristic", [OLB(), MET(), MCT(), RoundRobin(), MinMin(), MaxMin(),
                      Sufferage()], ids=lambda h: h.name)
    def test_deterministic(self, heuristic, etc):
        a = heuristic.allocate(etc)
        b = heuristic.allocate(etc)
        np.testing.assert_array_equal(a.assignment, b.assignment)


class TestMET:
    def test_each_task_on_its_fastest_machine(self, etc):
        alloc = MET().allocate(etc)
        expected = np.argmin(etc.values, axis=1)
        np.testing.assert_array_equal(alloc.assignment, expected)


class TestMCT:
    def test_beats_met_on_contended_instance(self):
        # One machine dominates every task: MET piles everything on it,
        # MCT spreads.
        values = np.column_stack([np.full(6, 1.0), np.full(6, 1.2)])
        etc = EtcMatrix(values)
        met_ms = MET().allocate(etc).makespan(etc)
        mct_ms = MCT().allocate(etc).makespan(etc)
        assert mct_ms < met_ms

    def test_greedy_invariant(self, etc):
        # After MCT, no single task reassignment made at its decision time
        # could be checked post-hoc easily, but makespan must be at most
        # the serial sum on one machine.
        alloc = MCT().allocate(etc)
        assert alloc.makespan(etc) <= etc.values.min(axis=1).sum()


class TestOLB:
    def test_balances_counts_for_uniform_etc(self):
        etc = EtcMatrix(np.ones((8, 4)))
        alloc = OLB().allocate(etc)
        counts = np.bincount(alloc.assignment, minlength=4)
        np.testing.assert_array_equal(counts, [2, 2, 2, 2])


class TestRoundRobin:
    def test_cyclic(self):
        etc = EtcMatrix(np.ones((5, 2)))
        alloc = RoundRobin().allocate(etc)
        np.testing.assert_array_equal(alloc.assignment, [0, 1, 0, 1, 0])


class TestBatchHeuristics:
    def test_minmin_on_textbook_instance(self):
        # Classic property: min-min fills machines with short tasks first
        # and achieves a makespan no worse than MCT here.
        etc = generate_etc_gamma(30, 5, seed=12)
        mm = MinMin().allocate(etc).makespan(etc)
        mct = MCT().allocate(etc).makespan(etc)
        assert mm <= mct * 1.25  # heuristics are close; guard regression

    def test_maxmin_differs_from_minmin(self, etc):
        a = MinMin().allocate(etc).assignment
        b = MaxMin().allocate(etc).assignment
        assert not np.array_equal(a, b)

    def test_sufferage_valid_with_two_machines(self):
        etc = generate_etc_gamma(10, 2, seed=13)
        alloc = Sufferage().allocate(etc)
        assert alloc.n_tasks == 10

    def test_batch_heuristics_assign_each_task_once(self, etc):
        for h in (MinMin(), MaxMin(), Sufferage()):
            alloc = h.allocate(etc)
            assert alloc.assignment.size == etc.n_tasks


class TestRandomAllocator:
    def test_seeded_reproducibility(self, etc):
        a = RandomAllocator(7).allocate(etc)
        b = RandomAllocator(7).allocate(etc)
        np.testing.assert_array_equal(a.assignment, b.assignment)

    def test_uses_all_machines_eventually(self):
        etc = generate_etc_gamma(200, 4, seed=1)
        alloc = RandomAllocator(3).allocate(etc)
        assert set(np.unique(alloc.assignment)) == {0, 1, 2, 3}
