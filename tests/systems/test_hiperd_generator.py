"""Tests for the random HiPer-D system generator."""

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import SpecificationError
from repro.systems.hiperd.generator import (
    HiPerDGenerationSpec,
    generate_hiperd_system,
)


class TestSpecValidation:
    def test_defaults_valid(self):
        HiPerDGenerationSpec()

    def test_bad_population(self):
        with pytest.raises(SpecificationError):
            HiPerDGenerationSpec(n_sensors=0)

    def test_bad_layers(self):
        with pytest.raises(SpecificationError):
            HiPerDGenerationSpec(app_layers=())
        with pytest.raises(SpecificationError):
            HiPerDGenerationSpec(app_layers=(2, 0))

    def test_bad_range(self):
        with pytest.raises(SpecificationError):
            HiPerDGenerationSpec(load_range=(5.0, 1.0))

    def test_bad_edge_prob(self):
        with pytest.raises(SpecificationError):
            HiPerDGenerationSpec(extra_edge_prob=1.5)


class TestGeneratedSystems:
    def test_reproducible(self):
        a = generate_hiperd_system(seed=5)
        b = generate_hiperd_system(seed=5)
        assert [m.speed for m in a.machines] == [m.speed for m in b.machines]
        assert [m.size for m in a.messages] == [m.size for m in b.messages]

    def test_populations(self):
        spec = HiPerDGenerationSpec(n_sensors=3, n_actuators=2, n_machines=5,
                                    app_layers=(4, 3, 2))
        s = generate_hiperd_system(spec, seed=1)
        assert s.n_sensors == 3
        assert len(s.actuators) == 2
        assert len(s.machines) == 5
        assert s.n_applications == 9

    def test_dag_and_connectivity(self):
        s = generate_hiperd_system(seed=2)
        assert nx.is_directed_acyclic_graph(s.graph)
        # every sensor reaches some actuator
        act_names = {a.name for a in s.actuators}
        for sensor in s.sensors:
            reach = nx.descendants(s.graph, sensor.name)
            assert reach & act_names

    def test_every_app_fed(self):
        s = generate_hiperd_system(seed=3)
        for app in s.applications:
            assert s.graph.in_degree(app.name) > 0

    def test_feasibility_headroom(self):
        # Generator guarantees computation times within half the driving
        # period.
        s = generate_hiperd_system(seed=4)
        for app in s.applications:
            w = s.reach_weights()[s.app_index(app.name)]
            period = min(s.sensors[int(i)].period for i in np.flatnonzero(w))
            assert s.computation_time(app.name) <= 0.5 * period + 1e-12

    def test_random_placement_mode(self):
        spec = HiPerDGenerationSpec(balanced_placement=False)
        s = generate_hiperd_system(spec, seed=6)
        assert len(s.allocation) == s.n_applications

    def test_paths_exist(self):
        s = generate_hiperd_system(seed=7)
        assert len(s.sensor_actuator_paths()) >= 1

    @pytest.mark.parametrize("seed", range(5))
    def test_many_seeds_valid(self, seed):
        s = generate_hiperd_system(seed=seed)
        assert s.n_applications > 0
