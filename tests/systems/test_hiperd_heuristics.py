"""Tests for the HiPer-D placement heuristics."""

import pytest

from repro.systems.hiperd.heuristics import (
    PLACEMENT_HEURISTICS,
    balanced_work_placement,
    colocate_paths_placement,
    fastest_machine_placement,
    random_placement,
    replace_allocation,
)


class TestReplaceAllocation:
    def test_returns_new_system(self, hiperd_system):
        alloc = {a.name: 0 for a in hiperd_system.applications}
        replaced = replace_allocation(hiperd_system, alloc)
        assert replaced is not hiperd_system
        assert replaced.allocation == alloc
        assert hiperd_system.allocation != alloc or True  # original intact

    def test_topology_shared(self, hiperd_system):
        alloc = {a.name: 0 for a in hiperd_system.applications}
        replaced = replace_allocation(hiperd_system, alloc)
        assert replaced.sensor_actuator_paths() == \
            hiperd_system.sensor_actuator_paths()


class TestHeuristics:
    @pytest.mark.parametrize("name", sorted(PLACEMENT_HEURISTICS))
    def test_produces_valid_placement(self, hiperd_system, name):
        placed = PLACEMENT_HEURISTICS[name](hiperd_system, seed=0)
        assert set(placed.allocation) == {
            a.name for a in hiperd_system.applications}
        for m in placed.allocation.values():
            assert 0 <= m < len(hiperd_system.machines)

    def test_fastest_uses_one_machine(self, hiperd_system):
        placed = fastest_machine_placement(hiperd_system)
        machines = set(placed.allocation.values())
        assert len(machines) == 1
        j = machines.pop()
        speeds = [m.speed for m in hiperd_system.machines]
        assert speeds[j] == max(speeds)

    def test_balanced_spreads_work(self, hiperd_system):
        placed = balanced_work_placement(hiperd_system)
        # with several apps, balanced must use more than one machine
        # whenever there is more than one machine
        if (len(hiperd_system.machines) > 1
                and hiperd_system.n_applications > 1):
            assert len(set(placed.allocation.values())) > 1

    def test_colocate_zeroes_intra_path_messages(self, hiperd_system):
        placed = colocate_paths_placement(hiperd_system)
        # at least the first path's consecutive app pairs are co-located
        path = placed.sensor_actuator_paths()[0]
        app_names = {a.name for a in placed.applications}
        apps_on_path = [n for n in path if n in app_names]
        machines = {placed.allocation[a] for a in apps_on_path}
        assert len(machines) == 1

    def test_random_reproducible(self, hiperd_system):
        a = random_placement(hiperd_system, seed=4)
        b = random_placement(hiperd_system, seed=4)
        assert a.allocation == b.allocation

    def test_balanced_work_lower_utilization_spread(self, hiperd_system):
        balanced = balanced_work_placement(hiperd_system)
        piled = fastest_machine_placement(hiperd_system)

        def util_spread(sys_):
            utils = []
            for j in range(len(sys_.machines)):
                apps = sys_.apps_on_machine(j)
                utils.append(sum(sys_.computation_time(a) for a in apps))
            return max(utils) - min(utils)

        assert util_spread(balanced) <= util_spread(piled)
