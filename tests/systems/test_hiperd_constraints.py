"""Tests for HiPer-D QoS constraints and the analysis builder."""

import numpy as np
import pytest

from repro.core.weighting import NormalizedWeighting, SensitivityWeighting
from repro.exceptions import SpecificationError
from repro.systems.hiperd.constraints import (
    QoSSpec,
    build_analysis,
    build_feature_specs,
)
from repro.systems.hiperd.timing import FlatLayout


class TestQoSSpec:
    def test_defaults_valid(self):
        QoSSpec()

    def test_latency_slack_above_one(self):
        with pytest.raises(SpecificationError):
            QoSSpec(latency_slack=1.0)

    def test_throughput_margin_range(self):
        with pytest.raises(SpecificationError):
            QoSSpec(throughput_margin=0.0)
        with pytest.raises(SpecificationError):
            QoSSpec(throughput_margin=1.1)

    def test_no_family_rejected(self):
        with pytest.raises(SpecificationError, match="no feature"):
            QoSSpec(include_latency=False, include_throughput=False)


class TestBuildFeatureSpecs:
    def test_latency_features_per_path(self, hiperd_system, hiperd_qos):
        layout = FlatLayout(hiperd_system, ("loads",))
        specs = build_feature_specs(hiperd_system, layout, hiperd_qos)
        latency = [s for s in specs if s.name.startswith("latency[")]
        assert len(latency) == len(hiperd_system.sensor_actuator_paths())

    def test_throughput_features_per_app(self, hiperd_system, hiperd_qos):
        layout = FlatLayout(hiperd_system, ("loads",))
        specs = build_feature_specs(hiperd_system, layout, hiperd_qos)
        thr = [s for s in specs if s.name.startswith("throughput[")]
        assert len(thr) == hiperd_system.n_applications

    def test_original_point_feasible(self, hiperd_system, hiperd_qos):
        layout = FlatLayout(hiperd_system, ("loads", "exec", "msgsize"))
        specs = build_feature_specs(hiperd_system, layout, hiperd_qos)
        origin = layout.flat_origin()
        for s in specs:
            assert s.feature.is_satisfied(s.mapping.value(origin))

    def test_latency_bound_is_slack_times_original(self, hiperd_system):
        qos = QoSSpec(latency_slack=2.0, include_throughput=False)
        layout = FlatLayout(hiperd_system, ("loads",))
        specs = build_feature_specs(hiperd_system, layout, qos)
        origin = layout.flat_origin()
        for s in specs:
            assert s.feature.bounds.beta_max == pytest.approx(
                2.0 * s.mapping.value(origin))

    def test_absolute_latency_limit_override(self, hiperd_system):
        path = hiperd_system.sensor_actuator_paths()[0]
        qos = QoSSpec(latency_slack=1.5, include_throughput=False,
                      absolute_latency_limits={path: 100.0})
        layout = FlatLayout(hiperd_system, ("loads",))
        specs = build_feature_specs(hiperd_system, layout, qos)
        label = "->".join(path)
        spec = next(s for s in specs if s.name == f"latency[{label}]")
        assert spec.feature.bounds.beta_max == 100.0

    def test_message_throughput_features(self, hiperd_system):
        qos = QoSSpec(include_message_throughput=True)
        layout = FlatLayout(hiperd_system, ("msgsize",))
        specs = build_feature_specs(hiperd_system, layout, qos)
        assert any(s.name.startswith("msg_throughput[") for s in specs)

    def test_utilization_features(self, hiperd_system):
        qos = QoSSpec(include_utilization=True)
        layout = FlatLayout(hiperd_system, ("loads",))
        specs = build_feature_specs(hiperd_system, layout, qos)
        util = [s for s in specs if s.name.startswith("utilization[")]
        loaded = sum(1 for j in range(len(hiperd_system.machines))
                     if hiperd_system.apps_on_machine(j))
        assert len(util) == loaded

    def test_infeasible_qos_rejected(self, hiperd_system):
        # An absurdly tight throughput margin makes the original point
        # infeasible, which must be reported at build time.
        qos = QoSSpec(throughput_margin=1e-9)
        layout = FlatLayout(hiperd_system, ("loads",))
        with pytest.raises(SpecificationError, match="violated"):
            build_feature_specs(hiperd_system, layout, qos)


class TestBuildAnalysis:
    def test_three_kinds(self, hiperd_system, hiperd_qos):
        ana = build_analysis(hiperd_system, hiperd_qos, seed=0)
        assert {p.name for p in ana.params} == {"loads", "exec", "msgsize"}
        assert np.isfinite(ana.rho())
        assert ana.rho() > 0

    def test_single_kind(self, hiperd_system, hiperd_qos):
        ana = build_analysis(hiperd_system, hiperd_qos, kinds=("loads",),
                             seed=0)
        assert [p.name for p in ana.params] == ["loads"]
        assert ana.rho() > 0

    def test_default_weighting_is_normalized(self, hiperd_system, hiperd_qos):
        ana = build_analysis(hiperd_system, hiperd_qos, seed=0)
        assert isinstance(ana.weighting, NormalizedWeighting)

    def test_sensitivity_weighting_runs(self, hiperd_system, hiperd_qos):
        ana = build_analysis(hiperd_system, hiperd_qos,
                             kinds=("loads", "msgsize"),
                             weighting=SensitivityWeighting(), seed=0)
        assert np.isfinite(ana.rho())

    def test_more_kinds_cannot_increase_normalized_rho(self, hiperd_system,
                                                       hiperd_qos):
        # Adding a perturbation kind adds degrees of freedom for the
        # adversary; with normalized weighting (shared P-space) the radius
        # cannot grow.
        rho_one = build_analysis(hiperd_system, hiperd_qos, kinds=("loads",),
                                 seed=0).rho()
        rho_all = build_analysis(hiperd_system, hiperd_qos, seed=0).rho()
        assert rho_all <= rho_one + 1e-9

    def test_norm_parameter_respected(self, hiperd_system, hiperd_qos):
        rho_l1 = build_analysis(hiperd_system, hiperd_qos, kinds=("loads",),
                                norm=1, seed=0).rho()
        rho_linf = build_analysis(hiperd_system, hiperd_qos, kinds=("loads",),
                                  norm=np.inf, seed=0).rho()
        assert rho_l1 >= rho_linf - 1e-9
