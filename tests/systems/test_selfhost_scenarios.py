"""Tests for the self-host shock catalogue."""

from __future__ import annotations

import numpy as np
import pytest

from repro.systems.selfhost import (
    SelfhostSystem,
    selfhost_scenario_catalogue,
)


@pytest.fixture
def system():
    return SelfhostSystem.baseline(n_tasks=12, workers=2, seed=5)


class TestCatalogue:
    def test_names_and_kinds(self, system):
        catalogue = selfhost_scenario_catalogue(system)
        by_name = {sc.name: sc for sc in catalogue}
        assert set(by_name) == {"retry-storm", "cost-spike", "cost-drift",
                                "failure-surge"}
        assert by_name["retry-storm"].kind == "correlated"
        assert by_name["cost-spike"].kind == "spike"
        assert by_name["cost-drift"].kind == "drift"
        assert by_name["failure-surge"].kind == "drift"

    def test_multi_kind_star_entry_touches_everything(self, system):
        catalogue = selfhost_scenario_catalogue(system)
        storm = next(sc for sc in catalogue if sc.name == "retry-storm")
        assert storm.params == ()  # empty means all parameters
        params = system.perturbation_parameters()
        moved = storm.displacements(seed=3, trajectory=0, step=1,
                                    params=params)
        assert set(moved) == {"task_costs", "worker_fail_rates"}
        assert moved["task_costs"].shape == (system.n_tasks,)
        assert moved["worker_fail_rates"].shape == (system.workers,)

    def test_single_kind_entries_scope_their_parameter(self, system):
        catalogue = selfhost_scenario_catalogue(system)
        surge = next(sc for sc in catalogue if sc.name == "failure-surge")
        moved = surge.displacements(seed=3, trajectory=0, step=0,
                                    params=system.perturbation_parameters())
        assert set(moved) == {"worker_fail_rates"}

    def test_magnitudes_scale_with_the_system(self, system):
        small = selfhost_scenario_catalogue(system,
                                            relative_magnitude=0.1)
        large = selfhost_scenario_catalogue(system,
                                            relative_magnitude=0.8)
        for a, b in zip(small, large):
            if a.name == "failure-surge":
                continue  # scaled from the mean rate, not the knob
            assert b.magnitude == pytest.approx(8.0 * a.magnitude)
        mean_cost = float(np.mean(system.costs))
        assert small[0].magnitude == pytest.approx(0.1 * mean_cost)

    def test_steps_knob_propagates(self, system):
        for sc in selfhost_scenario_catalogue(system, n_steps=7):
            assert sc.n_steps == 7
