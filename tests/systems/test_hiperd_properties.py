"""Property-based tests over randomly generated HiPer-D systems.

Hypothesis drives the *generator parameters* (not the internals), and the
invariants must hold for every system produced: mapping/direct-evaluation
agreement, latency monotonicity, and radius consistency.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.systems.hiperd.constraints import QoSSpec, build_feature_specs
from repro.systems.hiperd.generator import (
    HiPerDGenerationSpec,
    generate_hiperd_system,
)
from repro.systems.hiperd.simulate import simulate_dataflow, steady_state_features
from repro.systems.hiperd.timing import FlatLayout

gen_params = st.fixed_dictionaries({
    "n_sensors": st.integers(1, 3),
    "n_actuators": st.integers(1, 2),
    "n_machines": st.integers(2, 4),
    "layers": st.lists(st.integers(1, 3), min_size=1, max_size=3),
    "seed": st.integers(0, 10_000),
})

relaxed = settings(max_examples=15, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])


def make_system(params):
    spec = HiPerDGenerationSpec(
        n_sensors=params["n_sensors"],
        n_actuators=params["n_actuators"],
        n_machines=params["n_machines"],
        app_layers=tuple(params["layers"]))
    return generate_hiperd_system(spec, seed=params["seed"])


class TestGeneratedSystemInvariants:
    @given(params=gen_params)
    @relaxed
    def test_mappings_agree_with_direct_evaluation(self, params):
        system = make_system(params)
        qos = QoSSpec(latency_slack=1.5, throughput_margin=1.0)
        layout = FlatLayout(system, ("loads", "exec", "msgsize"))
        origin = layout.flat_origin()
        direct = steady_state_features(system)
        for spec in build_feature_specs(system, layout, qos):
            assert spec.mapping.value(origin) == pytest.approx(
                direct[spec.name], rel=1e-9, abs=1e-12)

    @given(params=gen_params,
           factor=st.floats(min_value=1.1, max_value=4.0))
    @relaxed
    def test_latency_monotone_in_loads(self, params, factor):
        system = make_system(params)
        base = system.original_loads()
        for path in system.sensor_actuator_paths():
            l0 = system.path_latency(path)
            l1 = system.path_latency(path, loads=factor * base)
            assert l1 >= l0 - 1e-12

    @given(params=gen_params)
    @relaxed
    def test_simulator_worst_latency_is_max_path(self, params):
        system = make_system(params)
        rec = simulate_dataflow(system,
                                system.original_loads()[None, :])
        worst_path = max(system.path_latency(p)
                         for p in system.sensor_actuator_paths())
        assert rec.actuator_latencies.max() == pytest.approx(worst_path)

    @given(params=gen_params)
    @relaxed
    def test_reach_weights_are_binary_and_complete(self, params):
        system = make_system(params)
        w = system.reach_weights()
        assert set(np.unique(w)) <= {0.0, 1.0}
        # every application is reached by at least one sensor
        assert np.all(w.sum(axis=1) >= 1.0)

    @given(params=gen_params)
    @relaxed
    def test_generator_feasibility_guarantee(self, params):
        system = make_system(params)
        # build_feature_specs raises on infeasibility, so constructing the
        # default-QoS specs is itself the assertion
        layout = FlatLayout(system, ("loads",))
        specs = build_feature_specs(
            system, layout, QoSSpec(latency_slack=1.3,
                                    throughput_margin=1.0))
        assert specs
