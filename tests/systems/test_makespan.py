"""Tests for the makespan FePIA wiring (the TPDS 2004 example)."""

import math

import numpy as np
import pytest

from repro.core.weighting import NormalizedWeighting
from repro.exceptions import SpecificationError
from repro.systems.independent.allocation import Allocation
from repro.systems.independent.etc import EtcMatrix
from repro.systems.independent.makespan import MakespanSystem


@pytest.fixture
def system():
    etc = EtcMatrix(np.array([[2.0, 9.0],
                              [4.0, 9.0],
                              [9.0, 5.0]]))
    return MakespanSystem(etc, Allocation(np.array([0, 0, 1]), 2))


class TestPlainQuantities:
    def test_original_times(self, system):
        np.testing.assert_allclose(system.original_times(), [2.0, 4.0, 5.0])

    def test_finish_times(self, system):
        np.testing.assert_allclose(system.machine_finish_times(), [6.0, 5.0])

    def test_makespan(self, system):
        assert system.makespan() == 6.0

    def test_background_loads_added(self):
        etc = EtcMatrix(np.array([[2.0, 9.0]]))
        sys2 = MakespanSystem(etc, Allocation(np.array([0]), 2),
                              background_loads=np.array([1.0, 3.0]))
        np.testing.assert_allclose(sys2.machine_finish_times(), [3.0, 3.0])

    def test_background_shape_checked(self):
        etc = EtcMatrix(np.array([[2.0, 9.0]]))
        with pytest.raises(SpecificationError):
            MakespanSystem(etc, Allocation(np.array([0]), 2),
                           background_loads=np.array([1.0]))

    def test_negative_background_rejected(self):
        etc = EtcMatrix(np.array([[2.0, 9.0]]))
        with pytest.raises(SpecificationError):
            MakespanSystem(etc, Allocation(np.array([0]), 2),
                           background_loads=np.array([-1.0, 0.0]))


class TestAnalyticClosedForm:
    def test_radii_formula(self, system):
        # tau = 1.5 * 6 = 9; machine 0: (9-6)/sqrt(2); machine 1: (9-5)/1.
        radii = system.analytic_radii(1.5)
        assert radii[0] == pytest.approx(3.0 / np.sqrt(2))
        assert radii[1] == pytest.approx(4.0)

    def test_rho_is_min(self, system):
        assert system.analytic_rho(1.5) == pytest.approx(3.0 / np.sqrt(2))

    def test_empty_machine_infinite(self):
        etc = EtcMatrix(np.array([[1.0, 2.0]]))
        sys2 = MakespanSystem(etc, Allocation(np.array([0]), 2))
        radii = sys2.analytic_radii(1.2)
        assert math.isinf(radii[1])

    def test_absolute_tau(self, system):
        radii = system.analytic_radii(tau=12.0)
        assert radii[0] == pytest.approx(6.0 / np.sqrt(2))

    def test_tau_below_makespan_rejected(self, system):
        with pytest.raises(SpecificationError, match="exceed"):
            system.analytic_radii(tau=5.0)

    def test_both_beta_and_tau_rejected(self, system):
        with pytest.raises(SpecificationError, match="exactly one"):
            system.analytic_radii(1.5, tau=9.0)

    def test_neither_rejected(self, system):
        with pytest.raises(SpecificationError, match="exactly one"):
            system.analytic_radii()


class TestFePIAWiring:
    def test_generic_solver_matches_closed_form(self, system):
        ana = system.robustness_analysis(1.5)
        assert ana.rho() == pytest.approx(system.analytic_rho(1.5))

    def test_matches_across_random_instances(self, rng):
        from repro.systems.independent.etc import generate_etc_gamma
        for trial in range(5):
            etc = generate_etc_gamma(12, 4, seed=100 + trial)
            alloc = Allocation(
                rng.integers(0, 4, size=12).astype(np.intp), 4)
            sys2 = MakespanSystem(etc, alloc)
            ana = sys2.robustness_analysis(1.3)
            assert ana.rho() == pytest.approx(sys2.analytic_rho(1.3),
                                              rel=1e-9)

    def test_feature_per_loaded_machine(self, system):
        specs = system.finish_time_specs(1.5)
        assert {s.name for s in specs} == {"finish_time_m0", "finish_time_m1"}

    def test_empty_machines_skipped(self):
        etc = EtcMatrix(np.array([[1.0, 2.0]]))
        sys2 = MakespanSystem(etc, Allocation(np.array([0]), 2))
        specs = sys2.finish_time_specs(1.2)
        assert [s.name for s in specs] == ["finish_time_m0"]

    def test_multi_kind_variant(self):
        etc = EtcMatrix(np.array([[2.0, 9.0], [4.0, 9.0]]))
        sys2 = MakespanSystem(etc, Allocation(np.array([0, 0]), 2),
                              background_loads=np.array([1.0, 0.5]))
        ana = sys2.robustness_analysis(
            1.5, weighting=NormalizedWeighting(), include_background=True)
        # mapping layout must be [exec(2), background(2)]
        assert ana.dimension == 4
        assert np.isfinite(ana.rho())

    def test_background_param_requires_loads(self, system):
        with pytest.raises(SpecificationError, match="background"):
            system.background_parameter()

    def test_physical_bounds_variant_runs(self, system):
        ana = system.robustness_analysis(1.5, respect_physical_bounds=True)
        # all coefficients positive and bound above: the unconstrained
        # witness increases times, which is inside the non-negativity box,
        # so the radius must equal the unconstrained one.
        assert ana.rho() == pytest.approx(system.analytic_rho(1.5))
