"""Tests for task-to-machine allocations."""

import numpy as np
import pytest

from repro.exceptions import SpecificationError
from repro.systems.independent.allocation import Allocation
from repro.systems.independent.etc import EtcMatrix


@pytest.fixture
def etc():
    return EtcMatrix(np.array([[1.0, 10.0],
                               [2.0, 20.0],
                               [3.0, 30.0]]))


@pytest.fixture
def alloc():
    return Allocation(np.array([0, 1, 0]), 2)


class TestConstruction:
    def test_basic(self, alloc):
        assert alloc.n_tasks == 3
        assert alloc.n_machines == 2

    def test_out_of_range_rejected(self):
        with pytest.raises(SpecificationError, match="outside"):
            Allocation(np.array([0, 2]), 2)

    def test_negative_rejected(self):
        with pytest.raises(SpecificationError):
            Allocation(np.array([-1]), 2)

    def test_empty_rejected(self):
        with pytest.raises(SpecificationError):
            Allocation(np.array([], dtype=int), 2)


class TestDerivedQuantities:
    def test_tasks_on(self, alloc):
        np.testing.assert_array_equal(alloc.tasks_on(0), [0, 2])
        np.testing.assert_array_equal(alloc.tasks_on(1), [1])

    def test_tasks_on_range_checked(self, alloc):
        with pytest.raises(SpecificationError):
            alloc.tasks_on(5)

    def test_assigned_times(self, alloc, etc):
        np.testing.assert_allclose(alloc.assigned_times(etc), [1.0, 20.0, 3.0])

    def test_machine_loads(self, alloc, etc):
        np.testing.assert_allclose(alloc.machine_loads(etc), [4.0, 20.0])

    def test_makespan(self, alloc, etc):
        assert alloc.makespan(etc) == 20.0

    def test_etc_shape_checked(self, alloc):
        bad = EtcMatrix(np.ones((2, 2)))
        with pytest.raises(SpecificationError):
            alloc.machine_loads(bad)

    def test_etc_machine_count_checked(self, alloc):
        bad = EtcMatrix(np.ones((3, 3)))
        with pytest.raises(SpecificationError):
            alloc.makespan(bad)


class TestNeighbourhood:
    def test_with_move(self, alloc):
        moved = alloc.with_move(0, 1)
        assert moved.assignment[0] == 1
        assert alloc.assignment[0] == 0  # original untouched

    def test_with_move_range_checked(self, alloc):
        with pytest.raises(SpecificationError):
            alloc.with_move(9, 0)
        with pytest.raises(SpecificationError):
            alloc.with_move(0, 9)

    def test_with_swap(self, alloc):
        swapped = alloc.with_swap(0, 1)
        assert swapped.assignment[0] == 1
        assert swapped.assignment[1] == 0

    def test_with_swap_range_checked(self, alloc):
        with pytest.raises(SpecificationError):
            alloc.with_swap(0, 9)
