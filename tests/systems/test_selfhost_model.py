"""Tests for the self-hosting dispatch-policy fluid model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SpecificationError
from repro.systems.selfhost.model import (
    SELFHOST_FEATURES,
    DispatchModel,
    SelfhostMetrics,
)


class TestValidation:
    @pytest.mark.parametrize("kwargs, match", [
        (dict(n_tasks=0, workers=1), "n_tasks"),
        (dict(n_tasks=1, workers=0), "workers"),
        (dict(n_tasks=1, workers=1, max_task_retries=-1), "max_task_retries"),
        (dict(n_tasks=1, workers=1, deadline=0.0), "deadline"),
        (dict(n_tasks=1, workers=1, breaker_threshold=0.0),
         "breaker_threshold"),
        (dict(n_tasks=1, workers=1, breaker_cooldown=0), "breaker_cooldown"),
    ])
    def test_bad_policy_rejected(self, kwargs, match):
        with pytest.raises(SpecificationError, match=match):
            DispatchModel(**kwargs)

    def test_costs_length_checked(self):
        model = DispatchModel(n_tasks=3, workers=2)
        with pytest.raises(SpecificationError, match="length 3"):
            model.simulate([1.0, 2.0], [0.0, 0.0])

    def test_rates_length_checked(self):
        model = DispatchModel(n_tasks=3, workers=2)
        with pytest.raises(SpecificationError, match="length 2"):
            model.simulate([1.0, 2.0, 3.0], [0.0])

    def test_simulate_rejects_batches(self):
        model = DispatchModel(n_tasks=2, workers=1)
        with pytest.raises(SpecificationError, match="one operating point"):
            model.simulate([[1.0, 2.0], [3.0, 4.0]], [0.1])

    def test_row_count_mismatch_rejected(self):
        model = DispatchModel(n_tasks=2, workers=1)
        with pytest.raises(SpecificationError, match="row counts"):
            model.simulate_many(np.ones((3, 2)), np.full((2, 1), 0.1))

    def test_metrics_unknown_feature_rejected(self):
        metrics = DispatchModel(n_tasks=1, workers=1).simulate([1.0], [0.0])
        with pytest.raises(SpecificationError, match="unknown selfhost"):
            metrics.value("latency")


class TestAssignment:
    def test_round_robin(self):
        model = DispatchModel(n_tasks=5, workers=2)
        np.testing.assert_array_equal(model.worker_of(), [0, 1, 0, 1, 0])
        np.testing.assert_array_equal(model.tasks_on(0), [0, 2, 4])
        np.testing.assert_array_equal(model.tasks_on(1), [1, 3])


class TestFluidSimulation:
    def test_zero_rates_degenerate_to_single_wave_makespan(self):
        # Worker 0 gets costs {2, 9} (load 11), worker 1 gets {4}.
        model = DispatchModel(n_tasks=3, workers=2, max_task_retries=2)
        m = model.simulate([2.0, 4.0, 9.0], [0.0, 0.0])
        assert m.makespan == 11.0
        assert m.max_load == 11.0
        assert m.recovery == 0.0
        assert m.drain == 0.0
        assert m.quarantined_mass == 0.0
        assert m.serial_waves == 0
        assert m.wave_durations == (11.0, 0.0, 0.0)

    def test_geometric_retry_mass(self):
        # One worker, one unit task, rate 1/2, one retry:
        # waves carry mass 1 then 1/2; residual 1/4 drains at full cost.
        model = DispatchModel(n_tasks=1, workers=1, max_task_retries=1)
        m = model.simulate([1.0], [0.5])
        assert m.wave_durations == (1.0, 0.5)
        assert m.drain == 0.25
        assert m.makespan == 1.75
        assert m.recovery == 0.75
        assert m.max_load == 1.5  # drain is serial, not a worker load
        assert m.quarantined_mass == 0.25

    def test_breaker_serial_wave_sums_loads(self):
        # Wave-2 failed mass 1.0 trips a 0.9 threshold: the retry wave
        # runs serially (0.5 + 0.5) instead of in parallel (max 0.5).
        serial = DispatchModel(n_tasks=2, workers=2, max_task_retries=1,
                               breaker_threshold=0.9, breaker_cooldown=1)
        parallel = DispatchModel(n_tasks=2, workers=2, max_task_retries=1,
                                 breaker_threshold=100.0)
        ms = serial.simulate([1.0, 1.0], [0.5, 0.5])
        mp = parallel.simulate([1.0, 1.0], [0.5, 0.5])
        assert ms.serial_waves == 1 and mp.serial_waves == 0
        assert ms.wave_durations == (1.0, 1.0)
        assert mp.wave_durations == (1.0, 0.5)
        assert ms.makespan == mp.makespan + 0.5

    def test_deadline_fails_oversized_task_every_wave(self):
        # Cost 2 > deadline 1: every attempt times out at the deadline,
        # the task is quarantined and drained at its full cost.
        model = DispatchModel(n_tasks=1, workers=1, max_task_retries=1,
                              deadline=1.0)
        m = model.simulate([2.0], [0.0])
        assert m.wave_durations == (1.0, 1.0)
        assert m.quarantined_mass == 1.0
        assert m.drain == 2.0
        assert m.makespan == 4.0

    def test_inputs_clipped_to_physical_box(self):
        # Boundary searches probe outside the box; the mapping stays
        # total: negative costs clip to 0, rates clip into [0, 1].
        model = DispatchModel(n_tasks=2, workers=1, max_task_retries=0)
        m = model.simulate([-1.0, 2.0], [1.5])
        assert m.makespan == m.wave_durations[0] + m.drain
        assert m.quarantined_mass == 2.0  # clipped rate 1.0 fails all

    def test_monotone_in_costs_and_rates(self):
        model = DispatchModel(n_tasks=4, workers=2, max_task_retries=2)
        base = model.simulate([1.0, 2.0, 3.0, 4.0], [0.2, 0.3])
        costlier = model.simulate([1.5, 2.0, 3.0, 4.0], [0.2, 0.3])
        flakier = model.simulate([1.0, 2.0, 3.0, 4.0], [0.2, 0.5])
        for name in SELFHOST_FEATURES:
            assert costlier.value(name) >= base.value(name)
            assert flakier.value(name) >= base.value(name)


class TestBatchingContract:
    def test_simulate_many_rows_bit_identical_to_simulate(self):
        model = DispatchModel(n_tasks=7, workers=3, max_task_retries=2,
                              breaker_threshold=1.5)
        rng = np.random.default_rng(42)
        costs_rows = rng.gamma(2.0, 1.0, size=(11, 7))
        rates_rows = rng.random((11, 3)) * 0.6
        batched = model.simulate_many(costs_rows, rates_rows)
        for r in range(11):
            single = model.simulate(costs_rows[r], rates_rows[r])
            for name in SELFHOST_FEATURES:
                assert batched[name][r] == single.value(name), \
                    f"row {r} feature {name} differs from scalar evaluation"


class TestReplay:
    def test_single_attempt_replay_matches_faultless_fluid(self):
        model = DispatchModel(n_tasks=3, workers=2)
        costs = [2.0, 4.0, 9.0]
        replayed = model.replay(costs, [1, 1, 1])
        fluid = model.simulate(costs, [0.0, 0.0])
        for name in SELFHOST_FEATURES:
            assert replayed.value(name) == fluid.value(name)

    def test_attempt_counts_become_indicator_waves(self):
        model = DispatchModel(n_tasks=2, workers=2)
        m = model.replay([1.0, 3.0], [2, 1])
        # wave 1 runs both tasks (max 3), wave 2 only task 0 (1.0)
        assert m.wave_durations == (3.0, 1.0)
        assert m.makespan == 4.0
        assert m.recovery == 1.0

    def test_quarantined_tasks_drain_at_full_cost(self):
        model = DispatchModel(n_tasks=2, workers=2, deadline=1.0)
        m = model.replay([1.0, 5.0], [1, 2], quarantined=[False, True])
        assert m.drain == 5.0
        assert m.quarantined_mass == 1.0

    @pytest.mark.parametrize("attempts, quarantined, match", [
        ([1], None, "length 2"),
        ([1, 0], None, "at least one attempt"),
        ([1, 1], [True], "length 2"),
    ])
    def test_replay_validation(self, attempts, quarantined, match):
        model = DispatchModel(n_tasks=2, workers=1)
        with pytest.raises(SpecificationError, match=match):
            model.replay([1.0, 1.0], attempts, quarantined)


class TestSerialization:
    def test_model_to_dict(self):
        model = DispatchModel(n_tasks=4, workers=2, max_task_retries=1,
                              deadline=2.5, breaker_threshold=2.0,
                              breaker_cooldown=3)
        assert model.to_dict() == {
            "n_tasks": 4, "workers": 2, "max_task_retries": 1,
            "deadline": 2.5, "breaker_threshold": 2.0,
            "breaker_cooldown": 3,
        }

    def test_metrics_to_dict_is_json_safe(self):
        import json

        m = DispatchModel(n_tasks=2, workers=1,
                          max_task_retries=1).simulate([1.0, 2.0], [0.25])
        payload = m.to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["waves"] == 2
        assert isinstance(m, SelfhostMetrics)
