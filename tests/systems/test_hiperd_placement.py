"""Tests for robustness-aware placement improvement."""

import pytest

from repro.exceptions import SpecificationError
from repro.systems.hiperd import (
    HiPerDGenerationSpec,
    QoSSpec,
    generate_hiperd_system,
)
from repro.systems.hiperd.placement import (
    improve_placement,
    placement_rho,
)


@pytest.fixture(scope="module")
def setup():
    spec = HiPerDGenerationSpec(n_sensors=2, n_actuators=1, n_machines=3,
                                app_layers=(2, 2), balanced_placement=False)
    system = generate_hiperd_system(spec, seed=23)
    qos = QoSSpec(latency_slack=1.5, throughput_margin=0.9)
    return system, qos


class TestPlacementRho:
    def test_feasible_placement_has_finite_rho(self, setup):
        system, qos = setup
        rho = placement_rho(system, qos)
        assert rho > 0

    def test_infeasible_gives_minus_inf(self, setup):
        system, _ = setup
        tight = QoSSpec(latency_slack=1.0001, throughput_margin=1e-6)
        assert placement_rho(system, tight) == float("-inf")


class TestImprovePlacement:
    def test_rho_never_decreases(self, setup):
        system, qos = setup
        before = placement_rho(system, qos)
        improved, steps = improve_placement(system, qos, max_rounds=3)
        after = placement_rho(improved, qos)
        assert after >= before - 1e-12

    def test_steps_strictly_improving(self, setup):
        system, qos = setup
        _, steps = improve_placement(system, qos, max_rounds=4)
        rhos = [placement_rho(system, qos)] + [s.rho for s in steps]
        assert all(b > a for a, b in zip(rhos, rhos[1:]))

    def test_steps_record_real_moves(self, setup):
        system, qos = setup
        improved, steps = improve_placement(system, qos, max_rounds=3)
        for step in steps:
            assert step.from_machine != step.to_machine
        if steps:
            last = steps[-1]
            assert improved.allocation[last.application] == last.to_machine

    def test_original_system_untouched(self, setup):
        system, qos = setup
        alloc_before = dict(system.allocation)
        improve_placement(system, qos, max_rounds=2)
        assert system.allocation == alloc_before

    def test_converges_to_local_optimum(self, setup):
        system, qos = setup
        improved, _ = improve_placement(system, qos, max_rounds=20)
        # a second run from the optimum makes no further moves
        _, more = improve_placement(improved, qos, max_rounds=5)
        assert more == []

    def test_infeasible_start_rejected(self, setup):
        system, _ = setup
        tight = QoSSpec(latency_slack=1.0001, throughput_margin=1e-6)
        with pytest.raises(SpecificationError, match="infeasible"):
            improve_placement(system, tight)

    def test_bad_rounds(self, setup):
        system, qos = setup
        with pytest.raises(SpecificationError):
            improve_placement(system, qos, max_rounds=0)
