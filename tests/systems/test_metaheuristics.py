"""Tests for the local-search and GA metaheuristics."""

import numpy as np
import pytest

from repro.exceptions import SpecificationError
from repro.systems.heuristics import (
    MCT,
    GeneticAllocator,
    HillClimber,
    SimulatedAnnealer,
    makespan_objective,
)
from repro.systems.independent import MakespanSystem, generate_etc_gamma


@pytest.fixture
def etc():
    return generate_etc_gamma(15, 4, seed=21)


class TestHillClimber:
    def test_improves_or_matches_initial(self, etc):
        initial = MCT().allocate(etc)
        hc = HillClimber(makespan_objective, max_iterations=50,
                         n_neighbours=16, seed=0)
        result = hc.allocate(etc)
        assert result.makespan(etc) <= initial.makespan(etc)

    def test_custom_initial(self, etc):
        from repro.systems.heuristics import RoundRobin
        hc = HillClimber(makespan_objective, max_iterations=5,
                         n_neighbours=4, initial=RoundRobin(), seed=0)
        assert hc.allocate(etc).n_tasks == etc.n_tasks

    def test_bad_params(self):
        with pytest.raises(SpecificationError):
            HillClimber(makespan_objective, max_iterations=0)

    def test_robustness_objective(self, etc):
        tau = 1.4 * MCT().allocate(etc).makespan(etc)

        def neg_rho(etc_matrix):
            def objective(allocation):
                system = MakespanSystem(etc_matrix, allocation)
                if system.makespan() >= tau:
                    return system.makespan() / tau
                return -system.analytic_rho(tau=tau)
            return objective

        hc = HillClimber(neg_rho, max_iterations=30, n_neighbours=16, seed=1)
        best = hc.allocate(etc)
        mct_sys = MakespanSystem(etc, MCT().allocate(etc))
        best_sys = MakespanSystem(etc, best)
        assert best_sys.makespan() < tau
        assert best_sys.analytic_rho(tau=tau) >= mct_sys.analytic_rho(tau=tau)


class TestSimulatedAnnealer:
    def test_runs_and_is_reasonable(self, etc):
        sa = SimulatedAnnealer(makespan_objective, n_steps=400, seed=2)
        result = sa.allocate(etc)
        mct = MCT().allocate(etc)
        # SA keeps the best-seen solution, which starts at MCT.
        assert result.makespan(etc) <= mct.makespan(etc) + 1e-9

    def test_reproducible(self, etc):
        a = SimulatedAnnealer(makespan_objective, n_steps=100, seed=5).allocate(etc)
        b = SimulatedAnnealer(makespan_objective, n_steps=100, seed=5).allocate(etc)
        np.testing.assert_array_equal(a.assignment, b.assignment)

    def test_bad_schedule(self):
        with pytest.raises(SpecificationError):
            SimulatedAnnealer(makespan_objective, t_initial=1.0, t_final=2.0)

    def test_bad_steps(self):
        with pytest.raises(SpecificationError):
            SimulatedAnnealer(makespan_objective, n_steps=0)


class TestGeneticAllocator:
    def test_beats_or_matches_mct_with_seeding(self, etc):
        ga = GeneticAllocator(makespan_objective, population=16,
                              generations=20, seed=3)
        result = ga.allocate(etc)
        mct = MCT().allocate(etc)
        assert result.makespan(etc) <= mct.makespan(etc) + 1e-9

    def test_without_mct_seed_still_valid(self, etc):
        ga = GeneticAllocator(makespan_objective, population=8,
                              generations=5, seed_with_mct=False, seed=4)
        assert ga.allocate(etc).n_tasks == etc.n_tasks

    def test_reproducible(self, etc):
        a = GeneticAllocator(makespan_objective, population=8, generations=5,
                             seed=9).allocate(etc)
        b = GeneticAllocator(makespan_objective, population=8, generations=5,
                             seed=9).allocate(etc)
        np.testing.assert_array_equal(a.assignment, b.assignment)

    @pytest.mark.parametrize("kw,val", [
        ("population", 2), ("generations", 0), ("mutation_rate", 1.5),
        ("tournament", 1)])
    def test_bad_params(self, kw, val):
        with pytest.raises(SpecificationError):
            GeneticAllocator(makespan_objective, **{kw: val})
