"""Tests for the self-hosting executor system's FePIA wiring."""

from __future__ import annotations

import math
import pickle

import numpy as np
import pytest

from repro.core.fepia import RobustnessAnalysis
from repro.core.perturbation import PerturbationParameter
from repro.core.weighting import IdentityWeighting
from repro.exceptions import SpecificationError
from repro.systems.selfhost import (
    SELFHOST_FEATURES,
    SelfhostMapping,
    SelfhostSystem,
)


@pytest.fixture
def system():
    return SelfhostSystem(costs=np.array([1.0, 2.0, 3.0, 4.0]),
                          fail_rates=np.array([0.2, 0.3]))


class TestValidation:
    def test_nonpositive_costs_rejected(self):
        with pytest.raises(SpecificationError, match="positive"):
            SelfhostSystem(costs=np.array([1.0, 0.0]),
                           fail_rates=np.array([0.1]))

    def test_rates_outside_unit_interval_rejected(self):
        with pytest.raises(SpecificationError, match="probabilities"):
            SelfhostSystem(costs=np.array([1.0]),
                           fail_rates=np.array([1.0]))
        with pytest.raises(SpecificationError, match="probabilities"):
            SelfhostSystem(costs=np.array([1.0]),
                           fail_rates=np.array([-0.1]))

    def test_beta_must_exceed_one(self, system):
        with pytest.raises(SpecificationError, match="beta"):
            system.feature_specs(1.0)

    def test_zero_origin_feature_refused(self):
        # Fault-free origin: recovery is 0, which admits no relative
        # bound — the spec builder must say so rather than divide.
        faultfree = SelfhostSystem(costs=np.array([1.0, 2.0]),
                                   fail_rates=np.zeros(2))
        with pytest.raises(SpecificationError, match="recovery"):
            faultfree.feature_specs(1.5)

    def test_mapping_unknown_feature_rejected(self, system):
        with pytest.raises(SpecificationError, match="unknown selfhost"):
            SelfhostMapping(system.model, "throughput")


class TestPlainQuantities:
    def test_shapes_and_origin(self, system):
        assert system.n_tasks == 4
        assert system.workers == 2
        np.testing.assert_array_equal(
            system.pi_orig(), [1.0, 2.0, 3.0, 4.0, 0.2, 0.3])
        origin = system.origin_metrics()
        for name in SELFHOST_FEATURES:
            assert origin.value(name) > 0

    def test_two_perturbation_kinds(self, system):
        params = system.perturbation_parameters()
        assert [p.name for p in params] == ["task_costs",
                                            "worker_fail_rates"]
        assert params[0].unit == "s"
        assert params[1].unit == "probability"
        np.testing.assert_array_equal(params[1].upper, np.ones(2))

    def test_baseline_is_seed_deterministic(self):
        a = SelfhostSystem.baseline(seed=11)
        b = SelfhostSystem.baseline(seed=11)
        c = SelfhostSystem.baseline(seed=12)
        np.testing.assert_array_equal(a.costs, b.costs)
        np.testing.assert_array_equal(a.fail_rates, b.fail_rates)
        assert not np.array_equal(a.costs, c.costs)
        assert a.n_tasks == 96 and a.workers == 3
        assert a.breaker_threshold == 48.0


class TestMapping:
    def test_value_splits_cost_and_rate_blocks(self, system):
        mapping = SelfhostMapping(system.model, "makespan")
        value = mapping.value(system.pi_orig())
        assert value == system.origin_metrics().makespan

    def test_value_many_bit_identical_to_value(self, system):
        mapping = SelfhostMapping(system.model, "recovery")
        rng = np.random.default_rng(3)
        xs = np.abs(rng.normal(1.0, 0.5, size=(9, 6)))
        batched = mapping.value_many(xs)
        for r in range(9):
            assert batched[r] == mapping.value(xs[r]), f"row {r}"

    def test_mapping_pickles(self, system):
        mapping = SelfhostMapping(system.model, "max_load")
        clone = pickle.loads(pickle.dumps(mapping))
        x = system.pi_orig()
        assert clone.value(x) == mapping.value(x)
        assert clone.structure_key() == mapping.structure_key()

    def test_structure_key_discriminates_policy(self, system):
        base = SelfhostMapping(system.model, "makespan").structure_key()
        other_feature = SelfhostMapping(system.model,
                                        "recovery").structure_key()
        other_policy = SelfhostMapping(
            SelfhostSystem(costs=system.costs, fail_rates=system.fail_rates,
                           max_task_retries=5).model,
            "makespan").structure_key()
        assert base != other_feature
        assert base != other_policy
        assert base[0] == "selfhost"


class TestAnalyticAnchor:
    def test_closed_form_formula(self):
        # Worker 0: load 11 over {2, 9}; worker 1: load 4 over {4}.
        # tau = 1.5 * 11; radii (tau-11)/sqrt(2) and (tau-4)/1.
        sys_ = SelfhostSystem(costs=np.array([2.0, 4.0, 9.0]),
                              fail_rates=np.zeros(2))
        radii = sys_.analytic_cost_radii(1.5)
        assert radii[0] == pytest.approx(5.5 / math.sqrt(2))
        assert radii[1] == pytest.approx(12.5)

    def test_closed_form_guards(self, system):
        with pytest.raises(SpecificationError, match="zero failure rates"):
            system.analytic_cost_radii(1.5)
        faultfree = SelfhostSystem(costs=np.array([1.0]),
                                   fail_rates=np.zeros(1))
        with pytest.raises(SpecificationError, match="beta"):
            faultfree.analytic_cost_radii(1.0)
        deadlined = SelfhostSystem(costs=np.array([1.0]),
                                   fail_rates=np.zeros(1), deadline=5.0)
        with pytest.raises(SpecificationError, match="zero failure rates"):
            deadlined.analytic_cost_radii(1.5)

    def test_generic_solver_matches_closed_form(self):
        # Pin the failure-rate kind at zero: the model degenerates to
        # single-wave makespan and the numeric solver must land on the
        # TPDS 2004 closed form.
        sys_ = SelfhostSystem(costs=np.array([2.0, 4.0, 9.0, 1.0]),
                              fail_rates=np.zeros(2))
        pinned = PerturbationParameter(
            "worker_fail_rates", sys_.fail_rates,
            lower=np.zeros(2), upper=np.zeros(2))
        ana = RobustnessAnalysis(
            sys_.feature_specs(1.5, ("makespan",)),
            [sys_.cost_parameter(), pinned],
            weighting=IdentityWeighting(),
            respect_physical_bounds=True, method="auto", seed=0)
        assert ana.rho() == pytest.approx(
            sys_.analytic_cost_radii(1.5).min(), rel=1e-6)


class TestRobustnessAnalysis:
    def test_two_kind_analysis_solves_all_features(self, system):
        ana = system.robustness_analysis(1.5, seed=0)
        radii = ana.radii()
        assert set(radii) == {f"selfhost_{n}" for n in SELFHOST_FEATURES}
        for result in radii.values():
            assert np.isfinite(result.radius) and result.radius > 0
        assert ana.rho() == min(r.radius for r in radii.values())
        per_param = ana.per_parameter_radii(ana.critical_feature())
        assert set(per_param) == {"task_costs", "worker_fail_rates"}

    def test_default_weighting_is_normalized(self, system):
        from repro.core.weighting import NormalizedWeighting

        ana = system.robustness_analysis(1.5, seed=0)
        assert isinstance(ana.weighting, NormalizedWeighting)
