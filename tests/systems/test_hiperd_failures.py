"""Tests for HiPer-D link-failure robustness."""

import pytest

from repro.exceptions import SpecificationError
from repro.systems.hiperd import QoSSpec
from repro.systems.hiperd.failures import (
    critical_links,
    link_failure_radius,
    system_with_failed_links,
    used_link_pairs,
)


@pytest.fixture(scope="module")
def qos():
    return QoSSpec(latency_slack=1.5, throughput_margin=0.9)


class TestUsedLinkPairs:
    def test_pairs_canonical_and_sorted(self, hiperd_system):
        pairs = used_link_pairs(hiperd_system)
        assert pairs == sorted(pairs)
        for a, b in pairs:
            assert a < b

    def test_colocation_excluded(self, hiperd_system):
        pairs = set(used_link_pairs(hiperd_system))
        for msg in hiperd_system.messages:
            lu = hiperd_system.location_of(msg.src)
            lv = hiperd_system.location_of(msg.dst)
            if lu == lv:
                assert tuple(sorted((lu, lv))) not in pairs


class TestSystemWithFailedLinks:
    def test_bandwidth_degraded(self, hiperd_system):
        pairs = used_link_pairs(hiperd_system)
        target = pairs[0]
        degraded = system_with_failed_links(hiperd_system, [target],
                                            degraded_factor=0.5)
        # find a message on that link and compare effective bandwidths
        for msg in hiperd_system.messages:
            pair = tuple(sorted((hiperd_system.location_of(msg.src),
                                 hiperd_system.location_of(msg.dst))))
            if pair == target:
                before = hiperd_system.message_bandwidth(msg)
                after = degraded.message_bandwidth(msg)
                assert after == pytest.approx(0.5 * before)
                return
        pytest.fail("no message found on the degraded link")

    def test_original_untouched(self, hiperd_system):
        pairs = used_link_pairs(hiperd_system)
        before = dict(hiperd_system.bandwidths)
        system_with_failed_links(hiperd_system, [pairs[0]])
        assert hiperd_system.bandwidths == before

    def test_latency_increases(self, hiperd_system):
        pairs = used_link_pairs(hiperd_system)
        degraded = system_with_failed_links(hiperd_system, pairs,
                                            degraded_factor=0.1)
        worst_before = max(hiperd_system.path_latency(p)
                           for p in hiperd_system.sensor_actuator_paths())
        worst_after = max(degraded.path_latency(p)
                          for p in degraded.sensor_actuator_paths())
        assert worst_after > worst_before

    def test_unknown_pair_rejected(self, hiperd_system):
        with pytest.raises(SpecificationError, match="no message"):
            system_with_failed_links(hiperd_system, [("ghost", "town")])

    def test_bad_factor(self, hiperd_system):
        pairs = used_link_pairs(hiperd_system)
        with pytest.raises(SpecificationError):
            system_with_failed_links(hiperd_system, [pairs[0]],
                                     degraded_factor=0.0)


class TestCriticalLinks:
    def test_ranking_order(self, hiperd_system, qos):
        ranking = critical_links(hiperd_system, qos)
        margins = [m for _, m in ranking]
        assert margins == sorted(margins, reverse=True)
        assert len(ranking) == len(used_link_pairs(hiperd_system))

    def test_margins_worse_with_more_degradation(self, hiperd_system, qos):
        mild = dict(critical_links(hiperd_system, qos, degraded_factor=0.5))
        harsh = dict(critical_links(hiperd_system, qos, degraded_factor=0.05))
        for pair, margin in mild.items():
            assert harsh[pair] >= margin - 1e-12


class TestLinkFailureRadius:
    def test_radius_semantics(self, hiperd_system, qos):
        analysis = link_failure_radius(hiperd_system, qos,
                                       degraded_factor=0.05, max_k=2)
        assert 0 <= analysis.radius <= analysis.n_links
        if analysis.breaking_set is not None:
            assert len(analysis.breaking_set) == analysis.radius + 1

    def test_generous_degradation_survives(self, hiperd_system, qos):
        # degraded_factor ~ 1: failures barely hurt, everything survives
        analysis = link_failure_radius(hiperd_system, qos,
                                       degraded_factor=0.999, max_k=2)
        assert analysis.radius == 2
        assert analysis.breaking_set is None

    def test_consistent_with_critical_links(self, hiperd_system, qos):
        # if the worst single link has positive margin, radius must be 0
        worst_margin = critical_links(hiperd_system, qos,
                                      degraded_factor=0.01)[0][1]
        analysis = link_failure_radius(hiperd_system, qos,
                                       degraded_factor=0.01, max_k=1)
        if worst_margin > 0:
            assert analysis.radius == 0
        else:
            assert analysis.radius >= 1
