"""Tests for the HiPer-D data model."""

import numpy as np
import pytest

from repro.exceptions import SpecificationError
from repro.systems.hiperd.model import (
    Actuator,
    Application,
    HiPerDSystem,
    Machine,
    Message,
    Sensor,
)


def tiny_system(**overrides):
    """s0 -> a0 -> a1 -> act0 on two machines."""
    kw = dict(
        machines=[Machine("m0", 1e6), Machine("m1", 2e6)],
        sensors=[Sensor("s0", 100.0, 1.0)],
        applications=[Application("a0", 1e3), Application("a1", 2e3)],
        actuators=[Actuator("act0")],
        messages=[Message("s0", "a0", 1e4),
                  Message("a0", "a1", 2e4),
                  Message("a1", "act0", 5e3)],
        allocation={"a0": 0, "a1": 1},
        bandwidths={("m0", "m1"): 1e6, ("s0", "m0"): 2e6,
                    ("m1", "act0"): 1e6},
    )
    kw.update(overrides)
    return HiPerDSystem(**kw)


class TestEntityValidation:
    def test_machine_speed_positive(self):
        with pytest.raises(SpecificationError):
            Machine("m", 0.0)

    def test_sensor_load_positive(self):
        with pytest.raises(SpecificationError):
            Sensor("s", 0.0, 1.0)

    def test_sensor_period_positive(self):
        with pytest.raises(SpecificationError):
            Sensor("s", 1.0, 0.0)

    def test_application_complexity_positive(self):
        with pytest.raises(SpecificationError):
            Application("a", -1.0)

    def test_message_self_loop_rejected(self):
        with pytest.raises(SpecificationError):
            Message("a", "a", 1.0)

    def test_message_size_positive(self):
        with pytest.raises(SpecificationError):
            Message("a", "b", 0.0)


class TestSystemValidation:
    def test_valid_system(self):
        s = tiny_system()
        assert s.n_sensors == 1
        assert s.n_applications == 2
        assert s.n_messages == 3

    def test_allocation_must_cover_apps(self):
        with pytest.raises(SpecificationError, match="missing"):
            tiny_system(allocation={"a0": 0})

    def test_allocation_machine_range(self):
        with pytest.raises(SpecificationError, match="machine"):
            tiny_system(allocation={"a0": 0, "a1": 5})

    def test_unknown_message_endpoint(self):
        msgs = [Message("s0", "a0", 1e4), Message("a0", "ghost", 1.0)]
        with pytest.raises(SpecificationError, match="declared"):
            tiny_system(messages=msgs)

    def test_cycle_rejected(self):
        msgs = [Message("s0", "a0", 1.0), Message("a0", "a1", 1.0),
                Message("a1", "a0", 1.0), Message("a1", "act0", 1.0)]
        with pytest.raises(SpecificationError, match="acyclic"):
            tiny_system(messages=msgs)

    def test_orphan_application_rejected(self):
        msgs = [Message("s0", "a0", 1.0), Message("a0", "act0", 1.0)]
        with pytest.raises(SpecificationError, match="no input"):
            tiny_system(messages=msgs)

    def test_actuator_cannot_send(self):
        msgs = [Message("s0", "a0", 1.0), Message("a0", "a1", 1.0),
                Message("a1", "act0", 1.0), Message("act0", "a1", 1.0)]
        with pytest.raises(SpecificationError, match="actuator"):
            tiny_system(messages=msgs)

    def test_sensor_cannot_receive(self):
        msgs = [Message("s0", "a0", 1.0), Message("a0", "a1", 1.0),
                Message("a1", "act0", 1.0), Message("a0", "s0", 1.0)]
        with pytest.raises(SpecificationError, match="sensor"):
            tiny_system(messages=msgs)

    def test_duplicate_message_rejected(self):
        msgs = [Message("s0", "a0", 1.0), Message("s0", "a0", 2.0),
                Message("a0", "a1", 1.0), Message("a1", "act0", 1.0)]
        with pytest.raises(SpecificationError, match="duplicate"):
            tiny_system(messages=msgs)

    def test_duplicate_node_names_rejected(self):
        with pytest.raises(SpecificationError, match="unique"):
            tiny_system(actuators=[Actuator("a0")])


class TestTiming:
    def test_unit_times(self):
        s = tiny_system()
        np.testing.assert_allclose(
            s.original_unit_times(), [1e3 / 1e6, 2e3 / 2e6])

    def test_reachability(self):
        s = tiny_system()
        w = s.reach_weights()
        np.testing.assert_array_equal(w, [[1.0], [1.0]])

    def test_arriving_load(self):
        s = tiny_system()
        assert s.arriving_load("a0") == 100.0
        assert s.arriving_load("a1", np.array([50.0])) == 50.0

    def test_computation_time(self):
        s = tiny_system()
        # a0: (1e3/1e6) * 100 = 0.1 s
        assert s.computation_time("a0") == pytest.approx(0.1)

    def test_communication_time_cross_machine(self):
        s = tiny_system()
        msg = s.messages[1]  # a0 (m0) -> a1 (m1), bw 1e6
        assert s.communication_time(msg) == pytest.approx(2e4 / 1e6)

    def test_co_located_messages_are_free(self):
        s = tiny_system(allocation={"a0": 0, "a1": 0})
        msg = s.messages[1]
        assert np.isinf(s.message_bandwidth(msg))
        assert s.communication_time(msg) == 0.0

    def test_bandwidth_symmetric_lookup(self):
        s = tiny_system()
        msg = s.messages[1]
        # table has (m0, m1); message goes m0->m1; also check reverse works
        assert s.message_bandwidth(msg) == 1e6

    def test_default_bandwidth_fallback(self):
        s = tiny_system(bandwidths={})
        msg = s.messages[1]
        assert s.message_bandwidth(msg) == s.default_bandwidth

    def test_path_enumeration(self):
        s = tiny_system()
        paths = s.sensor_actuator_paths()
        assert paths == [("s0", "a0", "a1", "act0")]

    def test_path_latency_sums_stages(self):
        s = tiny_system()
        path = s.sensor_actuator_paths()[0]
        expected = (1e4 / 2e6          # s0 -> a0 over (s0, m0) bw 2e6
                    + 0.1              # comp a0
                    + 2e4 / 1e6        # a0 -> a1
                    + (2e3 / 2e6) * 100.0   # comp a1
                    + 5e3 / 1e6)       # a1 -> act0
        assert s.path_latency(path) == pytest.approx(expected)

    def test_apps_on_machine(self):
        s = tiny_system()
        assert s.apps_on_machine(0) == ["a0"]
        assert s.apps_on_machine(1) == ["a1"]
        with pytest.raises(SpecificationError):
            s.apps_on_machine(9)

    def test_location_of(self):
        s = tiny_system()
        assert s.location_of("a0") == "m0"
        assert s.location_of("s0") == "s0"
