"""Tests for the synthetic load-trace generators."""

import numpy as np
import pytest

from repro.exceptions import SpecificationError
from repro.systems.hiperd.traces import (
    ramp_trace,
    random_walk_trace,
    sinusoid_trace,
    spike_trace,
)

BASE = np.array([100.0, 50.0])


class TestRamp:
    def test_endpoints(self):
        trace = ramp_trace(BASE, 10, end_factor=3.0)
        np.testing.assert_allclose(trace[0], BASE)
        np.testing.assert_allclose(trace[-1], 3.0 * BASE)

    def test_monotone_increasing(self):
        trace = ramp_trace(BASE, 20, end_factor=2.0)
        assert np.all(np.diff(trace, axis=0) >= 0)

    def test_decaying_ramp(self):
        trace = ramp_trace(BASE, 10, end_factor=0.5)
        assert np.all(np.diff(trace, axis=0) <= 0)
        assert np.all(trace > 0)

    def test_single_step(self):
        trace = ramp_trace(BASE, 1)
        assert trace.shape == (1, 2)

    def test_bad_factor(self):
        with pytest.raises(SpecificationError):
            ramp_trace(BASE, 5, end_factor=0.0)

    def test_bad_base(self):
        with pytest.raises(SpecificationError):
            ramp_trace([0.0, 1.0], 5)


class TestSpike:
    def test_peak_at_spike(self):
        trace = spike_trace(BASE, 21, spike_at=10, magnitude=3.0)
        peak_step = int(np.argmax(trace[:, 0]))
        assert peak_step == 10
        np.testing.assert_allclose(trace[10], 3.0 * BASE)

    def test_returns_to_base(self):
        trace = spike_trace(BASE, 41, spike_at=20, magnitude=4.0, width=2)
        np.testing.assert_allclose(trace[0], BASE, rtol=1e-6)
        np.testing.assert_allclose(trace[-1], BASE, rtol=1e-6)

    def test_spike_bounds_checked(self):
        with pytest.raises(SpecificationError):
            spike_trace(BASE, 10, spike_at=10)

    def test_bad_width(self):
        with pytest.raises(SpecificationError):
            spike_trace(BASE, 10, spike_at=5, width=0)


class TestRandomWalk:
    def test_reproducible(self):
        a = random_walk_trace(BASE, 30, seed=1)
        b = random_walk_trace(BASE, 30, seed=1)
        np.testing.assert_array_equal(a, b)

    def test_starts_at_base(self):
        trace = random_walk_trace(BASE, 10, seed=2)
        np.testing.assert_allclose(trace[0], BASE)

    def test_positive(self):
        trace = random_walk_trace(BASE, 200, step_std=0.5, seed=3)
        assert np.all(trace > 0)

    def test_mean_reversion_bounds_drift(self):
        trace = random_walk_trace(BASE, 2000, step_std=0.05, reversion=0.2,
                                  seed=4)
        # strong reversion: long-run mean within a factor ~1.5 of base
        means = trace.mean(axis=0)
        assert np.all(means < 1.5 * BASE)
        assert np.all(means > BASE / 1.5)

    def test_bad_params(self):
        with pytest.raises(SpecificationError):
            random_walk_trace(BASE, 10, reversion=2.0)


class TestSinusoid:
    def test_oscillates_around_base(self):
        trace = sinusoid_trace(BASE, 40, amplitude=0.5, period=20.0)
        assert trace.max() > BASE.max()
        assert trace.min() < BASE.min()
        np.testing.assert_allclose(trace.mean(axis=0), BASE, rtol=0.1)

    def test_amplitude_bound(self):
        with pytest.raises(SpecificationError):
            sinusoid_trace(BASE, 10, amplitude=1.0)

    def test_positive(self):
        trace = sinusoid_trace(BASE, 100, amplitude=0.99)
        assert np.all(trace > 0)

    def test_period_respected(self):
        trace = sinusoid_trace(BASE, 40, amplitude=0.5, period=20.0)
        np.testing.assert_allclose(trace[0], trace[20], rtol=1e-9)
