"""Tests for the HiPer-D mapping assembler (FlatLayout / MappingAssembler)."""

import numpy as np
import pytest

from repro.core.mappings import LinearMapping, QuadraticMapping
from repro.exceptions import SpecificationError
from repro.systems.hiperd.timing import KINDS, FlatLayout, MappingAssembler


@pytest.fixture
def layout(hiperd_system):
    return FlatLayout(hiperd_system, KINDS)


@pytest.fixture
def assembler(layout):
    return MappingAssembler(layout)


class TestFlatLayout:
    def test_dimension(self, hiperd_system, layout):
        expected = (hiperd_system.n_sensors + hiperd_system.n_applications
                    + hiperd_system.n_messages)
        assert layout.dimension == expected

    def test_canonical_ordering(self, hiperd_system):
        layout = FlatLayout(hiperd_system, ("msgsize", "loads"))
        assert layout.kinds == ("loads", "msgsize")

    def test_unknown_kind_rejected(self, hiperd_system):
        with pytest.raises(SpecificationError, match="unknown"):
            FlatLayout(hiperd_system, ("loads", "sizes"))

    def test_empty_rejected(self, hiperd_system):
        with pytest.raises(SpecificationError):
            FlatLayout(hiperd_system, ())

    def test_index(self, hiperd_system):
        layout = FlatLayout(hiperd_system, ("loads", "exec"))
        assert layout.index("loads", 0) == 0
        assert layout.index("exec", 0) == hiperd_system.n_sensors

    def test_index_range_checked(self, layout):
        with pytest.raises(SpecificationError):
            layout.index("loads", 999)

    def test_flat_origin(self, hiperd_system, layout):
        origin = layout.flat_origin()
        n_s = hiperd_system.n_sensors
        np.testing.assert_allclose(origin[:n_s],
                                   hiperd_system.original_loads())

    def test_parameters_units(self, layout):
        params = layout.parameters()
        units = {p.name: p.unit for p in params}
        assert units == {"loads": "objects/set", "exec": "s/object",
                         "msgsize": "bytes"}

    def test_parameters_nonnegative(self, layout):
        for p in layout.parameters():
            assert p.lower is not None
            assert np.all(p.lower == 0.0)


class TestMappingStructure:
    def test_comp_time_quadratic_when_both_free(self, assembler):
        app = assembler.system.applications[0].name
        m = assembler.computation_time(app)
        assert isinstance(m, QuadraticMapping)

    def test_comp_time_linear_when_only_loads_free(self, hiperd_system):
        layout = FlatLayout(hiperd_system, ("loads",))
        m = MappingAssembler(layout).computation_time(
            hiperd_system.applications[0].name)
        assert isinstance(m, LinearMapping)

    def test_comp_time_linear_when_only_exec_free(self, hiperd_system):
        layout = FlatLayout(hiperd_system, ("exec",))
        m = MappingAssembler(layout).computation_time(
            hiperd_system.applications[0].name)
        assert isinstance(m, LinearMapping)

    def test_comm_time_always_linear(self, hiperd_system):
        layout = FlatLayout(hiperd_system, ("msgsize",))
        asm = MappingAssembler(layout)
        for msg in hiperd_system.messages:
            assert isinstance(asm.communication_time(msg), LinearMapping)

    def test_msgsize_frozen_becomes_constant(self, hiperd_system):
        layout = FlatLayout(hiperd_system, ("loads",))
        asm = MappingAssembler(layout)
        msg = hiperd_system.messages[0]
        m = asm.communication_time(msg)
        assert isinstance(m, LinearMapping)
        assert not np.any(m.coefficients)
        assert m.constant == pytest.approx(
            hiperd_system.communication_time(msg))


class TestMappingValues:
    def test_comp_time_matches_direct(self, hiperd_system, assembler, layout):
        origin = layout.flat_origin()
        for app in hiperd_system.applications:
            m = assembler.computation_time(app.name)
            assert m.value(origin) == pytest.approx(
                hiperd_system.computation_time(app.name))

    def test_comp_time_perturbed_loads(self, hiperd_system, assembler, layout):
        x = layout.flat_origin()
        loads = hiperd_system.original_loads() * 1.7
        x[:hiperd_system.n_sensors] = loads
        for app in hiperd_system.applications:
            m = assembler.computation_time(app.name)
            assert m.value(x) == pytest.approx(
                hiperd_system.computation_time(app.name, loads=loads))

    def test_comp_time_perturbed_exec(self, hiperd_system, assembler, layout):
        x = layout.flat_origin()
        sl = slice(hiperd_system.n_sensors,
                   hiperd_system.n_sensors + hiperd_system.n_applications)
        unit = hiperd_system.original_unit_times() * 0.5
        x[sl] = unit
        for app in hiperd_system.applications:
            m = assembler.computation_time(app.name)
            assert m.value(x) == pytest.approx(
                hiperd_system.computation_time(app.name, unit_times=unit))

    def test_comm_time_matches_direct(self, hiperd_system, assembler, layout):
        origin = layout.flat_origin()
        for msg in hiperd_system.messages:
            m = assembler.communication_time(msg)
            assert m.value(origin) == pytest.approx(
                hiperd_system.communication_time(msg))

    def test_path_latency_matches_direct(self, hiperd_system, assembler,
                                         layout):
        origin = layout.flat_origin()
        for path in hiperd_system.sensor_actuator_paths():
            m = assembler.path_latency(path)
            assert m.value(origin) == pytest.approx(
                hiperd_system.path_latency(path))

    def test_path_latency_under_joint_perturbation(self, hiperd_system,
                                                   assembler, layout, rng):
        x = layout.flat_origin() * rng.uniform(0.8, 1.5,
                                               size=layout.dimension)
        n_s = hiperd_system.n_sensors
        n_a = hiperd_system.n_applications
        loads, unit, sizes = (x[:n_s], x[n_s:n_s + n_a], x[n_s + n_a:])
        for path in hiperd_system.sensor_actuator_paths():
            m = assembler.path_latency(path)
            assert m.value(x) == pytest.approx(
                hiperd_system.path_latency(path, loads=loads,
                                           unit_times=unit, sizes=sizes))

    def test_machine_utilization_sums_apps(self, hiperd_system, assembler,
                                           layout):
        origin = layout.flat_origin()
        for j in range(len(hiperd_system.machines)):
            apps = hiperd_system.apps_on_machine(j)
            m = assembler.machine_utilization(j)
            expected = sum(hiperd_system.computation_time(a) for a in apps)
            assert m.value(origin) == pytest.approx(expected)
