"""Property-based tests of the makespan closed form.

The analytic radius ``r_j(tau) = (tau - F_j)/sqrt(n_j)`` is affine and
increasing in ``tau``; ``rho(tau) = min_j r_j(tau)`` is therefore a
piecewise-affine, increasing, concave function of the deadline — structure
these tests pin on random instances.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.systems.independent import Allocation, EtcMatrix, MakespanSystem

sizes = st.tuples(st.integers(min_value=2, max_value=10),
                  st.integers(min_value=2, max_value=4))


def random_system(n_tasks, n_machines, seed):
    rng = np.random.default_rng(seed)
    etc = EtcMatrix(rng.uniform(1.0, 50.0, size=(n_tasks, n_machines)))
    alloc = Allocation(rng.integers(0, n_machines, size=n_tasks).astype(np.intp),
                       n_machines)
    return MakespanSystem(etc, alloc)


class TestRhoVsTau:
    @given(shape=sizes, seed=st.integers(0, 1000),
           f1=st.floats(min_value=1.05, max_value=1.5),
           f2=st.floats(min_value=1.6, max_value=3.0))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_tau(self, shape, seed, f1, f2):
        system = random_system(*shape, seed)
        ms = system.makespan()
        assert system.analytic_rho(tau=f1 * ms) < system.analytic_rho(
            tau=f2 * ms)

    @given(shape=sizes, seed=st.integers(0, 1000),
           f1=st.floats(min_value=1.1, max_value=2.0),
           f2=st.floats(min_value=2.1, max_value=4.0))
    @settings(max_examples=60, deadline=None)
    def test_concave_in_tau(self, shape, seed, f1, f2):
        """min of affine functions is concave: rho((t1+t2)/2) >=
        (rho(t1) + rho(t2))/2."""
        system = random_system(*shape, seed)
        ms = system.makespan()
        t1, t2 = f1 * ms, f2 * ms
        mid = system.analytic_rho(tau=0.5 * (t1 + t2))
        avg = 0.5 * (system.analytic_rho(tau=t1)
                     + system.analytic_rho(tau=t2))
        assert mid >= avg - 1e-9 * (1 + abs(avg))

    @given(shape=sizes, seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_rho_vanishes_at_makespan(self, shape, seed):
        """At tau = makespan the critical machine is on its boundary."""
        system = random_system(*shape, seed)
        ms = system.makespan()
        # approach tau -> makespan from above: radius -> 0 linearly
        eps = 1e-6 * ms
        rho = system.analytic_rho(tau=ms + eps)
        # critical machine has F_j = ms, so rho = eps/sqrt(n_j) <= eps
        # (relative tolerance: (tau - F_j) suffers float cancellation)
        assert 0 < rho <= eps * (1.0 + 1e-9)

    @given(shape=sizes, seed=st.integers(0, 1000),
           factor=st.floats(min_value=1.1, max_value=3.0),
           scale=st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=40, deadline=None)
    def test_radius_scales_with_time_units(self, shape, seed, factor, scale):
        """Rescaling all times (a unit change) rescales rho identically —
        the single-kind radius carries the parameter's unit, as the paper
        notes."""
        system = random_system(*shape, seed)
        scaled = MakespanSystem(EtcMatrix(system.etc.values * scale),
                                system.allocation)
        tau = factor * system.makespan()
        assert scaled.analytic_rho(tau=scale * tau) == pytest.approx(
            scale * system.analytic_rho(tau=tau), rel=1e-9)


class TestPipelineAgreesUnderRandomisation:
    @given(shape=sizes, seed=st.integers(0, 500),
           factor=st.floats(min_value=1.1, max_value=2.0))
    @settings(max_examples=25, deadline=None)
    def test_generic_solver_matches_closed_form(self, shape, seed, factor):
        system = random_system(*shape, seed)
        tau = factor * system.makespan()
        ana = system.robustness_analysis(tau=tau)
        assert ana.rho() == pytest.approx(system.analytic_rho(tau=tau),
                                          rel=1e-9)
