"""Tests for the Section 3 closed forms — the paper's headline results."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.degeneracy import (
    LinearCase,
    normalized_radius_linear,
    per_parameter_radius_linear,
    sensitivity_alphas_linear,
    sensitivity_radius_linear,
)
from repro.exceptions import SpecificationError

positive = st.floats(min_value=1e-3, max_value=1e3, allow_nan=False)
betas = st.floats(min_value=1.01, max_value=10.0, allow_nan=False)


def cases(n_min=1, n_max=8):
    """Hypothesis strategy for random LinearCase instances."""
    return st.integers(min_value=n_min, max_value=n_max).flatmap(
        lambda n: st.tuples(
            st.lists(positive, min_size=n, max_size=n),
            st.lists(positive, min_size=n, max_size=n),
            betas,
        )).map(lambda t: LinearCase(t[0], t[1], t[2]))


class TestLinearCase:
    def test_basic_properties(self):
        case = LinearCase([2.0, 3.0], [4.0, 2.0], 1.2)
        assert case.n == 2
        assert case.phi_orig == pytest.approx(14.0)
        assert case.beta_max == pytest.approx(16.8)

    def test_length_mismatch_rejected(self):
        with pytest.raises(SpecificationError):
            LinearCase([1.0], [1.0, 2.0], 1.5)

    def test_zero_coefficient_rejected(self):
        with pytest.raises(SpecificationError, match="nonzero"):
            LinearCase([0.0, 1.0], [1.0, 1.0], 1.5)

    def test_nonpositive_original_rejected(self):
        with pytest.raises(SpecificationError):
            LinearCase([1.0], [0.0], 1.5)

    def test_beta_at_most_one_rejected(self):
        with pytest.raises(SpecificationError, match="beta"):
            LinearCase([1.0], [1.0], 1.0)


class TestPerParameterRadius:
    def test_paper_formula(self):
        # r_j = (beta - 1)/k_j * sum_m k_m pi_m^orig
        case = LinearCase([2.0, 3.0], [4.0, 2.0], 1.2)
        assert per_parameter_radius_linear(case, 0) == pytest.approx(
            0.2 / 2.0 * 14.0)
        assert per_parameter_radius_linear(case, 1) == pytest.approx(
            0.2 / 3.0 * 14.0)

    def test_index_checked(self):
        case = LinearCase([1.0], [1.0], 1.5)
        with pytest.raises(SpecificationError):
            per_parameter_radius_linear(case, 1)

    def test_matches_direct_boundary_solve(self, rng):
        # Independently: freeze other params, solve k_j pi_j = beta_max -
        # sum_{m != j} k_m pi_m^orig for pi_j, subtract the original.
        for _ in range(10):
            n = int(rng.integers(2, 6))
            case = LinearCase(rng.uniform(0.5, 5.0, n),
                              rng.uniform(0.5, 5.0, n),
                              float(rng.uniform(1.05, 2.0)))
            j = int(rng.integers(n))
            frozen = case.phi_orig - case.coefficients[j] * case.originals[j]
            pi_boundary = (case.beta_max - frozen) / case.coefficients[j]
            expected = pi_boundary - case.originals[j]
            assert per_parameter_radius_linear(case, j) == pytest.approx(expected)


class TestSensitivityAlphas:
    def test_equation_3(self):
        case = LinearCase([2.0, 3.0], [4.0, 2.0], 1.2)
        alphas = sensitivity_alphas_linear(case)
        denom = 0.2 * 14.0
        np.testing.assert_allclose(alphas, [2.0 / denom, 3.0 / denom])

    def test_reciprocal_of_radii(self):
        case = LinearCase([1.0, 5.0, 0.3], [2.0, 0.1, 7.0], 1.7)
        alphas = sensitivity_alphas_linear(case)
        for j in range(case.n):
            assert alphas[j] == pytest.approx(
                1.0 / per_parameter_radius_linear(case, j))


class TestDegeneracyTheorem:
    """The paper's central negative result: r == 1/sqrt(n), always."""

    @given(case=cases())
    @settings(max_examples=200)
    def test_sensitivity_radius_is_inverse_sqrt_n(self, case):
        assert sensitivity_radius_linear(case) == pytest.approx(
            1.0 / math.sqrt(case.n), rel=1e-9)

    def test_independent_of_beta(self):
        for beta in (1.01, 1.2, 2.0, 10.0, 100.0):
            case = LinearCase([1.0, 2.0, 3.0], [4.0, 5.0, 6.0], beta)
            assert sensitivity_radius_linear(case) == pytest.approx(
                1.0 / math.sqrt(3))

    def test_independent_of_scale(self):
        base = LinearCase([1.0, 2.0], [3.0, 4.0], 1.5)
        scaled = LinearCase([1e6, 2e-6], [3e-3, 4e9], 1.5)
        assert sensitivity_radius_linear(base) == pytest.approx(
            sensitivity_radius_linear(scaled))


class TestNormalizedRadius:
    def test_paper_formula(self):
        case = LinearCase([2.0, 3.0], [4.0, 2.0], 1.2)
        weighted = np.array([8.0, 6.0])
        expected = 0.2 * 14.0 / math.sqrt(float(np.sum(weighted ** 2)))
        assert normalized_radius_linear(case) == pytest.approx(expected)

    @given(case=cases())
    @settings(max_examples=100)
    def test_scales_linearly_with_beta_minus_one(self, case):
        r1 = normalized_radius_linear(case)
        case2 = LinearCase(case.coefficients, case.originals,
                           1.0 + 2.0 * (case.beta - 1.0))
        assert normalized_radius_linear(case2) == pytest.approx(2.0 * r1,
                                                                rel=1e-9)

    @given(case=cases(n_min=2))
    @settings(max_examples=100)
    def test_depends_on_coefficients(self, case):
        # Doubling one coefficient changes the radius (unless a symmetric
        # coincidence, which the strategy's continuous draws make
        # measure-zero; we only require inequality beyond float noise
        # *or* detectable formula agreement).
        k2 = case.coefficients.copy()
        k2[0] *= 2.0
        case2 = LinearCase(k2, case.originals, case.beta)
        r1 = normalized_radius_linear(case)
        r2 = normalized_radius_linear(case2)
        w1 = case.coefficients * case.originals
        w2 = k2 * case.originals
        expected_ratio = (np.sum(w2) / math.sqrt(np.sum(w2 ** 2))) / (
            np.sum(w1) / math.sqrt(np.sum(w1 ** 2)))
        assert r2 / r1 == pytest.approx(expected_ratio, rel=1e-9)

    @given(case=cases())
    @settings(max_examples=100)
    def test_bounded_by_sqrt_n_times_beta_minus_one(self, case):
        # |sum w| / sqrt(sum w^2) <= sqrt(n) (Cauchy-Schwarz); with
        # positive weights it is also >= 1.
        r = normalized_radius_linear(case)
        assert r <= (case.beta - 1.0) * math.sqrt(case.n) * (1 + 1e-12)
        assert r >= (case.beta - 1.0) * (1 - 1e-12)

    def test_single_parameter_reduces_to_relative_slack(self):
        # n = 1: radius = (beta - 1) exactly (relative change to boundary).
        case = LinearCase([7.0], [3.0], 1.4)
        assert normalized_radius_linear(case) == pytest.approx(0.4)
