"""Property-based tests of the core invariants (hypothesis).

These are the library's contract with the paper:

* pipeline radii match the closed forms on the general linear case, for
  both weightings;
* the sensitivity degeneracy holds end-to-end through the generic solver;
* normalized radii are invariant under per-parameter unit rescaling;
* rho is monotone under adding features;
* radii are non-negative and zero exactly on the boundary.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.linear_case import analysis_for_case
from repro.core.degeneracy import (
    LinearCase,
    normalized_radius_linear,
    sensitivity_radius_linear,
)
from repro.core.features import PerformanceFeature, ToleranceBounds
from repro.core.fepia import FeatureSpec, RobustnessAnalysis
from repro.core.mappings import LinearMapping
from repro.core.perturbation import PerturbationParameter
from repro.core.weighting import (
    IdentityWeighting,
    NormalizedWeighting,
    SensitivityWeighting,
)

positive = st.floats(min_value=1e-2, max_value=1e2, allow_nan=False)
betas = st.floats(min_value=1.05, max_value=5.0, allow_nan=False)

slow = settings(max_examples=30, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def case_strategy(n_max=5):
    return st.integers(min_value=1, max_value=n_max).flatmap(
        lambda n: st.tuples(
            st.lists(positive, min_size=n, max_size=n),
            st.lists(positive, min_size=n, max_size=n),
            betas,
        )).map(lambda t: LinearCase(t[0], t[1], t[2]))


class TestPipelineMatchesClosedForms:
    @given(case=case_strategy())
    @slow
    def test_sensitivity_pipeline_equals_inverse_sqrt_n(self, case):
        rho = analysis_for_case(case, SensitivityWeighting()).rho()
        assert rho == pytest.approx(1.0 / math.sqrt(case.n), rel=1e-9)

    @given(case=case_strategy())
    @slow
    def test_normalized_pipeline_equals_closed_form(self, case):
        rho = analysis_for_case(case, NormalizedWeighting()).rho()
        assert rho == pytest.approx(normalized_radius_linear(case), rel=1e-9)

    @given(case=case_strategy())
    @slow
    def test_sensitivity_closed_form_self_consistent(self, case):
        assert sensitivity_radius_linear(case) == pytest.approx(
            1.0 / math.sqrt(case.n), rel=1e-9)


class TestUnitInvariance:
    @given(case=case_strategy(n_max=4),
           scales=st.lists(positive, min_size=4, max_size=4))
    @slow
    def test_normalized_radius_invariant_to_unit_rescaling(self, case, scales):
        # Express parameter j in different units: pi' = c * pi and
        # k' = k / c leave the feature unchanged; the normalized radius
        # must not move (it is dimensionless).
        c = np.array(scales[:case.n])
        case2 = LinearCase(case.coefficients / c, case.originals * c,
                           case.beta)
        assert normalized_radius_linear(case2) == pytest.approx(
            normalized_radius_linear(case), rel=1e-9)

    @given(case=case_strategy(n_max=4),
           scales=st.lists(positive, min_size=4, max_size=4))
    @slow
    def test_pipeline_normalized_invariance(self, case, scales):
        c = np.array(scales[:case.n])
        case2 = LinearCase(case.coefficients / c, case.originals * c,
                           case.beta)
        rho1 = analysis_for_case(case, NormalizedWeighting()).rho()
        rho2 = analysis_for_case(case2, NormalizedWeighting()).rho()
        assert rho1 == pytest.approx(rho2, rel=1e-9)


class TestMetricStructure:
    @given(ks=st.lists(positive, min_size=2, max_size=4),
           origs=st.lists(positive, min_size=2, max_size=4),
           bound_scale=betas)
    @slow
    def test_adding_a_feature_cannot_increase_rho(self, ks, origs,
                                                  bound_scale):
        n = min(len(ks), len(origs))
        ks, origs = ks[:n], origs[:n]
        p = PerturbationParameter("x", origs)
        m1 = LinearMapping(ks)
        phi0 = m1.value(np.array(origs))
        spec1 = FeatureSpec(
            PerformanceFeature("f1", ToleranceBounds.upper(bound_scale * phi0)),
            m1)
        m2 = LinearMapping(list(reversed(ks)))
        phi2 = m2.value(np.array(origs))
        spec2 = FeatureSpec(
            PerformanceFeature("f2",
                               ToleranceBounds.upper(1.1 * phi2)),
            m2)
        rho_one = RobustnessAnalysis([spec1], [p],
                                     weighting=IdentityWeighting()).rho()
        rho_two = RobustnessAnalysis([spec1, spec2], [p],
                                     weighting=IdentityWeighting()).rho()
        assert rho_two <= rho_one + 1e-12

    @given(case=case_strategy())
    @slow
    def test_radius_nonnegative(self, case):
        assert analysis_for_case(case, NormalizedWeighting()).rho() >= 0.0

    @given(ks=st.lists(positive, min_size=1, max_size=4))
    @slow
    def test_radius_zero_on_boundary(self, ks):
        p = PerturbationParameter("x", np.ones(len(ks)))
        m = LinearMapping(ks)
        phi0 = m.value(np.ones(len(ks)))
        spec = FeatureSpec(
            PerformanceFeature("f", ToleranceBounds.upper(phi0)), m)
        ana = RobustnessAnalysis([spec], [p], weighting=IdentityWeighting())
        assert ana.rho() == 0.0

    @given(case=case_strategy(), factor=st.floats(min_value=1.1,
                                                  max_value=3.0))
    @slow
    def test_loosening_beta_increases_normalized_radius(self, case, factor):
        looser = LinearCase(case.coefficients, case.originals,
                            1.0 + factor * (case.beta - 1.0))
        assert normalized_radius_linear(looser) > normalized_radius_linear(case)

    @given(case=case_strategy(), factor=st.floats(min_value=1.1,
                                                  max_value=3.0))
    @slow
    def test_loosening_beta_does_not_change_sensitivity_radius(self, case,
                                                               factor):
        """The paper's complaint, as an executable property."""
        looser = LinearCase(case.coefficients, case.originals,
                            1.0 + factor * (case.beta - 1.0))
        assert sensitivity_radius_linear(looser) == pytest.approx(
            sensitivity_radius_linear(case), rel=1e-9)
