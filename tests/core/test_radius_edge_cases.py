"""Edge-case coverage of the radius dispatcher across solver routes.

Complements ``test_radius.py`` with two-sided intervals on every solver
family, per-bound diagnostics, and corner configurations (degenerate
boxes, huge scale separations, reweighted transports of each family).
"""

import math

import numpy as np
import pytest

from repro.core.features import ToleranceBounds
from repro.core.mappings import (
    CallableMapping,
    LinearMapping,
    QuadraticMapping,
    ReweightedMapping,
)
from repro.core.radius import RadiusProblem, compute_radius
from repro.exceptions import InfeasibleAllocationError


def problem(mapping, origin, bounds, **kw):
    return RadiusProblem(mapping=mapping, origin=np.asarray(origin, float),
                         bounds=bounds, **kw)


class TestTwoSidedIntervals:
    def test_linear_nearer_lower_bound(self):
        p = problem(LinearMapping([1.0]), [2.0], ToleranceBounds(0.0, 10.0))
        res = compute_radius(p)
        assert res.bound_hit == 0.0
        assert res.radius == pytest.approx(2.0)
        assert res.per_bound == pytest.approx({0.0: 2.0, 10.0: 8.0})

    def test_ellipsoid_lower_bound_handled(self):
        # f = x^2 + y^2 in [1, 9], origin at radius 2: both bounds are
        # reachable; the nearer one is distance 1 either way.
        m = QuadraticMapping(np.eye(2))
        p = problem(m, [2.0, 0.0], ToleranceBounds(1.0, 9.0))
        res = compute_radius(p, seed=0)
        assert res.radius == pytest.approx(1.0, rel=1e-9)
        assert set(res.per_bound) == {1.0, 9.0}
        assert res.per_bound[1.0] == pytest.approx(1.0, rel=1e-9)
        assert res.per_bound[9.0] == pytest.approx(1.0, rel=1e-9)

    def test_ellipsoid_unreachable_lower_bound(self):
        # f = x^2 + y^2 + 5 in [1, 14]: the lower boundary f = 1 needs
        # x^2+y^2 = -4, impossible; only the upper bound binds.
        m = QuadraticMapping(np.eye(2), None, 5.0)
        p = problem(m, [1.0, 0.0], ToleranceBounds(1.0, 14.0))
        res = compute_radius(p, seed=0)
        assert math.isinf(res.per_bound[1.0])
        assert res.bound_hit == 14.0
        assert res.radius == pytest.approx(2.0, rel=1e-9)

    def test_callable_two_sided(self):
        m = CallableMapping(lambda x: float(np.sin(x[0])), 1)
        p = problem(m, [0.0], ToleranceBounds(-0.5, 0.5))
        res = compute_radius(p, seed=0)
        assert res.radius == pytest.approx(np.arcsin(0.5), rel=1e-4)


class TestScaleRobustness:
    def test_tiny_and_huge_coefficients(self):
        m = LinearMapping([1e-9, 1e9])
        p = problem(m, [0.0, 0.0], ToleranceBounds.upper(1.0))
        res = compute_radius(p)
        # dominated by the huge coefficient: distance ~ 1/1e9
        assert res.radius == pytest.approx(1.0 / np.sqrt(1e-18 + 1e18),
                                           rel=1e-9)

    def test_reweighted_ellipsoid_route(self):
        base = QuadraticMapping(np.diag([4.0, 1.0]))
        m = ReweightedMapping(base, [2.0, 1.0])   # P-space transport
        p = problem(m, [0.0, 0.0], ToleranceBounds.upper(1.0))
        res = compute_radius(p, seed=0)
        assert res.method == "ellipsoid"
        # g(P) = 4 (P1/2)^2 + P2^2 = P1^2 + P2^2: the unit circle
        assert res.radius == pytest.approx(1.0, rel=1e-12)

    def test_origin_far_from_zero(self):
        m = LinearMapping([1.0, 1.0])
        origin = [1e6, 1e6]
        p = problem(m, origin, ToleranceBounds.upper(2e6 + 2.0))
        res = compute_radius(p)
        assert res.radius == pytest.approx(np.sqrt(2), rel=1e-9)


class TestDegenerateBoxes:
    def test_point_box_feasible_level(self):
        # box pins x to exactly the origin; any other level is unreachable
        m = LinearMapping([1.0])
        p = problem(m, [1.0], ToleranceBounds.upper(5.0),
                    lower=np.array([1.0]), upper=np.array([1.0]))
        res = compute_radius(p, seed=0)
        assert math.isinf(res.radius)

    def test_box_exactly_at_bound(self):
        # the boundary level is attainable only at the box edge
        m = LinearMapping([1.0])
        p = problem(m, [0.0], ToleranceBounds.upper(2.0),
                    lower=np.array([0.0]), upper=np.array([2.0]))
        res = compute_radius(p, seed=0)
        assert res.radius == pytest.approx(2.0, abs=1e-9)
        assert res.method == "analytic-box"


class TestFeasibilityEdge:
    def test_violating_origin_raises_for_all_routes(self):
        for mapping in (LinearMapping([1.0, 1.0]),
                        QuadraticMapping(np.eye(2)),
                        CallableMapping(lambda x: float(x @ x), 2)):
            p = problem(mapping, [3.0, 3.0], ToleranceBounds.upper(1.0))
            with pytest.raises(InfeasibleAllocationError):
                compute_radius(p, seed=0)

    def test_lower_violation_raises(self):
        p = problem(LinearMapping([1.0]), [0.0], ToleranceBounds.lower(1.0))
        with pytest.raises(InfeasibleAllocationError):
            compute_radius(p)

    def test_on_lower_boundary_zero_radius(self):
        p = problem(LinearMapping([1.0]), [1.0], ToleranceBounds.lower(1.0))
        res = compute_radius(p)
        assert res.radius == 0.0
