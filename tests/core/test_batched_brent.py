"""`batched_brentq` is a float-for-float port of SciPy's brentq kernel:
every row's root must equal `scipy.optimize.brentq` on the same bracket,
bit for bit, while the whole batch spends one evaluation call per
lock-step iteration."""

import math

import numpy as np
import pytest
from scipy.optimize import brentq

from repro.core.solvers.brent import SCIPY_RTOL, batched_brentq


def _function_family(kind: int, rng: np.random.Generator):
    if kind == 0:
        a, b, c = rng.standard_normal(3)
        return lambda t: t * t * t * a + t * b + c
    if kind == 1:
        w = rng.standard_normal(4)
        off = np.arange(4) * 0.1
        return lambda t: float(np.max(w * t + off)) - 1.0
    if kind == 2:
        k = rng.uniform(0.5, 3.0)
        return lambda t: math.exp(k * t) - 2.0
    if kind == 3:
        k = rng.uniform(0.5, 4.0)
        return lambda t: math.sin(k * t) - 0.3 + 0.05 * t
    w = rng.standard_normal(6)
    return lambda t: float(np.sum(np.abs(w) * t * t) - np.sum(w) * t) - 1.0


def _random_brackets(n_rows: int, seed: int):
    """Assorted bracketed scalar functions with their endpoints."""
    rng = np.random.default_rng(seed)
    fns, los, his = [], [], []
    while len(fns) < n_rows:
        f = _function_family(len(fns) % 5, rng)
        lo = rng.uniform(-2.0, 0.0)
        hi = lo + rng.uniform(1e-6, 5.0)
        try:
            flo, fhi = f(lo), f(hi)
        except (OverflowError, ValueError):
            continue
        if not (np.isfinite(flo) and np.isfinite(fhi)) or flo * fhi > 0:
            continue
        fns.append(f)
        los.append(lo)
        his.append(hi)
    return fns, np.asarray(los), np.asarray(his)


def _evaluate_rows(fns):
    calls = {"n": 0}

    def evaluate(ts, rows):
        calls["n"] += 1
        return np.asarray([fns[int(r)](float(t))
                           for t, r in zip(ts, rows)])
    return evaluate, calls


class TestBitIdentityAgainstScipy:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
    def test_roots_match_scipy_bitwise(self, seed):
        fns, lo, hi = _random_brackets(64, seed)
        f_lo = np.asarray([f(t) for f, t in zip(fns, lo)])
        f_hi = np.asarray([f(t) for f, t in zip(fns, hi)])
        evaluate, calls = _evaluate_rows(fns)
        roots, ok = batched_brentq(evaluate, lo, hi, f_lo, f_hi, xtol=1e-12)
        assert ok.all()
        expected = np.asarray([brentq(f, a, b, xtol=1e-12)
                               for f, a, b in zip(fns, lo, hi)])
        assert np.array_equal(roots, expected)
        # lock-step: one batched call per Brent iteration, not per row
        assert calls["n"] <= 100

    def test_tight_xtol_still_bitwise(self):
        fns, lo, hi = _random_brackets(32, seed=99)
        f_lo = np.asarray([f(t) for f, t in zip(fns, lo)])
        f_hi = np.asarray([f(t) for f, t in zip(fns, hi)])
        evaluate, _ = _evaluate_rows(fns)
        roots, ok = batched_brentq(evaluate, lo, hi, f_lo, f_hi,
                                   xtol=1e-14, rtol=SCIPY_RTOL)
        assert ok.all()
        expected = np.asarray([brentq(f, a, b, xtol=1e-14)
                               for f, a, b in zip(fns, lo, hi)])
        assert np.array_equal(roots, expected)


class TestEndpointsAndFlags:
    def test_zero_at_lower_endpoint_returns_it(self):
        f = [lambda t: t]
        evaluate, calls = _evaluate_rows(f)
        roots, ok = batched_brentq(evaluate, np.array([0.0]),
                                   np.array([1.0]), np.array([0.0]),
                                   np.array([1.0]))
        assert ok.all() and roots[0] == 0.0 and calls["n"] == 0

    def test_zero_at_upper_endpoint_returns_it(self):
        f = [lambda t: t - 1.0]
        evaluate, calls = _evaluate_rows(f)
        roots, ok = batched_brentq(evaluate, np.array([0.0]),
                                   np.array([1.0]), np.array([-1.0]),
                                   np.array([0.0]))
        assert ok.all() and roots[0] == 1.0 and calls["n"] == 0

    def test_sign_violation_flagged_not_raised(self):
        f = [lambda t: t + 10.0]
        evaluate, _ = _evaluate_rows(f)
        roots, ok = batched_brentq(evaluate, np.array([0.0]),
                                   np.array([1.0]), np.array([10.0]),
                                   np.array([11.0]))
        assert not ok[0]

    def test_maxiter_exhaustion_matches_scipy_iterate(self):
        fns, lo, hi = _random_brackets(8, seed=5)
        f_lo = np.asarray([f(t) for f, t in zip(fns, lo)])
        f_hi = np.asarray([f(t) for f, t in zip(fns, hi)])
        evaluate, _ = _evaluate_rows(fns)
        roots, ok = batched_brentq(evaluate, lo, hi, f_lo, f_hi,
                                   xtol=1e-12, maxiter=2)
        # not converged in 2 steps, but the iterate equals SciPy's
        expected = np.asarray([brentq(f, a, b, xtol=1e-12, maxiter=2,
                                      disp=False)
                               for f, a, b in zip(fns, lo, hi)])
        assert np.array_equal(roots, expected)
        assert not ok.any()

    def test_empty_batch(self):
        evaluate, calls = _evaluate_rows([])
        roots, ok = batched_brentq(evaluate, np.empty(0), np.empty(0),
                                   np.empty(0), np.empty(0))
        assert roots.size == 0 and ok.size == 0 and calls["n"] == 0

    def test_mixed_convergence_only_evaluates_active_rows(self):
        fns = [lambda t: t - 0.5, lambda t: math.tan(t) - 1.0]
        lo = np.array([0.0, 0.0])
        hi = np.array([1.0, 1.5])
        f_lo = np.asarray([f(t) for f, t in zip(fns, lo)])
        f_hi = np.asarray([f(t) for f, t in zip(fns, hi)])
        seen_rows = []

        def evaluate(ts, rows):
            seen_rows.append(np.asarray(rows).copy())
            return np.asarray([fns[int(r)](float(t))
                               for t, r in zip(ts, rows)])

        roots, ok = batched_brentq(evaluate, lo, hi, f_lo, f_hi)
        assert ok.all()
        expected = np.asarray([brentq(f, a, b, xtol=1e-12)
                               for f, a, b in zip(fns, lo, hi)])
        assert np.array_equal(roots, expected)
        # the linear row converges first; later calls only carry row 1
        assert any(rows.tolist() == [1] for rows in seen_rows)
