"""Tests for repro.core.perturbation (FePIA step 2)."""

import numpy as np
import pytest

from repro.core.perturbation import PerturbationParameter
from repro.exceptions import DimensionMismatchError, SpecificationError


class TestConstruction:
    def test_basic(self):
        p = PerturbationParameter("exec", np.array([1.0, 2.0]), unit="s")
        assert p.dimension == 2
        assert len(p) == 2
        assert p.unit == "s"

    def test_list_accepted(self):
        p = PerturbationParameter("x", [1, 2, 3])
        assert p.original.dtype == np.float64

    def test_empty_name_rejected(self):
        with pytest.raises(SpecificationError, match="non-empty"):
            PerturbationParameter("", [1.0])

    def test_nan_original_rejected(self):
        with pytest.raises(SpecificationError, match="finite"):
            PerturbationParameter("x", [1.0, float("nan")])

    def test_scalar_bounds_broadcast(self):
        p = PerturbationParameter("x", [1.0, 2.0], lower=0.0, upper=10.0)
        np.testing.assert_array_equal(p.lower, [0.0, 0.0])
        np.testing.assert_array_equal(p.upper, [10.0, 10.0])

    def test_bound_length_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            PerturbationParameter("x", [1.0, 2.0], lower=[0.0])

    def test_original_below_lower_rejected(self):
        with pytest.raises(SpecificationError, match="lower"):
            PerturbationParameter("x", [1.0], lower=[2.0])

    def test_original_above_upper_rejected(self):
        with pytest.raises(SpecificationError, match="upper"):
            PerturbationParameter("x", [5.0], upper=[2.0])

    def test_crossed_bounds_rejected(self):
        with pytest.raises(SpecificationError):
            PerturbationParameter("x", [1.0], lower=[0.0], upper=[-1.0])

    def test_nonnegative_factory(self):
        p = PerturbationParameter.nonnegative("loads", [3.0, 4.0], unit="obj")
        np.testing.assert_array_equal(p.lower, [0.0, 0.0])
        assert p.upper is None


class TestBoundsOps:
    def test_clip(self):
        p = PerturbationParameter("x", [1.0, 1.0], lower=0.0, upper=2.0)
        clipped = p.clip_to_bounds(np.array([-1.0, 5.0]))
        np.testing.assert_array_equal(clipped, [0.0, 2.0])

    def test_clip_without_bounds_identity(self):
        p = PerturbationParameter("x", [1.0, 1.0])
        vals = np.array([-5.0, 100.0])
        np.testing.assert_array_equal(p.clip_to_bounds(vals), vals)

    def test_clip_shape_check(self):
        p = PerturbationParameter("x", [1.0, 1.0])
        with pytest.raises(DimensionMismatchError):
            p.clip_to_bounds(np.zeros(3))

    def test_within_bounds(self):
        p = PerturbationParameter("x", [1.0], lower=0.0, upper=2.0)
        assert p.within_bounds(np.array([1.5]))
        assert not p.within_bounds(np.array([-0.1]))
        assert not p.within_bounds(np.array([2.1]))

    def test_within_bounds_atol(self):
        p = PerturbationParameter("x", [1.0], lower=0.0)
        assert p.within_bounds(np.array([-1e-12]), atol=1e-9)

    def test_batch_clip(self):
        p = PerturbationParameter("x", [1.0, 1.0], lower=0.0)
        batch = np.array([[-1.0, 2.0], [0.5, -0.5]])
        out = p.clip_to_bounds(batch)
        assert np.all(out >= 0.0)


class TestImmutability:
    def test_frozen(self):
        p = PerturbationParameter("x", [1.0])
        with pytest.raises(AttributeError):
            p.name = "y"
