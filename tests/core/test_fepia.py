"""Tests for the FePIA orchestration (RobustnessAnalysis)."""

import math

import numpy as np
import pytest

from repro.core.features import PerformanceFeature, ToleranceBounds
from repro.core.fepia import FeatureSpec, RobustnessAnalysis
from repro.core.mappings import LinearMapping
from repro.core.perturbation import PerturbationParameter
from repro.core.weighting import (
    CustomWeighting,
    IdentityWeighting,
    NormalizedWeighting,
    SensitivityWeighting,
)
from repro.exceptions import SpecificationError


def make_analysis(weighting=None, **kw):
    """phi1 = e1 + e2 (bound 12), phi2 = m1 (bound 300); e=(2,4), m=(100,)."""
    exec_p = PerturbationParameter.nonnegative("exec", [2.0, 4.0], unit="s")
    msg_p = PerturbationParameter.nonnegative("msg", [100.0], unit="bytes")
    phi1 = FeatureSpec(
        PerformanceFeature("sum_exec", ToleranceBounds.upper(12.0)),
        LinearMapping([1.0, 1.0, 0.0]))
    phi2 = FeatureSpec(
        PerformanceFeature("msg_len", ToleranceBounds.upper(300.0)),
        LinearMapping([0.0, 0.0, 1.0]))
    return RobustnessAnalysis([phi1, phi2], [exec_p, msg_p],
                              weighting=weighting, **kw)


class TestConstruction:
    def test_dimension(self):
        assert make_analysis().dimension == 3

    def test_duplicate_feature_names_rejected(self):
        p = PerturbationParameter("x", [1.0])
        spec = FeatureSpec(PerformanceFeature("f", ToleranceBounds.upper(5.0)),
                           LinearMapping([1.0]))
        with pytest.raises(SpecificationError, match="duplicate"):
            RobustnessAnalysis([spec, spec], [p])

    def test_mapping_dimension_mismatch_rejected(self):
        p = PerturbationParameter("x", [1.0])
        spec = FeatureSpec(PerformanceFeature("f", ToleranceBounds.upper(5.0)),
                           LinearMapping([1.0, 1.0]))
        with pytest.raises(SpecificationError, match="flat"):
            RobustnessAnalysis([spec], [p])

    def test_empty_features_rejected(self):
        p = PerturbationParameter("x", [1.0])
        with pytest.raises(SpecificationError):
            RobustnessAnalysis([], [p])

    def test_default_weighting_is_normalized(self):
        assert isinstance(make_analysis().weighting, NormalizedWeighting)


class TestSingleParameterRadii:
    def test_restricted_to_one_parameter(self):
        ana = make_analysis()
        # phi1 = e1 + e2, orig 6, bound 12: radius vs exec alone is
        # 6/sqrt(2) in exec units.
        res = ana.single_parameter_radius("sum_exec", "exec")
        assert res.radius == pytest.approx(6.0 / np.sqrt(2))

    def test_insensitive_parameter_gives_infinity(self):
        ana = make_analysis()
        # phi1 does not depend on msg at all
        res = ana.single_parameter_radius("sum_exec", "msg")
        assert math.isinf(res.radius)

    def test_per_parameter_radii_dict(self):
        ana = make_analysis()
        radii = ana.per_parameter_radii("msg_len")
        assert math.isinf(radii["exec"])
        assert radii["msg"] == pytest.approx(200.0)

    def test_unknown_feature(self):
        with pytest.raises(SpecificationError, match="unknown feature"):
            make_analysis().single_parameter_radius("nope", "exec")

    def test_unknown_parameter(self):
        with pytest.raises(SpecificationError, match="unknown parameter"):
            make_analysis().single_parameter_radius("sum_exec", "nope")

    def test_caching_returns_same_object(self):
        ana = make_analysis()
        r1 = ana.single_parameter_radius("sum_exec", "exec")
        r2 = ana.single_parameter_radius("sum_exec", "exec")
        assert r1 is r2


class TestPSpaceRadii:
    def test_normalized_matches_closed_form(self):
        ana = make_analysis()
        # phi1 in P-space: 2*P1 + 4*P2 = 12 from (1,1): gap 6, ||k||=sqrt(20)
        assert ana.radius("sum_exec").radius == pytest.approx(
            6.0 / np.sqrt(20.0))

    def test_rho_is_min(self):
        ana = make_analysis()
        radii = [ana.radius(s).radius for s in ana.features]
        assert ana.rho() == pytest.approx(min(radii))

    def test_critical_feature(self):
        ana = make_analysis()
        crit = ana.critical_feature()
        assert ana.radius(crit).radius == pytest.approx(ana.rho())

    def test_sensitivity_weighting_drops_insensitive_params(self):
        ana = make_analysis(weighting=SensitivityWeighting())
        # phi2 depends only on msg: with exec dropped, P-space is 1-D and
        # the radius is (300-100)/100 / (1/r) ... alpha = 1/200 so
        # P_orig = 0.5, boundary at P = 1.5 -> radius 1.
        res = ana.radius("msg_len")
        assert res.radius == pytest.approx(1.0)

    def test_sensitivity_one_param_feature_radius_is_one(self):
        # For a feature linear in ONE one-element parameter, the paper's
        # 1/sqrt(n) with n=1 gives exactly 1.
        ana = make_analysis(weighting=SensitivityWeighting())
        assert ana.radius("msg_len").radius == pytest.approx(1.0)

    def test_identity_weighting_rejected_for_mixed_units(self):
        from repro.exceptions import UnitMismatchError
        ana = make_analysis(weighting=IdentityWeighting())
        with pytest.raises(UnitMismatchError):
            ana.rho()

    def test_custom_weighting(self):
        ana = make_analysis(weighting=CustomWeighting(
            {"exec": 1.0, "msg": 0.01}))
        assert np.isfinite(ana.rho())

    def test_pspace_shared_for_normalized(self):
        ana = make_analysis()
        assert ana.pspace("sum_exec") is ana.pspace("msg_len")

    def test_pspace_per_feature_for_sensitivity(self):
        ana = make_analysis(weighting=SensitivityWeighting())
        ps1 = ana.pspace("sum_exec")
        ps2 = ana.pspace("msg_len")
        assert ps1 is not ps2

    def test_pspace_requires_feature_for_sensitivity(self):
        ana = make_analysis(weighting=SensitivityWeighting())
        with pytest.raises(SpecificationError, match="per-feature"):
            ana.pspace()

    def test_radius_cached(self):
        ana = make_analysis()
        assert ana.radius("sum_exec") is ana.radius("sum_exec")


class TestDirectEvaluation:
    def test_feature_values_at_original(self):
        vals = make_analysis().feature_values()
        assert vals["sum_exec"] == pytest.approx(6.0)
        assert vals["msg_len"] == pytest.approx(100.0)

    def test_feature_values_partial_override(self):
        vals = make_analysis().feature_values({"msg": [250.0]})
        assert vals["sum_exec"] == pytest.approx(6.0)
        assert vals["msg_len"] == pytest.approx(250.0)

    def test_feature_values_flat_vector(self):
        vals = make_analysis().feature_values(np.array([1.0, 1.0, 50.0]))
        assert vals["sum_exec"] == pytest.approx(2.0)

    def test_all_satisfied(self):
        ana = make_analysis()
        assert ana.all_satisfied()
        assert not ana.all_satisfied({"msg": [301.0]})

    def test_flat_vector_length_checked(self):
        with pytest.raises(SpecificationError):
            make_analysis().feature_values(np.zeros(5))


class TestPhysicalBounds:
    def test_respecting_bounds_changes_search(self):
        # phi = e1 - e2 style: lower bound violation only reachable by
        # negative values, which physical bounds forbid.
        exec_p = PerturbationParameter.nonnegative("exec", [1.0, 1.0])
        spec = FeatureSpec(
            PerformanceFeature("diff", ToleranceBounds(-1.5, 10.0)),
            LinearMapping([1.0, 1.0]))
        free = RobustnessAnalysis(
            [spec], [exec_p], weighting=IdentityWeighting())
        constrained = RobustnessAnalysis(
            [spec], [exec_p], weighting=IdentityWeighting(),
            respect_physical_bounds=True)
        # Unconstrained: distance to plane e1+e2=-1.5 is 3.5/sqrt(2) < to
        # the upper plane 8/sqrt(2); constrained, the lower plane is
        # unreachable (e >= 0 means e1+e2 >= 0 > -1.5) so the radius jumps
        # to the upper plane's distance.
        assert free.rho() == pytest.approx(3.5 / np.sqrt(2))
        assert constrained.rho() == pytest.approx(8.0 / np.sqrt(2), rel=1e-5)
