"""Tests for the closed-form hyperplane radius solver (Equation 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.mappings import LinearMapping, QuadraticMapping
from repro.core.solvers.analytic import dual_norm_order, solve_linear_radius
from repro.exceptions import BoundaryNotFoundError, SpecificationError

coef = st.floats(min_value=-100, max_value=100, allow_nan=False)


class TestDualNormOrder:
    def test_pairs(self):
        assert dual_norm_order(2) == 2
        assert dual_norm_order(1) == np.inf
        assert dual_norm_order(np.inf) == 1

    def test_unsupported(self):
        with pytest.raises(SpecificationError):
            dual_norm_order(3)


class TestEuclidean:
    def test_matches_geometry(self):
        # f = x + y, origin (0, 0), bound 2: distance sqrt(2).
        m = LinearMapping([1.0, 1.0])
        c = solve_linear_radius(m, np.zeros(2), 2.0)
        assert c.distance == pytest.approx(np.sqrt(2))
        np.testing.assert_allclose(c.point, [1.0, 1.0])

    def test_constant_folded(self):
        m = LinearMapping([1.0], constant=5.0)
        c = solve_linear_radius(m, np.zeros(1), 7.0)
        assert c.distance == pytest.approx(2.0)

    def test_witness_on_boundary(self, rng):
        for _ in range(20):
            k = rng.normal(size=4)
            if np.linalg.norm(k) < 1e-6:
                continue
            m = LinearMapping(k, rng.normal())
            origin = rng.normal(size=4)
            bound = m.value(origin) + rng.normal()
            c = solve_linear_radius(m, origin, bound)
            assert m.value(c.point) == pytest.approx(bound, abs=1e-9)

    def test_zero_gradient_raises(self):
        m = LinearMapping([0.0, 0.0])
        with pytest.raises(BoundaryNotFoundError, match="zero gradient"):
            solve_linear_radius(m, np.zeros(2), 1.0)

    def test_nonlinear_rejected(self):
        with pytest.raises(SpecificationError):
            solve_linear_radius(QuadraticMapping(np.eye(2)), np.zeros(2), 1.0)

    def test_origin_shape_checked(self):
        with pytest.raises(SpecificationError):
            solve_linear_radius(LinearMapping([1.0]), np.zeros(2), 1.0)


class TestOtherNorms:
    def test_l1_distance_uses_dual_linf(self):
        # f = 2x + y = 4 from origin: l1 distance = 4 / max(2,1) = 2.
        m = LinearMapping([2.0, 1.0])
        c = solve_linear_radius(m, np.zeros(2), 4.0, norm=1)
        assert c.distance == pytest.approx(2.0)
        # witness moves only along the steepest coordinate
        np.testing.assert_allclose(c.point, [2.0, 0.0])
        assert m.value(c.point) == pytest.approx(4.0)

    def test_linf_distance_uses_dual_l1(self):
        # f = 2x + y = 6 from origin: linf distance = 6 / (2+1) = 2.
        m = LinearMapping([2.0, 1.0])
        c = solve_linear_radius(m, np.zeros(2), 6.0, norm=np.inf)
        assert c.distance == pytest.approx(2.0)
        np.testing.assert_allclose(c.point, [2.0, 2.0])
        assert m.value(c.point) == pytest.approx(6.0)

    @given(k=arrays(np.float64, 3, elements=coef),
           origin=arrays(np.float64, 3, elements=coef),
           gap=st.floats(min_value=-50, max_value=50, allow_nan=False))
    @settings(max_examples=60)
    def test_norm_ordering(self, k, origin, gap):
        # d_l1 >= d_l2 >= d_linf because ||k||_inf <= ||k||_2 <= ||k||_1.
        if np.linalg.norm(k) < 1e-3:
            return
        m = LinearMapping(k)
        bound = m.value(origin) + gap
        d1 = solve_linear_radius(m, origin, bound, norm=1).distance
        d2 = solve_linear_radius(m, origin, bound, norm=2).distance
        dinf = solve_linear_radius(m, origin, bound, norm=np.inf).distance
        assert d1 >= d2 - 1e-9 * (1 + d2)
        assert d2 >= dinf - 1e-9 * (1 + dinf)

    def test_witness_norm_equals_distance(self, rng):
        for norm in (1, 2, np.inf):
            k = rng.normal(size=5)
            m = LinearMapping(k)
            origin = rng.normal(size=5)
            bound = m.value(origin) + 3.0
            c = solve_linear_radius(m, origin, bound, norm=norm)
            assert np.linalg.norm(c.point - origin, ord=norm) == pytest.approx(
                c.distance, rel=1e-9)


class TestBoxBounds:
    def test_witness_inside_box_ok(self):
        m = LinearMapping([1.0, 1.0])
        c = solve_linear_radius(m, np.zeros(2), 2.0,
                                lower=np.array([-5.0, -5.0]),
                                upper=np.array([5.0, 5.0]))
        assert c.distance == pytest.approx(np.sqrt(2))

    def test_witness_outside_box_raises(self):
        m = LinearMapping([1.0, 1.0])
        with pytest.raises(BoundaryNotFoundError, match="box"):
            solve_linear_radius(m, np.zeros(2), 2.0,
                                upper=np.array([0.5, 0.5]))

    def test_lower_box_violation(self):
        m = LinearMapping([1.0])
        with pytest.raises(BoundaryNotFoundError):
            solve_linear_radius(m, np.zeros(1), -2.0, lower=np.array([-1.0]))
