"""Tests for the directional root-bracketing solver."""

import numpy as np
import pytest

from repro.core.mappings import CallableMapping, LinearMapping, QuadraticMapping
from repro.core.solvers.bisection import directional_crossing, solve_bisection_radius
from repro.exceptions import BoundaryNotFoundError, SpecificationError


class TestDirectionalCrossing:
    def test_linear_exact(self):
        m = LinearMapping([1.0, 0.0])
        t = directional_crossing(m, np.zeros(2), np.array([1.0, 0.0]), 5.0)
        assert t == pytest.approx(5.0, abs=1e-9)

    def test_no_crossing_returns_none(self):
        m = LinearMapping([1.0, 0.0])
        # moving orthogonally never changes f
        t = directional_crossing(m, np.zeros(2), np.array([0.0, 1.0]), 5.0,
                                 t_max=100.0)
        assert t is None

    def test_decreasing_direction_crosses_lower_level(self):
        m = LinearMapping([1.0])
        t = directional_crossing(m, np.array([10.0]), np.array([-1.0]), 4.0)
        assert t == pytest.approx(6.0, abs=1e-9)

    def test_origin_on_boundary_returns_zero(self):
        m = LinearMapping([1.0])
        t = directional_crossing(m, np.array([5.0]), np.array([1.0]), 5.0)
        assert t == 0.0

    def test_quadratic_crossing(self):
        m = QuadraticMapping(np.eye(2))  # f = x^2 + y^2
        d = np.array([1.0, 0.0])
        t = directional_crossing(m, np.zeros(2), d, 9.0)
        assert t == pytest.approx(3.0, abs=1e-9)

    def test_box_limits_search(self):
        m = LinearMapping([1.0])
        t = directional_crossing(m, np.zeros(1), np.array([1.0]), 5.0,
                                 upper=np.array([2.0]))
        assert t is None  # crossing at 5 is beyond the box exit at 2

    def test_box_allows_crossing_before_exit(self):
        m = LinearMapping([1.0])
        t = directional_crossing(m, np.zeros(1), np.array([1.0]), 1.5,
                                 upper=np.array([2.0]))
        assert t == pytest.approx(1.5, abs=1e-9)

    def test_lower_box(self):
        m = LinearMapping([1.0])
        t = directional_crossing(m, np.zeros(1), np.array([-1.0]), -5.0,
                                 lower=np.array([-2.0]))
        assert t is None

    def test_nonmonotone_finds_first_crossing(self):
        # f(t) = sin-like shape via callable: f = (x-2)^2, origin at x=0
        # along +x; f(0)=4, bound 1 crossed first at x=1.
        m = CallableMapping(lambda x: float((x[0] - 2.0) ** 2), 1)
        t = directional_crossing(m, np.zeros(1), np.array([1.0]), 1.0)
        assert t == pytest.approx(1.0, abs=1e-6)


class TestSolveBisectionRadius:
    def test_linear_upper_bound_close_to_exact(self):
        m = LinearMapping([1.0, 1.0])
        c = solve_bisection_radius(m, np.zeros(2), 2.0,
                                   n_random_directions=512, seed=0)
        exact = np.sqrt(2)
        assert exact <= c.distance <= exact * 1.05

    def test_axes_give_exact_when_axis_optimal(self):
        m = LinearMapping([1.0, 0.0])
        c = solve_bisection_radius(m, np.zeros(2), 3.0,
                                   n_random_directions=0, seed=0)
        assert c.distance == pytest.approx(3.0, abs=1e-9)

    def test_sphere_boundary_exact_every_direction(self):
        m = QuadraticMapping(np.eye(3))
        c = solve_bisection_radius(m, np.zeros(3), 4.0,
                                   n_random_directions=16, seed=1)
        assert c.distance == pytest.approx(2.0, abs=1e-9)

    def test_no_crossing_raises(self):
        m = LinearMapping([1.0, 0.0])
        with pytest.raises(BoundaryNotFoundError):
            solve_bisection_radius(m, np.zeros(2), -5.0, t_max=10.0,
                                   lower=np.zeros(2), seed=0)

    def test_witness_is_on_boundary(self):
        m = QuadraticMapping(np.eye(2), [0.5, -0.2])
        c = solve_bisection_radius(m, np.zeros(2), 2.0, seed=2)
        assert m.value(c.point) == pytest.approx(2.0, abs=1e-8)

    def test_dimension_mismatch(self):
        with pytest.raises(SpecificationError):
            solve_bisection_radius(LinearMapping([1.0]), np.zeros(2), 1.0)

    def test_l1_norm_distances(self):
        # f = x + y = 2: l1 radius is 2 (axis move), achieved on an axis.
        m = LinearMapping([1.0, 1.0])
        c = solve_bisection_radius(m, np.zeros(2), 2.0, norm=1,
                                   n_random_directions=256, seed=3)
        assert c.distance == pytest.approx(2.0, rel=0.05)

    def test_linf_norm_distances(self):
        # f = x + y = 2: linf radius is 1 (diagonal move).
        m = LinearMapping([1.0, 1.0])
        c = solve_bisection_radius(m, np.zeros(2), 2.0, norm=np.inf,
                                   n_random_directions=256, seed=3)
        assert c.distance == pytest.approx(1.0, rel=0.05)
