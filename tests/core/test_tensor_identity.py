"""Bit-identity suite for the cross-problem tensor kernel.

The contract under test: :func:`~repro.core.solvers.tensor.solve_group`
(and every dispatch path riding it — serial :func:`compute_radii`,
executor shards, the service worker body) returns, for element ``i``,
exactly what ``compute_radius(problems[i])`` returns — radius, boundary
point, bound hit, per-bound table, method, quality — across mapping
families, norms, boxes, and seeds.  The tensor kernel batches *sign
decisions* and *candidate selection* only; every returned float is
re-pinned through the scalar reference kernel, which is what makes this
equality exact rather than approximate.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.features import ToleranceBounds
from repro.core.mappings import (
    LinearMapping,
    MaxMapping,
    QuadraticMapping,
    RestrictedMapping,
    ReweightedMapping,
    SumMapping,
)
from repro.core.radius import (
    RadiusProblem,
    compute_radii,
    compute_radius,
)
from repro.core.solvers.tensor import ProblemTensor, solve_group
from repro.exceptions import InfeasibleAllocationError, SpecificationError
from repro.observability import observing
from repro.parallel.cache import (
    RadiusCache,
    get_default_cache,
    install_default_cache,
    uninstall_default_cache,
)
from repro.parallel.executor import ParallelExecutor
from repro.service import RadiusService, ServiceConfig


@pytest.fixture(autouse=True)
def _no_ambient_default_cache():
    before = get_default_cache()
    uninstall_default_cache()
    yield
    if before is not None:
        install_default_cache(before)
    else:
        uninstall_default_cache()


def _assert_identical(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert g.radius == w.radius
        assert g.bound_hit == w.bound_hit
        assert g.method == w.method
        assert g.quality == w.quality
        assert g.per_bound == w.per_bound
        if w.boundary_point is None:
            assert g.boundary_point is None
        else:
            np.testing.assert_array_equal(g.boundary_point, w.boundary_point)


def _shared_mapping(kind: str, n: int, rng):
    """One mapping instance shared by every member of a group."""
    if kind == "linear":
        return LinearMapping(rng.standard_normal(n) + 2.0)
    if kind == "diag_quadratic":
        return QuadraticMapping(np.diag(1.0 + rng.random(n)))
    if kind == "max":
        return MaxMapping([LinearMapping(rng.standard_normal(n), 0.1 * i)
                           for i in range(3)])
    if kind == "sum":
        return SumMapping([LinearMapping(rng.standard_normal(n)),
                           QuadraticMapping(np.diag(rng.random(n)))])
    if kind == "restricted":
        base = QuadraticMapping(np.diag(1.0 + rng.random(n + 2)))
        return RestrictedMapping(base, list(range(n)),
                                 rng.standard_normal(n + 2) * 0.1)
    if kind == "reweighted":
        base = QuadraticMapping(np.diag(1.0 + rng.random(n)))
        return ReweightedMapping(base, 1.0 + rng.random(n))
    raise AssertionError(kind)


def _group(kind: str, norm, boxed: bool, seed: int, n: int = 4,
           members: int = 3):
    """A structural group: shared mapping, varying origins and boxes."""
    rng = np.random.default_rng(seed)
    mapping = _shared_mapping(kind, n, rng)
    problems = []
    for _ in range(members):
        origin = 0.1 * rng.standard_normal(n)
        phi0 = mapping.value(origin)
        bounds = ToleranceBounds(beta_max=phi0 + 1.5)
        kw = {}
        if boxed:
            kw = dict(lower=origin - 0.9, upper=origin + 0.9)
        problems.append(RadiusProblem(mapping, origin, bounds, norm=norm,
                                      **kw))
    return problems


KINDS = ["linear", "diag_quadratic", "max", "sum", "restricted",
         "reweighted"]


class TestBisectionTierIdentity:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("norm", [1, 2, np.inf])
    def test_kind_by_norm(self, kind, norm):
        problems = _group(kind, norm, boxed=False, seed=7)
        want = [compute_radius(p, method="bisection", seed=3, cache=False)
                for p in problems]
        got = solve_group(problems, method="bisection", seed=3, cache=False)
        _assert_identical(got, want)

    @pytest.mark.parametrize("kind", KINDS)
    def test_boxed(self, kind):
        problems = _group(kind, 2, boxed=True, seed=11)
        want = [compute_radius(p, method="bisection", seed=3, cache=False)
                for p in problems]
        got = solve_group(problems, method="bisection", seed=3, cache=False)
        _assert_identical(got, want)

    @pytest.mark.parametrize("seed", [0, 3, 99])
    def test_seeds(self, seed):
        problems = _group("diag_quadratic", 2, boxed=False, seed=5)
        want = [compute_radius(p, method="bisection", seed=seed, cache=False)
                for p in problems]
        got = solve_group(problems, method="bisection", seed=seed,
                          cache=False)
        _assert_identical(got, want)

    def test_two_sided_bounds(self):
        # The lower bound of a nonnegative quadratic is never crossed:
        # the unit's not-found path must mirror the scalar inf per_bound.
        rng = np.random.default_rng(2)
        mapping = QuadraticMapping(np.diag(1.0 + rng.random(4)))
        problems = []
        for _ in range(3):
            origin = 0.1 * rng.standard_normal(4)
            phi0 = mapping.value(origin)
            problems.append(RadiusProblem(
                mapping, origin, ToleranceBounds(-1.0, phi0 + 1.5), norm=1))
        want = [compute_radius(p, method="bisection", seed=3, cache=False)
                for p in problems]
        got = solve_group(problems, method="bisection", seed=3, cache=False)
        _assert_identical(got, want)
        assert all(w.per_bound[-1.0] == math.inf for w in want)

    def test_degenerate_member(self):
        # value0 == bound short-circuits to a zero radius, same as scalar.
        mapping = LinearMapping([1.0, 1.0])
        # f(origin) = 0 sits exactly on beta_max = 0: the inclusive
        # on-bound case.
        degenerate = RadiusProblem(mapping, np.zeros(2),
                                   ToleranceBounds(-2.0, 0.0))
        normal = RadiusProblem(mapping, np.array([0.1, 0.2]),
                               ToleranceBounds(-2.0, 2.0))
        problems = [degenerate, normal, normal]
        want = [compute_radius(p, method="bisection", seed=3, cache=False)
                for p in problems]
        got = solve_group(problems, method="bisection", seed=3, cache=False)
        _assert_identical(got, want)
        assert got[0].radius == 0.0 and got[0].method == "degenerate"

    def test_infeasible_member_raises_like_scalar(self):
        mapping = LinearMapping([1.0, 1.0])
        bad = RadiusProblem(mapping, np.array([5.0, 5.0]),
                            ToleranceBounds(-1.0, 1.0))
        ok = RadiusProblem(mapping, np.zeros(2), ToleranceBounds(-1.0, 1.0))
        with pytest.raises(InfeasibleAllocationError):
            compute_radius(bad, method="bisection", cache=False)
        with pytest.raises(InfeasibleAllocationError):
            solve_group([ok, bad], method="bisection", cache=False)


class TestNumericTierIdentity:
    def test_max_mapping_euclidean(self):
        # MaxMapping at norm 2 auto-dispatches to the numeric tier; the
        # tensor shares bracket expansion but re-pins every SLSQP seed.
        problems = _group("max", 2, boxed=False, seed=13)
        want = [compute_radius(p, seed=3, cache=False) for p in problems]
        got = solve_group(problems, seed=3, cache=False)
        _assert_identical(got, want)

    def test_boxed_numeric(self):
        problems = _group("max", 2, boxed=True, seed=17)
        want = [compute_radius(p, seed=3, cache=False) for p in problems]
        got = solve_group(problems, seed=3, cache=False)
        _assert_identical(got, want)


class TestGrouping:
    def test_mixed_batch_restores_order(self):
        # Two interleaved structural groups plus unbatchable leftovers:
        # element i must still match compute_radius(problems[i]).
        rng = np.random.default_rng(3)
        quad_a = QuadraticMapping(np.diag(1.0 + rng.random(4)))
        quad_b = QuadraticMapping(np.diag(2.0 + rng.random(4)))
        lin = LinearMapping(rng.standard_normal(4) + 2.0)
        problems = []
        for i in range(6):
            mapping = quad_a if i % 2 == 0 else quad_b
            origin = 0.1 * rng.standard_normal(4)
            problems.append(RadiusProblem(
                mapping, origin,
                ToleranceBounds.upper(mapping.value(origin) + 1.0 + 0.1 * i),
                norm=1))
        origin = rng.standard_normal(4)
        problems.append(RadiusProblem(  # analytic tier: unbatchable
            lin, origin, ToleranceBounds.upper(lin.value(origin) + 1.0)))
        want = [compute_radius(p, seed=3, cache=False) for p in problems]
        got = compute_radii(problems, seed=3, cache=False)
        _assert_identical(got, want)

    def test_partition_shape(self):
        rng = np.random.default_rng(3)
        quad = QuadraticMapping(np.diag(1.0 + rng.random(4)))
        lin = LinearMapping([1.0, 1.0, 1.0, 1.0])
        group = [RadiusProblem(quad, 0.1 * rng.standard_normal(4),
                               ToleranceBounds.upper(3.0), norm=1)
                 for _ in range(3)]
        singleton = RadiusProblem(quad, 0.1 * rng.standard_normal(4),
                                  ToleranceBounds.upper(3.0), norm=np.inf)
        analytic = RadiusProblem(lin, np.zeros(4),
                                 ToleranceBounds.upper(1.0))
        parts = ProblemTensor.partition(
            [group[0], analytic, group[1], singleton, group[2]])
        assert [idxs for idxs, _ in parts] == [[0, 2, 4], [1], [3]]
        tensors = [t for _, t in parts]
        assert tensors[0] is not None and tensors[0].n_problems == 3
        assert tensors[1] is None  # analytic tier
        assert tensors[2] is None  # singleton group
        with pytest.raises(SpecificationError):
            ProblemTensor.pack([group[0], analytic])

    def test_batch_key_separates_structures(self):
        rng = np.random.default_rng(3)
        quad = QuadraticMapping(np.diag(1.0 + rng.random(4)))
        a = RadiusProblem(quad, np.zeros(4), ToleranceBounds.upper(3.0),
                          norm=1)
        b = RadiusProblem(quad, 0.1 * rng.standard_normal(4),
                          ToleranceBounds.upper(4.0), norm=1)
        c = RadiusProblem(quad, np.zeros(4), ToleranceBounds.upper(3.0),
                          norm=np.inf)
        assert ProblemTensor.batch_key(a) == ProblemTensor.batch_key(b)
        assert ProblemTensor.batch_key(a) != ProblemTensor.batch_key(c)
        lin = RadiusProblem(LinearMapping([1.0] * 4), np.zeros(4),
                            ToleranceBounds.upper(1.0))
        assert ProblemTensor.batch_key(lin) is None


class TestDispatchPaths:
    """One homogeneous group through every dispatch path, traced and not."""

    def _group(self):
        return _group("diag_quadratic", 1, boxed=False, seed=23, members=4)

    @pytest.mark.parametrize("traced", [False, True])
    def test_serial_vs_executor_vs_service(self, traced):
        problems = self._group()
        want = [compute_radius(p, method="bisection", seed=3, cache=False)
                for p in problems]

        def run_all():
            got = {"serial": compute_radii(problems, method="bisection",
                                           seed=3, cache=False)}
            for workers in (1, 4):
                with ParallelExecutor(workers) as pool:
                    got[f"executor{workers}"] = compute_radii(
                        problems, method="bisection", seed=3, cache=False,
                        executor=pool)
            with RadiusService(2, config=ServiceConfig(cache=False)) as svc:
                got["service"] = compute_radii(problems, method="bisection",
                                               seed=3, service=svc)
            return got

        if traced:
            with observing():
                got = run_all()
        else:
            got = run_all()
        for path, results in got.items():
            _assert_identical(results, want)

    def test_single_group_shards_across_workers(self):
        # The old dispatcher fell back to a serial loop whenever the
        # batch was one structural group; it must now shard the tensor.
        problems = self._group()
        want = compute_radii(problems, method="bisection", seed=3,
                             cache=False)
        with ParallelExecutor(4) as pool, observing() as obs:
            got = compute_radii(problems, method="bisection", seed=3,
                                cache=False, executor=pool)
            dispatched = pool.stats()["dispatched"]
        _assert_identical(got, want)
        batch = [s for s in obs.recorder.spans()
                 if s.name == "radius.batch"][-1]
        assert batch.tags["shards"] > 1
        assert dispatched == batch.tags["shards"]

    def test_tensor_emits_per_problem_solve_spans(self):
        problems = self._group()
        with observing() as obs:
            solve_group(problems, method="bisection", seed=3, cache=False)
        spans = obs.recorder.spans()
        assert len([s for s in spans if s.name == "radius.solve"]) \
            == len(problems)
        assert len([s for s in spans if s.name == "radius.tensor"]) == 1


class TestServiceCacheBypass:
    def test_bypass_event_and_cold_local_cache(self):
        problems = _group("diag_quadratic", 1, boxed=False, seed=29)
        cache = RadiusCache()
        with RadiusService(1, config=ServiceConfig(cache=False)) as svc, \
                observing() as obs:
            got = compute_radii(problems, method="bisection", seed=3,
                                cache=cache, service=svc)
        want = [compute_radius(p, method="bisection", seed=3, cache=False)
                for p in problems]
        _assert_identical(got, want)
        # The local cache was neither consulted nor populated...
        stats = cache.stats()
        assert stats["entries"] == 0
        assert stats["hits"] == 0 and stats["misses"] == 0
        # ...and the bypass is observable.
        bypass = [e for e in obs.events.events()
                  if e.kind == "cache.bypass"]
        assert len(bypass) == 1
        assert bypass[0].fields == {"reason": "service",
                                    "problems": len(problems)}
        assert obs.metrics.snapshot()["radius.cache_bypass"]["value"] == 1

    def test_no_event_without_a_cache(self):
        problems = _group("diag_quadratic", 1, boxed=False, seed=29)
        with RadiusService(1, config=ServiceConfig(cache=False)) as svc, \
                observing() as obs:
            compute_radii(problems, method="bisection", seed=3,
                          cache=False, service=svc)
        assert not [e for e in obs.events.events()
                    if e.kind == "cache.bypass"]
        assert "radius.cache_bypass" not in obs.metrics.snapshot()
