"""Tests for the numeric boundary-projection solver."""

import numpy as np
import pytest

from repro.core.mappings import (
    CallableMapping,
    LinearMapping,
    ProductMapping,
    QuadraticMapping,
)
from repro.core.solvers.numeric import solve_numeric_radius
from repro.exceptions import BoundaryNotFoundError, SpecificationError


class TestAgainstClosedForms:
    def test_hyperplane(self):
        m = LinearMapping([1.0, 1.0])
        c = solve_numeric_radius(m, np.zeros(2), 2.0, seed=0)
        assert c.distance == pytest.approx(np.sqrt(2), rel=1e-6)

    def test_sphere(self):
        # f = ||x||^2 = 9 from origin: radius 3 exactly in any dimension.
        m = QuadraticMapping(np.eye(4))
        c = solve_numeric_radius(m, np.zeros(4), 9.0, seed=0)
        assert c.distance == pytest.approx(3.0, rel=1e-6)

    def test_shifted_sphere(self):
        # f = ||x - c||^2, boundary at level r^2 is a sphere around c;
        # min distance from origin = ||c|| - r.
        center = np.array([3.0, 4.0])

        def f(x):
            return float((x - center) @ (x - center))

        m = CallableMapping(f, 2, gradient_fn=lambda x: 2 * (x - center))
        c = solve_numeric_radius(m, np.zeros(2), 4.0, seed=0)
        assert c.distance == pytest.approx(5.0 - 2.0, rel=1e-5)

    def test_ellipse(self):
        # f = x^2/4 + y^2 = 1 from origin: closest point is (0, +-1),
        # distance 1.
        Q = np.diag([0.25, 1.0])
        m = QuadraticMapping(Q)
        c = solve_numeric_radius(m, np.zeros(2), 1.0, seed=1)
        assert c.distance == pytest.approx(1.0, rel=1e-5)

    def test_monomial(self):
        # f = x*y = 4 from (1, 1): symmetric optimum at (2, 2),
        # distance sqrt(2).
        m = ProductMapping([1.0, 1.0])
        c = solve_numeric_radius(m, np.array([1.0, 1.0]), 4.0, seed=2)
        assert c.distance == pytest.approx(np.sqrt(2.0), rel=1e-4)


class TestConstraintQuality:
    def test_witness_exactly_on_boundary(self, rng):
        for _ in range(5):
            Q = rng.normal(size=(3, 3))
            m = QuadraticMapping(Q @ Q.T + np.eye(3), rng.normal(size=3))
            origin = rng.normal(size=3) * 0.1
            bound = m.value(origin) + 5.0
            c = solve_numeric_radius(m, origin, bound, seed=0)
            assert m.value(c.point) == pytest.approx(bound, abs=1e-5 * (1 + abs(bound)))

    def test_gradient_free_callable_still_works(self):
        m = CallableMapping(lambda x: float(np.sum(x ** 2)), 2)
        c = solve_numeric_radius(m, np.zeros(2), 4.0, seed=0)
        assert c.distance == pytest.approx(2.0, rel=1e-4)


class TestBoxConstraints:
    def test_projection_respects_box(self):
        # f = x + y = 2 with x <= 0.5: constrained projection is
        # (0.5, 1.5), distance sqrt(0.25 + 2.25).
        m = LinearMapping([1.0, 1.0])
        c = solve_numeric_radius(m, np.zeros(2), 2.0,
                                 upper=np.array([0.5, np.inf]), seed=0)
        assert c.distance == pytest.approx(np.sqrt(2.5), rel=1e-5)
        assert c.point[0] <= 0.5 + 1e-8

    def test_unreachable_level_raises(self):
        # f = x with x in [0, 1] can never reach 5.
        m = LinearMapping([1.0])
        with pytest.raises(BoundaryNotFoundError):
            solve_numeric_radius(m, np.array([0.5]), 5.0,
                                 lower=np.array([0.0]),
                                 upper=np.array([1.0]), seed=0)


class TestValidation:
    def test_dimension_mismatch(self):
        with pytest.raises(SpecificationError):
            solve_numeric_radius(LinearMapping([1.0]), np.zeros(2), 1.0)

    def test_never_worse_than_bisection_seed(self, rng):
        # The numeric answer must be <= the best directional crossing,
        # because those crossings are multistart seeds.
        from repro.core.solvers.bisection import solve_bisection_radius
        Q = rng.normal(size=(3, 3))
        m = QuadraticMapping(Q @ Q.T + 0.5 * np.eye(3))
        origin = np.zeros(3)
        bis = solve_bisection_radius(m, origin, 4.0,
                                     n_random_directions=64, seed=5)
        num = solve_numeric_radius(m, origin, 4.0, seed=5)
        assert num.distance <= bis.distance + 1e-9
