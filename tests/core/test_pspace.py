"""Tests for the P-space concatenation bookkeeping."""

import numpy as np
import pytest

from repro.core.mappings import LinearMapping
from repro.core.perturbation import PerturbationParameter
from repro.core.pspace import ConcatenatedPerturbation
from repro.core.weighting import NormalizedWeighting
from repro.exceptions import DimensionMismatchError, SpecificationError


@pytest.fixture
def pspace():
    params = [
        PerturbationParameter.nonnegative("exec", [2.0, 4.0], unit="s"),
        PerturbationParameter.nonnegative("msg", [100.0], unit="bytes"),
    ]
    return ConcatenatedPerturbation.from_weighting(
        params, NormalizedWeighting())


class TestConstruction:
    def test_dimension(self, pspace):
        assert pspace.dimension == 3

    def test_p_orig_is_ones_for_normalized(self, pspace):
        np.testing.assert_allclose(pspace.p_orig, [1.0, 1.0, 1.0])

    def test_block_slices(self, pspace):
        assert pspace.block_slice("exec") == slice(0, 2)
        assert pspace.block_slice("msg") == slice(2, 3)

    def test_unknown_block(self, pspace):
        with pytest.raises(SpecificationError, match="unknown"):
            pspace.block_slice("nope")

    def test_duplicate_names_rejected(self):
        p = PerturbationParameter("x", [1.0])
        with pytest.raises(SpecificationError, match="duplicate"):
            ConcatenatedPerturbation([p, p], [1.0, 1.0])

    def test_alpha_length_checked(self):
        p = PerturbationParameter("x", [1.0, 2.0])
        with pytest.raises(DimensionMismatchError):
            ConcatenatedPerturbation([p], [1.0])

    def test_nonpositive_alpha_rejected(self):
        p = PerturbationParameter("x", [1.0])
        with pytest.raises(SpecificationError, match="positive"):
            ConcatenatedPerturbation([p], [0.0])

    def test_empty_params_rejected(self):
        with pytest.raises(SpecificationError):
            ConcatenatedPerturbation([], [])


class TestValueTransport:
    def test_flatten_with_defaults(self, pspace):
        flat = pspace.flatten_values({"msg": [200.0]})
        np.testing.assert_allclose(flat, [2.0, 4.0, 200.0])

    def test_flatten_full(self, pspace):
        flat = pspace.flatten_values({"exec": [1.0, 1.0], "msg": [1.0]})
        np.testing.assert_allclose(flat, [1.0, 1.0, 1.0])

    def test_flatten_unknown_param(self, pspace):
        with pytest.raises(SpecificationError, match="unknown"):
            pspace.flatten_values({"bogus": [1.0]})

    def test_flatten_wrong_length(self, pspace):
        with pytest.raises(DimensionMismatchError):
            pspace.flatten_values({"exec": [1.0]})

    def test_split_roundtrip(self, pspace):
        flat = np.array([1.0, 2.0, 3.0])
        parts = pspace.split_values(flat)
        np.testing.assert_allclose(parts["exec"], [1.0, 2.0])
        np.testing.assert_allclose(parts["msg"], [3.0])

    def test_to_from_p_roundtrip(self, pspace, rng):
        pi = rng.uniform(0.5, 5.0, size=3)
        np.testing.assert_allclose(pspace.from_p(pspace.to_p(pi)), pi)

    def test_values_to_p(self, pspace):
        p = pspace.values_to_p({"exec": [4.0, 8.0], "msg": [200.0]})
        np.testing.assert_allclose(p, [2.0, 2.0, 2.0])

    def test_distance_from_orig(self, pspace):
        # doubling every parameter moves P from (1,1,1) to (2,2,2)
        d = pspace.distance_from_orig({"exec": [4.0, 8.0], "msg": [200.0]})
        assert d == pytest.approx(np.sqrt(3))

    def test_distance_other_norm(self, pspace):
        d = pspace.distance_from_orig({"exec": [4.0, 8.0], "msg": [200.0]},
                                      norm=np.inf)
        assert d == pytest.approx(1.0)


class TestMappingTransport:
    def test_transformed_mapping_agrees(self, pspace, rng):
        mapping = LinearMapping([1.0, 2.0, 0.01])
        g = pspace.transform_mapping(mapping)
        pi = rng.uniform(0.5, 5.0, size=3)
        assert g.value(pspace.to_p(pi)) == pytest.approx(mapping.value(pi))

    def test_transform_dimension_checked(self, pspace):
        with pytest.raises(DimensionMismatchError):
            pspace.transform_mapping(LinearMapping([1.0]))

    def test_p_bounds_transported(self, pspace):
        lo = pspace.p_lower()
        assert lo is not None
        np.testing.assert_allclose(lo, [0.0, 0.0, 0.0])
        assert pspace.p_upper() is None

    def test_p_bounds_none_when_unbounded(self):
        p = PerturbationParameter("x", [1.0])
        cp = ConcatenatedPerturbation([p], [1.0])
        assert cp.p_lower() is None
        assert cp.p_upper() is None

    def test_p_upper_scaling(self):
        p = PerturbationParameter("x", [1.0], upper=[10.0])
        cp = ConcatenatedPerturbation([p], [2.0])
        np.testing.assert_allclose(cp.p_upper(), [20.0])

    def test_repr(self, pspace):
        assert "exec" in repr(pspace)
        assert "normalized" in repr(pspace)
