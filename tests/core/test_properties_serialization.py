"""Property-based tests: serialization round-trips and mapping algebra.

Hypothesis strategies generate random structural mappings (linear,
quadratic, product, and compositions through sum/max/restrict/reweight)
and assert that

* ``from_dict(to_dict(m))`` evaluates identically to ``m`` everywhere;
* the adapter algebra holds: restriction and reweighting commute the way
  the P-space construction relies on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mappings import (
    LinearMapping,
    MaxMapping,
    ProductMapping,
    QuadraticMapping,
    RestrictedMapping,
    ReweightedMapping,
    SumMapping,
)
from repro.io import from_dict, to_dict

DIM = 3
coef = st.floats(min_value=-10, max_value=10, allow_nan=False)
pos = st.floats(min_value=0.1, max_value=10, allow_nan=False)


def linear_mappings():
    return st.builds(
        lambda ks, c: LinearMapping(ks, c),
        st.lists(coef, min_size=DIM, max_size=DIM), coef)


def quadratic_mappings():
    return st.builds(
        lambda qs, ks, c: QuadraticMapping(
            np.array(qs).reshape(DIM, DIM), ks, c),
        st.lists(coef, min_size=DIM * DIM, max_size=DIM * DIM),
        st.lists(coef, min_size=DIM, max_size=DIM), coef)


def product_mappings():
    return st.builds(
        lambda ps, c: ProductMapping(ps, c),
        st.lists(st.floats(min_value=-2, max_value=2, allow_nan=False),
                 min_size=DIM, max_size=DIM), pos)


def base_mappings():
    return st.one_of(linear_mappings(), quadratic_mappings(),
                     product_mappings())


def composite_mappings():
    two = st.lists(st.one_of(linear_mappings(), quadratic_mappings()),
                   min_size=2, max_size=3)
    return st.one_of(
        two.map(SumMapping),
        two.map(MaxMapping),
        st.builds(lambda m, alphas: ReweightedMapping(m, alphas),
                  st.one_of(linear_mappings(), quadratic_mappings()),
                  st.lists(pos, min_size=DIM, max_size=DIM)),
    )


class TestSerializationRoundtrip:
    @given(mapping=st.one_of(base_mappings(), composite_mappings()),
           point=st.lists(pos, min_size=DIM, max_size=DIM))
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_preserves_values(self, mapping, point):
        rt = from_dict(to_dict(mapping))
        x = np.array(point)
        assert rt.value(x) == pytest.approx(mapping.value(x), rel=1e-12,
                                            abs=1e-12)

    @given(mapping=base_mappings(), point=st.lists(pos, min_size=DIM,
                                                   max_size=DIM))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_preserves_gradients(self, mapping, point):
        rt = from_dict(to_dict(mapping))
        x = np.array(point)
        g1 = mapping.gradient(x)
        g2 = rt.gradient(x)
        np.testing.assert_allclose(g2, g1, rtol=1e-12, atol=1e-12)

    @given(mapping=base_mappings())
    @settings(max_examples=30, deadline=None)
    def test_double_roundtrip_stable(self, mapping):
        d1 = to_dict(mapping)
        d2 = to_dict(from_dict(d1))
        assert d1 == d2


class TestAdapterAlgebra:
    @given(mapping=quadratic_mappings(),
           alphas=st.lists(pos, min_size=DIM, max_size=DIM),
           point=st.lists(pos, min_size=DIM, max_size=DIM))
    @settings(max_examples=50, deadline=None)
    def test_reweight_roundtrip_identity(self, mapping, alphas, point):
        """g(P) = f(P/alpha) implies g(alpha * x) = f(x)."""
        a = np.array(alphas)
        x = np.array(point)
        rew = ReweightedMapping(mapping, a)
        assert rew.value(a * x) == pytest.approx(mapping.value(x),
                                                 rel=1e-10, abs=1e-10)

    @given(mapping=quadratic_mappings(),
           alphas=st.lists(pos, min_size=DIM, max_size=DIM),
           ref=st.lists(pos, min_size=DIM, max_size=DIM),
           free_y=pos)
    @settings(max_examples=50, deadline=None)
    def test_restrict_then_reweight_commutes(self, mapping, alphas, ref,
                                             free_y):
        """Restricting in pi-space then reweighting the free block equals
        reweighting the full space then restricting at the scaled
        reference — the identity the per-feature P-space construction
        relies on."""
        a = np.array(alphas)
        r = np.array(ref)
        free = [1]
        # path 1: restrict f to coordinate 1 at reference r, then scale
        # the free coordinate by alpha[1]
        path1 = ReweightedMapping(RestrictedMapping(mapping, free, r),
                                  a[free])
        # path 2: scale the whole space by alpha, then restrict at the
        # scaled reference
        path2 = RestrictedMapping(ReweightedMapping(mapping, a), free, a * r)
        y = np.array([free_y])
        assert path1.value(y) == pytest.approx(path2.value(y),
                                               rel=1e-10, abs=1e-10)
