"""Tests for the weighting schemes (Section 3 concatenations)."""

import numpy as np
import pytest

from repro.core.perturbation import PerturbationParameter
from repro.core.weighting import (
    CustomWeighting,
    IdentityWeighting,
    NormalizedWeighting,
    SensitivityWeighting,
)
from repro.exceptions import SpecificationError, UnitMismatchError


@pytest.fixture
def seconds_param():
    return PerturbationParameter("exec", [2.0, 4.0], unit="s")


@pytest.fixture
def bytes_param():
    return PerturbationParameter("msg", [100.0], unit="bytes")


class TestIdentityWeighting:
    def test_same_unit_ok(self, seconds_param):
        other = PerturbationParameter("exec2", [1.0], unit="s")
        a = IdentityWeighting().elementwise_alphas([seconds_param, other])
        np.testing.assert_array_equal(a, np.ones(3))

    def test_mixed_units_rejected(self, seconds_param, bytes_param):
        with pytest.raises(UnitMismatchError, match="unlike units"):
            IdentityWeighting().elementwise_alphas([seconds_param, bytes_param])

    def test_unitless_params_compatible(self):
        p1 = PerturbationParameter("a", [1.0])
        p2 = PerturbationParameter("b", [2.0], unit="s")
        a = IdentityWeighting().elementwise_alphas([p1, p2])
        assert a.size == 2

    def test_name(self):
        assert IdentityWeighting().name == "identity"

    def test_does_not_require_radii(self):
        assert not IdentityWeighting().requires_radii


class TestSensitivityWeighting:
    def test_alphas_are_reciprocal_radii(self, seconds_param, bytes_param):
        radii = {"exec": 2.0, "msg": 10.0}
        a = SensitivityWeighting().elementwise_alphas(
            [seconds_param, bytes_param], radii)
        np.testing.assert_allclose(a, [0.5, 0.5, 0.1])

    def test_requires_radii_flag(self):
        assert SensitivityWeighting().requires_radii

    def test_missing_radii_dict(self, seconds_param):
        with pytest.raises(SpecificationError, match="per-parameter radii"):
            SensitivityWeighting().elementwise_alphas([seconds_param])

    def test_missing_entry(self, seconds_param, bytes_param):
        with pytest.raises(SpecificationError, match="missing"):
            SensitivityWeighting().elementwise_alphas(
                [seconds_param, bytes_param], {"exec": 1.0})

    def test_infinite_radius_rejected(self, seconds_param):
        with pytest.raises(SpecificationError, match="positive finite"):
            SensitivityWeighting().elementwise_alphas(
                [seconds_param], {"exec": float("inf")})

    def test_zero_radius_rejected(self, seconds_param):
        with pytest.raises(SpecificationError, match="positive finite"):
            SensitivityWeighting().elementwise_alphas(
                [seconds_param], {"exec": 0.0})


class TestNormalizedWeighting:
    def test_alphas_reciprocal_originals(self, seconds_param, bytes_param):
        a = NormalizedWeighting().elementwise_alphas(
            [seconds_param, bytes_param])
        np.testing.assert_allclose(a, [0.5, 0.25, 0.01])

    def test_p_orig_becomes_ones(self, seconds_param, bytes_param):
        a = NormalizedWeighting().elementwise_alphas(
            [seconds_param, bytes_param])
        flat = np.concatenate([seconds_param.original, bytes_param.original])
        np.testing.assert_allclose(a * flat, np.ones(3))

    def test_zero_original_rejected(self):
        p = PerturbationParameter("x", [0.0, 1.0])
        with pytest.raises(SpecificationError, match="positive original"):
            NormalizedWeighting().elementwise_alphas([p])

    def test_negative_original_rejected(self):
        p = PerturbationParameter("x", [-1.0])
        with pytest.raises(SpecificationError):
            NormalizedWeighting().elementwise_alphas([p])


class TestCustomWeighting:
    def test_scalar_per_param(self, seconds_param, bytes_param):
        w = CustomWeighting({"exec": 2.0, "msg": 0.5})
        a = w.elementwise_alphas([seconds_param, bytes_param])
        np.testing.assert_allclose(a, [2.0, 2.0, 0.5])

    def test_array_per_param(self, seconds_param):
        w = CustomWeighting({"exec": [1.0, 3.0]})
        a = w.elementwise_alphas([seconds_param])
        np.testing.assert_allclose(a, [1.0, 3.0])

    def test_missing_param(self, seconds_param):
        with pytest.raises(SpecificationError, match="no weight"):
            CustomWeighting({"other": 1.0}).elementwise_alphas([seconds_param])

    def test_wrong_length_array(self, seconds_param):
        with pytest.raises(SpecificationError, match="length"):
            CustomWeighting({"exec": [1.0]}).elementwise_alphas([seconds_param])

    def test_nonpositive_rejected(self, seconds_param):
        with pytest.raises(SpecificationError, match="positive"):
            CustomWeighting({"exec": -1.0}).elementwise_alphas([seconds_param])

    def test_empty_rejected(self):
        with pytest.raises(SpecificationError):
            CustomWeighting({})
