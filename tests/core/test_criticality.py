"""Tests for the criticality (witness-direction) decomposition."""

import numpy as np
import pytest

from repro.core.criticality import criticality_report
from repro.core.features import PerformanceFeature, ToleranceBounds
from repro.core.fepia import FeatureSpec, RobustnessAnalysis
from repro.core.mappings import LinearMapping
from repro.core.perturbation import PerturbationParameter
from repro.core.weighting import IdentityWeighting


def build(ks, bound, origs=None, weighting=None, names=None):
    origs = origs if origs is not None else np.ones(len(ks))
    if names is None:
        params = [PerturbationParameter("x", origs)]
    else:
        params = [PerturbationParameter(n, [o]) for n, o in zip(names, origs)]
    spec = FeatureSpec(PerformanceFeature("f", ToleranceBounds.upper(bound)),
                       LinearMapping(ks))
    return RobustnessAnalysis([spec], params,
                              weighting=weighting or IdentityWeighting())


class TestSharesLinear:
    def test_shares_proportional_to_squared_coefficients(self):
        # witness direction of a hyperplane is k/||k||; shares = k^2/||k||^2
        ana = build([3.0, 4.0], bound=10.0)
        report = criticality_report(ana)
        row = report.rows[0]
        shares = {e.index: e.share for e in row.element_shares}
        assert shares[0] == pytest.approx(9.0 / 25.0)
        assert shares[1] == pytest.approx(16.0 / 25.0)

    def test_shares_sum_to_one(self):
        ana = build([1.0, 2.0, 3.0, 4.0], bound=50.0)
        row = criticality_report(ana).rows[0]
        assert sum(e.share for e in row.element_shares) == pytest.approx(1.0)

    def test_signed_move_positive_for_upper_bound(self):
        ana = build([1.0, 1.0], bound=10.0)
        row = criticality_report(ana).rows[0]
        assert all(e.signed_move > 0 for e in row.element_shares)

    def test_signed_move_negative_for_lower_bound(self):
        params = [PerturbationParameter("x", [5.0, 5.0])]
        spec = FeatureSpec(
            PerformanceFeature("f", ToleranceBounds.lower(2.0)),
            LinearMapping([1.0, 1.0]))
        ana = RobustnessAnalysis([spec], params,
                                 weighting=IdentityWeighting())
        row = criticality_report(ana).rows[0]
        assert all(e.signed_move < 0 for e in row.element_shares)

    def test_sorted_descending(self):
        ana = build([1.0, 5.0, 3.0], bound=30.0)
        row = criticality_report(ana).rows[0]
        shares = [e.share for e in row.element_shares]
        assert shares == sorted(shares, reverse=True)

    def test_top_elements(self):
        ana = build([1.0, 5.0, 3.0], bound=30.0)
        row = criticality_report(ana).rows[0]
        assert len(row.top_elements(2)) == 2
        assert row.top_elements(1)[0].index == 1


class TestParameterAggregation:
    def test_dominant_parameter(self):
        ana = build([1.0, 10.0], bound=50.0, names=["weak", "strong"])
        row = criticality_report(ana).rows[0]
        assert row.dominant_parameter == "strong"
        assert row.parameter_shares["strong"] > 0.9

    def test_parameter_shares_sum_to_one(self):
        ana = build([2.0, 3.0], bound=30.0, names=["a", "b"])
        row = criticality_report(ana).rows[0]
        assert sum(row.parameter_shares.values()) == pytest.approx(1.0)


class TestZeroRadius:
    def test_boundary_origin_uses_gradient_shares(self):
        # origin exactly on the boundary: radius 0, witness == origin, so
        # shares come from the gradient direction instead
        p = PerturbationParameter("x", [1.0, 1.0])
        ana = RobustnessAnalysis(
            [FeatureSpec(PerformanceFeature("on_boundary",
                                            ToleranceBounds.upper(7.0)),
                         LinearMapping([3.0, 4.0]))],
            [p], weighting=IdentityWeighting())
        report = criticality_report(ana)
        row = report.rows[0]
        assert row.radius == 0.0
        shares = {e.index: e.share for e in row.element_shares}
        assert shares[0] == pytest.approx(9.0 / 25.0)
        assert shares[1] == pytest.approx(16.0 / 25.0)


class TestReportStructure:
    def test_rows_sorted_by_radius(self):
        p = PerturbationParameter("x", [1.0, 1.0])
        near = FeatureSpec(PerformanceFeature("near", ToleranceBounds.upper(3.0)),
                           LinearMapping([1.0, 1.0]))
        far = FeatureSpec(PerformanceFeature("far", ToleranceBounds.upper(30.0)),
                          LinearMapping([1.0, 1.0]))
        ana = RobustnessAnalysis([far, near], [p],
                                 weighting=IdentityWeighting())
        report = criticality_report(ana)
        assert [r.feature for r in report.rows] == ["near", "far"]

    def test_infinite_radius_skipped(self):
        p = PerturbationParameter("x", [1.0])
        finite = FeatureSpec(
            PerformanceFeature("finite", ToleranceBounds.upper(5.0)),
            LinearMapping([1.0]))
        never = FeatureSpec(
            PerformanceFeature("never", ToleranceBounds.upper(5.0)),
            LinearMapping([0.0], constant=1.0))
        ana = RobustnessAnalysis([finite, never], [p],
                                 weighting=IdentityWeighting())
        report = criticality_report(ana)
        assert report.skipped == ("never",)
        assert [r.feature for r in report.rows] == ["finite"]

    def test_table_renders(self):
        ana = build([1.0, 2.0], bound=10.0)
        out = criticality_report(ana).to_table()
        assert "criticality" in out
        assert "f" in out

    def test_normalized_weighting_path(self, hiperd_system, hiperd_qos):
        from repro.systems.hiperd.constraints import build_analysis
        ana = build_analysis(hiperd_system, hiperd_qos,
                             kinds=("loads", "msgsize"), seed=0)
        report = criticality_report(ana)
        assert report.rows
        for row in report.rows:
            assert set(row.parameter_shares) == {"loads", "msgsize"}
            assert sum(row.parameter_shares.values()) == pytest.approx(1.0)
