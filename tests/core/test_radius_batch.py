"""Tests for the batched radius frontend (:func:`compute_radii`).

The contract under test: element ``i`` of ``compute_radii(problems)`` is
bit-identical to ``compute_radius(problems[i])`` — through the cache-hit
path, the serial path, the executor fan-out, and with tracing active.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.features import ToleranceBounds
from repro.core.mappings import (
    LinearMapping,
    MaxMapping,
    QuadraticMapping,
)
from repro.core.radius import (
    RadiusProblem,
    _solver_structure,
    compute_radii,
    compute_radius,
)
from repro.observability import observing
from repro.parallel.cache import (
    RadiusCache,
    get_default_cache,
    install_default_cache,
    uninstall_default_cache,
)
from repro.parallel.executor import ParallelExecutor


@pytest.fixture(autouse=True)
def _no_ambient_default_cache():
    before = get_default_cache()
    uninstall_default_cache()
    yield
    if before is not None:
        install_default_cache(before)
    else:
        uninstall_default_cache()


def _problems():
    """A mixed batch spanning several solver tiers and norms."""
    rng = np.random.default_rng(0)
    out = []
    for i in range(3):  # analytic tier
        coeffs = rng.standard_normal(4)
        origin = rng.standard_normal(4)
        phi0 = LinearMapping(coeffs).value(origin)
        out.append(RadiusProblem(LinearMapping(coeffs), origin,
                                 ToleranceBounds.upper(phi0 + 1.0 + i)))
    for norm in (1, 2, np.inf):  # ellipsoid + bisection tiers
        out.append(RadiusProblem(QuadraticMapping(np.eye(4)),
                                 rng.standard_normal(4) * 0.1,
                                 ToleranceBounds.upper(2.0), norm=norm))
    comps = [LinearMapping(rng.standard_normal(4), float(i)) for i in range(3)]
    out.append(RadiusProblem(MaxMapping(comps), np.zeros(4),  # numeric tier
                             ToleranceBounds.upper(MaxMapping(comps).value(
                                 np.zeros(4)) + 2.0)))
    return out


def _assert_identical(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert g.radius == w.radius
        if w.boundary_point is None:
            assert g.boundary_point is None
        else:
            np.testing.assert_array_equal(g.boundary_point, w.boundary_point)
        assert g.method == w.method


class TestSerialIdentity:
    def test_matches_per_problem_compute_radius(self):
        problems = _problems()
        want = [compute_radius(p, seed=3, cache=False) for p in problems]
        got = compute_radii(problems, seed=3, cache=False)
        _assert_identical(got, want)

    def test_empty_batch(self):
        assert compute_radii([], cache=False) == []

    def test_generator_seed_matches_stream_order(self):
        # A stateful Generator is consumed in problem order by both paths.
        problems = _problems()
        want = [compute_radius(p, seed=np.random.default_rng(5), cache=False)
                for p in problems]
        # Fresh generator per list above vs one shared stream here would
        # differ; compare against the same shared-stream convention.
        rng_a = np.random.default_rng(5)
        want = [compute_radius(p, seed=rng_a, cache=False) for p in problems]
        got = compute_radii(problems, seed=np.random.default_rng(5),
                            cache=False)
        _assert_identical(got, want)


class TestCachePath:
    def test_hits_served_without_resolving(self):
        problems = _problems()
        cache = RadiusCache()
        first = compute_radii(problems, seed=3, cache=cache)
        second = compute_radii(problems, seed=3, cache=cache)
        _assert_identical(second, first)
        # Deterministic problems are fingerprintable; every one of them
        # must be a hit on the second pass.
        assert cache.stats()["hits"] >= 3

    def test_partial_hits_merge_in_problem_order(self):
        problems = _problems()
        cache = RadiusCache()
        # Pre-solve a middle problem only.
        pre = compute_radius(problems[2], seed=3, cache=cache)
        got = compute_radii(problems, seed=3, cache=cache)
        assert got[2] is pre  # the memoised object itself
        want = [compute_radius(p, seed=3, cache=False) for p in problems]
        _assert_identical(got, want)


class TestExecutorPath:
    def test_fan_out_identical_to_serial(self):
        problems = _problems()
        want = compute_radii(problems, seed=3, cache=False)
        with ParallelExecutor(2) as pool:
            got = compute_radii(problems, seed=3, cache=False, executor=pool)
        _assert_identical(got, want)

    def test_single_worker_executor_stays_serial(self):
        problems = _problems()
        want = compute_radii(problems, seed=3, cache=False)
        with ParallelExecutor(1) as pool:
            got = compute_radii(problems, seed=3, cache=False, executor=pool)
        _assert_identical(got, want)


class TestObservability:
    def test_tracing_does_not_change_results(self):
        problems = _problems()
        want = compute_radii(problems, seed=3, cache=False)
        with observing() as obs:
            got = compute_radii(problems, seed=3, cache=False)
        _assert_identical(got, want)
        names = [s.name for s in obs.recorder.spans()]
        assert "radius.batch" in names

    def test_batch_span_tags(self):
        problems = _problems()
        cache = RadiusCache()
        compute_radii(problems, seed=3, cache=cache)
        with observing() as obs:
            compute_radii(problems, seed=3, cache=cache)
        batch = [s for s in obs.recorder.spans()
                 if s.name == "radius.batch"][-1]
        assert batch.tags["problems"] == len(problems)
        assert batch.tags["hits"] >= 3


class TestSolverStructure:
    def test_tiers_partition_as_documented(self):
        lin = RadiusProblem(LinearMapping([1.0, 1.0]), np.zeros(2),
                            ToleranceBounds.upper(2.0))
        quad = RadiusProblem(QuadraticMapping(np.eye(2)), np.zeros(2),
                             ToleranceBounds.upper(1.0))
        quad_l1 = RadiusProblem(QuadraticMapping(np.eye(2)), np.zeros(2),
                                ToleranceBounds.upper(1.0), norm=1)
        assert _solver_structure(lin, "auto")[0] == "analytic"
        assert _solver_structure(quad, "auto")[0] == "ellipsoid"
        assert _solver_structure(quad_l1, "auto")[0] == "bisection"
        assert _solver_structure(quad, "numeric")[0] == "numeric"
        assert _solver_structure(quad, "bisection")[0] == "bisection"
