"""Tests for the exact ellipsoid-projection solver (secular equation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.boundary import as_diagonal_quadratic
from repro.core.mappings import LinearMapping, QuadraticMapping, ReweightedMapping
from repro.core.solvers.ellipsoid import (
    is_diagonal_quadratic,
    solve_ellipsoid_radius,
)
from repro.core.solvers.numeric import solve_numeric_radius
from repro.exceptions import BoundaryNotFoundError, SpecificationError

positive = st.floats(min_value=0.1, max_value=10.0, allow_nan=False)


class TestRecognition:
    def test_sphere_recognised(self):
        assert is_diagonal_quadratic(QuadraticMapping(np.eye(3)))

    def test_off_diagonal_rejected(self):
        Q = np.array([[1.0, 0.1], [0.1, 1.0]])
        assert not is_diagonal_quadratic(QuadraticMapping(Q))

    def test_linear_term_rejected(self):
        assert not is_diagonal_quadratic(
            QuadraticMapping(np.eye(2), [1.0, 0.0]))

    def test_indefinite_rejected(self):
        assert not is_diagonal_quadratic(
            QuadraticMapping(np.diag([1.0, -1.0])))

    def test_as_diagonal_quadratic_through_reweighting(self):
        base = QuadraticMapping(np.diag([2.0, 8.0]))
        rew = ReweightedMapping(base, [2.0, 4.0])
        diag = as_diagonal_quadratic(rew)
        assert diag is not None
        np.testing.assert_allclose(np.diag(diag.quadratic), [0.5, 0.5])
        x = np.array([1.5, -0.5])
        assert diag.value(x) == pytest.approx(rew.value(x))

    def test_as_diagonal_quadratic_none_for_linear(self):
        assert as_diagonal_quadratic(LinearMapping([1.0])) is None


class TestExactProjection:
    def test_sphere_from_origin_offset(self):
        # f = x^2 + y^2 = 4 from (3, 0): closest point (2, 0), distance 1.
        m = QuadraticMapping(np.eye(2))
        c = solve_ellipsoid_radius(m, np.array([3.0, 0.0]), 4.0)
        np.testing.assert_allclose(c.point, [2.0, 0.0], atol=1e-10)
        assert c.distance == pytest.approx(1.0, abs=1e-12)

    def test_inside_pushed_out(self):
        m = QuadraticMapping(np.eye(2))
        c = solve_ellipsoid_radius(m, np.array([0.5, 0.0]), 4.0)
        np.testing.assert_allclose(c.point, [2.0, 0.0], atol=1e-10)
        assert c.distance == pytest.approx(1.5, abs=1e-12)

    def test_anisotropic_axes(self):
        # f = x^2/4 + y^2 = 1 from origin: closest boundary point is
        # (0, +-1) at distance 1 (minor axis).
        m = QuadraticMapping(np.diag([0.25, 1.0]))
        c = solve_ellipsoid_radius(m, np.zeros(2), 1.0)
        assert c.distance == pytest.approx(1.0, abs=1e-12)

    def test_origin_on_boundary(self):
        m = QuadraticMapping(np.eye(2))
        c = solve_ellipsoid_radius(m, np.array([2.0, 0.0]), 4.0)
        assert c.distance == 0.0

    def test_constant_folded(self):
        m = QuadraticMapping(np.eye(1), None, 3.0)
        c = solve_ellipsoid_radius(m, np.array([0.0]), 7.0)
        assert c.distance == pytest.approx(2.0, abs=1e-12)

    def test_empty_level_set(self):
        m = QuadraticMapping(np.eye(2), None, 5.0)
        with pytest.raises(BoundaryNotFoundError, match="empty"):
            solve_ellipsoid_radius(m, np.zeros(2), 4.0)

    def test_nondiagonal_rejected(self):
        Q = np.array([[1.0, 0.2], [0.2, 1.0]])
        with pytest.raises(SpecificationError):
            solve_ellipsoid_radius(QuadraticMapping(Q), np.zeros(2), 1.0)

    def test_witness_on_boundary_exactly(self, rng):
        for _ in range(10):
            d = rng.uniform(0.2, 5.0, size=4)
            m = QuadraticMapping(np.diag(d))
            origin = rng.normal(size=4)
            bound = rng.uniform(0.5, 10.0)
            c = solve_ellipsoid_radius(m, origin, bound)
            assert m.value(c.point) == pytest.approx(bound, rel=1e-10)

    @given(d=st.lists(positive, min_size=2, max_size=5),
           bound=st.floats(min_value=0.5, max_value=20.0))
    @settings(max_examples=40, deadline=None)
    def test_matches_numeric_solver(self, d, bound):
        m = QuadraticMapping(np.diag(d))
        origin = np.full(len(d), 0.3)
        exact = solve_ellipsoid_radius(m, origin, bound)
        numeric = solve_numeric_radius(m, origin, bound, seed=0)
        assert exact.distance == pytest.approx(numeric.distance,
                                               rel=1e-5, abs=1e-8)
        # The exact answer can never be worse than the numeric local one,
        # except that SLSQP's constraint tolerance (~1e-7 relative) lets
        # its point sit marginally inside the boundary.
        assert exact.distance <= numeric.distance + 1e-6 * (
            1.0 + numeric.distance)
