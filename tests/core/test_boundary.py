"""Tests for repro.core.boundary (affine-structure recognition)."""

import numpy as np
import pytest

from repro.core.boundary import BoundaryCrossing, as_linear
from repro.core.mappings import (
    CallableMapping,
    LinearMapping,
    QuadraticMapping,
    RestrictedMapping,
    ReweightedMapping,
    SumMapping,
)


class TestAsLinear:
    def test_linear_identity(self):
        m = LinearMapping([1.0, 2.0], 3.0)
        assert as_linear(m) is m

    def test_quadratic_not_linear(self):
        assert as_linear(QuadraticMapping(np.eye(2))) is None

    def test_callable_not_linear(self):
        assert as_linear(CallableMapping(lambda x: 0.0, 2)) is None

    def test_reweighted_linear(self, rng):
        base = LinearMapping([2.0, 6.0], 1.0)
        alphas = np.array([2.0, 3.0])
        lin = as_linear(ReweightedMapping(base, alphas))
        assert lin is not None
        np.testing.assert_allclose(lin.coefficients, [1.0, 2.0])
        assert lin.constant == 1.0
        # the extracted mapping agrees with the wrapped one everywhere
        x = rng.normal(size=2)
        assert lin.value(x) == pytest.approx(
            ReweightedMapping(base, alphas).value(x))

    def test_reweighted_quadratic_is_none(self):
        m = ReweightedMapping(QuadraticMapping(np.eye(2)), [1.0, 1.0])
        assert as_linear(m) is None

    def test_restricted_linear_folds_constant(self):
        base = LinearMapping([1.0, 10.0, 100.0], 5.0)
        ref = np.array([1.0, 2.0, 3.0])
        r = RestrictedMapping(base, [1], ref)
        lin = as_linear(r)
        assert lin is not None
        np.testing.assert_allclose(lin.coefficients, [10.0])
        # frozen: 1*1 + 100*3 + 5 = 306
        assert lin.constant == pytest.approx(306.0)
        assert lin.value(np.array([2.0])) == pytest.approx(r.value(np.array([2.0])))

    def test_sum_of_linear(self):
        m = SumMapping([LinearMapping([1.0, 0.0], 1.0),
                        LinearMapping([0.0, 2.0], 2.0)])
        lin = as_linear(m)
        np.testing.assert_allclose(lin.coefficients, [1.0, 2.0])
        assert lin.constant == 3.0

    def test_sum_with_nonlinear_is_none(self):
        m = SumMapping([LinearMapping([1.0, 0.0]),
                        QuadraticMapping(np.eye(2))])
        assert as_linear(m) is None

    def test_nested_restricted_reweighted(self, rng):
        base = LinearMapping(rng.normal(size=4), 0.5)
        rew = ReweightedMapping(base, rng.uniform(1.0, 2.0, size=4))
        res = RestrictedMapping(rew, [0, 2], rng.normal(size=4))
        lin = as_linear(res)
        assert lin is not None
        y = rng.normal(size=2)
        assert lin.value(y) == pytest.approx(res.value(y))


class TestBoundaryCrossing:
    def test_coercion(self):
        c = BoundaryCrossing([1, 2], 3, 4)
        assert c.point.dtype == np.float64
        assert c.bound == 3.0
        assert c.distance == 4.0

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            BoundaryCrossing(np.zeros(2), 1.0, -1.0)

    def test_nan_distance_rejected(self):
        with pytest.raises(ValueError):
            BoundaryCrossing(np.zeros(2), 1.0, float("nan"))
