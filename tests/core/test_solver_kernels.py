"""Property-style equivalence tests for the vectorised solver kernels.

The batched kernels (lock-step directional bisection, stencil finite
differences, closed-form ``gradient_many``) promise *bit-identical*
results to the scalar reference paths they replace.  These tests sweep
mapping types, norms, boxes, and seeds and compare the two paths with
exact equality — any last-ulp divergence is a regression.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.features import ToleranceBounds
from repro.core.mappings import (
    CallableMapping,
    LinearMapping,
    MaxMapping,
    ProductMapping,
    QuadraticMapping,
    RestrictedMapping,
    ReweightedMapping,
    SumMapping,
)
from repro.core.solvers.bisection import (
    directional_crossing,
    directional_crossings,
    solve_bisection_radius,
)
from repro.core.solvers.numeric import (
    _finite_diff_gradient,
    _finite_diff_gradient_scalar,
)
from repro.exceptions import BoundaryNotFoundError

N = 6


def _rng(seed=0):
    return np.random.default_rng(seed)


def _make_mapping(kind: str):
    """A named mapping plus a valid origin for it."""
    rng = _rng(42)
    if kind == "linear":
        return LinearMapping(rng.standard_normal(N), 0.3), np.zeros(N)
    if kind == "quadratic":
        a = rng.standard_normal((N, N))
        return QuadraticMapping(a @ a.T / N, rng.standard_normal(N)), np.zeros(N)
    if kind == "product":
        powers = np.concatenate([np.array([1.0, 0.5]), np.zeros(N - 2)])
        return ProductMapping(powers, 2.0), np.full(N, 1.5)
    if kind == "max":
        comps = [LinearMapping(rng.standard_normal(N), float(i)) for i in range(4)]
        return MaxMapping(comps), np.zeros(N)
    if kind == "sum":
        comps = [LinearMapping(rng.standard_normal(N)),
                 QuadraticMapping(np.eye(N))]
        return SumMapping(comps), np.zeros(N)
    if kind == "reweighted":
        base = LinearMapping(rng.standard_normal(N), 0.1)
        return ReweightedMapping(base, 1.0 + rng.random(N)), np.zeros(N)
    if kind == "restricted":
        base = QuadraticMapping(np.eye(N + 2))
        return (RestrictedMapping(base, [0, 1, 2, 3, 4, 5], np.zeros(N + 2)),
                np.zeros(N))
    if kind == "callable":
        return (CallableMapping(
            lambda x: float(np.sum(np.sin(x)) + 0.5 * (x @ x)), N), np.zeros(N))
    raise AssertionError(kind)


MAPPING_KINDS = ["linear", "quadratic", "product", "max", "sum",
                 "reweighted", "restricted", "callable"]


class TestBatchedBisectionIdentity:
    """``solve_bisection_radius(batch=True)`` == the scalar loop, bitwise."""

    @pytest.mark.parametrize("kind", MAPPING_KINDS)
    @pytest.mark.parametrize("norm", [1, 2, np.inf])
    def test_batched_equals_scalar(self, kind, norm):
        mapping, origin = _make_mapping(kind)
        bound = mapping.value(origin) + 4.0
        kw = dict(norm=norm, n_random_directions=48, seed=11)
        batched = solve_bisection_radius(mapping, origin, bound,
                                         batch=True, **kw)
        scalar = solve_bisection_radius(mapping, origin, bound,
                                        batch=False, **kw)
        assert batched.distance == scalar.distance
        np.testing.assert_array_equal(batched.point, scalar.point)
        assert batched.bound == scalar.bound

    @pytest.mark.parametrize("kind", ["linear", "quadratic", "product", "max"])
    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_batched_equals_scalar_with_box(self, kind, seed):
        mapping, origin = _make_mapping(kind)
        bound = mapping.value(origin) + 3.0
        kw = dict(norm=2, n_random_directions=32, seed=seed,
                  lower=origin - 2.5, upper=origin + 2.5)
        batched = solve_bisection_radius(mapping, origin, bound,
                                         batch=True, **kw)
        scalar = solve_bisection_radius(mapping, origin, bound,
                                        batch=False, **kw)
        assert batched.distance == scalar.distance
        np.testing.assert_array_equal(batched.point, scalar.point)

    def test_not_found_raised_identically(self):
        # A bound the mapping never reaches inside a tight box: both paths
        # must raise BoundaryNotFoundError.
        mapping = LinearMapping([1.0, 1.0])
        origin = np.zeros(2)
        for batch in (True, False):
            with pytest.raises(BoundaryNotFoundError):
                solve_bisection_radius(mapping, origin, 100.0, batch=batch,
                                       n_random_directions=16, seed=0,
                                       lower=origin - 1.0, upper=origin + 1.0)


class TestDirectionalCrossingsKernel:
    """The batched kernel agrees per-direction with the scalar routine."""

    @pytest.mark.parametrize("kind", MAPPING_KINDS)
    def test_per_direction_agreement(self, kind):
        mapping, origin = _make_mapping(kind)
        bound = mapping.value(origin) + 4.0
        rng = _rng(5)
        dirs = rng.standard_normal((24, N))
        dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
        ts = directional_crossings(mapping, origin, dirs, bound)
        assert ts.shape == (24,)
        for d, t in zip(dirs, ts):
            s = directional_crossing(mapping, origin, d, bound)
            if s is None:
                assert np.isnan(t)
            else:
                assert t == s

    def test_out_of_domain_directions_yield_nan(self):
        # ProductMapping leaves its domain along -e_i; the scalar path drops
        # those directions, the batched path must report NaN for them.
        mapping, origin = _make_mapping("product")
        bound = mapping.value(origin) + 5.0
        dirs = np.vstack([np.eye(N), -np.eye(N)])
        ts = directional_crossings(mapping, origin, dirs, bound)
        for d, t in zip(dirs, ts):
            s = directional_crossing(mapping, origin, d, bound)
            assert (s is None and np.isnan(t)) or t == s

    def test_box_capping_matches_scalar(self):
        mapping, origin = _make_mapping("quadratic")
        bound = mapping.value(origin) + 2.0
        rng = _rng(9)
        dirs = rng.standard_normal((16, N))
        dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
        lo, hi = origin - 1.0, origin + 1.0
        ts = directional_crossings(mapping, origin, dirs, bound,
                                   lower=lo, upper=hi)
        for d, t in zip(dirs, ts):
            s = directional_crossing(mapping, origin, d, bound,
                                     lower=lo, upper=hi)
            assert (s is None and np.isnan(t)) or t == s


class TestStencilGradientIdentity:
    """The one-shot stencil FD equals the per-coordinate scalar loop."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_callable_mapping_bit_identical(self, seed):
        mapping, _ = _make_mapping("callable")
        x = _rng(seed).standard_normal(N) * (1.0 + seed)
        batched = _finite_diff_gradient(mapping, x)
        scalar = _finite_diff_gradient_scalar(mapping, x)
        np.testing.assert_array_equal(batched, scalar)

    def test_large_magnitude_point(self):
        # The step scales with |x|; exercise the np.maximum branch.
        mapping, _ = _make_mapping("callable")
        x = np.array([1e6, -1e6, 0.0, 1.0, -3.0, 2e4])
        np.testing.assert_array_equal(_finite_diff_gradient(mapping, x),
                                      _finite_diff_gradient_scalar(mapping, x))


class TestGradientMany:
    """Closed-form ``gradient_many`` matches per-row ``gradient``."""

    @pytest.mark.parametrize("kind", ["linear", "product"])
    def test_bit_identical_kinds(self, kind):
        mapping, origin = _make_mapping(kind)
        xs = origin + 0.25 * np.abs(_rng(3).standard_normal((20, N)))
        got = mapping.gradient_many(xs)
        want = np.array([mapping.gradient(row) for row in xs])
        np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("kind", ["quadratic", "max", "sum",
                                      "reweighted", "restricted"])
    def test_blas_backed_kinds_close(self, kind):
        # These batch through gemm instead of per-row gemv, which may differ
        # in the last ulp; the solvers that consume them are FD-free.
        mapping, origin = _make_mapping(kind)
        xs = origin + 0.25 * _rng(4).standard_normal((20, N))
        got = mapping.gradient_many(xs)
        want = np.array([mapping.gradient(row) for row in xs])
        np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-12)

    def test_gradient_free_mapping_returns_none(self):
        mapping = CallableMapping(lambda x: 2.0 * float(x.sum()), 3)
        assert mapping.gradient_many(np.zeros((4, 3))) is None
        comps = [LinearMapping([1.0, 1.0, 1.0]), mapping]
        # SumMapping needs every component's gradient.
        assert SumMapping(comps).gradient_many(np.ones((4, 3))) is None
        # MaxMapping mirrors the scalar rule: only *winning* components
        # need gradients.  The callable wins at ones (6 > 3) -> None; the
        # linear wins at -ones (-3 > -6) -> its gradient.
        assert MaxMapping(comps).gradient_many(np.ones((4, 3))) is None
        got = MaxMapping(comps).gradient_many(-np.ones((4, 3)))
        np.testing.assert_array_equal(got, np.ones((4, 3)))

    def test_max_mapping_tie_break_matches_scalar(self):
        # Exact ties between components: both paths take the first argmax.
        comps = [LinearMapping([1.0, 0.0]), LinearMapping([1.0, 0.0]),
                 LinearMapping([0.0, 1.0])]
        mapping = MaxMapping(comps)
        xs = np.array([[1.0, 0.0], [0.0, 1.0], [0.5, 0.5]])
        got = mapping.gradient_many(xs)
        want = np.array([mapping.gradient(row) for row in xs])
        np.testing.assert_array_equal(got, want)


class TestSamplingRegression:
    """The vectorised violation scan pins the exact former report."""

    def test_report_bit_identical_to_scalar_scan(self):
        from repro.core.solvers.sampling import sampling_upper_bound
        from repro.utils.linalg import vector_norm

        mapping = QuadraticMapping(np.eye(3))
        origin = np.zeros(3)
        bounds = ToleranceBounds.upper(1.0)
        for norm in (1, 2, np.inf):
            rep = sampling_upper_bound(mapping, origin, bounds,
                                       max_distance=3.0, n_samples=4000,
                                       norm=norm, seed=7)
            assert rep.n_violations > 0
            # Re-derive the minimum with the scalar per-point formulation
            # the scan replaced; the report must match it exactly.
            d = vector_norm(rep.closest_violation - origin, norm)
            assert rep.min_violation_distance == d
