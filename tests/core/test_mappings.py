"""Tests for repro.core.mappings (FePIA step 3)."""

import numpy as np
import pytest

from repro.core.mappings import (
    CallableMapping,
    LinearMapping,
    MaxMapping,
    ProductMapping,
    QuadraticMapping,
    RestrictedMapping,
    ReweightedMapping,
    SumMapping,
)
from repro.exceptions import DimensionMismatchError, SpecificationError


class TestLinearMapping:
    def test_value(self):
        m = LinearMapping([2.0, 3.0], constant=1.0)
        assert m.value(np.array([1.0, 1.0])) == 6.0

    def test_value_many_matches_value(self, rng):
        m = LinearMapping(rng.normal(size=5), constant=0.7)
        xs = rng.normal(size=(20, 5))
        batch = m.value_many(xs)
        np.testing.assert_allclose(batch, [m.value(x) for x in xs])

    def test_gradient_is_coefficients(self):
        k = np.array([1.0, -2.0])
        m = LinearMapping(k)
        np.testing.assert_array_equal(m.gradient(np.zeros(2)), k)

    def test_gradient_returns_copy(self):
        m = LinearMapping([1.0])
        g = m.gradient(np.zeros(1))
        g[0] = 99.0
        assert m.coefficients[0] == 1.0

    def test_dimension_check(self):
        m = LinearMapping([1.0, 2.0])
        with pytest.raises(DimensionMismatchError):
            m.value(np.zeros(3))

    def test_boundary_hyperplane(self):
        m = LinearMapping([1.0, 1.0], constant=2.0)
        normal, offset = m.boundary_hyperplane(10.0)
        np.testing.assert_array_equal(normal, [1.0, 1.0])
        assert offset == 8.0

    def test_nan_coefficients_rejected(self):
        with pytest.raises(SpecificationError):
            LinearMapping([1.0, float("nan")])

    def test_callable_protocol(self):
        m = LinearMapping([2.0])
        assert m(np.array([3.0])) == 6.0


class TestQuadraticMapping:
    def test_pure_quadratic(self):
        m = QuadraticMapping(np.eye(2))
        assert m.value(np.array([3.0, 4.0])) == 25.0

    def test_full_form(self):
        m = QuadraticMapping(np.eye(2), [1.0, 0.0], constant=2.0)
        assert m.value(np.array([1.0, 1.0])) == pytest.approx(5.0)

    def test_symmetrisation(self):
        Q = np.array([[0.0, 1.0], [0.0, 0.0]])
        m = QuadraticMapping(Q)
        # x'Qx with asymmetric Q equals x'(Q+Q')/2 x
        x = np.array([2.0, 3.0])
        assert m.value(x) == pytest.approx(6.0)
        np.testing.assert_allclose(m.quadratic, m.quadratic.T)

    def test_gradient_finite_difference(self, rng):
        Q = rng.normal(size=(4, 4))
        m = QuadraticMapping(Q, rng.normal(size=4), 1.0)
        x = rng.normal(size=4)
        g = m.gradient(x)
        eps = 1e-6
        for i in range(4):
            dx = np.zeros(4)
            dx[i] = eps
            fd = (m.value(x + dx) - m.value(x - dx)) / (2 * eps)
            assert g[i] == pytest.approx(fd, rel=1e-4, abs=1e-6)

    def test_value_many(self, rng):
        m = QuadraticMapping(rng.normal(size=(3, 3)), rng.normal(size=3))
        xs = rng.normal(size=(10, 3))
        np.testing.assert_allclose(m.value_many(xs),
                                   [m.value(x) for x in xs], rtol=1e-12)

    def test_non_square_rejected(self):
        with pytest.raises(SpecificationError, match="square"):
            QuadraticMapping(np.zeros((2, 3)))

    def test_linear_length_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            QuadraticMapping(np.eye(2), [1.0])


class TestProductMapping:
    def test_ratio_form(self):
        # size / bandwidth as a monomial
        m = ProductMapping([1.0, -1.0])
        assert m.value(np.array([10.0, 2.0])) == 5.0

    def test_coefficient(self):
        m = ProductMapping([2.0], coefficient=3.0)
        assert m.value(np.array([2.0])) == 12.0

    def test_gradient(self):
        m = ProductMapping([1.0, -1.0])
        x = np.array([10.0, 2.0])
        g = m.gradient(x)
        np.testing.assert_allclose(g, [0.5, -2.5])

    def test_nonpositive_input_rejected(self):
        m = ProductMapping([1.0])
        with pytest.raises(SpecificationError, match="positive"):
            m.value(np.array([0.0]))

    def test_nonpositive_coefficient_rejected(self):
        with pytest.raises(SpecificationError):
            ProductMapping([1.0], coefficient=0.0)

    def test_value_many(self, rng):
        m = ProductMapping([0.5, 2.0], coefficient=1.5)
        xs = rng.uniform(0.5, 2.0, size=(8, 2))
        np.testing.assert_allclose(m.value_many(xs),
                                   [m.value(x) for x in xs])


class TestCallableMapping:
    def test_value(self):
        m = CallableMapping(lambda x: float(np.sum(x ** 2)), 3)
        assert m.value(np.array([1.0, 2.0, 2.0])) == 9.0

    def test_gradient_none_by_default(self):
        m = CallableMapping(lambda x: 0.0, 2)
        assert m.gradient(np.zeros(2)) is None

    def test_gradient_fn(self):
        m = CallableMapping(lambda x: float(x @ x), 2,
                            gradient_fn=lambda x: 2 * x)
        np.testing.assert_array_equal(m.gradient(np.array([1.0, 2.0])),
                                      [2.0, 4.0])

    def test_gradient_length_checked(self):
        m = CallableMapping(lambda x: 0.0, 2,
                            gradient_fn=lambda x: np.zeros(3))
        with pytest.raises(DimensionMismatchError):
            m.gradient(np.zeros(2))

    def test_non_callable_rejected(self):
        with pytest.raises(SpecificationError):
            CallableMapping("not callable", 2)

    def test_value_many_fallback_loop(self):
        m = CallableMapping(lambda x: float(x[0]), 2)
        out = m.value_many(np.array([[1.0, 0.0], [2.0, 0.0]]))
        np.testing.assert_array_equal(out, [1.0, 2.0])


class TestMaxMapping:
    def test_is_max(self):
        m = MaxMapping([LinearMapping([1.0, 0.0]), LinearMapping([0.0, 1.0])])
        assert m.value(np.array([2.0, 5.0])) == 5.0

    def test_argmax_component(self):
        m = MaxMapping([LinearMapping([1.0, 0.0]), LinearMapping([0.0, 1.0])])
        assert m.argmax_component(np.array([2.0, 5.0])) == 1

    def test_gradient_of_active(self):
        m = MaxMapping([LinearMapping([1.0, 0.0]), LinearMapping([0.0, 1.0])])
        np.testing.assert_array_equal(m.gradient(np.array([2.0, 5.0])),
                                      [0.0, 1.0])

    def test_value_many(self, rng):
        comps = [LinearMapping(rng.normal(size=3)) for _ in range(4)]
        m = MaxMapping(comps)
        xs = rng.normal(size=(12, 3))
        np.testing.assert_allclose(m.value_many(xs), [m.value(x) for x in xs])

    def test_empty_rejected(self):
        with pytest.raises(SpecificationError):
            MaxMapping([])

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(DimensionMismatchError):
            MaxMapping([LinearMapping([1.0]), LinearMapping([1.0, 2.0])])


class TestSumMapping:
    def test_sum(self):
        m = SumMapping([LinearMapping([1.0, 0.0]), LinearMapping([0.0, 2.0])])
        assert m.value(np.array([1.0, 1.0])) == 3.0

    def test_gradient_sum(self):
        m = SumMapping([LinearMapping([1.0, 0.0]), LinearMapping([0.0, 2.0])])
        np.testing.assert_array_equal(m.gradient(np.zeros(2)), [1.0, 2.0])

    def test_gradient_none_propagates(self):
        m = SumMapping([LinearMapping([1.0]),
                        CallableMapping(lambda x: 0.0, 1)])
        assert m.gradient(np.zeros(1)) is None

    def test_value_many(self, rng):
        m = SumMapping([QuadraticMapping(np.eye(2)), LinearMapping([1.0, 1.0])])
        xs = rng.normal(size=(6, 2))
        np.testing.assert_allclose(m.value_many(xs), [m.value(x) for x in xs])


class TestRestrictedMapping:
    def test_freezes_other_coordinates(self):
        base = LinearMapping([1.0, 10.0, 100.0])
        r = RestrictedMapping(base, [1], np.array([1.0, 2.0, 3.0]))
        # vary only index 1; indices 0 and 2 frozen at 1 and 3
        assert r.value(np.array([5.0])) == 1.0 + 50.0 + 300.0

    def test_embed(self):
        base = LinearMapping([1.0, 1.0, 1.0])
        r = RestrictedMapping(base, [0, 2], np.array([9.0, 8.0, 7.0]))
        np.testing.assert_array_equal(r.embed(np.array([1.0, 2.0])),
                                      [1.0, 8.0, 2.0])

    def test_embed_many(self):
        base = LinearMapping([1.0, 1.0])
        r = RestrictedMapping(base, [1], np.array([5.0, 0.0]))
        out = r.embed_many(np.array([[1.0], [2.0]]))
        np.testing.assert_array_equal(out, [[5.0, 1.0], [5.0, 2.0]])

    def test_gradient_restricted(self):
        base = LinearMapping([1.0, 10.0, 100.0])
        r = RestrictedMapping(base, [0, 2], np.zeros(3))
        np.testing.assert_array_equal(r.gradient(np.zeros(2)), [1.0, 100.0])

    def test_duplicate_indices_rejected(self):
        with pytest.raises(SpecificationError, match="unique"):
            RestrictedMapping(LinearMapping([1.0, 1.0]), [0, 0], np.zeros(2))

    def test_out_of_range_rejected(self):
        with pytest.raises(SpecificationError, match="range"):
            RestrictedMapping(LinearMapping([1.0]), [1], np.zeros(1))

    def test_reference_length_checked(self):
        with pytest.raises(DimensionMismatchError):
            RestrictedMapping(LinearMapping([1.0, 1.0]), [0], np.zeros(3))


class TestReweightedMapping:
    def test_reparameterisation(self):
        base = LinearMapping([2.0, 4.0])
        alphas = np.array([2.0, 4.0])
        m = ReweightedMapping(base, alphas)
        # g(P) = f(P/alpha): coefficients become k/alpha = (1, 1)
        assert m.value(np.array([1.0, 1.0])) == 2.0

    def test_gradient_chain_rule(self):
        base = LinearMapping([2.0, 4.0])
        m = ReweightedMapping(base, np.array([2.0, 4.0]))
        np.testing.assert_allclose(m.gradient(np.ones(2)), [1.0, 1.0])

    def test_roundtrip_with_quadratic(self, rng):
        base = QuadraticMapping(rng.normal(size=(3, 3)), rng.normal(size=3))
        alphas = rng.uniform(0.5, 2.0, size=3)
        m = ReweightedMapping(base, alphas)
        x = rng.normal(size=3)
        assert m.value(alphas * x) == pytest.approx(base.value(x))

    def test_zero_alpha_rejected(self):
        with pytest.raises(SpecificationError, match="nonzero"):
            ReweightedMapping(LinearMapping([1.0]), [0.0])

    def test_value_many(self, rng):
        base = QuadraticMapping(np.eye(2))
        m = ReweightedMapping(base, np.array([2.0, 3.0]))
        xs = rng.normal(size=(5, 2))
        np.testing.assert_allclose(m.value_many(xs), [m.value(x) for x in xs])
