"""Tests for the Monte-Carlo violation-search solver."""

import numpy as np
import pytest

from repro.core.features import ToleranceBounds
from repro.core.mappings import LinearMapping, QuadraticMapping
from repro.core.solvers.sampling import sampling_upper_bound
from repro.exceptions import SpecificationError


class TestSamplingUpperBound:
    def test_no_violation_inside_safe_ball(self):
        # f = x + y <= 2 from origin, true radius sqrt(2); a ball of
        # radius 1 < sqrt(2) contains no violations.
        m = LinearMapping([1.0, 1.0])
        rep = sampling_upper_bound(m, np.zeros(2), ToleranceBounds.upper(2.0),
                                   max_distance=1.0, n_samples=5000, seed=0)
        assert rep.n_violations == 0
        assert rep.min_violation_distance == float("inf")
        assert rep.closest_violation is None

    def test_violations_found_beyond_radius(self):
        m = LinearMapping([1.0, 1.0])
        rep = sampling_upper_bound(m, np.zeros(2), ToleranceBounds.upper(2.0),
                                   max_distance=4.0, n_samples=20000, seed=0)
        assert rep.n_violations > 0
        # min distance among violations upper-bounds and approaches sqrt(2)
        assert rep.min_violation_distance >= np.sqrt(2) - 1e-9
        assert rep.min_violation_distance <= np.sqrt(2) * 1.2

    def test_closest_violation_actually_violates(self):
        m = QuadraticMapping(np.eye(2))
        bounds = ToleranceBounds.upper(1.0)
        rep = sampling_upper_bound(m, np.zeros(2), bounds,
                                   max_distance=3.0, n_samples=5000, seed=1)
        assert rep.closest_violation is not None
        assert m.value(rep.closest_violation) > bounds.beta_max

    def test_lower_bound_violations(self):
        m = LinearMapping([1.0])
        bounds = ToleranceBounds.lower(-1.0)
        rep = sampling_upper_bound(m, np.zeros(1), bounds,
                                   max_distance=3.0, n_samples=2000, seed=2)
        assert rep.n_violations > 0
        assert rep.min_violation_distance >= 1.0 - 1e-9

    def test_box_clipping_suppresses_unreachable_violations(self):
        # f = -x violates the lower bound only for x > 1; with an upper
        # box at 0.5 no reachable point violates.
        m = LinearMapping([-1.0])
        bounds = ToleranceBounds.lower(-1.0)
        rep = sampling_upper_bound(m, np.zeros(1), bounds,
                                   max_distance=10.0, n_samples=2000,
                                   upper=np.array([0.5]), seed=3)
        assert rep.n_violations == 0

    def test_bad_max_distance(self):
        with pytest.raises(SpecificationError):
            sampling_upper_bound(LinearMapping([1.0]), np.zeros(1),
                                 ToleranceBounds.upper(1.0), max_distance=0.0)

    def test_linf_norm_distances(self):
        # f = x + y <= 2; linf radius is 1.
        m = LinearMapping([1.0, 1.0])
        rep = sampling_upper_bound(m, np.zeros(2), ToleranceBounds.upper(2.0),
                                   max_distance=3.0, n_samples=20000,
                                   norm=np.inf, seed=4)
        assert rep.min_violation_distance >= 1.0 - 1e-9
        assert rep.min_violation_distance <= 1.2
