"""Warm-started solves are bit-identical to their cold twins.

A :class:`WarmStart` threaded through a family of solves that differ only
in their tolerance bounds must change *nothing* about the answers: the
ray-table replay makes the same probe-point decisions from the same
arithmetic, and the convexity certificate only ever skips brackets whose
crossings provably lie beyond the winner.  These tests walk monotone and
non-monotone bound sweeps over every mapping type, norm, and box
configuration and compare warm against cold with exact equality — any
last-ulp divergence is a regression.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.features import ToleranceBounds
from repro.core.mappings import (
    CallableMapping,
    LinearMapping,
    MaxMapping,
    ProductMapping,
    QuadraticMapping,
    RestrictedMapping,
    ReweightedMapping,
    SumMapping,
)
from repro.core.radius import RadiusProblem, compute_radius
from repro.core.solvers.warm import RayTable, WarmStart, is_ray_convex
from repro.parallel.cache import RadiusCache

N = 6


def _rng(seed=0):
    return np.random.default_rng(seed)


def _make_mapping(kind: str):
    """A named mapping plus a valid origin for it."""
    rng = _rng(42)
    if kind == "linear":
        return LinearMapping(rng.standard_normal(N), 0.3), np.zeros(N)
    if kind == "quadratic":
        a = rng.standard_normal((N, N))
        return QuadraticMapping(a @ a.T / N, rng.standard_normal(N)), np.zeros(N)
    if kind == "indefinite":
        q = np.diag(np.concatenate([np.ones(N - 1), [-1.0]]))
        return QuadraticMapping(q, rng.standard_normal(N)), np.zeros(N)
    if kind == "product":
        powers = np.concatenate([np.array([1.0, 0.5]), np.zeros(N - 2)])
        return ProductMapping(powers, 2.0), np.full(N, 1.5)
    if kind == "max":
        comps = [LinearMapping(rng.standard_normal(N), float(i))
                 for i in range(4)]
        return MaxMapping(comps), np.zeros(N)
    if kind == "sum":
        comps = [LinearMapping(rng.standard_normal(N)),
                 QuadraticMapping(np.eye(N))]
        return SumMapping(comps), np.zeros(N)
    if kind == "reweighted":
        base = LinearMapping(rng.standard_normal(N), 0.1)
        return ReweightedMapping(base, 1.0 + rng.random(N)), np.zeros(N)
    if kind == "restricted":
        base = QuadraticMapping(np.eye(N + 2))
        return (RestrictedMapping(base, [0, 1, 2, 3, 4, 5], np.zeros(N + 2)),
                np.zeros(N))
    if kind == "callable":
        return (CallableMapping(
            lambda x: float(np.sum(np.sin(x)) + 0.5 * (x @ x)), N), np.zeros(N))
    raise AssertionError(kind)


MAPPING_KINDS = ["linear", "quadratic", "indefinite", "product", "max",
                 "sum", "reweighted", "restricted", "callable"]


def _assert_same(cold, warm):
    assert warm.radius == cold.radius
    assert np.array_equal(warm.boundary_point, cold.boundary_point,
                          equal_nan=True)
    assert warm.bound_hit == cold.bound_hit


def _walk(mapping, origin, bounds_list, *, method, norm=2,
          lower=None, upper=None, seed=7):
    """Solve a bound family cold and warm; assert bitwise identity."""
    warm_state = WarmStart()
    for bounds in bounds_list:
        problem = RadiusProblem(mapping, origin, bounds,
                                lower=lower, upper=upper, norm=norm)
        cold = compute_radius(problem, method=method, seed=seed, cache=False)
        warm = compute_radius(problem, method=method, seed=seed, cache=False,
                              warm=warm_state)
        _assert_same(cold, warm)
    return warm_state


def _upper_sweep(mapping, origin, factors=(1.05, 1.2, 1.5, 2.0, 3.0)):
    """Monotone-loosening upper bounds around the origin value."""
    g0 = float(mapping.value(np.asarray(origin, dtype=float)))
    offset = abs(g0) + 1.0
    return [ToleranceBounds.upper(g0 + f * offset) for f in factors]


class TestIsRayConvex:
    def test_linear(self):
        assert is_ray_convex(LinearMapping([1.0, 2.0]))

    def test_psd_quadratic(self):
        assert is_ray_convex(QuadraticMapping(np.eye(3)))

    def test_indefinite_quadratic(self):
        q = np.diag([1.0, -1.0, 1.0])
        assert not is_ray_convex(QuadraticMapping(q))

    def test_max_and_sum_of_convex(self):
        comps = [LinearMapping([1.0, 0.0]), QuadraticMapping(np.eye(2))]
        assert is_ray_convex(MaxMapping(comps))
        assert is_ray_convex(SumMapping(comps))

    def test_max_with_nonconvex_component(self):
        comps = [LinearMapping([1.0, 0.0]),
                 QuadraticMapping(np.diag([1.0, -1.0]))]
        assert not is_ray_convex(MaxMapping(comps))

    def test_adapters_recurse_to_base(self):
        base = QuadraticMapping(np.eye(3))
        assert is_ray_convex(ReweightedMapping(base, [1.0, 2.0, 3.0]))
        assert is_ray_convex(
            RestrictedMapping(base, [0, 1], np.zeros(3)))

    def test_product_and_callable_are_not_certified(self):
        assert not is_ray_convex(ProductMapping([1.0, 1.0], 2.0))
        assert not is_ray_convex(
            CallableMapping(lambda x: float(x @ x), 2))

    def test_transparent_wrapper_recurses_through_inner(self):
        from repro.core.solvers.bench import CallCountingMapping

        assert is_ray_convex(CallCountingMapping(LinearMapping([1.0])))
        assert not is_ray_convex(
            CallCountingMapping(ProductMapping([1.0], 2.0)))


class TestWarmBisectionIdentity:
    """Warm bisection == cold bisection, bitwise, across the matrix."""

    @pytest.mark.parametrize("kind", MAPPING_KINDS)
    def test_ascending_walk(self, kind):
        mapping, origin = _make_mapping(kind)
        _walk(mapping, origin, _upper_sweep(mapping, origin),
              method="bisection")

    @pytest.mark.parametrize("kind", ["linear", "max", "quadratic",
                                      "callable"])
    def test_descending_walk(self, kind):
        mapping, origin = _make_mapping(kind)
        _walk(mapping, origin, _upper_sweep(mapping, origin)[::-1],
              method="bisection")

    @pytest.mark.parametrize("norm", [1, 2, np.inf])
    def test_norms(self, norm):
        mapping, origin = _make_mapping("max")
        _walk(mapping, origin, _upper_sweep(mapping, origin),
              method="bisection", norm=norm)

    @pytest.mark.parametrize("kind", ["max", "quadratic"])
    def test_with_box(self, kind):
        mapping, origin = _make_mapping(kind)
        lower = np.asarray(origin, dtype=float) - 5.0
        upper = np.asarray(origin, dtype=float) + 5.0
        _walk(mapping, origin, _upper_sweep(mapping, origin),
              method="bisection", lower=lower, upper=upper)

    def test_lower_bound_side(self):
        mapping, origin = _make_mapping("quadratic")
        g0 = float(mapping.value(origin))
        bounds = [ToleranceBounds.lower(g0 - f * (abs(g0) + 1.0))
                  for f in (3.0, 2.0, 1.5, 1.2)]
        _walk(mapping, origin, bounds, method="bisection")

    def test_two_sided_bounds(self):
        mapping, origin = _make_mapping("max")
        g0 = float(mapping.value(origin))
        span = abs(g0) + 1.0
        bounds = [ToleranceBounds(g0 - f * span, g0 + f * span)
                  for f in (1.05, 1.3, 2.0)]
        _walk(mapping, origin, bounds, method="bisection")

    def test_seed_sweep(self):
        mapping, origin = _make_mapping("sum")
        for seed in (0, 1, 2005):
            _walk(mapping, origin, _upper_sweep(mapping, origin),
                  method="bisection", seed=seed)

    def test_dense_walk_reaches_warm_hits(self):
        mapping, origin = _make_mapping("max")
        g0 = float(mapping.value(origin))
        bounds = [ToleranceBounds.upper(g0 + f)
                  for f in np.linspace(1.0, 2.0, 30)]
        state = _walk(mapping, origin, bounds, method="bisection")
        assert state.warm_starts == 30
        # The dense interior of the walk must be served from the table.
        assert state.warm_hits > 0

    def test_scalar_path_ignores_warm(self):
        from repro.core.solvers.bisection import solve_bisection_radius

        mapping, origin = _make_mapping("max")
        g0 = float(mapping.value(origin))
        state = WarmStart()
        scalar = solve_bisection_radius(mapping, origin, g0 + 2.0,
                                        batch=False, seed=3, warm=state)
        batched = solve_bisection_radius(mapping, origin, g0 + 2.0,
                                        batch=True, seed=3)
        assert state.warm_starts == 0
        assert scalar.distance == batched.distance


class TestWarmNumericIdentity:
    """Warm numeric == cold numeric (table only feeds the pre-pass)."""

    @pytest.mark.parametrize("kind", ["quadratic", "sum", "callable",
                                      "product"])
    def test_ascending_walk(self, kind):
        mapping, origin = _make_mapping(kind)
        _walk(mapping, origin, _upper_sweep(mapping, origin),
              method="numeric")

    def test_with_box(self):
        mapping, origin = _make_mapping("quadratic")
        lower = np.asarray(origin, dtype=float) - 5.0
        upper = np.asarray(origin, dtype=float) + 5.0
        _walk(mapping, origin, _upper_sweep(mapping, origin),
              method="numeric", lower=lower, upper=upper)


class TestWarmStateMachinery:
    def test_geometry_mismatch_resets_table(self):
        table = RayTable()
        dirs = np.eye(2)
        table.bind(np.zeros(2), dirs, None, None, 10.0, 1e-3)
        table.append(0, 1e-3, 0.5)
        assert table.stats()["entries"] == 1
        # Same geometry: the ladder survives.
        table.bind(np.zeros(2), dirs, None, None, 10.0, 1e-3)
        assert table.stats()["entries"] == 1
        # Different origin: silently reset.
        table.bind(np.ones(2), dirs, None, None, 10.0, 1e-3)
        assert table.stats()["entries"] == 0

    def test_warm_counters_and_stats(self):
        mapping, origin = _make_mapping("max")
        state = _walk(mapping, origin, _upper_sweep(mapping, origin),
                      method="bisection")
        stats = state.stats()
        assert stats["warm_starts"] == 5
        assert 0 <= stats["warm_hits"] <= stats["warm_starts"]
        assert stats["tables"]["bisection"]["entries"] > 0

    def test_ray_convex_memoised_per_structure(self):
        state = WarmStart()
        a = np.eye(3)
        assert state.ray_convex(QuadraticMapping(a))
        # Same structure key: memo hit (no way to observe directly, but
        # the answer must stay stable and correct).
        assert state.ray_convex(QuadraticMapping(a))
        assert not state.ray_convex(ProductMapping([1.0, 1.0, 1.0], 2.0))

    def test_warm_and_cold_share_cache_entries(self):
        mapping, origin = _make_mapping("max")
        g0 = float(mapping.value(origin))
        problem = RadiusProblem(mapping, origin,
                                ToleranceBounds.upper(g0 + 2.0))
        cache = RadiusCache()
        cold = compute_radius(problem, method="bisection", seed=5,
                              cache=cache)
        assert cache.stats()["entries"] == 1
        warm = compute_radius(problem, method="bisection", seed=5,
                              cache=cache, warm=WarmStart())
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1
        _assert_same(cold, warm)

    def test_feasibility_boundary_curve(self):
        """Bounds crossing through the origin value: warm mirrors cold.

        An infeasible operating point raises identically with and without
        warm state (:func:`degradation_curve` checks feasibility before
        ever reaching the solver); feasible neighbours stay bit-identical.
        """
        from repro.exceptions import InfeasibleAllocationError

        mapping, origin = _make_mapping("linear")
        g0 = float(mapping.value(origin))
        state = WarmStart()
        for offset in (-1.0, 0.0, 1.0, 2.0):
            bounds = ToleranceBounds.upper(g0 + offset)
            problem = RadiusProblem(mapping, origin, bounds)
            try:
                cold = compute_radius(problem, method="bisection", seed=1,
                                      cache=False)
            except InfeasibleAllocationError:
                with pytest.raises(InfeasibleAllocationError):
                    compute_radius(problem, method="bisection", seed=1,
                                   cache=False, warm=state)
                continue
            warm = compute_radius(problem, method="bisection", seed=1,
                                  cache=False, warm=state)
            _assert_same(cold, warm)
