"""Tests for the radius dispatcher (compute_radius, Equations 1-2)."""

import math

import numpy as np
import pytest

from repro.core.features import ToleranceBounds
from repro.core.mappings import (
    CallableMapping,
    LinearMapping,
    QuadraticMapping,
    ReweightedMapping,
)
from repro.core.radius import RadiusProblem, compute_radius
from repro.exceptions import InfeasibleAllocationError, SpecificationError


def problem(mapping, origin, bounds, **kw):
    return RadiusProblem(mapping=mapping, origin=np.asarray(origin, float),
                         bounds=bounds, **kw)


class TestRadiusProblem:
    def test_origin_length_checked(self):
        with pytest.raises(SpecificationError, match="length"):
            problem(LinearMapping([1.0, 1.0]), [0.0], ToleranceBounds.upper(1.0))

    def test_bad_norm(self):
        with pytest.raises(SpecificationError, match="norm"):
            problem(LinearMapping([1.0]), [0.0], ToleranceBounds.upper(1.0),
                    norm=3)

    def test_bound_length_checked(self):
        with pytest.raises(SpecificationError):
            problem(LinearMapping([1.0, 1.0]), [0.0, 0.0],
                    ToleranceBounds.upper(1.0), lower=[0.0])

    def test_original_value(self):
        p = problem(LinearMapping([2.0]), [3.0], ToleranceBounds.upper(10.0))
        assert p.original_value == 6.0


class TestDispatch:
    def test_linear_routed_to_analytic(self):
        p = problem(LinearMapping([1.0, 1.0]), [0.0, 0.0],
                    ToleranceBounds.upper(2.0))
        res = compute_radius(p)
        assert res.method == "analytic"
        assert res.radius == pytest.approx(np.sqrt(2))

    def test_reweighted_linear_still_analytic(self):
        m = ReweightedMapping(LinearMapping([1.0, 1.0]), [2.0, 2.0])
        p = problem(m, [0.0, 0.0], ToleranceBounds.upper(2.0))
        res = compute_radius(p)
        assert res.method == "analytic"

    def test_diagonal_quadratic_routed_to_ellipsoid(self):
        p = problem(QuadraticMapping(np.eye(2)), [0.0, 0.0],
                    ToleranceBounds.upper(4.0))
        res = compute_radius(p, seed=0)
        assert res.method == "ellipsoid"
        assert res.radius == pytest.approx(2.0, rel=1e-12)

    def test_general_quadratic_routed_to_numeric(self):
        Q = np.array([[1.0, 0.3], [0.3, 2.0]])  # off-diagonal: not ellipsoid path
        p = problem(QuadraticMapping(Q), [0.0, 0.0],
                    ToleranceBounds.upper(4.0))
        res = compute_radius(p, seed=0)
        assert res.method == "numeric"

    def test_force_analytic_on_nonlinear_rejected(self):
        p = problem(QuadraticMapping(np.eye(2)), [0.0, 0.0],
                    ToleranceBounds.upper(4.0))
        with pytest.raises(SpecificationError, match="affine"):
            compute_radius(p, method="analytic")

    def test_force_bisection(self):
        p = problem(LinearMapping([1.0, 0.0]), [0.0, 0.0],
                    ToleranceBounds.upper(3.0))
        res = compute_radius(p, method="bisection", seed=0)
        assert res.method == "bisection"
        assert res.radius == pytest.approx(3.0, abs=1e-8)

    def test_force_numeric_on_linear(self):
        p = problem(LinearMapping([1.0, 1.0]), [0.0, 0.0],
                    ToleranceBounds.upper(2.0))
        res = compute_radius(p, method="numeric", seed=0)
        assert res.method == "numeric"
        assert res.radius == pytest.approx(np.sqrt(2), rel=1e-6)

    def test_nondefault_norm_nonlinear_uses_bisection(self):
        p = problem(QuadraticMapping(np.eye(2)), [0.0, 0.0],
                    ToleranceBounds.upper(4.0), norm=1)
        res = compute_radius(p, seed=0)
        assert res.method == "bisection"
        assert res.radius == pytest.approx(2.0, rel=0.05)


class TestSemantics:
    def test_infeasible_origin_raises(self):
        p = problem(LinearMapping([1.0]), [5.0], ToleranceBounds.upper(2.0))
        with pytest.raises(InfeasibleAllocationError):
            compute_radius(p)

    def test_origin_on_boundary_gives_zero(self):
        p = problem(LinearMapping([1.0]), [2.0], ToleranceBounds.upper(2.0))
        res = compute_radius(p)
        assert res.radius == 0.0
        assert res.method == "degenerate"
        np.testing.assert_array_equal(res.boundary_point, [2.0])

    def test_two_sided_takes_nearer_bound(self):
        # Interval [0, 10], origin f = 8: upper bound is closer.
        p = problem(LinearMapping([1.0]), [8.0], ToleranceBounds(0.0, 10.0))
        res = compute_radius(p)
        assert res.radius == pytest.approx(2.0)
        assert res.bound_hit == 10.0
        assert res.per_bound[0.0] == pytest.approx(8.0)
        assert res.per_bound[10.0] == pytest.approx(2.0)

    def test_unreachable_bound_gives_infinity(self):
        # f depends on nothing that can reach the bound: zero coefficients.
        p = problem(LinearMapping([0.0, 0.0], constant=1.0), [0.0, 0.0],
                    ToleranceBounds.upper(2.0))
        res = compute_radius(p)
        assert math.isinf(res.radius)
        assert res.boundary_point is None
        assert not res.is_finite

    def test_lower_bound_only(self):
        p = problem(LinearMapping([1.0]), [3.0], ToleranceBounds.lower(1.0))
        res = compute_radius(p)
        assert res.radius == pytest.approx(2.0)
        assert res.bound_hit == 1.0

    def test_box_constrained_linear_uses_exact_box_solver(self):
        # Unconstrained witness (1, 1) violates the box x <= 0.5, so the
        # dispatcher routes to the exact clamped-multiplier projection.
        p = problem(LinearMapping([1.0, 1.0]), [0.0, 0.0],
                    ToleranceBounds.upper(2.0),
                    upper=np.array([0.5, np.inf]))
        res = compute_radius(p, seed=0)
        assert res.method == "analytic-box"
        assert res.radius == pytest.approx(np.sqrt(0.25 + 2.25), rel=1e-12)

    def test_result_records_original_value(self):
        p = problem(LinearMapping([1.0]), [1.5], ToleranceBounds.upper(5.0))
        res = compute_radius(p)
        assert res.original_value == 1.5

    def test_callable_without_gradient(self):
        m = CallableMapping(lambda x: float(abs(x[0])) ** 1.5, 1)
        p = problem(m, [1.0], ToleranceBounds.upper(8.0))
        res = compute_radius(p, seed=0)
        assert res.radius == pytest.approx(3.0, rel=1e-3)  # 4^1.5 = 8
