"""Tests for repro.core.features (FePIA step 1)."""

import math

import pytest

from repro.core.features import PerformanceFeature, ToleranceBounds
from repro.exceptions import SpecificationError


class TestToleranceBounds:
    def test_two_sided(self):
        b = ToleranceBounds(1.0, 2.0)
        assert b.beta_min == 1.0 and b.beta_max == 2.0

    def test_upper_only(self):
        b = ToleranceBounds.upper(5.0)
        assert math.isinf(b.beta_min) and b.beta_max == 5.0

    def test_lower_only(self):
        b = ToleranceBounds.lower(0.5)
        assert b.beta_min == 0.5 and math.isinf(b.beta_max)

    def test_empty_interval_rejected(self):
        with pytest.raises(SpecificationError, match="empty"):
            ToleranceBounds(2.0, 2.0)

    def test_inverted_rejected(self):
        with pytest.raises(SpecificationError, match="empty"):
            ToleranceBounds(3.0, 1.0)

    def test_both_infinite_rejected(self):
        with pytest.raises(SpecificationError, match="finite"):
            ToleranceBounds()

    def test_nan_rejected(self):
        with pytest.raises(SpecificationError, match="NaN"):
            ToleranceBounds(float("nan"), 1.0)

    def test_relative_upper(self):
        b = ToleranceBounds.relative(10.0, 1.2)
        assert b.beta_max == pytest.approx(12.0)
        assert math.isinf(b.beta_min)

    def test_relative_two_sided(self):
        b = ToleranceBounds.relative(10.0, 1.2, two_sided=True)
        assert b.beta_min == pytest.approx(8.0)
        assert b.beta_max == pytest.approx(12.0)

    def test_relative_requires_beta_above_one(self):
        with pytest.raises(SpecificationError, match="beta > 1"):
            ToleranceBounds.relative(10.0, 1.0)

    def test_relative_requires_positive_original(self):
        with pytest.raises(SpecificationError, match="positive"):
            ToleranceBounds.relative(0.0, 1.5)

    def test_finite_bounds(self):
        assert ToleranceBounds(1.0, 2.0).finite_bounds == (1.0, 2.0)
        assert ToleranceBounds.upper(2.0).finite_bounds == (2.0,)
        assert ToleranceBounds.lower(1.0).finite_bounds == (1.0,)

    @pytest.mark.parametrize("value,expected", [
        (0.5, False), (1.0, True), (1.5, True), (2.0, True), (2.5, False)])
    def test_contains_closed(self, value, expected):
        assert ToleranceBounds(1.0, 2.0).contains(value) is expected

    def test_contains_strict_excludes_boundary(self):
        b = ToleranceBounds(1.0, 2.0)
        assert not b.contains(1.0, strict=True)
        assert not b.contains(2.0, strict=True)
        assert b.contains(1.5, strict=True)

    def test_violation_amount(self):
        b = ToleranceBounds(1.0, 2.0)
        assert b.violation_amount(1.5) == 0.0
        assert b.violation_amount(2.5) == pytest.approx(0.5)
        assert b.violation_amount(0.25) == pytest.approx(0.75)

    def test_frozen(self):
        b = ToleranceBounds.upper(1.0)
        with pytest.raises(AttributeError):
            b.beta_max = 2.0


class TestPerformanceFeature:
    def test_construction(self):
        f = PerformanceFeature("makespan", ToleranceBounds.upper(100.0),
                               unit="s")
        assert f.name == "makespan"
        assert f.unit == "s"

    def test_empty_name_rejected(self):
        with pytest.raises(SpecificationError, match="non-empty"):
            PerformanceFeature("", ToleranceBounds.upper(1.0))

    def test_wrong_bounds_type_rejected(self):
        with pytest.raises(SpecificationError, match="ToleranceBounds"):
            PerformanceFeature("f", (0.0, 1.0))

    def test_is_satisfied(self):
        f = PerformanceFeature("f", ToleranceBounds.upper(10.0))
        assert f.is_satisfied(9.9)
        assert f.is_satisfied(10.0)
        assert not f.is_satisfied(10.0, strict=True)
        assert not f.is_satisfied(10.1)

    def test_description_not_compared(self):
        a = PerformanceFeature("f", ToleranceBounds.upper(1.0),
                               description="one")
        b = PerformanceFeature("f", ToleranceBounds.upper(1.0),
                               description="two")
        assert a == b
