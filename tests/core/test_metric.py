"""Tests for the robustness metric and report."""

import math

import numpy as np
import pytest

from repro.core.features import PerformanceFeature, ToleranceBounds
from repro.core.fepia import FeatureSpec, RobustnessAnalysis
from repro.core.mappings import LinearMapping
from repro.core.metric import robustness_metric
from repro.core.perturbation import PerturbationParameter
from repro.core.weighting import IdentityWeighting


@pytest.fixture
def analysis():
    p = PerturbationParameter("x", [1.0, 1.0])
    near = FeatureSpec(PerformanceFeature("near", ToleranceBounds.upper(3.0)),
                       LinearMapping([1.0, 1.0]))
    far = FeatureSpec(PerformanceFeature("far", ToleranceBounds.upper(30.0)),
                      LinearMapping([1.0, 1.0]))
    return RobustnessAnalysis([near, far], [p],
                              weighting=IdentityWeighting())


class TestRobustnessMetric:
    def test_rho_is_min_radius(self, analysis):
        report = robustness_metric(analysis)
        assert report.rho == pytest.approx(1.0 / np.sqrt(2))

    def test_critical_flagging(self, analysis):
        report = robustness_metric(analysis)
        crit = {r.feature for r in report.rows if r.is_critical}
        assert crit == {"near"}
        assert report.critical_feature == "near"

    def test_rows_carry_bounds(self, analysis):
        report = robustness_metric(analysis)
        near = next(r for r in report.rows if r.feature == "near")
        assert near.beta_max == 3.0
        assert math.isinf(near.beta_min)
        assert near.original_value == pytest.approx(2.0)
        assert near.bound_hit == 3.0
        assert near.method == "analytic"

    def test_table_renders(self, analysis):
        table = robustness_metric(analysis).to_table()
        assert "near" in table and "far" in table
        assert "rho" in table
        assert "*" in table  # critical marker

    def test_str_is_table(self, analysis):
        report = robustness_metric(analysis)
        assert str(report) == report.to_table()

    def test_weighting_and_norm_recorded(self, analysis):
        report = robustness_metric(analysis)
        assert report.weighting == "identity"
        assert report.norm == 2

    def test_infinite_radius_feature(self):
        p = PerturbationParameter("x", [1.0])
        finite = FeatureSpec(
            PerformanceFeature("finite", ToleranceBounds.upper(3.0)),
            LinearMapping([1.0]))
        never = FeatureSpec(
            PerformanceFeature("never", ToleranceBounds.upper(3.0)),
            LinearMapping([0.0], constant=1.0))
        report = robustness_metric(RobustnessAnalysis(
            [finite, never], [p], weighting=IdentityWeighting()))
        row = next(r for r in report.rows if r.feature == "never")
        assert math.isinf(row.radius)
        assert not row.is_critical
        assert "-" in report.to_table()  # missing bound-hit rendered as dash

    def test_all_infinite_rho(self):
        p = PerturbationParameter("x", [1.0])
        never = FeatureSpec(
            PerformanceFeature("never", ToleranceBounds.upper(3.0)),
            LinearMapping([0.0], constant=1.0))
        report = robustness_metric(RobustnessAnalysis(
            [never], [p], weighting=IdentityWeighting()))
        assert math.isinf(report.rho)
        assert report.rows[0].is_critical
