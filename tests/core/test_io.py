"""Tests for JSON serialization (repro.io)."""

import math

import numpy as np
import pytest

from repro.core.features import PerformanceFeature, ToleranceBounds
from repro.core.fepia import FeatureSpec
from repro.core.mappings import (
    CallableMapping,
    LinearMapping,
    MaxMapping,
    ProductMapping,
    QuadraticMapping,
    RestrictedMapping,
    ReweightedMapping,
    SumMapping,
)
from repro.core.perturbation import PerturbationParameter
from repro.exceptions import SpecificationError
from repro.io import dump_json, from_dict, load_json, to_dict
from repro.systems.independent import Allocation


def roundtrip(obj):
    return from_dict(to_dict(obj))


class TestSimpleObjects:
    def test_tolerance_bounds(self):
        b = ToleranceBounds(1.0, 2.0)
        assert roundtrip(b) == b

    def test_tolerance_bounds_infinite(self):
        b = ToleranceBounds.upper(5.0)
        rt = roundtrip(b)
        assert math.isinf(rt.beta_min) and rt.beta_max == 5.0

    def test_performance_feature(self):
        f = PerformanceFeature("lat", ToleranceBounds.upper(2.0), unit="s",
                               description="d")
        rt = roundtrip(f)
        assert rt == f
        assert rt.description == "d"

    def test_perturbation_parameter(self):
        p = PerturbationParameter("x", [1.0, 2.0], unit="s",
                                  lower=[0.0, 0.0], upper=[9.0, 9.0])
        rt = roundtrip(p)
        assert rt.name == p.name
        np.testing.assert_array_equal(rt.original, p.original)
        np.testing.assert_array_equal(rt.lower, p.lower)
        np.testing.assert_array_equal(rt.upper, p.upper)

    def test_perturbation_parameter_no_bounds(self):
        p = PerturbationParameter("x", [1.0])
        rt = roundtrip(p)
        assert rt.lower is None and rt.upper is None


class TestMappings:
    @pytest.mark.parametrize("mapping", [
        LinearMapping([1.0, -2.0], 3.0),
        QuadraticMapping(np.array([[1.0, 0.5], [0.5, 2.0]]), [1.0, 0.0], 1.5),
        ProductMapping([1.0, -1.0], 2.0),
    ], ids=["linear", "quadratic", "product"])
    def test_structural_mappings_roundtrip(self, mapping, rng):
        rt = roundtrip(mapping)
        x = rng.uniform(0.5, 2.0, size=mapping.n_inputs)
        assert rt.value(x) == pytest.approx(mapping.value(x))

    def test_composite_mappings(self, rng):
        m = MaxMapping([LinearMapping([1.0, 0.0]),
                        SumMapping([LinearMapping([0.0, 1.0]),
                                    QuadraticMapping(np.eye(2))])])
        rt = roundtrip(m)
        x = rng.normal(size=2)
        assert rt.value(x) == pytest.approx(m.value(x))

    def test_adapters(self, rng):
        base = LinearMapping([1.0, 2.0, 3.0])
        m = ReweightedMapping(
            RestrictedMapping(base, [0, 2], np.array([1.0, 5.0, 2.0])),
            [2.0, 0.5])
        rt = roundtrip(m)
        y = rng.uniform(0.5, 2.0, size=2)
        assert rt.value(y) == pytest.approx(m.value(y))

    def test_callable_rejected(self):
        with pytest.raises(SpecificationError, match="portable"):
            to_dict(CallableMapping(lambda x: 0.0, 2))

    def test_feature_spec(self, rng):
        spec = FeatureSpec(
            PerformanceFeature("f", ToleranceBounds.upper(2.0)),
            LinearMapping([1.0, 1.0]))
        rt = roundtrip(spec)
        assert rt.feature == spec.feature
        x = rng.normal(size=2)
        assert rt.mapping.value(x) == pytest.approx(spec.mapping.value(x))


class TestSystems:
    def test_etc_matrix(self, small_etc):
        rt = roundtrip(small_etc)
        np.testing.assert_array_equal(rt.values, small_etc.values)

    def test_allocation(self):
        a = Allocation(np.array([0, 1, 0]), 2)
        rt = roundtrip(a)
        np.testing.assert_array_equal(rt.assignment, a.assignment)
        assert rt.n_machines == 2

    def test_hiperd_system(self, hiperd_system):
        rt = roundtrip(hiperd_system)
        assert rt.n_sensors == hiperd_system.n_sensors
        assert rt.n_applications == hiperd_system.n_applications
        assert rt.allocation == hiperd_system.allocation
        # behavioural equivalence: identical path latencies
        for path in hiperd_system.sensor_actuator_paths():
            assert rt.path_latency(path) == pytest.approx(
                hiperd_system.path_latency(path))


class TestWeightings:
    def test_simple_schemes_roundtrip(self):
        from repro.core.weighting import (IdentityWeighting,
                                          NormalizedWeighting,
                                          SensitivityWeighting)
        for scheme in (IdentityWeighting(), NormalizedWeighting(),
                       SensitivityWeighting()):
            rt = roundtrip(scheme)
            assert type(rt) is type(scheme)

    def test_custom_weighting_roundtrip(self):
        from repro.core.weighting import CustomWeighting
        scheme = CustomWeighting({"a": 2.0, "b": [1.0, 3.0]})
        rt = roundtrip(scheme)
        p1 = PerturbationParameter("a", [1.0])
        p2 = PerturbationParameter("b", [1.0, 1.0])
        np.testing.assert_allclose(
            rt.elementwise_alphas([p1, p2]),
            scheme.elementwise_alphas([p1, p2]))


class TestRobustnessAnalysis:
    def test_roundtrip_preserves_rho(self, two_kind_analysis):
        rt = roundtrip(two_kind_analysis)
        assert rt.rho() == pytest.approx(two_kind_analysis.rho(), rel=1e-12)
        assert rt.weighting.name == two_kind_analysis.weighting.name
        assert [p.name for p in rt.params] == \
            [p.name for p in two_kind_analysis.params]

    def test_roundtrip_with_options(self):
        from repro.core.weighting import IdentityWeighting
        p = PerturbationParameter("x", [1.0, 1.0])
        spec = FeatureSpec(
            PerformanceFeature("f", ToleranceBounds.upper(5.0)),
            LinearMapping([1.0, 1.0]))
        from repro.core.fepia import RobustnessAnalysis
        ana = RobustnessAnalysis([spec], [p],
                                 weighting=IdentityWeighting(),
                                 respect_physical_bounds=True,
                                 norm=np.inf)
        rt = roundtrip(ana)
        assert rt.respect_physical_bounds is True
        assert rt.norm == np.inf
        assert rt.rho() == pytest.approx(ana.rho())

    def test_json_file_roundtrip(self, tmp_path, two_kind_analysis):
        path = tmp_path / "analysis.json"
        dump_json(two_kind_analysis, path)
        loaded = load_json(path)
        assert loaded.rho() == pytest.approx(two_kind_analysis.rho())


class TestErrors:
    def test_unknown_type(self):
        with pytest.raises(SpecificationError, match="unknown"):
            from_dict({"type": "Bogus"})

    def test_missing_type(self):
        with pytest.raises(SpecificationError, match="type"):
            from_dict({"name": "x"})

    def test_unsupported_object(self):
        with pytest.raises(SpecificationError, match="unsupported"):
            to_dict(object())


class TestFiles:
    def test_json_file_roundtrip(self, tmp_path, hiperd_system):
        path = tmp_path / "system.json"
        dump_json(hiperd_system, path)
        loaded = load_json(path)
        assert loaded.allocation == hiperd_system.allocation

    def test_json_is_valid_json(self, tmp_path):
        import json
        path = tmp_path / "b.json"
        dump_json(ToleranceBounds.upper(1.0), path)
        data = json.loads(path.read_text())
        assert data["type"] == "ToleranceBounds"
        assert data["beta_min"] == "-inf"
