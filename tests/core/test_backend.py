"""The array-backend seam: proxy semantics, switching, and the
solver-kernel import ban (mirrored by the ruff TID251 rule)."""

import pathlib
import re
import types

import numpy as np
import pytest

import repro.core.backend as backend
from repro.core.backend import (
    active_backend,
    available_backends,
    backend_module,
    register_backend,
    set_backend,
    use_backend,
    xp,
)
from repro.exceptions import SpecificationError

SOLVERS_DIR = (pathlib.Path(__file__).resolve().parents[2]
               / "src" / "repro" / "core" / "solvers")


class TestProxy:
    def test_default_backend_is_numpy(self):
        assert active_backend() == "numpy"
        assert backend_module() is np

    def test_attributes_forward_to_numpy(self):
        assert xp.float64 is np.float64
        assert xp.inf == np.inf
        out = xp.asarray([1.0, 2.0]) + xp.ones(2)
        assert isinstance(out, np.ndarray)
        assert out.tolist() == [2.0, 3.0]

    def test_nested_attributes_forward(self):
        assert xp.linalg.norm(np.array([3.0, 4.0])) == 5.0
        assert isinstance(xp.random.default_rng(0), np.random.Generator)

    def test_missing_attribute_raises_attribute_error(self):
        with pytest.raises(AttributeError):
            xp.definitely_not_an_array_api_function


class TestSwitching:
    def test_unknown_backend_rejected(self):
        with pytest.raises(SpecificationError, match="unknown array backend"):
            set_backend("no-such-backend")
        assert active_backend() == "numpy"

    def test_lazy_registration_of_missing_dependency(self):
        register_backend("definitely-absent", "definitely_absent_module")
        assert "definitely-absent" in available_backends()
        with pytest.raises(SpecificationError, match="not importable"):
            set_backend("definitely-absent")
        assert active_backend() == "numpy"

    def test_use_backend_round_trip(self):
        stub = types.ModuleType("stub_backend")
        stub.asarray = lambda x: ("stub", x)
        register_backend("stub", stub)
        with use_backend("stub") as provider:
            assert provider is xp
            assert active_backend() == "stub"
            assert xp.asarray(3) == ("stub", 3)
        assert active_backend() == "numpy"
        assert isinstance(xp.asarray(3), np.ndarray)

    def test_use_backend_restores_on_error(self):
        stub = types.ModuleType("stub_backend2")
        register_backend("stub2", stub)
        with pytest.raises(RuntimeError):
            with use_backend("stub2"):
                raise RuntimeError("boom")
        assert active_backend() == "numpy"

    def test_register_backend_validates(self):
        with pytest.raises(SpecificationError):
            register_backend("", np)
        with pytest.raises(SpecificationError):
            register_backend("bad", 42)


class TestSolverImportBan:
    """Local mirror of the ruff banned-api gate: the solver kernels must
    reach NumPy only through the seam."""

    def test_no_direct_numpy_import_in_solver_kernels(self):
        pattern = re.compile(r"^\s*(import numpy\b|from numpy\b)",
                             re.MULTILINE)
        offenders = [path.name for path in sorted(SOLVERS_DIR.glob("*.py"))
                     if pattern.search(path.read_text())]
        assert offenders == [], \
            f"solver kernels import numpy directly: {offenders}; " \
            f"use `from repro.core.backend import xp`"

    def test_solver_kernels_import_the_seam(self):
        uses = [path.name for path in sorted(SOLVERS_DIR.glob("*.py"))
                if "from repro.core.backend import xp" in path.read_text()]
        assert "bisection.py" in uses
        assert "numeric.py" in uses
        assert "tensor.py" in uses
        assert "brent.py" in uses
