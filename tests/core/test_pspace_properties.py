"""Property-based tests of the P-space transport invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mappings import LinearMapping
from repro.core.perturbation import PerturbationParameter
from repro.core.pspace import ConcatenatedPerturbation
from repro.core.weighting import CustomWeighting, NormalizedWeighting

pos = st.floats(min_value=0.05, max_value=50.0, allow_nan=False)


def pspaces():
    def build(d1, d2, origs, alphas):
        params = [
            PerturbationParameter.nonnegative("a", origs[:d1], unit="s"),
            PerturbationParameter.nonnegative("b", origs[d1:d1 + d2],
                                              unit="bytes"),
        ]
        return ConcatenatedPerturbation(
            params, np.array(alphas[:d1 + d2]))

    return st.tuples(
        st.integers(1, 3), st.integers(1, 3),
        st.lists(pos, min_size=6, max_size=6),
        st.lists(pos, min_size=6, max_size=6),
    ).map(lambda t: build(*t))


class TestTransportInvariants:
    @given(ps=pspaces(), values=st.lists(pos, min_size=6, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_to_from_p_inverse(self, ps, values):
        pi = np.array(values[:ps.dimension])
        np.testing.assert_allclose(ps.from_p(ps.to_p(pi)), pi, rtol=1e-12)

    @given(ps=pspaces())
    @settings(max_examples=40, deadline=None)
    def test_p_orig_consistent(self, ps):
        np.testing.assert_allclose(ps.to_p(ps.pi_orig), ps.p_orig,
                                   rtol=1e-12)

    @given(ps=pspaces(), coeffs=st.lists(
        st.floats(min_value=-5, max_value=5, allow_nan=False),
        min_size=6, max_size=6),
        values=st.lists(pos, min_size=6, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_mapping_transport_preserves_values(self, ps, coeffs, values):
        mapping = LinearMapping(coeffs[:ps.dimension])
        g = ps.transform_mapping(mapping)
        pi = np.array(values[:ps.dimension])
        assert g.value(ps.to_p(pi)) == pytest.approx(mapping.value(pi),
                                                     rel=1e-10, abs=1e-10)

    @given(ps=pspaces())
    @settings(max_examples=40, deadline=None)
    def test_split_flatten_roundtrip(self, ps):
        parts = ps.split_values(ps.pi_orig)
        flat = ps.flatten_values(parts)
        np.testing.assert_allclose(flat, ps.pi_orig)

    @given(origs=st.lists(pos, min_size=2, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_normalized_p_orig_is_ones(self, origs):
        params = [PerturbationParameter("x", origs)]
        ps = ConcatenatedPerturbation.from_weighting(
            params, NormalizedWeighting())
        np.testing.assert_allclose(ps.p_orig, np.ones(len(origs)),
                                   rtol=1e-12)

    @given(origs=st.lists(pos, min_size=2, max_size=4),
           scale=pos)
    @settings(max_examples=40, deadline=None)
    def test_distance_scales_with_custom_alpha(self, origs, scale):
        """Scaling every alpha by c scales every P-distance by c."""
        params = [PerturbationParameter("x", origs)]
        base = CustomWeighting({"x": 1.0})
        scaled = CustomWeighting({"x": float(scale)})
        ps1 = ConcatenatedPerturbation.from_weighting(params, base)
        ps2 = ConcatenatedPerturbation.from_weighting(params, scaled)
        probe = {"x": [v * 1.7 for v in origs]}
        d1 = ps1.distance_from_orig(probe)
        d2 = ps2.distance_from_orig(probe)
        assert d2 == pytest.approx(scale * d1, rel=1e-9)
