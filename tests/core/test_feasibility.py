"""Tests for the operating-point feasibility procedure (Sec. 3.1 a-c)."""

import numpy as np
import pytest

from repro.core.feasibility import FeasibilityChecker, FeasibilityVerdict
from repro.core.features import PerformanceFeature, ToleranceBounds
from repro.core.fepia import FeatureSpec, RobustnessAnalysis
from repro.core.mappings import LinearMapping
from repro.core.perturbation import PerturbationParameter
from repro.core.weighting import NormalizedWeighting, SensitivityWeighting


@pytest.fixture
def checker():
    exec_p = PerturbationParameter.nonnegative("exec", [2.0, 4.0], unit="s")
    msg_p = PerturbationParameter.nonnegative("msg", [100.0], unit="bytes")
    spec = FeatureSpec(
        PerformanceFeature("latency", ToleranceBounds.upper(12.0)),
        LinearMapping([1.0, 1.0, 0.01]))
    ana = RobustnessAnalysis([spec], [exec_p, msg_p],
                             weighting=NormalizedWeighting())
    return FeasibilityChecker(ana)


class TestVerdicts:
    def test_original_point_is_safe(self, checker):
        v = checker.check({})
        assert v.within_radius
        assert v.actually_feasible
        assert v.distance == 0.0
        assert v.is_sound
        assert not v.is_conservative

    def test_small_move_safe(self, checker):
        v = checker.check({"exec": [2.1, 4.1]})
        assert v.within_radius and v.actually_feasible

    def test_large_move_flagged_and_infeasible(self, checker):
        v = checker.check({"exec": [10.0, 10.0]})
        assert not v.within_radius
        assert not v.actually_feasible
        assert v.is_sound

    def test_conservative_region_exists(self, checker):
        # Move far in a harmless direction (decreasing times): outside the
        # ball but still feasible -> the documented conservatism.
        v = checker.check({"exec": [0.1, 0.1], "msg": [1.0]})
        assert v.is_conservative
        assert v.is_sound

    def test_soundness_everywhere_inside_ball(self, checker, rng):
        # Random points with ||P - P_orig|| < rho must all be feasible.
        ana = checker.analysis
        ps = ana.pspace()
        rho = ana.rho()
        for _ in range(200):
            direction = rng.normal(size=ps.dimension)
            direction /= np.linalg.norm(direction)
            p = ps.p_orig + direction * rho * rng.random() * 0.999
            pi = ps.from_p(p)
            values = ps.split_values(pi)
            v = checker.check(values)
            assert v.is_sound
            if v.within_radius:
                assert v.actually_feasible

    def test_feature_values_reported(self, checker):
        v = checker.check({"msg": [200.0]})
        assert v.feature_values["latency"] == pytest.approx(8.0)


class TestSensitivityWeightingPath:
    def test_per_feature_distances(self):
        exec_p = PerturbationParameter.nonnegative("exec", [2.0], unit="s")
        msg_p = PerturbationParameter.nonnegative("msg", [100.0], unit="bytes")
        f1 = FeatureSpec(
            PerformanceFeature("exec_only", ToleranceBounds.upper(4.0)),
            LinearMapping([1.0, 0.0]))
        f2 = FeatureSpec(
            PerformanceFeature("msg_only", ToleranceBounds.upper(300.0)),
            LinearMapping([0.0, 1.0]))
        ana = RobustnessAnalysis([f1, f2], [exec_p, msg_p],
                                 weighting=SensitivityWeighting())
        checker = FeasibilityChecker(ana)
        v = checker.check({"exec": [2.5], "msg": [150.0]})
        assert v.is_sound
        assert v.within_radius
        assert v.actually_feasible

    def test_violating_point_detected(self):
        exec_p = PerturbationParameter.nonnegative("exec", [2.0], unit="s")
        f1 = FeatureSpec(
            PerformanceFeature("exec_only", ToleranceBounds.upper(4.0)),
            LinearMapping([1.0]))
        ana = RobustnessAnalysis([f1], [exec_p],
                                 weighting=SensitivityWeighting())
        v = FeasibilityChecker(ana).check({"exec": [5.0]})
        assert not v.actually_feasible
        assert not v.within_radius


class TestBatchAndSummary:
    def test_check_many(self, checker):
        verdicts = checker.check_many([{}, {"exec": [10.0, 10.0]}])
        assert len(verdicts) == 2
        assert verdicts[0].within_radius and not verdicts[1].within_radius

    def test_summary_table(self, checker):
        verdicts = checker.check_many(
            [{}, {"exec": [10.0, 10.0]}, {"exec": [0.1, 0.1]}])
        table = FeasibilityChecker.summary_table(verdicts)
        assert "inside ball" in table
        assert "outside ball" in table
        assert "WARNING" not in table

    def test_summary_flags_unsoundness(self):
        bad = FeasibilityVerdict(within_radius=True, distance=0.1, rho=1.0,
                                 actually_feasible=False, feature_values={})
        table = FeasibilityChecker.summary_table([bad])
        assert "WARNING" in table
