"""Tests for the exact box-constrained affine projection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mappings import LinearMapping
from repro.core.solvers.box_linear import solve_linear_box_radius
from repro.core.solvers.numeric import solve_numeric_radius
from repro.exceptions import BoundaryNotFoundError, SpecificationError

coef = st.floats(min_value=-5, max_value=5, allow_nan=False)


class TestUnconstrainedAgreement:
    def test_matches_hyperplane_projection_without_box(self):
        m = LinearMapping([1.0, 1.0])
        c = solve_linear_box_radius(m, np.zeros(2), 2.0)
        assert c.distance == pytest.approx(np.sqrt(2), abs=1e-12)
        np.testing.assert_allclose(c.point, [1.0, 1.0], atol=1e-10)

    def test_origin_already_on_plane(self):
        m = LinearMapping([1.0, 0.0])
        c = solve_linear_box_radius(m, np.array([3.0, 7.0]), 3.0)
        assert c.distance == 0.0


class TestActiveBox:
    def test_one_clamped_component(self):
        # project origin onto x + y = 2 with x <= 0.5: (0.5, 1.5)
        m = LinearMapping([1.0, 1.0])
        c = solve_linear_box_radius(m, np.zeros(2), 2.0,
                                    upper=np.array([0.5, np.inf]))
        np.testing.assert_allclose(c.point, [0.5, 1.5], atol=1e-10)
        assert c.distance == pytest.approx(np.sqrt(2.5), abs=1e-12)

    def test_lower_bound_active(self):
        # project (0,0) onto x + y = -2 with x >= -0.5: (-0.5, -1.5)
        m = LinearMapping([1.0, 1.0])
        c = solve_linear_box_radius(m, np.zeros(2), -2.0,
                                    lower=np.array([-0.5, -np.inf]))
        np.testing.assert_allclose(c.point, [-0.5, -1.5], atol=1e-10)

    def test_negative_coefficients(self):
        # f = -x, target level -3, x in [0, 2]: unreachable (min f = -2)
        m = LinearMapping([-1.0])
        with pytest.raises(BoundaryNotFoundError, match="unreachable"):
            solve_linear_box_radius(m, np.array([1.0]), -3.0,
                                    lower=np.array([0.0]),
                                    upper=np.array([2.0]))

    def test_exactly_reachable_corner(self):
        # level attainable only at the box corner
        m = LinearMapping([1.0, 1.0])
        c = solve_linear_box_radius(m, np.zeros(2), 4.0,
                                    upper=np.array([2.0, 2.0]))
        np.testing.assert_allclose(c.point, [2.0, 2.0], atol=1e-8)

    def test_witness_satisfies_constraints(self, rng):
        for _ in range(20):
            k = rng.normal(size=4)
            if np.all(np.abs(k) < 1e-6):
                continue
            m = LinearMapping(k, rng.normal())
            origin = rng.normal(size=4)
            lo = origin - rng.uniform(0.1, 2.0, size=4)
            hi = origin + rng.uniform(0.1, 2.0, size=4)
            reach_lo = m.constant + float(np.sum(np.where(k > 0, k * lo, k * hi)))
            reach_hi = m.constant + float(np.sum(np.where(k > 0, k * hi, k * lo)))
            bound = rng.uniform(reach_lo, reach_hi)
            c = solve_linear_box_radius(m, origin, bound, lower=lo, upper=hi)
            assert m.value(c.point) == pytest.approx(bound, abs=1e-8)
            assert np.all(c.point >= lo - 1e-10)
            assert np.all(c.point <= hi + 1e-10)

    @given(ks=st.lists(coef, min_size=3, max_size=3),
           gap=st.floats(min_value=-3, max_value=3, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_never_worse_than_slsqp(self, ks, gap):
        k = np.array(ks)
        if np.linalg.norm(k) < 1e-3:
            return
        m = LinearMapping(k)
        origin = np.zeros(3)
        lo = np.full(3, -1.0)
        hi = np.full(3, 1.0)
        bound = float(k @ np.clip(np.sign(k) * 0.4, lo, hi)) + gap * 0.1
        reach_lo = float(np.sum(np.where(k > 0, k * lo, k * hi)))
        reach_hi = float(np.sum(np.where(k > 0, k * hi, k * lo)))
        if not reach_lo <= bound <= reach_hi:
            return
        exact = solve_linear_box_radius(m, origin, bound, lower=lo, upper=hi)
        numeric = solve_numeric_radius(m, origin, bound, lower=lo, upper=hi,
                                       seed=0)
        assert exact.distance <= numeric.distance + 1e-6 * (
            1 + numeric.distance)


class TestValidation:
    def test_zero_gradient(self):
        with pytest.raises(BoundaryNotFoundError):
            solve_linear_box_radius(LinearMapping([0.0]), np.zeros(1), 1.0)

    def test_shape_mismatch(self):
        with pytest.raises(SpecificationError):
            solve_linear_box_radius(LinearMapping([1.0]), np.zeros(2), 1.0)

    def test_crossed_box(self):
        with pytest.raises(SpecificationError):
            solve_linear_box_radius(LinearMapping([1.0]), np.zeros(1), 1.0,
                                    lower=np.array([1.0]),
                                    upper=np.array([0.0]))

    def test_non_linear_rejected(self):
        from repro.core.mappings import QuadraticMapping
        with pytest.raises(SpecificationError):
            solve_linear_box_radius(QuadraticMapping(np.eye(2)),
                                    np.zeros(2), 1.0)
