"""Shared fixtures for the scenario-lab tests.

Everything here is small on purpose: the lab's contracts (determinism,
bracketing, ablation agreement) do not depend on instance size, and the
suite replays hundreds of steps per test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.scenarios.replay import ReplayContext
from repro.systems.heuristics import MCT
from repro.systems.independent import generate_etc_gamma
from repro.systems.independent.makespan import MakespanSystem

SEED = 2005
BETA = 1.2


@pytest.fixture(scope="module")
def lab_system() -> MakespanSystem:
    """A small MCT-allocated makespan instance."""
    etc = generate_etc_gamma(12, 4, seed=SEED)
    return MakespanSystem(etc, MCT().allocate(etc))


@pytest.fixture(scope="module")
def lab_analysis(lab_system):
    """The identity-weighted FePIA analysis of the instance."""
    return lab_system.robustness_analysis(beta=BETA, seed=SEED)


@pytest.fixture(scope="module")
def lab_ctx(lab_analysis) -> ReplayContext:
    """The picklable replay slice of the analysis."""
    return ReplayContext.from_analysis(lab_analysis)


@pytest.fixture(scope="module")
def lab_rho(lab_system) -> float:
    """The analytic robustness metric (min over machines)."""
    return float(np.min(lab_system.analytic_radii(BETA)))
