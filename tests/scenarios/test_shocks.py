"""Shock catalogue: seeded purity, kinds, and the --shock grammar."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.perturbation import PerturbationParameter
from repro.exceptions import SpecGrammarError, SpecificationError
from repro.scenarios.shocks import SHOCK_KINDS, ShockScenario, parse_shock_spec

PARAMS = [
    PerturbationParameter.nonnegative("exec_times", [2.0, 3.0, 4.0]),
    PerturbationParameter.nonnegative("loads", [10.0, 20.0]),
]


def _scenario(kind: str, **kwargs) -> ShockScenario:
    defaults = dict(name=f"test-{kind}", kind=kind, magnitude=1.0,
                    n_steps=8)
    defaults.update(kwargs)
    return ShockScenario(**defaults)


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecificationError, match="unknown shock kind"):
            _scenario("tsunami")

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("inf"), float("nan")])
    def test_bad_magnitude_rejected(self, bad):
        with pytest.raises(SpecificationError, match="magnitude"):
            _scenario("spike", magnitude=bad)

    def test_bad_rate_and_jitter_rejected(self):
        with pytest.raises(SpecificationError, match="rate"):
            _scenario("spike", rate=1.5)
        with pytest.raises(SpecificationError, match="jitter"):
            _scenario("drift", jitter=1.0)

    def test_unknown_param_name_rejected(self):
        sc = _scenario("spike", params=("nonesuch",))
        with pytest.raises(SpecificationError, match="nonesuch"):
            sc.displacements(0, 0, 0, PARAMS)

    def test_step_out_of_range_rejected(self):
        sc = _scenario("spike")
        with pytest.raises(SpecificationError, match="step"):
            sc.displacements(0, 0, sc.n_steps, PARAMS)


def _stochastic(kind: str) -> ShockScenario:
    """A scenario of the kind with its randomness switched on (a
    jitter-free drift is deliberately deterministic)."""
    return _scenario(kind, jitter=0.5 if kind == "drift" else 0.0)


@pytest.mark.parametrize("kind", SHOCK_KINDS)
class TestPurity:
    """Draws are pure functions of (seed, scenario, trajectory, step)."""

    def test_same_cell_same_bits(self, kind):
        sc = _stochastic(kind)
        a = sc.displacements(7, 1, 3, PARAMS)
        b = sc.displacements(7, 1, 3, PARAMS)
        assert sorted(a) == sorted(b)
        for name in a:
            np.testing.assert_array_equal(a[name], b[name])

    def test_cells_and_seeds_are_independent(self, kind):
        sc = _stochastic(kind)
        base = sc.displacements(7, 1, 3, PARAMS)
        for other in (sc.displacements(8, 1, 3, PARAMS),
                      sc.displacements(7, 2, 3, PARAMS)):
            assert any(not np.array_equal(base[n], other[n]) for n in base)

    def test_names_decorrelate_scenarios(self, kind):
        jitter = 0.5 if kind == "drift" else 0.0
        a = _scenario(kind, name="alpha", jitter=jitter)
        b = _scenario(kind, name="beta", jitter=jitter)
        da = a.displacements(7, 0, 0, PARAMS)
        db = b.displacements(7, 0, 0, PARAMS)
        # Spikes may both not fire (all zeros) at step 0; probe a few
        # steps so at least one cell draws noise.
        if all(np.array_equal(da[n], db[n]) for n in da):
            da = a.displacements(7, 0, 1, PARAMS)
            db = b.displacements(7, 0, 1, PARAMS)
        assert any(not np.array_equal(da[n], db[n]) for n in da)


class TestKinds:
    def test_spike_silent_steps_are_zero(self):
        sc = _scenario("spike", rate=0.0)
        disp = sc.displacements(0, 0, 0, PARAMS)
        for name, block in disp.items():
            np.testing.assert_array_equal(block, 0.0)

    def test_drift_ramp_reaches_magnitude(self):
        sc = _scenario("drift", magnitude=2.0, n_steps=10)
        final = sc.displacements(0, 0, 9, PARAMS)
        flat = np.concatenate([final[p.name] for p in PARAMS])
        assert np.linalg.norm(flat) == pytest.approx(2.0)

    def test_drift_explicit_direction_is_used_verbatim(self):
        sc = _scenario("drift", magnitude=1.0, n_steps=4,
                       params=("exec_times",),
                       directions={"exec_times": (1.0, 0.0, 0.0)})
        disp = sc.displacements(0, 0, 3, PARAMS)
        np.testing.assert_allclose(disp["exec_times"], [1.0, 0.0, 0.0])
        assert "loads" not in disp

    def test_drift_direction_length_mismatch_rejected(self):
        sc = _scenario("drift", params=("exec_times",),
                       directions={"exec_times": (1.0,)})
        with pytest.raises(SpecificationError, match="length"):
            sc.displacements(0, 0, 0, PARAMS)

    def test_correlated_comoves_all_params(self):
        sc = _scenario("correlated", magnitude=1.0)
        disp = sc.displacements(0, 0, 0, PARAMS)
        assert set(disp) == {"exec_times", "loads"}
        # Same trajectory, different steps: loadings are static, only
        # the scalar factor changes -> blocks are parallel across steps.
        later = sc.displacements(0, 0, 5, PARAMS)
        a = np.concatenate([disp[p.name] for p in PARAMS])
        b = np.concatenate([later[p.name] for p in PARAMS])
        cos = abs(a @ b) / (np.linalg.norm(a) * np.linalg.norm(b))
        assert cos == pytest.approx(1.0)


class TestSpecGrammar:
    def test_round_trip(self):
        sc = parse_shock_spec(
            "kind=spike,magnitude=0.5,steps=12,rate=0.4,name=surge")
        assert sc == ShockScenario(name="surge", kind="spike",
                                   magnitude=0.5, n_steps=12, rate=0.4)

    def test_mag_alias_and_params(self):
        sc = parse_shock_spec("kind=drift,mag=1.5,params=exec_times:loads")
        assert sc.magnitude == 1.5
        assert sc.params == ("exec_times", "loads")
        assert sc.name == "custom-drift"

    def test_unknown_key_names_token_and_grammar(self):
        with pytest.raises(SpecGrammarError) as err:
            parse_shock_spec("kind=spike,magnitude=1,frobnicate=3")
        assert err.value.token == "frobnicate=3"
        assert "magnitude" in err.value.grammar

    def test_missing_required_keys_is_grammar_error(self):
        with pytest.raises(SpecGrammarError, match="magnitude"):
            parse_shock_spec("kind=spike")

    def test_semantically_bad_value_is_grammar_error(self):
        err = pytest.raises(SpecGrammarError,
                            parse_shock_spec, "kind=vortex,magnitude=1")
        assert isinstance(err.value, ValueError)
        assert "vortex" in str(err.value)

    def test_invalid_kind_lists_valid_kinds_and_token(self):
        # Regression: the message must name every accepted kind and the
        # offending token, so a CLI typo reads as a usage line.
        with pytest.raises(SpecGrammarError) as err:
            parse_shock_spec("kind=frobnicate,magnitude=1")
        msg = str(err.value)
        for kind in ("spike", "drift", "correlated"):
            assert kind in msg
        assert err.value.token == "kind=frobnicate"
        assert "kind=frobnicate" in msg

    def test_unknown_key_message_lists_described_keys(self):
        with pytest.raises(SpecGrammarError) as err:
            parse_shock_spec("kind=spike,magnitude=1,wibble=2")
        msg = str(err.value)
        assert "unknown key 'wibble'" in msg
        assert "magnitude (alias mag)" in msg
        assert "kind=spike|drift|correlated" in msg

    def test_invalid_value_message_includes_hint(self):
        with pytest.raises(SpecGrammarError) as err:
            parse_shock_spec("kind=spike,magnitude=big")
        assert "a shock scale in pi-space units" in str(err.value)
        assert err.value.token == "magnitude=big"
