"""Perturbation-kind ablation and its analytic cross-check."""

from __future__ import annotations

import math

import pytest

from repro.scenarios.ablation import run_ablation
from repro.scenarios.replay import replay_scenario
from repro.systems.independent.scenarios import critical_drift_scenario
from tests.scenarios.conftest import BETA, SEED


@pytest.fixture(scope="module")
def ablation(lab_ctx, lab_system, lab_analysis, lab_rho):
    scenario = critical_drift_scenario(lab_system, BETA, n_steps=20)
    full = replay_scenario(lab_ctx, scenario, seed=SEED,
                           n_trajectories=3, rho=lab_rho)
    per_param = {p.name: math.inf for p in lab_analysis.params}
    for spec in lab_analysis.features:
        radii = lab_analysis.per_parameter_radii(spec)
        for name, r in radii.items():
            per_param[name] = min(per_param[name], r)
    return run_ablation(lab_ctx, scenario, seed=SEED, n_trajectories=3,
                        rho=lab_rho, full=full,
                        per_parameter_radii=per_param)


def test_freezing_the_only_kind_removes_all_violations(ablation):
    (entry,) = [e for e in ablation["entries"]
                if e["param"] == "exec_times"]
    assert entry["frozen_violation_rate"] == 0.0
    assert entry["delta_violation_rate"] == \
        pytest.approx(ablation["full_violation_rate"])
    assert ablation["full_violation_rate"] > 0


def test_dominant_param_agrees_with_eq1_radii(ablation):
    """The stochastically dominant kind is also the analytically most
    fragile one (smallest min-over-features Eq. 1 radius)."""
    assert ablation["dominant_param"] == "exec_times"
    assert ablation["radius_ranking"][0] == "exec_times"
    assert ablation["rank_agreement"] is True


def test_rankings_cover_every_parameter(ablation, lab_analysis):
    names = sorted(p.name for p in lab_analysis.params)
    assert sorted(ablation["dominance_ranking"]) == names
    assert sorted(e["param"] for e in ablation["entries"]) == names


def test_payload_is_json_safe(ablation):
    import json

    encoded = json.dumps(ablation)
    assert json.loads(encoded) == ablation
