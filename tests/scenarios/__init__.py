"""Tests for the scenario lab (repro.scenarios)."""
