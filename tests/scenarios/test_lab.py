"""The lab orchestrator: payload shape, gates, and the acceptance
criteria (deterministic artifacts; bootstrap CI brackets the analytic
FePIA prediction on the shipped critical-drift scenario)."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import SpecificationError
from repro.parallel.bench import LAB_SCHEMA, validate_bench_payload
from repro.resilience.chaos import bit_identical
from repro.scenarios import RobustnessGates, run_lab
from repro.systems.independent.scenarios import makespan_scenario_catalogue
from tests.scenarios.conftest import BETA, SEED


@pytest.fixture(scope="module")
def catalogue(lab_system):
    return makespan_scenario_catalogue(lab_system, BETA, n_steps=20)


@pytest.fixture(scope="module")
def payload(lab_system, catalogue):
    analysis = lab_system.robustness_analysis(beta=BETA, seed=SEED)
    return run_lab(analysis, catalogue, seed=SEED, n_trajectories=4,
                   n_boot=100, block=5, system="makespan")


def test_payload_validates_and_serializes(payload):
    assert payload["schema"] == LAB_SCHEMA
    validate_bench_payload(payload)
    assert json.loads(json.dumps(payload)) == payload


def test_rho_matches_analytic_radius(payload, lab_rho):
    assert payload["rho"] == pytest.approx(lab_rho)
    assert min(payload["radii"].values()) == pytest.approx(lab_rho)
    assert payload["per_parameter_radii"]["exec_times"] > 0


def test_acceptance_ci_brackets_analytic_prediction(payload):
    """Acceptance: on critical-drift, the block-bootstrap CI of the
    empirical violation rate brackets the radius-based prediction."""
    by_name = {e["scenario"]["name"]: e for e in payload["scenarios"]}
    entry = by_name["critical-drift"]
    assert 0.0 < entry["violation_rate"] < 1.0
    assert entry["ci_brackets_prediction"] is True
    ci = entry["bootstrap"]
    assert ci["lo"] <= entry["predicted_violation_rate"] <= ci["hi"]


def test_acceptance_rerun_is_bit_identical(lab_system, catalogue, payload):
    """Acceptance: same seed, fresh analysis -> byte-identical artifact."""
    analysis = lab_system.robustness_analysis(beta=BETA, seed=SEED)
    again = run_lab(analysis, catalogue, seed=SEED, n_trajectories=4,
                    n_boot=100, block=5, system="makespan")
    assert bit_identical(payload, again)
    assert json.dumps(payload, sort_keys=True) == \
        json.dumps(again, sort_keys=True)


def test_ablation_targets_first_violating_scenario(payload):
    assert payload["ablation"]["scenario"] == "critical-drift"
    assert payload["ablation"]["rank_agreement"] is True


def test_gates_fold_into_verdict(lab_system, catalogue):
    analysis = lab_system.robustness_analysis(beta=BETA, seed=SEED)
    gates = RobustnessGates({"violation_rate": ("<=", 0.0)})
    strict = run_lab(analysis, catalogue, seed=SEED, n_trajectories=2,
                     n_boot=20, block=5, gates=gates, system="makespan")
    assert strict["gates_passed"] is False
    checks = [e["gates"] for e in strict["scenarios"]]
    assert all(g is not None for g in checks)
    assert any(not g["passed"] for g in checks)
    validate_bench_payload(strict)


def test_duplicate_and_unknown_names_rejected(lab_system, catalogue):
    analysis = lab_system.robustness_analysis(beta=BETA, seed=SEED)
    with pytest.raises(SpecificationError, match="duplicate"):
        run_lab(analysis, [catalogue[0], catalogue[0]], seed=SEED,
                n_trajectories=1, n_boot=10)
    with pytest.raises(SpecificationError, match="nonesuch"):
        run_lab(analysis, catalogue, seed=SEED, n_trajectories=1,
                n_boot=10, ablate="nonesuch")
    with pytest.raises(SpecificationError, match="at least one"):
        run_lab(analysis, [], seed=SEED)


def test_artifact_has_no_environment_leakage(payload):
    """The determinism contract: nothing timing- or worker-shaped."""
    text = json.dumps(payload)
    for forbidden in ("workers", "seconds", "steps_per_sec"):
        assert forbidden not in text
