"""Block bootstrap and robustness gates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SpecificationError
from repro.scenarios.bootstrap import (
    GateResult,
    RobustnessGates,
    block_bootstrap_violation_rate,
    parse_gate,
)


class TestBootstrap:
    def test_mean_is_observed_pooled_rate(self):
        series = [np.array([0, 0, 1, 1], dtype=bool),
                  np.array([0, 1, 1, 1], dtype=bool)]
        ci = block_bootstrap_violation_rate(series, n_boot=50, block=2,
                                            seed=0)
        assert ci["mean"] == pytest.approx(5 / 8)
        assert 0.0 <= ci["lo"] <= ci["mean"] <= ci["hi"] <= 1.0

    def test_seeded_and_deterministic(self):
        rng = np.random.default_rng(3)
        series = [rng.random(30) < 0.4 for _ in range(5)]
        a = block_bootstrap_violation_rate(series, n_boot=100, block=7,
                                           seed=11)
        b = block_bootstrap_violation_rate(series, n_boot=100, block=7,
                                           seed=11)
        assert a == b
        c = block_bootstrap_violation_rate(series, n_boot=100, block=7,
                                           seed=12)
        assert c != a

    def test_degenerate_series_gives_degenerate_ci(self):
        series = [np.zeros(20, dtype=bool)] * 3
        ci = block_bootstrap_violation_rate(series, n_boot=50, seed=0)
        assert ci == {**ci, "mean": 0.0, "lo": 0.0, "hi": 0.0}

    def test_mixed_series_gives_informative_ci(self):
        """Autocorrelated half-violating series: CI straddles the mean
        with nonzero width (the block resampling moves mass around)."""
        series = [np.arange(40) >= 20 for _ in range(4)]
        ci = block_bootstrap_violation_rate(series, n_boot=200, block=8,
                                            seed=5)
        assert ci["lo"] < ci["mean"] < ci["hi"]

    def test_block_clamped_to_series_length(self):
        series = [np.array([1, 0, 1], dtype=bool)]
        ci = block_bootstrap_violation_rate(series, n_boot=20, block=99,
                                            seed=0)
        assert ci["block"] == 3

    @pytest.mark.parametrize("kwargs", [
        {"n_boot": 0}, {"block": 0}, {"level": 0.0}, {"level": 1.0},
    ])
    def test_bad_knobs_rejected(self, kwargs):
        series = [np.array([0, 1], dtype=bool)]
        with pytest.raises(SpecificationError):
            block_bootstrap_violation_rate(series, **kwargs)

    def test_empty_and_ragged_series_rejected(self):
        with pytest.raises(SpecificationError):
            block_bootstrap_violation_rate([])
        with pytest.raises(SpecificationError):
            block_bootstrap_violation_rate(
                [np.array([True]), np.array([True, False])])


class TestParseGate:
    def test_all_operators(self):
        assert parse_gate("violation_rate<=0.6") == \
            ("violation_rate", ("<=", 0.6))
        assert parse_gate("ci_lo>=0.1") == ("ci_lo", (">=", 0.1))
        assert parse_gate("worst_drawdown<1.5") == \
            ("worst_drawdown", ("<", 1.5))
        assert parse_gate("rate> 0") == ("rate", (">", 0.0))

    @pytest.mark.parametrize("bad", ["", "rate", "rate<=x", "<=0.5"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(SpecificationError):
            parse_gate(bad)


class TestGates:
    def test_conjunction_verdict(self):
        gates = RobustnessGates({"violation_rate": ("<=", 0.5),
                                 "worst_drawdown": ("<", 2.0)})
        ok = gates.evaluate({"violation_rate": 0.4, "worst_drawdown": 1.0})
        assert isinstance(ok, GateResult) and ok.passed
        bad = gates.evaluate({"violation_rate": 0.6, "worst_drawdown": 1.0})
        assert not bad.passed
        verdicts = {c.metric: c.passed for c in bad.checks}
        assert verdicts == {"violation_rate": False, "worst_drawdown": True}

    def test_to_dict_is_json_safe(self):
        gates = RobustnessGates({"violation_rate": ("<=", 0.5)})
        payload = gates.evaluate({"violation_rate": 0.25}).to_dict()
        assert payload["passed"] is True
        (check,) = payload["checks"]
        assert check == {"metric": "violation_rate", "op": "<=",
                         "threshold": 0.5, "value": 0.25, "passed": True}

    def test_missing_metric_rejected(self):
        gates = RobustnessGates({"nonesuch": ("<=", 1.0)})
        with pytest.raises(SpecificationError, match="nonesuch"):
            gates.evaluate({"violation_rate": 0.1})

    def test_bad_thresholds_rejected(self):
        with pytest.raises(SpecificationError):
            RobustnessGates({})
        with pytest.raises(SpecificationError, match="operator"):
            RobustnessGates({"rate": ("==", 1.0)})
        with pytest.raises(SpecificationError, match="pair"):
            RobustnessGates({"rate": 1.0})
