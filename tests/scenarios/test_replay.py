"""Replay engine: recorded series, drawdown, fan-out, and freezing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SpecificationError
from repro.resilience.chaos import bit_identical
from repro.resilience.supervisor import SupervisedExecutor, SupervisorConfig
from repro.scenarios.replay import ReplayContext, replay_scenario
from repro.scenarios.shocks import ShockScenario
from repro.systems.independent.scenarios import critical_drift_scenario
from tests.scenarios.conftest import BETA, SEED


def test_context_rejects_sensitivity_weighting(lab_system):
    from repro.core.weighting import SensitivityWeighting

    analysis = lab_system.robustness_analysis(
        beta=BETA, seed=SEED, weighting=SensitivityWeighting())
    with pytest.raises(SpecificationError, match="shared P-space"):
        ReplayContext.from_analysis(analysis)


def test_replay_records_full_series(lab_ctx, lab_system, lab_rho):
    scenario = critical_drift_scenario(lab_system, BETA, n_steps=20)
    result = replay_scenario(lab_ctx, scenario, seed=SEED,
                             n_trajectories=3, rho=lab_rho)
    assert len(result.trajectories) == 3
    for t in result.trajectories:
        assert t.scenario == scenario.name
        assert t.n_steps == scenario.n_steps
        assert len(t.distances) == scenario.n_steps
        assert set(t.max_drawdown) == {
            f"finish_time_m{j}" for j in range(lab_system.n_machines)}


def test_critical_drift_violates_exactly_beyond_rho(lab_ctx, lab_system,
                                                    lab_rho):
    """Along the critical direction: violation <=> distance > rho."""
    scenario = critical_drift_scenario(lab_system, BETA, n_steps=20)
    result = replay_scenario(lab_ctx, scenario, seed=SEED,
                             n_trajectories=4, rho=lab_rho)
    for t in result.trajectories:
        for violated, distance in zip(t.violations, t.distances):
            assert violated == (distance > lab_rho), (violated, distance)
    assert 0.0 < result.violation_rate < 1.0
    assert result.violation_rate == result.predicted_violation_rate


def test_drawdown_reaches_one_at_first_violation(lab_ctx, lab_system,
                                                 lab_rho):
    scenario = critical_drift_scenario(lab_system, BETA, n_steps=20)
    result = replay_scenario(lab_ctx, scenario, seed=SEED,
                             n_trajectories=2, rho=lab_rho)
    for t in result.trajectories:
        assert t.first_violation_step is not None
        assert max(t.max_drawdown.values()) > 1.0
    assert result.mean_first_violation_step is not None
    assert max(result.worst_drawdown.values()) > 1.0


def test_frozen_param_suppresses_all_violations(lab_ctx, lab_system,
                                                lab_rho):
    """Freezing the only shocked kind projects the shock to zero."""
    scenario = critical_drift_scenario(lab_system, BETA, n_steps=20)
    frozen = replay_scenario(lab_ctx, scenario, seed=SEED,
                             n_trajectories=2, rho=lab_rho,
                             frozen="exec_times")
    assert frozen.violation_rate == 0.0
    assert all(d == 0.0 for t in frozen.trajectories for d in t.distances)


def test_supervised_fanout_is_bit_identical(lab_ctx, lab_system, lab_rho):
    scenario = critical_drift_scenario(lab_system, BETA, n_steps=20)
    serial = replay_scenario(lab_ctx, scenario, seed=SEED,
                             n_trajectories=4, rho=lab_rho)
    with SupervisedExecutor(2, config=SupervisorConfig(), seed=SEED) as ex:
        fanned = replay_scenario(lab_ctx, scenario, seed=SEED,
                                 n_trajectories=4, rho=lab_rho,
                                 executor=ex)
    assert bit_identical(serial.trajectories, fanned.trajectories)


def test_spike_on_clipped_params_stays_in_bounds(lab_ctx, lab_rho):
    """Nonnegative parameters are clipped, so huge downward spikes
    cannot push execution times below zero."""
    scenario = ShockScenario(name="wild", kind="spike", magnitude=1e6,
                             n_steps=10, rate=1.0)
    result = replay_scenario(lab_ctx, scenario, seed=SEED,
                             n_trajectories=1, rho=lab_rho)
    assert all(np.isfinite(d) for t in result.trajectories
               for d in t.distances)


def test_bad_trajectory_count_rejected(lab_ctx, lab_system, lab_rho):
    scenario = critical_drift_scenario(lab_system, BETA)
    with pytest.raises(SpecificationError, match="n_trajectories"):
        replay_scenario(lab_ctx, scenario, seed=SEED, n_trajectories=0,
                        rho=lab_rho)
