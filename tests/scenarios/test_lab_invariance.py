"""Acceptance: lab artifacts are bit-identical across execution modes.

For a fixed seed the ``repro-lab-v1`` payload must not depend on *how*
the lab ran: workers in {1, 4}, tracing on or off — the same contract
``tests/resilience/test_chaos_invariance.py`` pins for the supervised
executor, lifted to the whole scenario-lab pipeline (replay, bootstrap,
ablation, gates)."""

from __future__ import annotations

import json

import pytest

from repro.observability import observing
from repro.parallel.bench import validate_bench_payload
from repro.resilience.chaos import bit_identical
from repro.resilience.supervisor import SupervisedExecutor, SupervisorConfig
from repro.scenarios import run_lab
from repro.systems.independent.scenarios import makespan_scenario_catalogue
from tests.scenarios.conftest import BETA, SEED

N_TRAJECTORIES = 4
N_BOOT = 60


def _run(lab_system, *, workers: int, traced: bool) -> dict:
    """One full lab run in the requested execution mode."""
    analysis = lab_system.robustness_analysis(beta=BETA, seed=SEED)
    catalogue = makespan_scenario_catalogue(lab_system, BETA, n_steps=14)

    def go(executor=None):
        return run_lab(analysis, catalogue, seed=SEED,
                       n_trajectories=N_TRAJECTORIES, n_boot=N_BOOT,
                       block=5, executor=executor, system="makespan")

    if workers == 1:
        if traced:
            with observing():
                return go()
        return go()
    with SupervisedExecutor(workers, config=SupervisorConfig(),
                            seed=SEED) as ex:
        if traced:
            with observing():
                return go(ex)
        return go(ex)


@pytest.fixture(scope="module")
def baseline(lab_system) -> dict:
    """The serial, untraced run every mode must reproduce."""
    return _run(lab_system, workers=1, traced=False)


@pytest.mark.parametrize("traced", [False, True], ids=["untraced", "traced"])
@pytest.mark.parametrize("workers", [1, 4])
def test_artifact_is_bit_identical(lab_system, baseline, workers, traced):
    payload = _run(lab_system, workers=workers, traced=traced)
    validate_bench_payload(payload)
    assert bit_identical(payload, baseline)
    assert json.dumps(payload, sort_keys=True) == \
        json.dumps(baseline, sort_keys=True)
