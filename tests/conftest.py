"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.features import PerformanceFeature, ToleranceBounds
from repro.core.fepia import FeatureSpec, RobustnessAnalysis
from repro.core.mappings import LinearMapping
from repro.core.perturbation import PerturbationParameter
from repro.systems.hiperd import (
    HiPerDGenerationSpec,
    QoSSpec,
    generate_hiperd_system,
)
from repro.systems.independent import Allocation, MakespanSystem, generate_etc_gamma


@pytest.fixture
def rng():
    """A seeded generator shared by stochastic tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def two_kind_analysis() -> RobustnessAnalysis:
    """A tiny two-kind (seconds + bytes) linear analysis.

    Feature: latency = e1 + e2 + m1/1e6 with originals e=(2,3), m=(1e4,);
    bound 1.3x original.
    """
    exec_times = PerturbationParameter.nonnegative(
        "exec_times", [2.0, 3.0], unit="s")
    msg_sizes = PerturbationParameter.nonnegative(
        "msg_sizes", [1e4], unit="bytes")
    mapping = LinearMapping([1.0, 1.0, 1e-6])
    phi0 = mapping.value(np.array([2.0, 3.0, 1e4]))
    feature = PerformanceFeature(
        "latency", ToleranceBounds.relative(phi0, 1.3), unit="s")
    return RobustnessAnalysis([FeatureSpec(feature, mapping)],
                              [exec_times, msg_sizes])


@pytest.fixture
def small_etc():
    """A small reproducible gamma ETC matrix (10 tasks x 3 machines)."""
    return generate_etc_gamma(10, 3, seed=7)


@pytest.fixture
def small_makespan_system(small_etc) -> MakespanSystem:
    """A MakespanSystem under a fixed deterministic allocation."""
    assignment = np.arange(small_etc.n_tasks) % small_etc.n_machines
    return MakespanSystem(small_etc, Allocation(assignment, small_etc.n_machines))


@pytest.fixture(scope="session")
def hiperd_system():
    """A session-scoped random HiPer-D system (generation is not free)."""
    spec = HiPerDGenerationSpec(n_sensors=2, n_actuators=2, n_machines=3,
                                app_layers=(3, 2))
    return generate_hiperd_system(spec, seed=99)


@pytest.fixture(scope="session")
def hiperd_qos() -> QoSSpec:
    """A QoS spec with comfortable slack for the session system."""
    return QoSSpec(latency_slack=1.5, throughput_margin=0.9)
