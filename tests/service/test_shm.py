"""Shared-memory batch publication: fidelity and lifecycle discipline.

Two contracts under test.  Fidelity: a problem reconstructed from a
published batch is exactly the problem that went in (arrays bit-equal,
mappings deduplicated but intact), so solving through shm cannot change
a number.  Lifecycle: every published segment is unlinked by ``close()``
/ context-manager exit, and :func:`assert_no_leaked_segments` turns a
strand into a loud failure.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.features import ToleranceBounds
from repro.core.mappings import LinearMapping, QuadraticMapping
from repro.core.radius import RadiusProblem, compute_radius
from repro.exceptions import SpecificationError
from repro.observability import Observability, observing
from repro.service.shm import (
    SEGMENT_PREFIX,
    BatchDescriptor,
    SharedProblemBatch,
    _DecodedBatch,
    active_segments,
    assert_no_leaked_segments,
    attach_batch,
    worker_batch_cache_info,
)


@pytest.fixture(autouse=True)
def _clean_segments():
    yield
    assert_no_leaked_segments()  # unlinks strands, then fails the test


def _problems():
    rng = np.random.default_rng(4)
    shared_mapping = LinearMapping(rng.standard_normal(3), 0.5)
    out = []
    for i in range(3):  # three problems over ONE mapping object
        origin = rng.standard_normal(3)
        out.append(RadiusProblem(shared_mapping, origin,
                                 ToleranceBounds.upper(
                                     shared_mapping.value(origin) + 1.0 + i)))
    out.append(RadiusProblem(  # distinct mapping, box bounds, inf norm
        QuadraticMapping(np.eye(3)), rng.standard_normal(3) * 0.1,
        ToleranceBounds.upper(2.0),
        lower=np.full(3, -5.0), upper=np.full(3, 5.0), norm=np.inf))
    return out


class TestRoundTrip:
    def test_problems_reconstruct_bit_identical(self):
        problems = _problems()
        with SharedProblemBatch.publish(problems) as batch:
            decoded = _DecodedBatch(batch.descriptor)
            try:
                for i, want in enumerate(problems):
                    got = decoded.problem(i)
                    np.testing.assert_array_equal(got.origin, want.origin)
                    assert got.norm == want.norm
                    assert float(got.bounds.beta_min) == \
                        float(want.bounds.beta_min)
                    assert float(got.bounds.beta_max) == \
                        float(want.bounds.beta_max)
                    if want.lower is None:
                        assert got.lower is None
                    else:
                        np.testing.assert_array_equal(got.lower, want.lower)
                    if want.upper is None:
                        assert got.upper is None
                    else:
                        np.testing.assert_array_equal(got.upper, want.upper)
            finally:
                decoded.release()

    def test_solves_through_shm_are_identical(self):
        problems = _problems()
        with SharedProblemBatch.publish(problems) as batch:
            decoded = _DecodedBatch(batch.descriptor)
            try:
                for i, problem in enumerate(problems):
                    # the inf-norm solve samples; a fixed seed makes the
                    # original/reconstructed comparison exact
                    want = compute_radius(problem, seed=5, cache=False)
                    got = compute_radius(decoded.problem(i), seed=5,
                                         cache=False)
                    assert got.radius == want.radius
                    assert got.method == want.method
                    np.testing.assert_array_equal(got.boundary_point,
                                                  want.boundary_point)
            finally:
                decoded.release()

    def test_shared_mappings_serialize_once(self):
        problems = _problems()  # 3 problems share one mapping + 1 distinct
        with SharedProblemBatch.publish(problems) as batch:
            decoded = _DecodedBatch(batch.descriptor)
            try:
                assert len(decoded._mappings) == 2
            finally:
                decoded.release()

    def test_empty_batch_rejected(self):
        with pytest.raises(SpecificationError):
            SharedProblemBatch.publish([])

    def test_descriptor_problem_count_checked(self):
        problems = _problems()
        with SharedProblemBatch.publish(problems) as batch:
            bogus = BatchDescriptor(
                data_name=batch.descriptor.data_name,
                meta_name=batch.descriptor.meta_name,
                data_length=batch.descriptor.data_length,
                n_problems=99)
            with pytest.raises(SpecificationError):
                _DecodedBatch(bogus)


class TestWorkerCache:
    def test_attach_is_cached_per_process(self):
        problems = _problems()
        with SharedProblemBatch.publish(problems) as batch:
            first = attach_batch(batch.descriptor)
            second = attach_batch(batch.descriptor)
            assert first is second
            info = worker_batch_cache_info()
            assert batch.descriptor.data_name in info["names"]

    def test_cache_is_bounded(self):
        problems = _problems()[:1]
        batches = [SharedProblemBatch.publish(problems) for _ in range(6)]
        try:
            for batch in batches:
                attach_batch(batch.descriptor)
            assert worker_batch_cache_info()["entries"] <= 4
        finally:
            for batch in batches:
                batch.close()


class TestLifecycle:
    def test_context_manager_unlinks(self):
        with SharedProblemBatch.publish(_problems()) as batch:
            assert batch.descriptor.data_name in active_segments()
        assert active_segments() == []
        assert_no_leaked_segments()  # /dev/shm clean too

    def test_close_is_idempotent(self):
        batch = SharedProblemBatch.publish(_problems())
        batch.close()
        batch.close()
        assert batch.closed
        assert active_segments() == []

    def test_leak_guard_fails_loudly_and_cleans_up(self):
        batch = SharedProblemBatch.publish(_problems())
        with pytest.raises(AssertionError, match=batch.descriptor.data_name):
            assert_no_leaked_segments()
        # the guard unlinked the strand: a second sweep is clean
        assert_no_leaked_segments()
        assert batch.closed

    def test_shm_bytes_gauge_tracks_publication(self):
        obs = Observability()
        with observing(obs):
            with SharedProblemBatch.publish(_problems()):
                during = obs.metrics.snapshot()["service.shm_bytes"]["value"]
            after = obs.metrics.snapshot()["service.shm_bytes"]["value"]
        assert during > 0
        assert after == 0.0

    def test_segment_names_carry_prefix_and_pid(self):
        import os
        with SharedProblemBatch.publish(_problems()) as batch:
            assert batch.descriptor.data_name.startswith(
                f"{SEGMENT_PREFIX}_{os.getpid()}_")
            assert batch.descriptor.meta_name.startswith(
                f"{SEGMENT_PREFIX}_{os.getpid()}_")
