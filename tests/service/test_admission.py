"""Admission control and lifecycle of the radius service.

The bounded queue plus the admission breaker implement deterministic
backpressure: a full queue sheds with
:class:`~repro.exceptions.ServiceOverloadError` and counts a breaker
failure; enough consecutive full-queue sheds open the breaker, which
then sheds without touching the queue while its event-counted cooldown
runs; the first admission after the cooldown closes it again.  A shed
request is *never* enqueued — the caller decides whether to retry or
fall back to the in-process path.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.features import ToleranceBounds
from repro.core.mappings import LinearMapping
from repro.core.radius import RadiusProblem
from repro.exceptions import (
    ServiceClosedError,
    ServiceOverloadError,
    SpecificationError,
)
from repro.resilience.supervisor import BreakerConfig
from repro.service import RadiusService, ServiceConfig


class _GatedLinear(LinearMapping):
    """A mapping whose evaluation blocks on a shared gate.

    With ``workers=1`` the solve runs in the service's dispatcher
    thread, so an unset gate parks the dispatcher deterministically —
    no sleeps — leaving the queue under the test's control.
    """

    gate = threading.Event()

    def value(self, x):
        type(self).gate.wait()
        return super().value(x)


def _fast_problem(i: int = 0) -> RadiusProblem:
    rng = np.random.default_rng(200 + i)
    coeffs = rng.standard_normal(3)
    origin = rng.standard_normal(3)
    phi0 = LinearMapping(coeffs).value(origin)
    return RadiusProblem(LinearMapping(coeffs), origin,
                         ToleranceBounds.upper(phi0 + 1.0))


def _gated_problem() -> RadiusProblem:
    mapping = _GatedLinear([1.0, 2.0, 3.0])
    origin = np.array([0.1, 0.2, 0.3])
    return RadiusProblem(mapping, origin, ToleranceBounds.upper(10.0))


def _wait_until(predicate, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:  # pragma: no cover - hang guard
            raise TimeoutError("condition not reached")
        time.sleep(0.01)


@pytest.fixture()
def gate():
    _GatedLinear.gate.clear()
    yield _GatedLinear.gate
    _GatedLinear.gate.set()  # never leave a dispatcher parked


class TestBackpressure:
    def test_full_queue_sheds_then_breaker_opens_and_recovers(self, gate):
        config = ServiceConfig(
            queue_limit=1, cache=False, use_shm=False,
            admission=BreakerConfig(failure_threshold=2, cooldown=2))
        with RadiusService(1, config=config) as service:
            # park the dispatcher on a gated request
            blocked = service.submit([_gated_problem()])
            _wait_until(lambda: service.queue_depth() == 0)
            queued = service.submit([_fast_problem(0)])  # fills the queue

            # two full-queue sheds reach the failure threshold
            for _ in range(2):
                with pytest.raises(ServiceOverloadError, match="queue full"):
                    service.submit([_fast_problem(1)])
            assert service.admission.state == "open"

            # open breaker: sheds without probing the queue, each one
            # advancing the deterministic cooldown of 2
            with pytest.raises(ServiceOverloadError, match="breaker open"):
                service.submit([_fast_problem(2)])
            with pytest.raises(ServiceOverloadError, match="breaker open"):
                service.submit([_fast_problem(3)])
            assert service.admission.state == "half_open"

            # release the dispatcher; the admitted requests still resolve
            gate.set()
            assert len(blocked.result(timeout=60)) == 1
            assert len(queued.result(timeout=60)) == 1

            # the half-open probe admits and closes the breaker
            probe = service.submit([_fast_problem(4)])
            assert service.admission.state == "closed"
            assert len(probe.result(timeout=60)) == 1

            stats = service.stats()
            assert stats["admitted"] == 3
            assert stats["shed"] == 4
            assert stats["admission"]["opens"] == 1

    def test_shed_request_is_not_enqueued(self, gate):
        config = ServiceConfig(queue_limit=1, cache=False, use_shm=False)
        with RadiusService(1, config=config) as service:
            blocked = service.submit([_gated_problem()])
            _wait_until(lambda: service.queue_depth() == 0)
            service.submit([_fast_problem(0)])
            with pytest.raises(ServiceOverloadError):
                service.submit([_fast_problem(1)])
            assert service.queue_depth() == 1  # the shed one never landed
            gate.set()
            blocked.result(timeout=60)

    def test_ticket_result_times_out_but_request_survives(self, gate):
        with RadiusService(1, config=ServiceConfig(cache=False,
                                                   use_shm=False)) as service:
            ticket = service.submit([_gated_problem()])
            with pytest.raises(TimeoutError):
                ticket.result(timeout=0.05)
            assert not ticket.done()
            gate.set()
            assert len(ticket.result(timeout=60)) == 1


class TestLifecycle:
    def test_closed_service_rejects_submissions(self):
        service = RadiusService(1, config=ServiceConfig(cache=False))
        service.close()
        assert service.closed
        with pytest.raises(ServiceClosedError):
            service.submit([_fast_problem()])

    def test_close_drains_admitted_requests(self):
        service = RadiusService(1, config=ServiceConfig(cache=False))
        tickets = [service.submit([_fast_problem(i)]) for i in range(3)]
        service.close()
        for ticket in tickets:
            assert ticket.done()
            assert len(ticket.result()) == 1

    def test_close_is_idempotent(self):
        service = RadiusService(1, config=ServiceConfig(cache=False))
        service.close()
        service.close()


class TestValidation:
    def test_queue_limit_must_be_positive(self):
        with pytest.raises(SpecificationError):
            ServiceConfig(queue_limit=0)

    def test_unknown_cache_spec_rejected(self):
        with pytest.raises(SpecificationError):
            ServiceConfig(cache="bogus")

    def test_config_type_checked(self):
        with pytest.raises(SpecificationError):
            RadiusService(1, config="not a config")

    def test_empty_request_rejected(self):
        with RadiusService(1, config=ServiceConfig(cache=False)) as service:
            with pytest.raises(SpecificationError):
                service.submit([])

    def test_non_problem_rejected(self):
        with RadiusService(1, config=ServiceConfig(cache=False)) as service:
            with pytest.raises(SpecificationError):
                service.submit(["not a problem"])
