"""The service benchmark and its ``repro-bench-service-v1`` payload."""

from __future__ import annotations

import pytest

from repro.exceptions import SpecificationError
from repro.parallel.bench import SERVICE_BENCH_SCHEMA, validate_bench_payload
from repro.service import assert_no_leaked_segments
from repro.service.bench import build_workload, run_service_benchmark


class TestWorkload:
    def test_workload_is_seeded_and_mixed(self):
        a = build_workload(seed=5, requests=2, problems_per_request=4)
        b = build_workload(seed=5, requests=2, problems_per_request=4)
        assert len(a) == 2
        assert all(len(batch) == 4 for batch in a)
        for batch_a, batch_b in zip(a, b):
            for pa, pb in zip(batch_a, batch_b):
                assert pa.mapping.structure_key() == \
                    pb.mapping.structure_key()
        # both tiers present, so dispatch forms >= 2 structural groups
        kinds = {type(p.mapping).__name__ for p in a[0]}
        assert kinds == {"LinearMapping", "QuadraticMapping"}

    def test_workload_validation(self):
        with pytest.raises(SpecificationError):
            build_workload(requests=0)
        with pytest.raises(SpecificationError):
            build_workload(problems_per_request=1)


class TestBenchmarkPayload:
    @pytest.fixture(scope="class")
    def payload(self):
        result = run_service_benchmark(workers=2, requests=2,
                                       problems_per_request=2)
        assert_no_leaked_segments()
        return result

    def test_payload_validates_against_schema(self, payload):
        assert payload["schema"] == SERVICE_BENCH_SCHEMA
        validate_bench_payload(payload)

    def test_all_three_legs_are_identical(self, payload):
        assert payload["identical"] is True

    def test_counters_are_coherent(self, payload):
        assert payload["requests"] == 2
        assert payload["problems"] == 4
        assert payload["service"]["admitted"] == 2
        assert payload["service"]["completed"] == 2
        assert payload["service"]["shed"] == 0
        assert payload["cache"] is None  # the bench runs cache-off
        assert payload["executor"]["dispatched"] > 0

    def test_validator_rejects_corrupt_payload(self, payload):
        broken = dict(payload)
        del broken["service"]
        with pytest.raises(SpecificationError):
            validate_bench_payload(broken)
        broken = dict(payload, speedup="fast")
        with pytest.raises(SpecificationError):
            validate_bench_payload(broken)

    def test_workers_validation(self):
        with pytest.raises(SpecificationError):
            run_service_benchmark(workers=0)
