"""The cross-process radius cache: same fingerprints, shared entries.

Three contracts.  Fingerprint equality: a :class:`SharedRadiusCache`
keys a problem exactly as the local :class:`RadiusCache` would, so the
two stores are interchangeable for any given problem stream.  Sharing:
an entry stored by one client is served to every other client — and
counted as a ``warm_hit``, the number a serving deployment exists for.
Safety: concurrent clients racing puts and gets never corrupt the store
or the accounting.
"""

from __future__ import annotations

import pickle
import threading

import numpy as np
import pytest

from repro.core.features import ToleranceBounds
from repro.core.mappings import LinearMapping
from repro.core.radius import RadiusProblem, compute_radius
from repro.parallel.cache import RadiusCache
from repro.service import SharedRadiusCache


@pytest.fixture(scope="module")
def shared_cache():
    """One manager process for the whole module (startup is not free)."""
    with SharedRadiusCache() as cache:
        yield cache


@pytest.fixture(autouse=True)
def _fresh_store(shared_cache):
    shared_cache.clear()
    yield


def _problem(i: int = 0) -> RadiusProblem:
    rng = np.random.default_rng(100 + i)
    coeffs = rng.standard_normal(3)
    origin = rng.standard_normal(3)
    phi0 = LinearMapping(coeffs).value(origin)
    return RadiusProblem(LinearMapping(coeffs), origin,
                         ToleranceBounds.upper(phi0 + 1.0))


class TestFingerprintEquality:
    def test_same_keys_as_local_cache(self, shared_cache):
        local = RadiusCache()
        for i in range(3):
            problem = _problem(i)
            for method, seed in (("auto", None), ("auto", 7),
                                 ("bisection", 3)):
                assert shared_cache.key(problem, method=method, seed=seed) \
                    == local.key(problem, method=method, seed=seed)

    def test_unfingerprintable_is_skipped_like_local(self, shared_cache):
        from repro.core.mappings import CallableMapping
        # an arbitrary callable has no structure key: both stores refuse
        # to fingerprint it
        mapping = CallableMapping(lambda x: float(np.sum(x)), 3)
        origin = np.array([0.1, 0.2, 0.3])
        problem = RadiusProblem(mapping, origin, ToleranceBounds.upper(5.0))
        key = shared_cache.key(problem)
        assert key is None
        assert RadiusCache().key(problem) is None
        assert shared_cache.get(None) is None  # no-op, like the local cache
        before = len(shared_cache)
        shared_cache.put(None, compute_radius(problem, cache=False))
        assert len(shared_cache) == before

    def test_roundtrip_returns_identical_result(self, shared_cache):
        problem = _problem()
        want = compute_radius(problem, cache=False)
        key = shared_cache.key(problem)
        shared_cache.put(key, want)
        got = shared_cache.get(key)
        assert got.radius == want.radius
        assert got.method == want.method
        np.testing.assert_array_equal(got.boundary_point,
                                      want.boundary_point)


class TestCrossClientWarming:
    def test_other_clients_entries_count_as_warm_hits(self, shared_cache):
        problem = _problem()
        result = compute_radius(problem, cache=False)
        key = shared_cache.key(problem)
        shared_cache.put(key, result)

        # own entry: a hit, but not a warm one
        assert shared_cache.get(key) is not None
        assert shared_cache.hits == 1
        assert shared_cache.warm_hits == 0

        # a pickled copy is the same store under a fresh client identity
        client = pickle.loads(pickle.dumps(shared_cache))
        assert client.get(key).radius == result.radius
        assert client.hits == 1
        assert client.warm_hits == 1
        stats = client.stats()
        assert stats["warm_hits"] == 1
        assert stats["shared"] is True
        assert stats["entries"] == 1

    def test_unpickled_client_starts_with_zeroed_counters(self, shared_cache):
        key = shared_cache.key(_problem())
        shared_cache.get(key)  # a miss on the original client
        client = pickle.loads(pickle.dumps(shared_cache))
        assert (client.hits, client.misses, client.warm_hits) == (0, 0, 0)
        assert client._client != shared_cache._client

    def test_writes_propagate_both_directions(self, shared_cache):
        client = pickle.loads(pickle.dumps(shared_cache))
        a, b = _problem(1), _problem(2)
        ra = compute_radius(a, cache=False)
        rb = compute_radius(b, cache=False)
        shared_cache.put(shared_cache.key(a), ra)
        client.put(client.key(b), rb)
        assert client.get(client.key(a)).radius == ra.radius
        assert shared_cache.get(shared_cache.key(b)).radius == rb.radius
        assert len(shared_cache) == 2


class TestConcurrency:
    def test_racing_puts_and_gets_stay_coherent(self, shared_cache):
        problems = [_problem(i) for i in range(6)]
        results = [compute_radius(p, cache=False) for p in problems]
        keys = [shared_cache.key(p) for p in problems]
        errors: list[BaseException] = []

        def hammer(worker: int) -> None:
            try:
                client = pickle.loads(pickle.dumps(shared_cache))
                for round_ in range(15):
                    i = (worker + round_) % len(problems)
                    client.put(keys[i], results[i])
                    got = client.get(keys[i])
                    assert got is not None
                    assert got.radius == results[i].radius
                assert client.hits + client.misses == 15
            except BaseException as exc:  # surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(w,))
                   for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert len(shared_cache) == len(problems)

    def test_bounded_store_evicts_oldest(self):
        with SharedRadiusCache(2) as cache:
            results = [compute_radius(_problem(i), cache=False)
                       for i in range(3)]
            keys = [cache.key(_problem(i)) for i in range(3)]
            for key, result in zip(keys, results):
                cache.put(key, result)
            assert len(cache) == 2
            assert cache.evictions == 1
            assert cache.get(keys[0]) is None  # the oldest went
            assert cache.get(keys[2]) is not None


class TestLifecycle:
    def test_close_is_idempotent(self):
        cache = SharedRadiusCache()
        cache.put(cache.key(_problem()), compute_radius(_problem(),
                                                        cache=False))
        cache.close()
        cache.close()

    def test_clear_resets_store_and_counters(self, shared_cache):
        key = shared_cache.key(_problem())
        shared_cache.put(key, compute_radius(_problem(), cache=False))
        shared_cache.get(key)
        shared_cache.clear()
        assert len(shared_cache) == 0
        assert shared_cache.hits == 0
        assert shared_cache.warm_hits == 0
