"""The radius service must never change a computed number.

The acceptance bar of the serving layer: for a fixed seed,
:meth:`RadiusService.compute` is bit-identical to the in-process
:func:`compute_radii` path — for any worker count, with tracing on or
off, through shared-memory dispatch or pickled fallback, cold or served
from the shared cache.  ``SolverAttempt.elapsed`` (wall-clock, outside
the determinism contract) is the only field neutralised before
comparison.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.features import PerformanceFeature, ToleranceBounds
from repro.core.fepia import FeatureSpec, RobustnessAnalysis
from repro.core.mappings import LinearMapping, MaxMapping, QuadraticMapping
from repro.core.perturbation import PerturbationParameter
from repro.core.radius import RadiusProblem, compute_radii
from repro.observability import Observability, observing
from repro.parallel.cache import (
    get_default_cache,
    install_default_cache,
    uninstall_default_cache,
)
from repro.service import RadiusService, ServiceConfig, assert_no_leaked_segments


@pytest.fixture(autouse=True)
def _no_ambient_default_cache():
    before = get_default_cache()
    uninstall_default_cache()
    yield
    if before is not None:
        install_default_cache(before)


@pytest.fixture(autouse=True)
def _no_shm_leaks():
    yield
    assert_no_leaked_segments()


def _problems():
    """A mixed batch spanning the analytic/ellipsoid/bisection/numeric tiers."""
    rng = np.random.default_rng(8)
    out = []
    for i in range(2):  # analytic tier
        coeffs = rng.standard_normal(4)
        origin = rng.standard_normal(4)
        phi0 = LinearMapping(coeffs).value(origin)
        out.append(RadiusProblem(LinearMapping(coeffs), origin,
                                 ToleranceBounds.upper(phi0 + 1.0 + i)))
    for norm in (2, np.inf):  # ellipsoid + bisection tiers
        out.append(RadiusProblem(QuadraticMapping(np.eye(4)),
                                 rng.standard_normal(4) * 0.1,
                                 ToleranceBounds.upper(2.0), norm=norm))
    comps = [LinearMapping(rng.standard_normal(4), float(i))
             for i in range(2)]
    out.append(RadiusProblem(MaxMapping(comps), np.zeros(4),  # numeric tier
                             ToleranceBounds.upper(
                                 MaxMapping(comps).value(np.zeros(4)) + 2.0)))
    return out


def _canonical(results) -> str:
    from repro.io.serialize import to_dict
    dicts = [to_dict(r) for r in results]
    for d in dicts:
        for attempt in d.get("diagnostics", []):
            attempt["elapsed"] = 0.0
    return json.dumps(dicts, sort_keys=True)


class TestServiceIdentity:
    @pytest.mark.parametrize("traced", [False, True],
                             ids=["untraced", "traced"])
    @pytest.mark.parametrize("workers", [1, 4])
    def test_matches_library_path(self, workers, traced):
        problems = _problems()
        want = compute_radii(problems, seed=7, cache=False)
        config = ServiceConfig(cache=False)
        if traced:
            obs = Observability()
            with observing(obs):
                with RadiusService(workers, config=config) as service:
                    got = service.compute(problems, seed=7)
            names = [s.name for s in obs.recorder.spans()]
            assert "service.request" in names
            snap = obs.metrics.snapshot()
            assert snap["service.requests"]["value"] == 1
            assert snap["service.completed"]["value"] == 1
        else:
            with RadiusService(workers, config=config) as service:
                got = service.compute(problems, seed=7)
        assert _canonical(got) == _canonical(want)

    def test_pickled_fallback_matches_shm(self):
        problems = _problems()
        want = compute_radii(problems, seed=3, cache=False)
        with RadiusService(2, config=ServiceConfig(cache=False,
                                                   use_shm=False)) as service:
            got = service.compute(problems, seed=3)
        assert _canonical(got) == _canonical(want)

    def test_shared_cache_pass_is_identical_and_warm(self):
        problems = _problems()
        want = compute_radii(problems, seed=11, cache=False)
        with RadiusService(2, config=ServiceConfig(cache="shared")) as service:
            cold = service.compute(problems, seed=11)
            warm = service.compute(problems, seed=11)
            stats = service.cache.stats()
        assert _canonical(cold) == _canonical(want)
        assert _canonical(warm) == _canonical(want)
        assert stats["entries"] > 0
        # warm-pass entries were stored by worker processes (other
        # clients of the shared store), so the frontend's hits are warm
        assert stats["warm_hits"] > 0

    def test_many_requests_in_flight(self):
        problems = _problems()
        want = compute_radii(problems, seed=5, cache=False)
        with RadiusService(2, config=ServiceConfig(cache=False)) as service:
            tickets = [service.submit(problems, seed=5) for _ in range(4)]
            answers = service.gather(tickets, timeout=120)
            stats = service.stats()
        for got in answers:
            assert _canonical(got) == _canonical(want)
        assert stats["admitted"] == 4
        assert stats["completed"] == 4
        assert stats["shed"] == 0


class TestServiceSeams:
    def test_compute_radii_service_seam(self):
        problems = _problems()
        want = compute_radii(problems, seed=2, cache=False)
        with RadiusService(1, config=ServiceConfig(cache=False)) as service:
            got = compute_radii(problems, seed=2, service=service)
        assert _canonical(got) == _canonical(want)

    def test_robustness_analysis_service_seam(self):
        def build(**kwargs):
            exec_times = PerturbationParameter.nonnegative(
                "exec_times", [2.0, 3.0], unit="s")
            msg_sizes = PerturbationParameter.nonnegative(
                "msg_sizes", [1e4], unit="bytes")
            mapping = LinearMapping([1.0, 1.0, 1e-6])
            phi0 = mapping.value(np.array([2.0, 3.0, 1e4]))
            feature = PerformanceFeature(
                "latency", ToleranceBounds.relative(phi0, 1.3), unit="s")
            return RobustnessAnalysis([FeatureSpec(feature, mapping)],
                                      [exec_times, msg_sizes], **kwargs)

        want = build().radii()
        with RadiusService(1, config=ServiceConfig(cache=False)) as service:
            got = build(service=service).radii()
        assert set(got) == set(want)
        for name in want:
            assert _canonical([got[name]]) == _canonical([want[name]])
