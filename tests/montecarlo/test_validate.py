"""Tests for Monte-Carlo radius validation."""

import math

import numpy as np
import pytest

from repro.core.features import ToleranceBounds
from repro.core.mappings import LinearMapping, QuadraticMapping
from repro.core.radius import RadiusProblem, RadiusResult, compute_radius
from repro.montecarlo.validate import validate_analysis, validate_radius


def solve(mapping, origin, bounds, **kw):
    p = RadiusProblem(mapping=mapping, origin=np.asarray(origin, float),
                      bounds=bounds, **kw)
    return p, compute_radius(p, seed=0)


class TestValidateRadius:
    def test_correct_linear_radius_passes(self):
        p, res = solve(LinearMapping([1.0, 1.0]), [0.0, 0.0],
                       ToleranceBounds.upper(2.0))
        v = validate_radius(p, res, n_samples=5000, seed=1)
        assert v.sound and v.tight and v.passed

    def test_correct_quadratic_radius_passes(self):
        p, res = solve(QuadraticMapping(np.eye(3)), [0.0, 0.0, 0.0],
                       ToleranceBounds.upper(4.0))
        v = validate_radius(p, res, n_samples=5000, seed=2)
        assert v.passed

    def test_overlarge_radius_refuted(self):
        p, res = solve(LinearMapping([1.0, 1.0]), [0.0, 0.0],
                       ToleranceBounds.upper(2.0))
        inflated = RadiusResult(
            radius=res.radius * 2.0, boundary_point=res.boundary_point,
            bound_hit=res.bound_hit, method="fake",
            original_value=res.original_value)
        v = validate_radius(p, inflated, n_samples=20000, seed=3)
        assert not v.sound
        assert v.min_violation_distance < inflated.radius

    def test_undersized_radius_fails_tightness(self):
        p, res = solve(LinearMapping([1.0, 1.0]), [0.0, 0.0],
                       ToleranceBounds.upper(2.0))
        # witness at half the distance is not on the boundary
        shrunk = RadiusResult(
            radius=res.radius / 2.0,
            boundary_point=res.boundary_point / 2.0,
            bound_hit=res.bound_hit, method="fake",
            original_value=res.original_value)
        v = validate_radius(p, shrunk, n_samples=2000, seed=4)
        assert v.sound          # smaller ball is still safe
        assert not v.tight      # but the witness is off the boundary

    def test_witness_distance_mismatch_detected(self):
        p, res = solve(LinearMapping([1.0, 1.0]), [0.0, 0.0],
                       ToleranceBounds.upper(2.0))
        lied = RadiusResult(
            radius=res.radius * 0.9, boundary_point=res.boundary_point,
            bound_hit=res.bound_hit, method="fake",
            original_value=res.original_value)
        v = validate_radius(p, lied, n_samples=500, seed=5)
        assert not v.tight
        assert v.witness_distance_error > 0

    def test_zero_radius_trivially_sound(self):
        p, res = solve(LinearMapping([1.0]), [2.0], ToleranceBounds.upper(2.0))
        assert res.radius == 0.0
        v = validate_radius(p, res, seed=6)
        assert v.sound

    def test_infinite_radius_probe(self):
        p, res = solve(LinearMapping([0.0, 0.0], constant=1.0), [0.0, 0.0],
                       ToleranceBounds.upper(2.0))
        assert math.isinf(res.radius)
        v = validate_radius(p, res, n_samples=3000, seed=7)
        assert v.sound and v.tight

    def test_false_infinity_refuted(self):
        p, res = solve(LinearMapping([1.0, 1.0]), [0.0, 0.0],
                       ToleranceBounds.upper(2.0))
        fake_inf = RadiusResult(
            radius=math.inf, boundary_point=None, bound_hit=None,
            method="fake", original_value=res.original_value)
        v = validate_radius(p, fake_inf, n_samples=10000, seed=8)
        assert not v.sound

    def test_bad_margin_rejected(self):
        p, res = solve(LinearMapping([1.0]), [0.0], ToleranceBounds.upper(1.0))
        with pytest.raises(Exception):
            validate_radius(p, res, margin=1.5)


class TestValidateAnalysis:
    def test_all_features_validated(self, two_kind_analysis):
        out = validate_analysis(two_kind_analysis, n_samples=3000, seed=0)
        assert set(out) == {"latency"}
        assert all(v.passed for v in out.values())

    def test_insensitive_feature_under_sensitivity_weighting(self):
        """A feature no parameter can violate has an empty per-feature
        P-space under sensitivity weighting; validation must report it as
        vacuously valid instead of crashing."""
        import numpy as np

        from repro.core.features import PerformanceFeature, ToleranceBounds
        from repro.core.fepia import FeatureSpec, RobustnessAnalysis
        from repro.core.mappings import LinearMapping
        from repro.core.perturbation import PerturbationParameter
        from repro.core.weighting import SensitivityWeighting

        p = PerturbationParameter("x", [1.0], unit="s")
        sensitive = FeatureSpec(
            PerformanceFeature("sensitive", ToleranceBounds.upper(5.0)),
            LinearMapping([1.0]))
        immune = FeatureSpec(
            PerformanceFeature("immune", ToleranceBounds.upper(5.0)),
            LinearMapping([0.0], constant=1.0))
        ana = RobustnessAnalysis([sensitive, immune], [p],
                                 weighting=SensitivityWeighting())
        out = validate_analysis(ana, n_samples=500, seed=0)
        assert out["immune"].passed
        assert out["immune"].n_samples == 0
        assert out["sensitive"].passed

    def test_hiperd_analysis_validates(self, hiperd_system, hiperd_qos):
        from repro.systems.hiperd.constraints import build_analysis
        ana = build_analysis(hiperd_system, hiperd_qos,
                             kinds=("loads", "msgsize"), seed=0)
        out = validate_analysis(ana, n_samples=2000, seed=1)
        assert all(v.sound for v in out.values())
        assert all(v.tight for v in out.values())
