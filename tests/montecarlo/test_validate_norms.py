"""Monte-Carlo validation under non-Euclidean norms.

The validators stratify their sampling in the problem's norm, so the
soundness/tightness machinery must hold for l1 and linf radii too — these
tests close that gap.
"""

import numpy as np
import pytest

from repro.core.features import ToleranceBounds
from repro.core.mappings import LinearMapping
from repro.core.radius import RadiusProblem, compute_radius
from repro.montecarlo.validate import validate_radius
from repro.montecarlo.violation import violation_probability_curve


def solve(norm):
    p = RadiusProblem(mapping=LinearMapping([2.0, 1.0]),
                      origin=np.zeros(2),
                      bounds=ToleranceBounds.upper(4.0),
                      norm=norm)
    return p, compute_radius(p, seed=0)


class TestL1:
    def test_radius_value(self):
        _, res = solve(1)
        # |gap| / ||k||_inf = 4 / 2
        assert res.radius == pytest.approx(2.0)

    def test_validation_passes(self):
        p, res = solve(1)
        v = validate_radius(p, res, n_samples=8000, seed=1)
        assert v.passed

    def test_violation_curve_in_l1(self):
        curve = violation_probability_curve(
            LinearMapping([2.0, 1.0]), np.zeros(2),
            ToleranceBounds.upper(4.0),
            distances=[1.0, 1.9, 2.2, 4.0],
            n_directions=4000, norm=1, seed=2)
        probs = dict(zip(curve.distances, curve.probabilities))
        assert probs[1.0] == 0.0
        assert probs[1.9] == 0.0
        assert probs[2.2] > 0.0


class TestLinf:
    def test_radius_value(self):
        _, res = solve(np.inf)
        # |gap| / ||k||_1 = 4 / 3
        assert res.radius == pytest.approx(4.0 / 3.0)

    def test_validation_passes(self):
        p, res = solve(np.inf)
        v = validate_radius(p, res, n_samples=8000, seed=3)
        assert v.passed

    def test_inflated_linf_radius_refuted(self):
        p, res = solve(np.inf)
        from repro.core.radius import RadiusResult
        inflated = RadiusResult(
            radius=res.radius * 1.5, boundary_point=res.boundary_point,
            bound_hit=res.bound_hit, method="fake",
            original_value=res.original_value)
        v = validate_radius(p, inflated, n_samples=20000, seed=4)
        assert not v.sound


class TestConsistencyAcrossNorms:
    def test_radius_ordering(self):
        radii = {norm: solve(norm)[1].radius for norm in (1, 2, np.inf)}
        assert radii[1] >= radii[2] >= radii[np.inf]

    def test_witness_norm_matches_problem_norm(self):
        for norm in (1, 2, np.inf):
            p, res = solve(norm)
            d = np.linalg.norm(res.boundary_point - p.origin, ord=norm)
            assert d == pytest.approx(res.radius, rel=1e-9)
