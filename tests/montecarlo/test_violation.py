"""Tests for empirical violation-probability curves."""

import numpy as np
import pytest

from repro.core.features import ToleranceBounds
from repro.core.mappings import LinearMapping, QuadraticMapping
from repro.exceptions import SpecificationError
from repro.montecarlo.violation import violation_probability_curve


class TestViolationCurve:
    def test_zero_below_radius_positive_above(self):
        # f = x + y <= 2 from origin: radius sqrt(2) ~ 1.414
        m = LinearMapping([1.0, 1.0])
        curve = violation_probability_curve(
            m, np.zeros(2), ToleranceBounds.upper(2.0),
            distances=[0.5, 1.0, 1.4, 1.5, 2.0, 4.0],
            n_directions=4000, seed=0)
        probs = dict(zip(curve.distances, curve.probabilities))
        assert probs[0.5] == 0.0
        assert probs[1.0] == 0.0
        assert probs[1.4] == 0.0
        assert probs[1.5] > 0.0
        assert probs[4.0] > probs[1.5]

    def test_first_violation_distance_brackets_radius(self):
        m = QuadraticMapping(np.eye(2))
        curve = violation_probability_curve(
            m, np.zeros(2), ToleranceBounds.upper(4.0),
            distances=np.linspace(0.5, 4.0, 15), n_directions=500, seed=1)
        first = curve.first_violation_distance()
        assert first >= 2.0 - 1e-9  # true radius
        assert first <= 2.3

    def test_no_violation_returns_inf(self):
        m = LinearMapping([0.0, 0.0], constant=1.0)
        curve = violation_probability_curve(
            m, np.zeros(2), ToleranceBounds.upper(2.0),
            distances=[1.0, 10.0], n_directions=100, seed=2)
        assert curve.first_violation_distance() == float("inf")
        assert np.all(curve.probabilities == 0.0)

    def test_sphere_boundary_jumps_to_one(self):
        # f = ||x||^2: beyond the radius EVERY direction violates.
        m = QuadraticMapping(np.eye(2))
        curve = violation_probability_curve(
            m, np.zeros(2), ToleranceBounds.upper(1.0),
            distances=[0.9, 1.1], n_directions=1000, seed=3)
        assert curve.probabilities[0] == 0.0
        assert curve.probabilities[1] == 1.0

    def test_distances_sorted_in_output(self):
        m = LinearMapping([1.0])
        curve = violation_probability_curve(
            m, np.zeros(1), ToleranceBounds.upper(1.0),
            distances=[3.0, 1.0, 2.0], n_directions=50, seed=4)
        assert list(curve.distances) == [1.0, 2.0, 3.0]

    def test_empty_distances_rejected(self):
        with pytest.raises(SpecificationError):
            violation_probability_curve(
                LinearMapping([1.0]), np.zeros(1),
                ToleranceBounds.upper(1.0), distances=[])

    def test_nonpositive_distance_rejected(self):
        with pytest.raises(SpecificationError):
            violation_probability_curve(
                LinearMapping([1.0]), np.zeros(1),
                ToleranceBounds.upper(1.0), distances=[0.0, 1.0])

    def test_box_clipping(self):
        # violations only reachable at x > 1 but box caps x at 0.5
        m = LinearMapping([1.0])
        curve = violation_probability_curve(
            m, np.zeros(1), ToleranceBounds.upper(1.0),
            distances=[2.0, 5.0], n_directions=200,
            upper=np.array([0.5]), seed=5)
        assert np.all(curve.probabilities == 0.0)

    def test_two_sided_bounds(self):
        m = LinearMapping([1.0])
        curve = violation_probability_curve(
            m, np.zeros(1), ToleranceBounds(-1.0, 1.0),
            distances=[0.5, 1.5], n_directions=400, seed=6)
        assert curve.probabilities[0] == 0.0
        assert curve.probabilities[1] == 1.0  # both directions violate
