"""Unit tests for :mod:`repro.parallel.cache`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.features import ToleranceBounds
from repro.core.mappings import CallableMapping, LinearMapping
from repro.core.radius import RadiusProblem, compute_radius
from repro.exceptions import SpecificationError
from repro.parallel.cache import (
    RadiusCache,
    get_default_cache,
    install_default_cache,
    resolve_cache,
    uninstall_default_cache,
)


@pytest.fixture(autouse=True)
def _no_ambient_default_cache():
    """Tests here manage the process-wide default cache explicitly."""
    before = get_default_cache()
    uninstall_default_cache()
    yield
    if before is not None:
        install_default_cache(before)
    else:
        uninstall_default_cache()


def _problem(coeffs=(1.0, 1.0), origin=(2.0, 3.0), upper_factor=1.3):
    mapping = LinearMapping(list(coeffs))
    phi0 = mapping.value(np.asarray(origin, dtype=float))
    return RadiusProblem(mapping, np.asarray(origin, dtype=float),
                         ToleranceBounds.relative(phi0, upper_factor))


def _seeded_problem(coeffs=(1.0, 1.0), origin=(2.0, 3.0), upper_factor=1.3):
    """An affine problem whose l1 + box dispatch *can* reach seeded solvers."""
    mapping = LinearMapping(list(coeffs))
    origin = np.asarray(origin, dtype=float)
    phi0 = mapping.value(origin)
    return RadiusProblem(mapping, origin,
                         ToleranceBounds.relative(phi0, upper_factor),
                         lower=origin - 10.0, upper=origin + 10.0, norm=1)


class TestFingerprint:
    def test_same_problem_same_key(self):
        cache = RadiusCache()
        assert cache.key(_problem()) == cache.key(_problem())

    def test_different_structure_different_key(self):
        cache = RadiusCache()
        assert cache.key(_problem(coeffs=(1.0, 1.0))) \
            != cache.key(_problem(coeffs=(2.0, 1.0)))

    def test_different_origin_different_key(self):
        cache = RadiusCache()
        assert cache.key(_problem(origin=(2.0, 3.0))) \
            != cache.key(_problem(origin=(3.0, 2.0)))

    def test_different_bounds_different_key(self):
        cache = RadiusCache()
        assert cache.key(_problem(upper_factor=1.3)) \
            != cache.key(_problem(upper_factor=1.5))

    def test_method_and_seed_partition_the_key(self):
        cache = RadiusCache()
        base = cache.key(_seeded_problem())
        assert cache.key(_seeded_problem(), method="sampling") != base
        assert cache.key(_seeded_problem(), seed=7) != base

    def test_deterministic_solve_ignores_seed(self):
        # An unboxed affine problem under method="auto" is handled entirely
        # by the closed-form solvers: no randomness is ever drawn, so every
        # seed — including a stateful Generator — shares one entry.
        cache = RadiusCache()
        base = cache.key(_problem())
        assert base is not None
        assert cache.key(_problem(), seed=7) == base
        assert cache.key(_problem(), seed=np.random.default_rng(3)) == base
        assert cache.stats()["skips"] == 0

    def test_explicit_method_is_treated_as_seeded(self):
        # Forcing method="numeric" bypasses the deterministic dispatch, so
        # the seed must partition the key again.
        cache = RadiusCache()
        assert cache.key(_problem(), method="numeric", seed=1) \
            != cache.key(_problem(), method="numeric", seed=2)

    def test_seed_sweep_hits_deterministic_entry(self):
        cache = RadiusCache()
        result = compute_radius(_problem(), cache=cache, seed=0)
        for seed in (1, 2, np.random.default_rng(3)):
            assert compute_radius(_problem(), cache=cache, seed=seed) is result
        stats = cache.stats()
        assert (stats["hits"], stats["misses"], stats["skips"]) == (3, 1, 0)
        assert stats["hit_rate"] == pytest.approx(0.75)

    def test_callable_mapping_is_unfingerprintable(self):
        mapping = CallableMapping(lambda x: float(x.sum()), 2)
        problem = RadiusProblem(mapping, np.array([2.0, 3.0]),
                                ToleranceBounds.upper(10.0))
        cache = RadiusCache()
        assert cache.key(problem) is None
        assert cache.stats()["skips"] == 1

    def test_generator_seed_is_unfingerprintable_when_seeded(self):
        cache = RadiusCache()
        assert cache.key(_seeded_problem(),
                         seed=np.random.default_rng(3)) is None
        assert cache.stats()["skips"] == 1


class TestStorage:
    def test_hit_and_miss_counters(self):
        cache = RadiusCache()
        key = cache.key(_problem())
        assert cache.get(key) is None
        result = compute_radius(_problem(), cache=False)
        cache.put(key, result)
        assert cache.get(key) is result
        stats = cache.stats()
        assert (stats["hits"], stats["misses"], stats["entries"]) == (1, 1, 1)
        assert stats["hit_rate"] == pytest.approx(0.5)

    def test_none_key_is_a_no_op(self):
        cache = RadiusCache()
        cache.put(None, object())
        assert cache.get(None) is None
        assert len(cache) == 0

    def test_fifo_eviction(self):
        cache = RadiusCache(max_entries=2)
        result = compute_radius(_problem(), cache=False)
        keys = [cache.key(_problem(origin=(2.0 + i, 3.0))) for i in range(3)]
        for key in keys:
            cache.put(key, result)
        assert len(cache) == 2
        assert cache.get(keys[0]) is None  # oldest evicted
        assert cache.get(keys[2]) is result

    def test_eviction_counter(self):
        cache = RadiusCache(max_entries=2)
        result = compute_radius(_problem(), cache=False)
        keys = [cache.key(_problem(origin=(2.0 + i, 3.0))) for i in range(5)]
        assert cache.stats()["evictions"] == 0
        for key in keys:
            cache.put(key, result)
        assert cache.stats()["evictions"] == 3
        # Re-putting a resident key does not evict.
        cache.put(keys[-1], result)
        assert cache.stats()["evictions"] == 3

    def test_unbounded_cache_never_evicts(self):
        cache = RadiusCache()
        result = compute_radius(_problem(), cache=False)
        for i in range(10):
            cache.put(cache.key(_problem(origin=(2.0 + i, 3.0))), result)
        assert cache.stats()["evictions"] == 0

    def test_max_entries_validation(self):
        with pytest.raises(SpecificationError):
            RadiusCache(max_entries=0)

    def test_clear_resets_everything(self):
        cache = RadiusCache(max_entries=1)
        result = compute_radius(_problem(), cache=False)
        for i in range(2):
            key = cache.key(_problem(origin=(2.0 + i, 3.0)))
            cache.put(key, result)
        cache.get(key)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats() == {"hits": 0, "misses": 0, "skips": 0,
                                 "evictions": 0, "entries": 0,
                                 "hit_rate": 0.0}


class TestDefaultCache:
    def test_install_and_resolve(self):
        assert resolve_cache(None) is None  # nothing installed
        cache = install_default_cache()
        assert get_default_cache() is cache
        assert resolve_cache(None) is cache
        assert resolve_cache(False) is None
        explicit = RadiusCache()
        assert resolve_cache(explicit) is explicit
        uninstall_default_cache()
        assert get_default_cache() is None

    def test_resolve_rejects_other_types(self):
        with pytest.raises(SpecificationError):
            resolve_cache("yes please")

    def test_compute_radius_uses_default_cache(self):
        cache = install_default_cache()
        first = compute_radius(_problem())
        second = compute_radius(_problem())
        assert second is first  # the memoised object itself
        stats = cache.stats()
        assert (stats["hits"], stats["misses"]) == (1, 1)

    def test_compute_radius_cache_false_bypasses_default(self):
        cache = install_default_cache()
        compute_radius(_problem(), cache=False)
        assert cache.stats() == {"hits": 0, "misses": 0, "skips": 0,
                                 "evictions": 0, "entries": 0,
                                 "hit_rate": 0.0}

    def test_cached_result_is_numerically_identical(self):
        install_default_cache()
        fresh = compute_radius(_problem(), cache=False)
        compute_radius(_problem())
        cached = compute_radius(_problem())
        assert cached.radius == fresh.radius
        np.testing.assert_array_equal(cached.boundary_point,
                                      fresh.boundary_point)
