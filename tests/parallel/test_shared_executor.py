"""The process-wide shared executor and its pool-reuse accounting."""

from __future__ import annotations

import pytest

from repro.exceptions import SpecificationError
from repro.parallel import executor as executor_mod
from repro.parallel.executor import (
    ParallelExecutor,
    Task,
    reset_shared_executor,
    shared_executor,
)


def _double(x):
    return 2 * x


@pytest.fixture(autouse=True)
def _fresh_shared_pool():
    reset_shared_executor()
    yield
    reset_shared_executor()


class TestSharedExecutor:
    def test_same_workers_reuse_one_executor(self):
        first = shared_executor(2)
        assert shared_executor(2) is first

    def test_different_workers_rebuild(self):
        first = shared_executor(2)
        second = shared_executor(3)
        assert second is not first
        assert second.workers == 3

    def test_workers_validated(self):
        with pytest.raises(SpecificationError):
            shared_executor(0)

    def test_reset_closes_and_forgets(self):
        shared_executor(2)
        reset_shared_executor()
        assert executor_mod._shared is None

    def test_pool_reuses_counts_warm_runs(self):
        pool = shared_executor(2)
        tasks = [Task(_double, (i,)) for i in range(3)]
        assert pool.run(tasks) == [0, 2, 4]  # first run spawns the pool
        assert pool.stats()["pool_reuses"] == 0
        assert pool.run(tasks) == [0, 2, 4]  # second run reuses it
        assert pool.stats()["pool_reuses"] == 1

    def test_per_call_executors_are_unaffected(self):
        with ParallelExecutor(2) as pool:
            assert pool is not shared_executor(2)
            assert pool.stats()["pool_reuses"] == 0


class TestRunnerReuse:
    def test_run_all_experiments_shares_one_pool(self):
        from repro.analysis.runner import run_all_experiments
        # two experiments: single-task batches run in-process and would
        # never touch (or warm) the pool
        ids = ["E2", "E11"]
        first = run_all_experiments(seed=2005, ids=ids, workers=2)
        second = run_all_experiments(seed=2005, ids=ids, workers=2)
        assert set(first) == set(second) == set(ids)
        pool = executor_mod._shared
        assert pool is not None
        assert pool.workers == 2
        assert pool.stats()["pool_reuses"] >= 1

    def test_serial_runs_do_not_build_a_pool(self):
        from repro.analysis.runner import run_all_experiments
        run_all_experiments(seed=2005, ids=["E2"], workers=1)
        assert executor_mod._shared is None
