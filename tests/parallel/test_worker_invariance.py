"""Worker-count invariance: any parallelism, bit-identical results.

The determinism contract (docs/PERFORMANCE.md) promises that fanning work
out over worker processes never changes a numerical answer.  These tests
pin it down end to end: experiment sweeps, Monte-Carlo validation, the
per-bound radius fan-out, the analysis-level fan-out, and kill/resume of
a checkpointed parallel run.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest

from repro.core.features import PerformanceFeature, ToleranceBounds
from repro.core.fepia import FeatureSpec, RobustnessAnalysis
from repro.core.mappings import LinearMapping, QuadraticMapping
from repro.core.perturbation import PerturbationParameter
from repro.core.radius import RadiusProblem, compute_radius
from repro.parallel.executor import ParallelExecutor, Task
from repro.resilience.checkpoint import Checkpoint, run_checkpointed

EXPERIMENT_IDS = ["E2", "E5", "E11", "E16"]  # seeded and deterministic mix


def _experiments_payload(results) -> str:
    from repro.io.serialize import to_dict
    return json.dumps({k: to_dict(v) for k, v in results.items()},
                      sort_keys=True)


def _build_analysis(seed: int = 3) -> RobustnessAnalysis:
    """A small picklable two-feature, two-kind analysis."""
    loads = PerturbationParameter.nonnegative("loads", [2.0, 3.0])
    sizes = PerturbationParameter.nonnegative("sizes", [1.0])
    latency = LinearMapping([1.0, 1.0, 0.5])
    phi_lat = latency.value(np.array([2.0, 3.0, 1.0]))
    power = QuadraticMapping(np.eye(3) * 0.1, [0.2, 0.1, 0.3])
    phi_pow = power.value(np.array([2.0, 3.0, 1.0]))
    return RobustnessAnalysis(
        [FeatureSpec(PerformanceFeature(
             "latency", ToleranceBounds.relative(phi_lat, 1.3)), latency),
         FeatureSpec(PerformanceFeature(
             "power", ToleranceBounds.relative(phi_pow, 1.6)), power)],
        [loads, sizes], seed=seed)


class TestExperimentSweepInvariance:
    def test_run_all_experiments_workers_1_vs_4(self):
        from repro.analysis.runner import run_all_experiments
        serial = run_all_experiments(seed=2005, ids=EXPERIMENT_IDS)
        parallel = run_all_experiments(seed=2005, ids=EXPERIMENT_IDS,
                                       workers=4)
        assert _experiments_payload(serial) == _experiments_payload(parallel)

    def test_checkpoint_resumes_across_worker_counts(self, tmp_path):
        from repro.analysis.runner import run_all_experiments
        ckpt = tmp_path / "sweep.json"
        serial = run_all_experiments(seed=2005, ids=EXPERIMENT_IDS,
                                     checkpoint_path=ckpt)
        # meta deliberately excludes the worker count: a checkpoint written
        # serially must resume under parallelism (and vice versa)
        resumed = run_all_experiments(seed=2005, ids=EXPERIMENT_IDS,
                                      checkpoint_path=ckpt, resume=True,
                                      workers=4)
        assert _experiments_payload(serial) == _experiments_payload(resumed)


class TestValidationInvariance:
    def test_validate_analysis_workers_1_vs_4(self):
        from repro.montecarlo.validate import (
            _validation_to_payload,
            validate_analysis,
        )
        serial = validate_analysis(_build_analysis(), n_samples=400, seed=11)
        parallel = validate_analysis(_build_analysis(), n_samples=400,
                                     seed=11, workers=4)
        encode = _validation_to_payload
        assert json.dumps({k: encode(v) for k, v in serial.items()},
                          sort_keys=True) \
            == json.dumps({k: encode(v) for k, v in parallel.items()},
                          sort_keys=True)

    def test_validate_radius_chunked_workers_1_vs_4(self):
        from repro.montecarlo.validate import validate_radius
        analysis = _build_analysis()
        spec = analysis.features[0]
        problem = analysis.pspace_problem(spec)
        result = analysis.radius(spec)
        serial = validate_radius(problem, result, n_samples=900,
                                 chunk_size=300, seed=5)
        parallel = validate_radius(problem, result, n_samples=900,
                                   chunk_size=300, seed=5, workers=4)
        assert serial == parallel


class TestRadiusFanOutInvariance:
    def test_per_bound_fan_out_matches_serial(self):
        mapping = LinearMapping([1.0, 2.0])
        origin = np.array([2.0, 1.0])
        problem = RadiusProblem(
            mapping, origin,
            ToleranceBounds(beta_min=1.0, beta_max=9.0))
        serial = compute_radius(problem, cache=False)
        with ParallelExecutor(2) as pool:
            parallel = compute_radius(problem, cache=False, executor=pool)
            assert pool.dispatched == 2  # one task per finite bound
        assert parallel.radius == serial.radius
        assert parallel.bound_hit == serial.bound_hit
        assert parallel.per_bound == serial.per_bound
        assert parallel.method == serial.method
        np.testing.assert_array_equal(parallel.boundary_point,
                                      serial.boundary_point)
        # same solver trail, modulo wall-clock timings
        assert [(a.solver, a.bound, a.outcome) for a in parallel.diagnostics] \
            == [(a.solver, a.bound, a.outcome) for a in serial.diagnostics]

    def test_analysis_level_fan_out_matches_serial(self):
        serial = _build_analysis()
        parallel = _build_analysis()
        parallel_exec = ParallelExecutor(2)
        parallel.executor = parallel_exec
        parallel.workers = 2
        try:
            assert parallel.rho() == serial.rho()
            for name, result in serial.radii().items():
                other = parallel.radii()[name]
                assert other.radius == result.radius
                assert other.per_bound == result.per_bound
        finally:
            parallel_exec.close()

    def test_workers_constructor_argument(self):
        serial = _build_analysis()
        parallel = RobustnessAnalysis(
            serial.features, serial.params, seed=3, workers=2)
        try:
            assert parallel.rho() == serial.rho()
        finally:
            parallel.executor.close()


# ----------------------------------------------------------------------
# kill/resume of a checkpointed parallel run
# ----------------------------------------------------------------------
def _gated(x: int, flag: str):
    """Deterministic work that crashes past x=1 until the flag file exists."""
    if x >= 2 and not pathlib.Path(flag).exists():
        raise RuntimeError("simulated crash")
    return {"value": x * 10}


class TestParallelKillResume:
    def test_crash_keeps_completed_waves_and_resume_is_identical(
            self, tmp_path):
        flag = tmp_path / "recovered.flag"
        ckpt_path = tmp_path / "run.json"
        items = [(f"k{i}", Task(_gated, (i, str(flag)))) for i in range(6)]
        meta = {"kind": "gated", "n": 6}

        with ParallelExecutor(2) as pool:
            with pytest.raises(RuntimeError, match="simulated crash"):
                run_checkpointed(items, path=ckpt_path, meta=meta,
                                 executor=pool)

        # the first wave (two items with workers=2) survived the crash
        stored = Checkpoint(ckpt_path).load(expect_meta=meta)
        assert set(stored) == {"k0", "k1"}

        flag.touch()
        with ParallelExecutor(2) as pool:
            resumed = run_checkpointed(items, path=ckpt_path, meta=meta,
                                       executor=pool)
        uninterrupted = {f"k{i}": {"value": i * 10} for i in range(6)}
        assert resumed == uninterrupted

    def test_serial_crash_resumes_under_parallelism(self, tmp_path):
        flag = tmp_path / "recovered.flag"
        ckpt_path = tmp_path / "run.json"
        items = [(f"k{i}", Task(_gated, (i, str(flag)))) for i in range(6)]
        meta = {"kind": "gated", "n": 6}

        with pytest.raises(RuntimeError, match="simulated crash"):
            run_checkpointed(items, path=ckpt_path, meta=meta)

        flag.touch()
        with ParallelExecutor(3) as pool:
            resumed = run_checkpointed(items, path=ckpt_path, meta=meta,
                                       executor=pool)
        assert resumed == {f"k{i}": {"value": i * 10} for i in range(6)}
