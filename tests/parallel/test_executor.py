"""Unit tests for :mod:`repro.parallel.executor`."""

from __future__ import annotations

import pickle

import pytest

from repro.exceptions import SpecificationError
from repro.parallel.executor import (
    ParallelExecutor,
    Task,
    default_workers,
    executor_scope,
)


def _square(x):
    return x * x


def _add(x, y, offset=0):
    return x + y + offset


def _boom():
    raise RuntimeError("task exploded")


class TestTask:
    def test_call_runs_function(self):
        assert Task(_square, (3,))() == 9

    def test_kwargs(self):
        assert Task(_add, (1, 2), {"offset": 10})() == 13

    def test_picklable(self):
        task = Task(_add, (1, 2), {"offset": 10})
        assert pickle.loads(pickle.dumps(task))() == 13


class TestParallelExecutor:
    def test_workers_must_be_positive(self):
        with pytest.raises(SpecificationError):
            ParallelExecutor(0)

    def test_serial_run_preserves_order(self):
        with ParallelExecutor(1) as pool:
            assert pool.run([Task(_square, (i,)) for i in range(6)]) \
                == [i * i for i in range(6)]
            assert pool.dispatched == 0  # never touched a pool

    def test_parallel_run_preserves_order(self):
        with ParallelExecutor(2) as pool:
            assert pool.run([Task(_square, (i,)) for i in range(6)]) \
                == [i * i for i in range(6)]
            assert pool.dispatched == 6
            assert pool.fallbacks == 0

    def test_single_task_batch_runs_in_process(self):
        with ParallelExecutor(4) as pool:
            assert pool.run([Task(_square, (5,))]) == [25]
            assert pool.dispatched == 0

    def test_non_picklable_batch_falls_back_serially(self):
        with ParallelExecutor(2) as pool:
            results = pool.run([lambda: 1, lambda: 2])
            assert results == [1, 2]
            assert pool.fallbacks == 1
            assert "non-picklable" in pool.last_fallback_reason

    def test_task_exception_propagates(self):
        with ParallelExecutor(2) as pool:
            with pytest.raises(RuntimeError, match="task exploded"):
                pool.run([Task(_boom), Task(_boom)])

    def test_map(self):
        with ParallelExecutor(2) as pool:
            assert pool.map(_square, [(i,) for i in range(4)]) == [0, 1, 4, 9]

    def test_pickled_executor_degrades_to_serial(self):
        with ParallelExecutor(4) as pool:
            clone = pickle.loads(pickle.dumps(pool))
        assert clone.workers == 1
        assert clone.run([Task(_square, (2,)), Task(_square, (3,))]) == [4, 9]

    def test_stats_shape(self):
        with ParallelExecutor(2) as pool:
            pool.run([Task(_square, (i,)) for i in range(3)])
            stats = pool.stats()
        assert stats["workers"] == 2
        assert stats["dispatched"] == 3
        assert stats["fallbacks"] == 0

    def test_close_is_idempotent(self):
        pool = ParallelExecutor(2)
        pool.run([Task(_square, (i,)) for i in range(3)])
        pool.close()
        pool.close()

    def test_default_workers_is_positive(self):
        assert default_workers() >= 1


class TestExecutorScope:
    def test_given_executor_is_reused_and_not_closed(self):
        owned = ParallelExecutor(2)
        with executor_scope(owned, 1) as pool:
            assert pool is owned
            pool.run([Task(_square, (i,)) for i in range(3)])
        # the scope must not have shut the caller's pool down
        assert owned.run([Task(_square, (i,)) for i in range(3)]) == [0, 1, 4]
        owned.close()

    def test_workers_create_owned_executor(self):
        with executor_scope(None, 3) as pool:
            assert isinstance(pool, ParallelExecutor)
            assert pool.workers == 3

    def test_serial_yields_none(self):
        with executor_scope(None, 1) as pool:
            assert pool is None
        with executor_scope(None, None) as pool:
            assert pool is None
