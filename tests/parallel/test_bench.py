"""Tests for the parallel benchmark harness and its payload schema."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import SpecificationError
from repro.parallel.bench import (
    BENCH_SCHEMA,
    CHAOS_BENCH_SCHEMA,
    CURVE_SCHEMA,
    SWEEP_BENCH_SCHEMA,
    run_parallel_benchmark,
    validate_bench_payload,
    write_benchmark,
)


def _good_payload() -> dict:
    return {
        "schema": BENCH_SCHEMA,
        "workers": 2,
        "seed": 2005,
        "ids": ["E11", "E16"],
        "serial_seconds": 1.5,
        "parallel_seconds": 1.0,
        "speedup": 1.5,
        "identical": True,
        "executor": {"workers": 2, "dispatched": 2, "fallbacks": 0,
                     "last_fallback_reason": None},
        "cache": {"hits": 3, "misses": 5, "skips": 0, "evictions": 0,
                  "entries": 5, "hit_rate": 0.375},
    }


class TestValidateBenchPayload:
    def test_accepts_good_payload(self):
        payload = _good_payload()
        assert validate_bench_payload(payload) is payload

    def test_rejects_non_dict(self):
        with pytest.raises(SpecificationError, match="must be a dict"):
            validate_bench_payload([1, 2, 3])

    @pytest.mark.parametrize("field,value,match", [
        ("schema", "repro-bench-v0", "'schema'"),
        ("workers", 0, "'workers'"),
        ("ids", [], "'ids'"),
        ("ids", ["E11", 16], "'ids'"),
        ("serial_seconds", "fast", "'serial_seconds'"),
        ("parallel_seconds", -1.0, "'parallel_seconds'"),
        ("identical", "yes", "'identical'"),
        ("executor", None, "'executor'"),
        ("cache", None, "'cache'"),
    ])
    def test_rejects_bad_field(self, field, value, match):
        payload = _good_payload()
        payload[field] = value
        with pytest.raises(SpecificationError, match=match):
            validate_bench_payload(payload)

    def test_rejects_missing_field(self):
        payload = _good_payload()
        del payload["speedup"]
        with pytest.raises(SpecificationError, match="'speedup'"):
            validate_bench_payload(payload)

    def test_rejects_hit_rate_above_one(self):
        payload = _good_payload()
        payload["cache"]["hit_rate"] = 1.5
        with pytest.raises(SpecificationError, match="hit_rate"):
            validate_bench_payload(payload)

    def test_collects_every_problem(self):
        payload = _good_payload()
        payload["workers"] = 0
        payload["identical"] = "yes"
        with pytest.raises(SpecificationError) as excinfo:
            validate_bench_payload(payload)
        assert "'workers'" in str(excinfo.value)
        assert "'identical'" in str(excinfo.value)

    def test_bools_are_not_numbers(self):
        payload = _good_payload()
        payload["serial_seconds"] = True
        with pytest.raises(SpecificationError, match="'serial_seconds'"):
            validate_bench_payload(payload)


def _good_chaos_payload() -> dict:
    return {
        "schema": CHAOS_BENCH_SCHEMA,
        "workers": 2,
        "seed": 2005,
        "ids": ["E2"],
        "plain_seconds": 1.0,
        "supervised_seconds": 1.1,
        "chaos_seconds": 1.4,
        "supervision_overhead": 0.1,
        "recovery_overhead": 0.3,
        "identical": True,
        "chaos": {"kill_rate": 0.05, "exception_rate": 0.1,
                  "latency_rate": 0.1, "latency": 0.002,
                  "corrupt_rate": 0.05, "seed": 11,
                  "max_injections_per_task": 1},
        "executor": {"workers": 2, "dispatched": 8, "fallbacks": 0,
                     "last_fallback_reason": None, "retries": 3,
                     "quarantined": 0, "pool_breaks": 1, "respawns": 1,
                     "breaker": {"state": "closed", "opens": 0,
                                 "consecutive_failures": 0}},
    }


class TestValidateChaosPayload:
    def test_accepts_good_payload(self):
        payload = _good_chaos_payload()
        assert validate_bench_payload(payload) is payload

    @pytest.mark.parametrize("field", [
        "plain_seconds", "supervised_seconds", "chaos_seconds",
        "supervision_overhead", "recovery_overhead",
    ])
    def test_rejects_missing_timing(self, field):
        payload = _good_chaos_payload()
        del payload[field]
        with pytest.raises(SpecificationError, match=f"'{field}'"):
            validate_bench_payload(payload)

    def test_rejects_rate_above_one(self):
        payload = _good_chaos_payload()
        payload["chaos"]["kill_rate"] = 1.5
        with pytest.raises(SpecificationError, match="kill_rate.*<= 1"):
            validate_bench_payload(payload)

    def test_rejects_non_dict_chaos(self):
        payload = _good_chaos_payload()
        payload["chaos"] = "lots"
        with pytest.raises(SpecificationError, match="'chaos'"):
            validate_bench_payload(payload)

    @pytest.mark.parametrize("field", [
        "retries", "quarantined", "pool_breaks", "respawns",
    ])
    def test_rejects_missing_supervisor_counter(self, field):
        payload = _good_chaos_payload()
        del payload["executor"][field]
        with pytest.raises(SpecificationError, match=f"'{field}'"):
            validate_bench_payload(payload)

    def test_rejects_missing_breaker(self):
        payload = _good_chaos_payload()
        del payload["executor"]["breaker"]
        with pytest.raises(SpecificationError, match="'breaker'"):
            validate_bench_payload(payload)

    def test_unknown_schema_error_names_both_schemas(self):
        payload = _good_chaos_payload()
        payload["schema"] = "repro-bench-v0"
        with pytest.raises(SpecificationError) as excinfo:
            validate_bench_payload(payload)
        assert BENCH_SCHEMA in str(excinfo.value)
        assert CHAOS_BENCH_SCHEMA in str(excinfo.value)

    def test_write_benchmark_accepts_chaos_payload(self, tmp_path):
        out = tmp_path / "BENCH_chaos.json"
        write_benchmark(_good_chaos_payload(), out)
        assert json.loads(out.read_text()) == _good_chaos_payload()


class TestWriteBenchmark:
    def test_writes_valid_json(self, tmp_path):
        out = tmp_path / "BENCH_parallel.json"
        write_benchmark(_good_payload(), out)
        assert json.loads(out.read_text()) == _good_payload()

    def test_refuses_invalid_payload(self, tmp_path):
        payload = _good_payload()
        payload["schema"] = "nope"
        with pytest.raises(SpecificationError):
            write_benchmark(payload, tmp_path / "x.json")
        assert not (tmp_path / "x.json").exists()


class TestRunParallelBenchmark:
    def test_tiny_run_emits_valid_identical_payload(self, tmp_path):
        payload = run_parallel_benchmark(workers=2, seed=7,
                                         ids=["E11", "E16"])
        validate_bench_payload(payload)
        assert payload["identical"] is True
        assert payload["workers"] == 2
        assert payload["ids"] == ["E11", "E16"]
        assert payload["executor"]["dispatched"] == 2
        # end-to-end: the payload must survive the JSON round-trip CI does
        out = tmp_path / "BENCH_parallel.json"
        write_benchmark(payload, out)
        validate_bench_payload(json.loads(out.read_text()))

    def test_rejects_bad_ids(self):
        with pytest.raises(SpecificationError):
            run_parallel_benchmark(workers=2, ids=["E99"])

    def test_rejects_bad_workers(self):
        with pytest.raises(SpecificationError):
            run_parallel_benchmark(workers=0)


class TestObservabilityPayloadKey:
    def test_absent_key_stays_valid(self):
        payload = _good_payload()
        assert "observability" not in payload
        validate_bench_payload(payload)

    def test_present_key_is_validated(self):
        payload = _good_payload()
        payload["observability"] = {
            "metrics": {"radius.solves": {"kind": "counter", "value": 4.0}},
            "spans": 12, "events": 3}
        validate_bench_payload(payload)

    def test_malformed_key_rejected(self):
        payload = _good_payload()
        payload["observability"] = "lots"
        with pytest.raises(SpecificationError, match="observability"):
            validate_bench_payload(payload)
        payload["observability"] = {"metrics": [], "spans": 1, "events": 1}
        with pytest.raises(SpecificationError, match="'metrics'"):
            validate_bench_payload(payload)

    def test_traced_benchmark_carries_the_key(self):
        from repro.observability import observing
        with observing():
            payload = run_parallel_benchmark(workers=2, seed=7, ids=["E16"])
        validate_bench_payload(payload)
        assert payload["observability"]["spans"] > 0
        assert isinstance(payload["observability"]["metrics"], dict)
        # untraced runs stay schema-identical to the previous release
        untraced = run_parallel_benchmark(workers=2, seed=7, ids=["E16"])
        assert "observability" not in untraced
        # and tracing never changes the measured numbers' identity verdict
        assert payload["identical"] and untraced["identical"]


def _good_curve_payload() -> dict:
    return {
        "schema": CURVE_SCHEMA,
        "seed": 2005,
        "system": "makespan/MCT gamma ETC 24x6",
        "feature": "makespan",
        "points": 2,
        "curve": [
            {"beta": 1.05, "rho": 1.25, "feasible": True,
             "critical": "makespan"},
            {"beta": 2.0, "rho": None, "feasible": False, "critical": None},
        ],
        "stats": {"feasible": 1, "families": 1, "warm_starts": 1,
                  "warm_hits": 0, "solves": 1},
    }


def _good_sweep_payload() -> dict:
    return {
        "schema": SWEEP_BENCH_SCHEMA,
        "seed": 2005,
        "points": 100,
        "tasks": 32,
        "machines": 8,
        "beta_lo": 1.05,
        "beta_hi": 2.0,
        "cold_seconds": 2.0,
        "warm_seconds": 1.0,
        "speedup": 2.0,
        "cold_evals": 3000,
        "warm_evals": 200,
        "eval_reduction": 15.0,
        "warm_starts": 100,
        "warm_hits": 27,
        "rho_first": 1.2,
        "rho_last": 24.5,
        "identical": True,
    }


class TestValidateCurvePayload:
    def test_accepts_good_payload(self):
        payload = _good_curve_payload()
        assert validate_bench_payload(payload) is payload

    @pytest.mark.parametrize("field", ["system", "feature"])
    def test_rejects_empty_strings(self, field):
        payload = _good_curve_payload()
        payload[field] = ""
        with pytest.raises(SpecificationError, match=field):
            validate_bench_payload(payload)

    def test_rejects_empty_curve(self):
        payload = _good_curve_payload()
        payload["curve"] = []
        with pytest.raises(SpecificationError, match="'curve'"):
            validate_bench_payload(payload)

    def test_rejects_bad_point(self):
        payload = _good_curve_payload()
        payload["curve"][0]["beta"] = 0.5
        with pytest.raises(SpecificationError, match=r"curve\[0\]"):
            validate_bench_payload(payload)
        payload = _good_curve_payload()
        payload["curve"][1]["feasible"] = "no"
        with pytest.raises(SpecificationError, match="feasible"):
            validate_bench_payload(payload)
        payload = _good_curve_payload()
        payload["curve"][0]["critical"] = ""
        with pytest.raises(SpecificationError, match="critical"):
            validate_bench_payload(payload)

    @pytest.mark.parametrize("field", ["warm_starts", "warm_hits", "solves"])
    def test_rejects_missing_stat(self, field):
        payload = _good_curve_payload()
        del payload["stats"][field]
        with pytest.raises(SpecificationError, match=field):
            validate_bench_payload(payload)

    @pytest.mark.parametrize("field",
                             ["workers", "cold_seconds", "warm_seconds"])
    def test_rejects_timing_and_worker_fields(self, field):
        # The curve artifact is byte-stable across machines and worker
        # counts; any timing field would break that contract.
        payload = _good_curve_payload()
        payload[field] = 1
        with pytest.raises(SpecificationError, match="byte-identity"):
            validate_bench_payload(payload)

    def test_write_benchmark_accepts_curve_payload(self, tmp_path):
        out = tmp_path / "CURVE.json"
        write_benchmark(_good_curve_payload(), out)
        assert json.loads(out.read_text()) == _good_curve_payload()


class TestValidateSweepBenchPayload:
    def test_accepts_good_payload(self):
        payload = _good_sweep_payload()
        assert validate_bench_payload(payload) is payload

    def test_rejects_single_point_sweep(self):
        payload = _good_sweep_payload()
        payload["points"] = 1
        with pytest.raises(SpecificationError, match="points"):
            validate_bench_payload(payload)

    @pytest.mark.parametrize("field", ["cold_seconds", "eval_reduction",
                                       "warm_hits", "rho_first"])
    def test_rejects_missing_measurement(self, field):
        payload = _good_sweep_payload()
        del payload[field]
        with pytest.raises(SpecificationError, match=field):
            validate_bench_payload(payload)

    def test_rejects_non_bool_identical(self):
        payload = _good_sweep_payload()
        payload["identical"] = 1
        with pytest.raises(SpecificationError, match="identical"):
            validate_bench_payload(payload)

    def test_unknown_schema_error_names_new_schemas(self):
        payload = _good_sweep_payload()
        payload["schema"] = "repro-bench-v0"
        with pytest.raises(SpecificationError) as excinfo:
            validate_bench_payload(payload)
        assert CURVE_SCHEMA in str(excinfo.value)
        assert SWEEP_BENCH_SCHEMA in str(excinfo.value)
