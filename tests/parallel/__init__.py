"""Tests for the parallel execution engine and radius cache."""
