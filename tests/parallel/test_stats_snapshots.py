"""stats() snapshot semantics: immutable, decoupled from live counters."""

import numpy as np

from repro.core.features import ToleranceBounds
from repro.core.mappings import LinearMapping
from repro.core.radius import RadiusProblem, compute_radius
from repro.parallel.cache import RadiusCache
from repro.parallel.executor import ParallelExecutor, Task


def _tenfold(x: int) -> int:
    return x * 10


def _problem(slope: float = 1.0) -> RadiusProblem:
    return RadiusProblem(LinearMapping([slope, 2.0]), np.array([2.0, 1.0]),
                         ToleranceBounds(beta_min=1.0, beta_max=9.0))


class TestExecutorStatsSnapshot:
    def test_snapshot_does_not_track_later_dispatches(self):
        with ParallelExecutor(2) as pool:
            pool.run([Task(_tenfold, (1,)), Task(_tenfold, (2,))])
            before = pool.stats()
            pool.run([Task(_tenfold, (3,)), Task(_tenfold, (4,))])
            after = pool.stats()
        assert before["dispatched"] == 2
        assert after["dispatched"] == 4

    def test_mutating_the_snapshot_leaves_the_executor_alone(self):
        with ParallelExecutor(2) as pool:
            pool.run([Task(_tenfold, (1,)), Task(_tenfold, (2,))])
            snap = pool.stats()
            snap["dispatched"] = -999
            snap["workers"] = 0
            assert pool.stats()["dispatched"] == 2
            assert pool.stats()["workers"] == 2

    def test_each_call_returns_a_fresh_dict(self):
        with ParallelExecutor(2) as pool:
            assert pool.stats() is not pool.stats()


class TestCacheStatsSnapshot:
    def test_snapshot_does_not_track_later_traffic(self):
        cache = RadiusCache()
        compute_radius(_problem(), cache=cache)       # miss
        before = cache.stats()
        compute_radius(_problem(), cache=cache)       # hit
        compute_radius(_problem(3.0), cache=cache)    # miss
        after = cache.stats()
        assert (before["hits"], before["misses"]) == (0, 1)
        assert (after["hits"], after["misses"]) == (1, 2)
        assert after["entries"] == 2

    def test_mutating_the_snapshot_leaves_the_cache_alone(self):
        cache = RadiusCache()
        compute_radius(_problem(), cache=cache)
        snap = cache.stats()
        snap["misses"] = 1000
        snap["hit_rate"] = 2.0
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hit_rate"] == 0.0

    def test_each_call_returns_a_fresh_dict(self):
        cache = RadiusCache()
        assert cache.stats() is not cache.stats()
