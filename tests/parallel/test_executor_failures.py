"""Failure-path coverage for the parallel executor.

The happy paths live in ``test_executor.py``; these tests break the pool
mid-batch (via a synthetic pool, so no real processes die) and assert
the fallback accounting stays honest:

* worker payloads absorbed before the break are **not** absorbed again
  when the unfinished tail re-runs in-process (the double-absorb
  regression), and ``executor.dispatched`` only counts tasks that really
  ran on a worker;
* ``executor_scope`` releases an owned pool even when the scoped batch
  raises;
* ``stats()`` and ``close()`` behave after fallbacks and broken pools.
"""

from __future__ import annotations

from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.observability import get_metrics, observing
from repro.parallel.executor import ParallelExecutor, Task, executor_scope


def _tick(x):
    """A task that leaves a fingerprint in the active metrics session."""
    get_metrics().inc("test.task_runs")
    return x * 10


def _boom():
    raise RuntimeError("scoped batch failure")


class _BreakingPool:
    """A fake process pool that dies after ``good`` completed tasks.

    Runs tasks in-process through the real trampoline, so worker-side
    payload capture behaves exactly as on a live pool — which is what
    the double-absorb regression is about.
    """

    def __init__(self, good: int) -> None:
        self.good = good
        self.shutdowns = 0

    def map(self, fn, tasks):
        def _results():
            for i, task in enumerate(tasks):
                if i >= self.good:
                    raise BrokenProcessPool("synthetic pool break")
                yield fn(task)
        return _results()

    def shutdown(self, wait=True):  # noqa: ARG002 - pool API
        self.shutdowns += 1


def _broken_executor(good: int, workers: int = 2):
    """A ParallelExecutor whose pool breaks after ``good`` tasks."""
    executor = ParallelExecutor(workers)
    pool = _BreakingPool(good)
    executor._pool = pool  # _ensure_pool returns it as-is
    return executor, pool


class TestBrokenPoolMidBatch:
    def test_unfinished_tail_reruns_and_results_stay_ordered(self):
        executor, _ = _broken_executor(good=2)
        tasks = [Task(_tick, (i,)) for i in range(5)]
        assert executor.run(tasks) == [0, 10, 20, 30, 40]
        assert executor.fallbacks == 1
        assert "broken process pool" in executor.last_fallback_reason
        # only the two tasks that finished on the "pool" count as
        # dispatched; the re-run tail is fallback work
        assert executor.dispatched == 2
        # the broken pool was dropped so the next batch gets a fresh one
        assert executor._pool is None

    def test_no_double_absorb_of_worker_payloads(self):
        # Regression: payloads absorbed before the break used to be
        # absorbed again when the *full* batch re-ran in-process,
        # double-counting every span, metric and event.
        executor, _ = _broken_executor(good=2)
        tasks = [Task(_tick, (i,)) for i in range(5)]
        with observing() as obs:
            results = executor.run(tasks)
        assert results == [0, 10, 20, 30, 40]
        snap = obs.metrics.snapshot()
        # each task fingerprinted exactly once: 2 via absorbed worker
        # payloads + 3 in-process, never 2 + 5
        assert snap["test.task_runs"]["value"] == 5
        assert snap["executor.dispatched"]["value"] == 2
        assert snap["executor.fallbacks"]["value"] == 1
        # one worker-task span per *completed* pool task
        names = [s.name for s in obs.recorder.spans()]
        assert names.count("parallel.task") == 2
        kinds = [e.kind for e in obs.events.events()]
        assert kinds.count("pool.fallback") == 1

    def test_traced_break_matches_serial_task_accounting(self):
        # The merged session must agree with a plain serial run on
        # everything the tasks themselves record.
        with observing() as serial_obs:
            serial = ParallelExecutor(1).run(
                [Task(_tick, (i,)) for i in range(5)])
        executor, _ = _broken_executor(good=3)
        with observing() as broken_obs:
            broken = executor.run([Task(_tick, (i,)) for i in range(5)])
        assert broken == serial
        assert broken_obs.metrics.snapshot()["test.task_runs"] == \
            serial_obs.metrics.snapshot()["test.task_runs"]

    def test_immediate_break_reruns_everything(self):
        executor, _ = _broken_executor(good=0)
        assert executor.run([Task(_tick, (i,)) for i in range(3)]) \
            == [0, 10, 20]
        assert executor.dispatched == 0
        assert executor.fallbacks == 1

    def test_close_after_broken_pool_is_safe(self):
        executor, pool = _broken_executor(good=1)
        executor.run([Task(_tick, (i,)) for i in range(3)])
        executor.close()  # nothing to shut down: pool already dropped
        executor.close()
        assert pool.shutdowns == 0  # the dead pool is abandoned, not
        # re-shutdown — ProcessPoolExecutor already tore itself down

    def test_next_batch_after_break_builds_a_fresh_pool(self):
        executor, _ = _broken_executor(good=1)
        executor.run([Task(_tick, (i,)) for i in range(3)])
        with executor:
            assert executor.run([Task(_tick, (i,)) for i in range(3)]) \
                == [0, 10, 20]
        assert executor.dispatched == 1 + 3


class TestStatsOnFailurePaths:
    def test_stats_after_fallback(self):
        with ParallelExecutor(2) as pool:
            pool.run([lambda: 1, lambda: 2])  # non-picklable -> fallback
            stats = pool.stats()
        assert stats["fallbacks"] == 1
        assert stats["dispatched"] == 0
        assert "non-picklable" in stats["last_fallback_reason"]

    def test_stats_after_broken_pool(self):
        executor, _ = _broken_executor(good=2)
        executor.run([Task(_tick, (i,)) for i in range(4)])
        stats = executor.stats()
        assert stats["dispatched"] == 2
        assert stats["fallbacks"] == 1
        assert "broken process pool" in stats["last_fallback_reason"]

    def test_stats_snapshot_is_decoupled_from_later_runs(self):
        executor, _ = _broken_executor(good=1)
        executor.run([Task(_tick, (i,)) for i in range(3)])
        before = executor.stats()
        with executor:
            executor.run([Task(_tick, (i,)) for i in range(3)])
        assert executor.stats()["dispatched"] == 4
        assert before["dispatched"] == 1


class TestExecutorScopeFailurePaths:
    def test_owned_executor_closed_when_batch_raises(self):
        scope = executor_scope(None, 2)
        with pytest.raises(RuntimeError, match="scoped batch failure"):
            with scope as pool:
                owned = pool
                pool.run([Task(_boom), Task(_boom)])
        assert scope._owned is None  # scope released its executor
        assert owned._pool is None  # and the process pool is gone

    def test_given_executor_survives_a_raising_batch(self):
        caller_owned = ParallelExecutor(2)
        with pytest.raises(RuntimeError):
            with executor_scope(caller_owned, None) as pool:
                pool.run([Task(_boom), Task(_boom)])
        # the caller's executor still works afterwards
        assert caller_owned.run([Task(_tick, (1,)), Task(_tick, (2,))]) \
            == [10, 20]
        caller_owned.close()
