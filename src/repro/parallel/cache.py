"""Radius-result caching keyed by a stable problem fingerprint.

Requirement sweeps, weighting-sensitivity studies, and placement
comparisons revisit the same operating points over and over: the same
mapping, origin, tolerance interval, norm, and box constraints produce
the same :class:`~repro.core.radius.RadiusResult` every time (for a fixed
seed), yet each visit used to pay for a fresh solve.  "Fast Construction
of Robustness Degradation Function" (Chen et al.) motivates exactly this
reuse across repeated radius evaluations at nearby operating points.

:class:`RadiusCache` memoises solved radii under a fingerprint built from

* the mapping's *structure key* (see
  :meth:`~repro.core.mappings.FeatureMapping.structure_key`) — exact
  coefficient bytes, recursively for composite mappings;
* the origin vector, tolerance bounds, norm, and box constraints;
* the solver ``method`` and the ``seed`` (stochastic solvers draw from
  it, so different seeds must never share an entry) — *except* for
  structurally deterministic solves (an affine mapping, or a
  diagonal-quadratic under ``method="auto"`` with no box and the
  Euclidean norm), whose dispatch can never reach a seeded solver: those
  are keyed on a ``deterministic`` marker instead, so repeated
  ``validate_radius`` sweeps across seeds share one entry.

Mappings without a stable structure key (arbitrary callables) and — for
seed-dependent solves only — stateful :class:`numpy.random.Generator`
seeds are *unfingerprintable*: lookups skip the cache entirely and are
counted separately, so the diagnostics distinguish "no reuse available"
from "reuse missed".

A process-wide default cache can be installed (the CLI does this unless
``--no-cache`` is given); :func:`~repro.core.radius.compute_radius`
consults it whenever no explicit cache decision is passed.
"""

from __future__ import annotations

import hashlib
import threading
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import SpecificationError
from repro.observability import emit_event, get_metrics

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.radius import RadiusProblem, RadiusResult

__all__ = [
    "RadiusCache",
    "install_default_cache",
    "uninstall_default_cache",
    "get_default_cache",
    "resolve_cache",
]


def _is_deterministic_solve(problem: "RadiusProblem", method: str) -> bool:
    """Whether the dispatch for ``problem`` can never reach a seeded solver.

    Mirrors the dispatch rules of
    :func:`~repro.core.radius._solve_one_bound`: an affine mapping is
    handled entirely by the closed-form solvers unless a box forces the
    non-Euclidean fall-through to directional bisection, and a
    diagonal-quadratic goes to the exact ellipsoid projection under
    ``method="auto"`` with the Euclidean norm and no box.  Every other
    path (numeric multistart, bisection) draws from the seed.
    """
    if method == "analytic":
        return True
    if method != "auto":
        return False
    # Imported lazily: repro.core.boundary is cheap but repro.core.radius
    # imports this module at import time.
    from repro.core.boundary import as_diagonal_quadratic, as_linear

    if as_linear(problem.mapping) is not None:
        has_box = problem.lower is not None or problem.upper is not None
        # Affine + box + non-Euclidean norm can fall through to the
        # seeded directional solver when the hyperplane is unreachable.
        return problem.norm == 2 or not has_box
    return (problem.norm == 2
            and problem.lower is None and problem.upper is None
            and as_diagonal_quadratic(problem.mapping) is not None)


def _digest_array(arr: np.ndarray | None) -> str:
    """Exact, shape-aware digest of an array (``-`` for ``None``)."""
    if arr is None:
        return "-"
    arr = np.ascontiguousarray(arr)
    h = hashlib.sha256()
    h.update(str(arr.dtype).encode())
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())
    return h.hexdigest()


class RadiusCache:
    """Memoisation of radius solves keyed by problem fingerprint.

    Parameters
    ----------
    max_entries:
        Optional size bound; when full, the oldest entry is evicted
        (insertion order).  ``None`` means unbounded.

    Notes
    -----
    Cached :class:`~repro.core.radius.RadiusResult` objects are returned
    as-is (they are frozen dataclasses); callers must not mutate the
    arrays they carry.  The cache is thread-safe; it is *not* shared
    across worker processes — each worker builds its own, and the solves
    a worker performs are deterministic, so cross-process reuse is a pure
    wall-clock optimisation, never a correctness concern.
    """

    def __init__(self, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise SpecificationError(
                f"max_entries must be >= 1 or None, got {max_entries}")
        self.max_entries = max_entries
        self._store: dict[str, "RadiusResult"] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        #: Lookups that could not be fingerprinted (callable mappings,
        #: stateful Generator seeds) and therefore bypassed the cache.
        self.skips = 0
        #: Entries dropped to make room under ``max_entries``.
        self.evictions = 0

    # ------------------------------------------------------------------
    # fingerprinting
    # ------------------------------------------------------------------
    def key(self, problem: "RadiusProblem", *, method: str = "auto",
            seed=None) -> str | None:
        """Stable cache key for a problem, or ``None`` if unfingerprintable.

        ``None`` is returned (and counted as a skip) when the mapping has
        no structure key, or when the solve is seed-dependent and the
        seed is a stateful :class:`numpy.random.Generator` whose stream
        position cannot be fingerprinted.  Structurally deterministic
        solves (see :func:`_is_deterministic_solve`) replace the seed
        with a fixed marker, so every seed shares their entries — no
        randomness is ever drawn for them.
        """
        structure = problem.mapping.structure_key()
        deterministic = (structure is not None
                         and _is_deterministic_solve(problem, method))
        if structure is None or (not deterministic
                                 and isinstance(seed, np.random.Generator)):
            with self._lock:
                self.skips += 1
            get_metrics().inc("cache.skips")
            emit_event("cache.skip",
                       reason=("no structure key" if structure is None
                               else "stateful Generator seed"))
            return None
        h = hashlib.sha256()
        h.update(repr(structure).encode())
        h.update(_digest_array(problem.origin).encode())
        h.update(repr((float(problem.bounds.beta_min),
                       float(problem.bounds.beta_max))).encode())
        h.update(repr(problem.norm).encode())
        h.update(_digest_array(problem.lower).encode())
        h.update(_digest_array(problem.upper).encode())
        h.update(repr(method).encode())
        h.update(b"deterministic" if deterministic else repr(seed).encode())
        return h.hexdigest()

    # ------------------------------------------------------------------
    # storage
    # ------------------------------------------------------------------
    def get(self, key: str | None) -> "RadiusResult | None":
        """Look a key up, counting the hit or miss (``None`` key: no-op)."""
        if key is None:
            return None
        with self._lock:
            result = self._store.get(key)
            if result is None:
                self.misses += 1
            else:
                self.hits += 1
        if result is None:
            get_metrics().inc("cache.misses")
            emit_event("cache.miss", key=key[:12])
        else:
            get_metrics().inc("cache.hits")
            emit_event("cache.hit", key=key[:12])
        return result

    def put(self, key: str | None, result: "RadiusResult") -> None:
        """Store a solved result (``None`` key: no-op)."""
        if key is None:
            return
        evicted = None
        with self._lock:
            if self.max_entries is not None \
                    and key not in self._store \
                    and len(self._store) >= self.max_entries:
                evicted = next(iter(self._store))
                self._store.pop(evicted)
                self.evictions += 1
            self._store[key] = result
        if evicted is not None:
            get_metrics().inc("cache.evictions")
            emit_event("cache.evict", key=evicted[:12])

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._store.clear()
            self.hits = self.misses = self.skips = self.evictions = 0

    def __len__(self) -> int:
        return len(self._store)

    def stats(self) -> dict:
        """Hit/miss/skip/eviction counters for diagnostics and payloads.

        Returns an immutable *snapshot* taken under the lock: a fresh
        dict of plain values decoupled from the live cache, so callers
        holding a stats dict never observe later mutation.  With an
        observability session active the same traffic also lands in the
        ``cache.*`` metrics and as ``cache.hit``/``cache.miss``/
        ``cache.skip``/``cache.evict`` events.
        """
        with self._lock:
            total = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "skips": self.skips,
                "evictions": self.evictions,
                "entries": len(self._store),
                "hit_rate": (self.hits / total) if total else 0.0,
            }

    def __repr__(self) -> str:
        s = self.stats()
        return (f"RadiusCache(entries={s['entries']}, hits={s['hits']}, "
                f"misses={s['misses']}, skips={s['skips']}, "
                f"evictions={s['evictions']})")


# ----------------------------------------------------------------------
# process-wide default cache
# ----------------------------------------------------------------------
_default_cache: RadiusCache | None = None


def install_default_cache(cache: RadiusCache | None = None) -> RadiusCache:
    """Install (or replace) the process-wide default radius cache.

    ``compute_radius`` and :class:`~repro.core.fepia.RobustnessAnalysis`
    consult the default cache whenever no explicit cache decision is made.
    Returns the installed cache (a fresh one when ``cache`` is ``None``).
    """
    global _default_cache
    _default_cache = cache if cache is not None else RadiusCache()
    return _default_cache


def uninstall_default_cache() -> None:
    """Remove the process-wide default cache (radius solves stop caching)."""
    global _default_cache
    _default_cache = None


def get_default_cache() -> RadiusCache | None:
    """The installed process-wide default cache, or ``None``."""
    return _default_cache


def resolve_cache(cache) -> RadiusCache | None:
    """Resolve the tri-state cache convention used across the library.

    ``None``
        defer to the installed default cache (possibly none);
    ``False``
        caching explicitly disabled for this call;
    a :class:`RadiusCache`
        use exactly that cache.
    """
    if cache is None:
        return _default_cache
    if cache is False:
        return None
    if isinstance(cache, RadiusCache):
        return cache
    raise SpecificationError(
        f"cache must be a RadiusCache, None or False, got {type(cache).__name__}")
