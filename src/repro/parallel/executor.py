"""Process-pool execution engine with a deterministic serial fallback.

The sweeps this library runs — per-experiment loops, chunked Monte-Carlo
soundness sampling, per-bound and per-parameter radius solves — are
embarrassingly parallel: many independent task evaluations whose results
are merged in a fixed order.  :class:`ParallelExecutor` fans such batches
out over a :class:`concurrent.futures.ProcessPoolExecutor` while
preserving the library's determinism contract:

* **Order preservation** — results come back in submission order, so the
  merged output is structurally identical to a serial run.
* **Seed independence** — callers derive each task's randomness from its
  own :func:`~repro.utils.rng.spawn_rngs` stream (or a plain integer
  seed), never from a stream shared across tasks, so the numbers a task
  produces do not depend on which worker ran it or when.
* **Serial fallback** — ``workers=1``, single-task batches, non-picklable
  task batches (e.g. a :class:`~repro.core.mappings.CallableMapping`
  closing over a lambda), and a broken pool all degrade to running the
  tasks in-process, in order.  The fallback is an optimisation decision
  only: the results are bit-identical either way.

Work crossing the process boundary must be picklable; :class:`Task` wraps
a module-level callable plus arguments into such a unit while remaining a
plain zero-argument callable for the serial path.
"""

from __future__ import annotations

import atexit
import logging
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.exceptions import SpecificationError
from repro.observability import (
    emit_event,
    get_metrics,
    get_observability,
    observed_call,
    span,
)

__all__ = ["Task", "ParallelExecutor", "default_workers", "executor_scope",
           "shared_executor", "reset_shared_executor"]

logger = logging.getLogger(__name__)


def default_workers() -> int:
    """A sensible worker count for this machine (``os.cpu_count``, floor 1)."""
    return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class Task:
    """A picklable unit of work: a module-level callable plus its arguments.

    Closures cannot cross a process boundary; a :class:`Task` built from a
    module-level function and picklable arguments can.  Calling the task
    runs it in-process, which is exactly what the serial fallback does —
    the two execution paths share one definition of the work.
    """

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)

    def __call__(self) -> Any:
        return self.fn(*self.args, **self.kwargs)


def _call_task(task: Callable[[], Any]) -> Any:
    """Top-level trampoline so the pool can pickle the invocation."""
    return task()


class ParallelExecutor:
    """Order-preserving fan-out of zero-argument tasks over worker processes.

    Parameters
    ----------
    workers:
        Maximum concurrent worker processes.  ``1`` never creates a pool —
        every batch runs serially in-process.

    Notes
    -----
    The underlying process pool is created lazily on the first parallel
    batch and reused across batches; call :meth:`close` (or use the
    executor as a context manager) to release it.  An executor that is
    itself pickled — e.g. riding along inside an analysis object shipped
    to a worker — deliberately unpickles as a *serial* executor, because
    nested process pools oversubscribe the machine and can deadlock under
    the ``fork`` start method.
    """

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise SpecificationError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self._pool: ProcessPoolExecutor | None = None
        #: Tasks that actually executed on a worker process.
        self.dispatched = 0
        #: Batches that degraded to the in-process serial path.
        self.fallbacks = 0
        #: Parallel batches served by an already-warm pool (no process
        #: spawn).  High reuse is the point of sharing an executor across
        #: calls; 0 on a fresh executor or after every batch broke it.
        self.pool_reuses = 0
        #: Why the most recent serial fallback happened (diagnostics).
        self.last_fallback_reason: str | None = None

    # ------------------------------------------------------------------
    # pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        else:
            self.pool_reuses += 1
            get_metrics().inc("executor.pool_reuses")
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __getstate__(self) -> dict:
        # Crossing a process boundary degrades to serial: nested pools
        # oversubscribe and can deadlock under fork.
        return {"workers": 1, "_pool": None, "dispatched": 0,
                "fallbacks": 0, "pool_reuses": 0,
                "last_fallback_reason": None}

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _fallback(self, tasks: Sequence[Callable[[], Any]],
                  reason: str) -> list[Any]:
        self.fallbacks += 1
        self.last_fallback_reason = reason
        get_metrics().inc("executor.fallbacks")
        emit_event("pool.fallback", tasks=len(tasks), reason=reason)
        logger.debug("parallel batch of %d task(s) running serially: %s",
                     len(tasks), reason)
        with span("parallel.fallback", tasks=len(tasks)):
            return [task() for task in tasks]

    def run(self, tasks: Sequence[Callable[[], Any]]) -> list[Any]:
        """Execute zero-argument tasks, returning results in task order.

        Tasks run on the process pool when there is parallelism to gain
        and the batch survives a pickling pre-flight; otherwise they run
        serially in-process.  Either way the result list matches the task
        order, and a task's exception propagates to the caller.

        With an observability session active, parallel batches dispatch
        through :func:`~repro.observability.observed_call`: each worker
        records its own spans/metrics/events and ships them home inside
        the result, where they are merged in submission order — results
        stay bit-identical with tracing on or off, for any worker count.
        """
        tasks = list(tasks)
        if self.workers <= 1 or len(tasks) <= 1:
            return [task() for task in tasks]
        try:
            pickle.dumps(tasks)
        except Exception as exc:  # pickling failures are wildly varied
            return self._fallback(tasks, f"non-picklable task batch: {exc!r}")
        obs = get_observability()
        # Completed results are collected (and their worker payloads
        # absorbed) incrementally, in submission order.  When the pool
        # breaks mid-batch only the *unfinished* tail is re-run in
        # process — re-running finished tasks would double-absorb their
        # spans/metrics/events and double-count executor.dispatched.
        results: list[Any] = []
        with span("parallel.dispatch", tasks=len(tasks),
                  workers=self.workers):
            try:
                if obs is None:
                    for result in self._ensure_pool().map(_call_task, tasks):
                        results.append(result)
                else:
                    for result, payload in self._ensure_pool().map(
                            observed_call, tasks):  # submission order
                        obs.absorb(payload)
                        results.append(result)
            except BrokenProcessPool as exc:
                self._pool = None  # a fresh pool will be built next batch
                self.dispatched += len(results)
                get_metrics().inc("executor.dispatched", len(results))
                remaining = tasks[len(results):]
                return results + self._fallback(
                    remaining, f"broken process pool: {exc!r}")
        self.dispatched += len(tasks)
        get_metrics().inc("executor.dispatched", len(tasks))
        return results

    def map(self, fn: Callable[..., Any],
            argtuples: Iterable[tuple]) -> list[Any]:
        """Apply a module-level function to positional-argument tuples."""
        return self.run([Task(fn, tuple(args)) for args in argtuples])

    def stats(self) -> dict:
        """Executor counters for diagnostics and benchmark payloads.

        Returns an immutable *snapshot*: a fresh dict of plain values,
        decoupled from the live executor — callers holding a stats dict
        never observe later mutation of the counters.
        """
        return {
            "workers": self.workers,
            "dispatched": self.dispatched,
            "fallbacks": self.fallbacks,
            "pool_reuses": self.pool_reuses,
            "last_fallback_reason": self.last_fallback_reason,
        }

    def __repr__(self) -> str:
        return f"ParallelExecutor(workers={self.workers})"


#: Process-wide executor reused across library calls (see
#: :func:`shared_executor`).
_shared: ParallelExecutor | None = None
_shared_atexit_registered = False


def reset_shared_executor() -> None:
    """Close the process-wide executor so the next use forks fresh workers.

    Forked workers snapshot module-level state (notably an installed
    default :class:`~repro.parallel.cache.RadiusCache`) at fork
    time and keep it for the pool's lifetime.  Code that changes such
    process-global state and needs the *next* parallel call to see the
    change — primarily tests — must reset the shared pool first.
    """
    global _shared
    if _shared is not None:
        _shared.close()
        _shared = None


# Backwards-compatible private alias used by atexit registration.
_close_shared_executor = reset_shared_executor


def shared_executor(workers: int) -> ParallelExecutor:
    """The process-wide executor for ``workers``, created on first use.

    Library entry points that take a plain ``workers`` count used to
    build (and tear down) a fresh pool *per call* — the dominant cost of
    short parallel calls is then process spawning, not solving.  Call
    sites that route through this helper instead share one long-lived
    executor per process: the first call pays the spawn, every later
    call with the same ``workers`` reuses the warm pool (visible as
    ``pool_reuses`` in :meth:`ParallelExecutor.stats`).

    Asking for a different ``workers`` count closes the previous shared
    executor and builds a new one — there is exactly one shared pool at
    a time.  The pool is closed automatically at interpreter exit;
    callers must **not** close it themselves (an explicit ``executor=``
    argument remains the way to own a pool's lifetime).
    """
    global _shared, _shared_atexit_registered
    if workers < 1:
        raise SpecificationError(f"workers must be >= 1, got {workers}")
    if _shared is None or _shared.workers != workers:
        if _shared is not None:
            _shared.close()
        _shared = ParallelExecutor(workers)
        if not _shared_atexit_registered:
            atexit.register(_close_shared_executor)
            _shared_atexit_registered = True
    return _shared


class executor_scope:
    """Context manager resolving ``(executor, workers)`` call conventions.

    Library entry points accept both an explicit executor (reused, caller
    owns its lifetime) and a plain ``workers`` count (an executor is
    created for the call and closed afterwards).  ``None`` means serial.
    """

    def __init__(self, executor: ParallelExecutor | None,
                 workers: int | None) -> None:
        self._given = executor
        self._workers = workers
        self._owned: ParallelExecutor | None = None

    def __enter__(self) -> ParallelExecutor | None:
        if self._given is not None:
            return self._given
        if self._workers is not None and self._workers > 1:
            self._owned = ParallelExecutor(self._workers)
            return self._owned
        return None

    def __exit__(self, *exc_info) -> None:
        if self._owned is not None:
            self._owned.close()
            self._owned = None
