"""Benchmark harness: serial vs parallel experiment sweeps.

:func:`run_parallel_benchmark` runs the registered experiment suite twice
— once serially, once fanned out over a :class:`ParallelExecutor` — and
emits a ``repro-bench-parallel-v1`` payload with wall-clock timings, the
speedup, a byte-identity verdict over the serialized results (the
determinism contract, measured rather than assumed), and the radius-cache
hit counters from the serial leg.

The payload schema is stable so CI can smoke-test it and downstream
tooling can track speedups across commits; :func:`validate_bench_payload`
is the single source of truth for what a well-formed payload looks like.

This module is deliberately *not* imported by ``repro.parallel`` — it
pulls in the analysis layer, which already depends on the executor, and
eager import would create a cycle.  Import it explicitly::

    from repro.parallel.bench import run_parallel_benchmark
"""

from __future__ import annotations

import json
import logging
import numbers
import pathlib
import time
from typing import Sequence

from repro.exceptions import SpecificationError
from repro.observability import get_observability
from repro.parallel.cache import (
    RadiusCache,
    get_default_cache,
    install_default_cache,
    uninstall_default_cache,
)
from repro.parallel.executor import ParallelExecutor, default_workers

__all__ = [
    "BENCH_SCHEMA",
    "CHAOS_BENCH_SCHEMA",
    "SOLVER_BENCH_SCHEMA",
    "RADII_BENCH_SCHEMA",
    "LAB_SCHEMA",
    "LAB_BENCH_SCHEMA",
    "CURVE_SCHEMA",
    "SWEEP_BENCH_SCHEMA",
    "SERVICE_BENCH_SCHEMA",
    "SELFHOST_SCHEMA",
    "run_parallel_benchmark",
    "validate_bench_payload",
    "write_benchmark",
]

logger = logging.getLogger(__name__)

BENCH_SCHEMA = "repro-bench-parallel-v1"
#: Payloads of :func:`repro.resilience.chaos.run_chaos_benchmark` (defined
#: here so this module stays the single source of truth for bench schemas).
CHAOS_BENCH_SCHEMA = "repro-bench-chaos-v1"
#: Payloads of
#: :func:`repro.core.solvers.bench.run_solver_kernel_benchmark`.
SOLVER_BENCH_SCHEMA = "repro-bench-solvers-v1"
#: Payloads of
#: :func:`repro.core.solvers.radii_bench.run_radius_batch_benchmark` —
#: the per-problem ``compute_radius`` loop vs the cross-problem tensor
#: kernel over one structural group.
RADII_BENCH_SCHEMA = "repro-bench-radii-v1"
#: Artifacts of :func:`repro.scenarios.lab.run_lab` — deliberately free
#: of wall-clock timings and worker counts, so ``repro lab --seed S`` is
#: byte-identical for any worker count, traced or untraced.
LAB_SCHEMA = "repro-lab-v1"
#: Payloads of :func:`repro.scenarios.bench.run_lab_benchmark`.
LAB_BENCH_SCHEMA = "repro-bench-lab-v1"
#: Artifacts of the CLI's ``repro curve`` — a degradation curve's operating
#: points and warm-start counters; like :data:`LAB_SCHEMA` it is free of
#: timing/worker fields so the artifact is byte-stable per seed.
CURVE_SCHEMA = "repro-curve-v1"
#: Payloads of :func:`repro.analysis.sweep_bench.run_sweep_benchmark`.
SWEEP_BENCH_SCHEMA = "repro-bench-sweep-v1"
#: Payloads of :func:`repro.service.bench.run_service_benchmark` — the
#: per-call-pool vs persistent-:class:`~repro.service.RadiusService`
#: comparison.
SERVICE_BENCH_SCHEMA = "repro-bench-service-v1"
#: Artifacts of :func:`repro.resilience.calibrate.run_selfhost_loop` — the
#: closed analytic-empirical loop (radius solve → supervisor calibration →
#: real chaos runs inside/outside the radius).  Like :data:`LAB_SCHEMA` it
#: carries derived values only — no timing or worker-count fields — so the
#: artifact is byte-identical for any runtime worker count, traced or not.
SELFHOST_SCHEMA = "repro-selfhost-v1"


def _canonical(results) -> str:
    """Canonical JSON serialization of a results dict (for byte-identity)."""
    from repro.io.serialize import to_dict

    return json.dumps({eid: to_dict(res) for eid, res in results.items()},
                      sort_keys=True)


def run_parallel_benchmark(
    *,
    workers: int | None = None,
    seed: int = 2005,
    ids: Sequence[str] | None = None,
) -> dict:
    """Benchmark the experiment sweep serially and in parallel.

    Parameters
    ----------
    workers:
        Worker-process count for the parallel leg; defaults to
        :func:`~repro.parallel.executor.default_workers`.
    seed:
        Master seed for both legs (they must match for the identity
        check to be meaningful).
    ids:
        Optional subset of experiment ids; defaults to the full registry.

    Returns
    -------
    dict
        A ``repro-bench-parallel-v1`` payload (see
        :func:`validate_bench_payload` for the exact field set).  The
        cache counters come from the serial leg: worker processes build
        their own caches, whose counters do not propagate back.
    """
    from repro.analysis.runner import EXPERIMENT_REGISTRY, run_all_experiments

    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise SpecificationError(f"workers must be >= 1, got {workers}")
    if ids is None:
        ids = sorted(EXPERIMENT_REGISTRY,
                     key=lambda e: int(e[1:].rstrip("ab")))
    ids = list(ids)

    # Give the serial leg a fresh default cache so the reported counters
    # describe this run alone, restoring whatever was installed before.
    previous = get_default_cache()
    cache = RadiusCache()
    install_default_cache(cache)
    try:
        logger.info("benchmark: serial leg over %d experiment(s)", len(ids))
        t0 = time.perf_counter()
        serial = run_all_experiments(seed=seed, ids=ids)
        serial_seconds = time.perf_counter() - t0
        cache_stats = cache.stats()

        logger.info("benchmark: parallel leg with %d worker(s)", workers)
        with ParallelExecutor(workers) as pool:
            t0 = time.perf_counter()
            parallel = run_all_experiments(seed=seed, ids=ids, executor=pool)
            parallel_seconds = time.perf_counter() - t0
            executor_stats = pool.stats()
    finally:
        if previous is None:
            uninstall_default_cache()
        else:
            install_default_cache(previous)

    identical = _canonical(serial) == _canonical(parallel)
    if not identical:  # pragma: no cover - determinism contract violation
        logger.error("parallel results DIFFER from serial results")
    payload = {
        "schema": BENCH_SCHEMA,
        "workers": int(workers),
        "seed": int(seed),
        "ids": ids,
        "serial_seconds": float(serial_seconds),
        "parallel_seconds": float(parallel_seconds),
        "speedup": (float(serial_seconds / parallel_seconds)
                    if parallel_seconds > 0 else 0.0),
        "identical": bool(identical),
        "executor": executor_stats,
        "cache": cache_stats,
    }
    obs = get_observability()
    if obs is not None:
        # Observational extras only: the metric snapshot of the session so
        # far, never consulted by the identity check above.
        payload["observability"] = {
            "metrics": obs.metrics.snapshot(),
            "spans": len(obs.recorder.spans()),
            "events": len(obs.events.events()),
        }
    return payload


_CACHE_FIELDS = ("hits", "misses", "skips", "evictions", "entries",
                 "hit_rate")
_EXECUTOR_FIELDS = ("workers", "dispatched", "fallbacks")
_SUPERVISOR_FIELDS = ("retries", "quarantined", "pool_breaks", "respawns")
_CHAOS_RATE_FIELDS = ("kill_rate", "exception_rate", "latency_rate",
                      "corrupt_rate")


def _check_number(problems: list[str], container: dict, field: str,
                  where: str, minimum: float = 0.0) -> None:
    value = container.get(field)
    if isinstance(value, bool) or not isinstance(value, numbers.Real):
        problems.append(f"{where}{field!r} must be a number, got {value!r}")
    elif value < minimum:
        problems.append(f"{where}{field!r} must be >= {minimum}, "
                        f"got {value!r}")


def _check_common(problems: list[str], payload: dict) -> None:
    """Fields shared by every bench schema: workers, seed, ids, identical."""
    _check_number(problems, payload, "workers", "", minimum=1)
    _check_number(problems, payload, "seed", "")
    ids = payload.get("ids")
    if not isinstance(ids, list) or not ids \
            or not all(isinstance(e, str) for e in ids):
        problems.append(f"'ids' must be a non-empty list of strings, "
                        f"got {ids!r}")
    if not isinstance(payload.get("identical"), bool):
        problems.append(f"'identical' must be a bool, "
                        f"got {payload.get('identical')!r}")


def _check_executor(problems: list[str], payload: dict) -> dict | None:
    executor = payload.get("executor")
    if not isinstance(executor, dict):
        problems.append(f"'executor' must be a dict, got {executor!r}")
        return None
    for field in _EXECUTOR_FIELDS:
        _check_number(problems, executor, field, "executor.",
                      minimum=1 if field == "workers" else 0)
    return executor


def _validate_parallel_payload(problems: list[str], payload: dict) -> None:
    _check_common(problems, payload)
    for field in ("serial_seconds", "parallel_seconds", "speedup"):
        _check_number(problems, payload, field, "")
    _check_executor(problems, payload)
    cache = payload.get("cache")
    if not isinstance(cache, dict):
        problems.append(f"'cache' must be a dict, got {cache!r}")
    else:
        for field in _CACHE_FIELDS:
            _check_number(problems, cache, field, "cache.")
        rate = cache.get("hit_rate")
        if isinstance(rate, numbers.Real) and not isinstance(rate, bool) \
                and rate > 1.0:
            problems.append(f"cache.'hit_rate' must be <= 1, got {rate!r}")
    observability = payload.get("observability")
    if observability is not None:  # optional: only present on traced runs
        if not isinstance(observability, dict):
            problems.append(f"'observability' must be a dict when present, "
                            f"got {observability!r}")
        else:
            if not isinstance(observability.get("metrics"), dict):
                problems.append(
                    f"observability.'metrics' must be a dict, "
                    f"got {observability.get('metrics')!r}")
            for field in ("spans", "events"):
                _check_number(problems, observability, field,
                              "observability.")


def _validate_chaos_payload(problems: list[str], payload: dict) -> None:
    _check_common(problems, payload)
    for field in ("plain_seconds", "supervised_seconds", "chaos_seconds",
                  "supervision_overhead", "recovery_overhead"):
        _check_number(problems, payload, field, "")
    chaos = payload.get("chaos")
    if not isinstance(chaos, dict):
        problems.append(f"'chaos' must be a dict, got {chaos!r}")
    else:
        for field in _CHAOS_RATE_FIELDS:
            _check_number(problems, chaos, field, "chaos.")
            rate = chaos.get(field)
            if isinstance(rate, numbers.Real) and not isinstance(rate, bool) \
                    and rate > 1.0:
                problems.append(f"chaos.{field!r} must be <= 1, got {rate!r}")
        _check_number(problems, chaos, "latency", "chaos.")
        _check_number(problems, chaos, "seed", "chaos.")
        _check_number(problems, chaos, "max_injections_per_task", "chaos.")
    executor = _check_executor(problems, payload)
    if executor is not None:
        for field in _SUPERVISOR_FIELDS:
            _check_number(problems, executor, field, "executor.")
        if not isinstance(executor.get("breaker"), dict):
            problems.append(f"executor.'breaker' must be a dict, "
                            f"got {executor.get('breaker')!r}")
    report = payload.get("report")
    if report is not None:  # null when the chaos leg ran no batches
        if not isinstance(report, dict):
            problems.append(f"'report' must be null or a BatchReport dict, "
                            f"got {report!r}")
        else:
            for field in ("tasks", "ok", "quarantined", "retries", "waves"):
                _check_number(problems, report, field, "report.", minimum=0)
            if not isinstance(report.get("quality"), str):
                problems.append(f"report.'quality' must be a string, "
                                f"got {report.get('quality')!r}")


_KERNEL_SECTION_FIELDS = ("scalar_seconds", "batched_seconds", "speedup",
                          "scalar_evals", "batched_evals", "eval_reduction",
                          "batched_rows")


def _validate_solvers_payload(problems: list[str], payload: dict) -> None:
    _check_number(problems, payload, "seed", "")
    _check_number(problems, payload, "dimension", "", minimum=2)
    _check_number(problems, payload, "directions", "", minimum=1)
    if not isinstance(payload.get("identical"), bool):
        problems.append(f"'identical' must be a bool, "
                        f"got {payload.get('identical')!r}")
    for name in ("bisection", "gradient"):
        section = payload.get(name)
        if not isinstance(section, dict):
            problems.append(f"{name!r} must be a dict, got {section!r}")
            continue
        for field in _KERNEL_SECTION_FIELDS:
            _check_number(problems, section, field, f"{name}.")
        if not isinstance(section.get("identical"), bool):
            problems.append(f"{name}.'identical' must be a bool, "
                            f"got {section.get('identical')!r}")


def _validate_radii_payload(problems: list[str], payload: dict) -> None:
    """The ``repro-bench-radii-v1`` payload: per-problem loop vs tensor."""
    _check_number(problems, payload, "seed", "")
    _check_number(problems, payload, "problems", "", minimum=2)
    _check_number(problems, payload, "dimension", "", minimum=2)
    _check_number(problems, payload, "directions", "", minimum=1)
    for field in ("scalar_seconds", "tensor_seconds", "speedup",
                  "scalar_evals", "tensor_evals", "eval_reduction",
                  "tensor_rows"):
        _check_number(problems, payload, field, "")
    if not isinstance(payload.get("identical"), bool):
        problems.append(f"'identical' must be a bool, "
                        f"got {payload.get('identical')!r}")
    radii = payload.get("radii")
    if not isinstance(radii, list) or not radii:
        problems.append(f"'radii' must be a non-empty list, got {radii!r}")
    else:
        if isinstance(payload.get("problems"), numbers.Real) \
                and not isinstance(payload.get("problems"), bool) \
                and len(radii) != payload["problems"]:
            problems.append(f"'radii' must have one entry per problem, "
                            f"got {len(radii)} for {payload['problems']}")
        for i, r in enumerate(radii):
            # null is the JSON spelling of an infinite radius.
            if r is not None and (isinstance(r, bool)
                                  or not isinstance(r, numbers.Real)):
                problems.append(f"radii[{i}] must be a number or null, "
                                f"got {r!r}")


def _check_rate(problems: list[str], container: dict, field: str,
                where: str) -> None:
    """A number in ``[0, 1]``."""
    _check_number(problems, container, field, where)
    value = container.get(field)
    if isinstance(value, numbers.Real) and not isinstance(value, bool) \
            and value > 1.0:
        problems.append(f"{where}{field!r} must be <= 1, got {value!r}")


def _check_optional_number(problems: list[str], container: dict,
                           field: str, where: str) -> None:
    """A number or ``None`` (the JSON spelling of an infinite radius)."""
    if container.get(field) is not None:
        _check_number(problems, container, field, where)


def _validate_lab_scenario(problems: list[str], entry, where: str) -> None:
    if not isinstance(entry, dict):
        problems.append(f"{where} must be a dict, got {entry!r}")
        return
    scenario = entry.get("scenario")
    if not isinstance(scenario, dict) or not scenario.get("name") \
            or not scenario.get("kind"):
        problems.append(f"{where}'scenario' must be a dict with name and "
                        f"kind, got {scenario!r}")
    _check_number(problems, entry, "trajectories", where, minimum=1)
    _check_rate(problems, entry, "violation_rate", where)
    _check_rate(problems, entry, "predicted_violation_rate", where)
    boot = entry.get("bootstrap")
    if not isinstance(boot, dict):
        problems.append(f"{where}'bootstrap' must be a dict, got {boot!r}")
    else:
        for field in ("mean", "lo", "hi"):
            _check_rate(problems, boot, field, where + "bootstrap.")
        _check_number(problems, boot, "n_boot", where + "bootstrap.",
                      minimum=1)
        _check_number(problems, boot, "block", where + "bootstrap.",
                      minimum=1)
    if not isinstance(entry.get("ci_brackets_prediction"), bool):
        problems.append(f"{where}'ci_brackets_prediction' must be a bool, "
                        f"got {entry.get('ci_brackets_prediction')!r}")
    gates = entry.get("gates")
    if gates is not None and (not isinstance(gates, dict)
                              or not isinstance(gates.get("passed"), bool)):
        problems.append(f"{where}'gates' must be null or a dict with a "
                        f"bool 'passed', got {gates!r}")


def _validate_lab_payload(problems: list[str], payload: dict) -> None:
    """The ``repro-lab-v1`` artifact: derived statistics only.

    Deliberately has **no** timing or worker fields — their absence is
    what makes the byte-identity contract checkable — so this validator
    does not reuse :func:`_check_common`.
    """
    _check_number(problems, payload, "seed", "")
    for field in ("system", "weighting"):
        if not isinstance(payload.get(field), str) or not payload.get(field):
            problems.append(f"{field!r} must be a non-empty string, "
                            f"got {payload.get(field)!r}")
    _check_number(problems, payload, "norm", "", minimum=1)
    _check_optional_number(problems, payload, "rho", "")
    for field in ("radii", "per_parameter_radii"):
        radii = payload.get(field)
        if not isinstance(radii, dict) or not radii:
            problems.append(f"{field!r} must be a non-empty dict, "
                            f"got {radii!r}")
        else:
            for name in radii:
                _check_optional_number(problems, radii, name, f"{field}.")
    _check_number(problems, payload, "trajectories", "", minimum=1)
    boot = payload.get("bootstrap")
    if not isinstance(boot, dict):
        problems.append(f"'bootstrap' must be a dict, got {boot!r}")
    else:
        _check_number(problems, boot, "n_boot", "bootstrap.", minimum=1)
        _check_number(problems, boot, "block", "bootstrap.", minimum=1)
    scenarios = payload.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        problems.append(f"'scenarios' must be a non-empty list, "
                        f"got {scenarios!r}")
    else:
        for i, entry in enumerate(scenarios):
            _validate_lab_scenario(problems, entry, f"scenarios[{i}].")
    ablation = payload.get("ablation")
    if not isinstance(ablation, dict):
        problems.append(f"'ablation' must be a dict, got {ablation!r}")
    else:
        if not isinstance(ablation.get("entries"), list):
            problems.append(f"ablation.'entries' must be a list, "
                            f"got {ablation.get('entries')!r}")
        if not isinstance(ablation.get("rank_agreement"), bool):
            problems.append(f"ablation.'rank_agreement' must be a bool, "
                            f"got {ablation.get('rank_agreement')!r}")
        _check_rate(problems, ablation, "full_violation_rate", "ablation.")
    if not isinstance(payload.get("gates_passed"), bool):
        problems.append(f"'gates_passed' must be a bool, "
                        f"got {payload.get('gates_passed')!r}")
    for forbidden in ("workers", "serial_seconds", "supervised_seconds"):
        if forbidden in payload:
            problems.append(
                f"{forbidden!r} must not appear in a {LAB_SCHEMA} artifact "
                "(it would break the byte-identity contract)")


def _validate_lab_bench_payload(problems: list[str], payload: dict) -> None:
    _check_number(problems, payload, "workers", "", minimum=1)
    _check_number(problems, payload, "seed", "")
    _check_number(problems, payload, "trajectories", "", minimum=1)
    _check_number(problems, payload, "steps_total", "", minimum=1)
    for field in ("serial_seconds", "supervised_seconds",
                  "serial_steps_per_sec", "supervised_steps_per_sec",
                  "speedup"):
        _check_number(problems, payload, field, "")
    if not isinstance(payload.get("identical"), bool):
        problems.append(f"'identical' must be a bool, "
                        f"got {payload.get('identical')!r}")
    scenarios = payload.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios \
            or not all(isinstance(s, str) for s in scenarios):
        problems.append(f"'scenarios' must be a non-empty list of strings, "
                        f"got {scenarios!r}")
    executor = _check_executor(problems, payload)
    if executor is not None:
        for field in _SUPERVISOR_FIELDS:
            _check_number(problems, executor, field, "executor.")


def _validate_curve_payload(problems: list[str], payload: dict) -> None:
    """The ``repro-curve-v1`` artifact: a degradation curve's points.

    Like ``repro-lab-v1`` it carries derived values only — no timing or
    worker fields — so ``repro curve --seed S`` is byte-identical across
    machines and worker counts.
    """
    _check_number(problems, payload, "seed", "")
    for field in ("system", "feature"):
        if not isinstance(payload.get(field), str) or not payload.get(field):
            problems.append(f"{field!r} must be a non-empty string, "
                            f"got {payload.get(field)!r}")
    _check_number(problems, payload, "points", "", minimum=1)
    curve = payload.get("curve")
    if not isinstance(curve, list) or not curve:
        problems.append(f"'curve' must be a non-empty list, got {curve!r}")
    else:
        for i, entry in enumerate(curve):
            where = f"curve[{i}]."
            if not isinstance(entry, dict):
                problems.append(f"curve[{i}] must be a dict, got {entry!r}")
                continue
            _check_number(problems, entry, "beta", where, minimum=1)
            _check_optional_number(problems, entry, "rho", where)
            if not isinstance(entry.get("feasible"), bool):
                problems.append(f"{where}'feasible' must be a bool, "
                                f"got {entry.get('feasible')!r}")
            critical = entry.get("critical")
            if critical is not None and (not isinstance(critical, str)
                                         or not critical):
                problems.append(f"{where}'critical' must be null or a "
                                f"non-empty string, got {critical!r}")
    stats = payload.get("stats")
    if not isinstance(stats, dict):
        problems.append(f"'stats' must be a dict, got {stats!r}")
    else:
        for field in ("feasible", "families", "warm_starts", "warm_hits",
                      "solves"):
            _check_number(problems, stats, field, "stats.")
    for forbidden in ("workers", "cold_seconds", "warm_seconds"):
        if forbidden in payload:
            problems.append(
                f"{forbidden!r} must not appear in a {CURVE_SCHEMA} artifact "
                "(it would break the byte-identity contract)")


def _validate_sweep_bench_payload(problems: list[str], payload: dict) -> None:
    _check_number(problems, payload, "seed", "")
    _check_number(problems, payload, "points", "", minimum=2)
    _check_number(problems, payload, "tasks", "", minimum=1)
    _check_number(problems, payload, "machines", "", minimum=1)
    for field in ("beta_lo", "beta_hi"):
        _check_number(problems, payload, field, "", minimum=1)
    for field in ("cold_seconds", "warm_seconds", "speedup",
                  "cold_evals", "warm_evals", "eval_reduction",
                  "warm_starts", "warm_hits", "rho_first", "rho_last"):
        _check_number(problems, payload, field, "")
    if not isinstance(payload.get("identical"), bool):
        problems.append(f"'identical' must be a bool, "
                        f"got {payload.get('identical')!r}")


def _validate_service_payload(problems: list[str], payload: dict) -> None:
    """The ``repro-bench-service-v1`` payload: per-call pool vs service."""
    _check_number(problems, payload, "workers", "", minimum=1)
    _check_number(problems, payload, "seed", "")
    _check_number(problems, payload, "requests", "", minimum=1)
    _check_number(problems, payload, "problems", "", minimum=1)
    for field in ("serial_seconds", "per_call_seconds", "service_seconds",
                  "speedup", "speedup_vs_serial"):
        _check_number(problems, payload, field, "")
    if not isinstance(payload.get("identical"), bool):
        problems.append(f"'identical' must be a bool, "
                        f"got {payload.get('identical')!r}")
    executor = _check_executor(problems, payload)
    if executor is not None:
        for field in _SUPERVISOR_FIELDS + ("pool_reuses",):
            _check_number(problems, executor, field, "executor.")
    service = payload.get("service")
    if not isinstance(service, dict):
        problems.append(f"'service' must be a dict, got {service!r}")
    else:
        for field in ("admitted", "shed", "completed", "failed",
                      "queue_depth", "queue_limit"):
            _check_number(problems, service, field, "service.")
        if not isinstance(service.get("admission"), dict):
            problems.append(f"service.'admission' must be a dict, "
                            f"got {service.get('admission')!r}")
    cache = payload.get("cache")
    if cache is not None:  # null when the bench ran the service cache-off
        if not isinstance(cache, dict):
            problems.append(f"'cache' must be null or a dict, got {cache!r}")
        else:
            for field in _CACHE_FIELDS + ("warm_hits",):
                _check_number(problems, cache, field, "cache.")


def _validate_selfhost_leg(problems: list[str], entry, where: str) -> None:
    if not isinstance(entry, dict):
        problems.append(f"{where} must be a dict, got {entry!r}")
        return
    _check_number(problems, entry, "ratio", where, minimum=0)
    _check_number(problems, entry, "chaos_seed", where)
    for field in ("inside_radius", "predicted_feasible", "measured_feasible"):
        if not isinstance(entry.get(field), bool):
            problems.append(f"{where}{field!r} must be a bool, "
                            f"got {entry.get(field)!r}")
    point = entry.get("operating_point")
    if not isinstance(point, dict) \
            or not isinstance(point.get("task_costs"), list) \
            or not isinstance(point.get("worker_fail_rates"), list):
        problems.append(f"{where}'operating_point' must be a dict with "
                        f"task_costs and worker_fail_rates lists, "
                        f"got {point!r}")
    for field in ("predicted_features", "expected_metrics",
                  "measured_metrics", "injections"):
        if not isinstance(entry.get(field), dict):
            problems.append(f"{where}{field!r} must be a dict, "
                            f"got {entry.get(field)!r}")
    measured = entry.get("measured_features")
    if not isinstance(measured, dict) or not measured:
        problems.append(f"{where}'measured_features' must be a non-empty "
                        f"dict, got {measured!r}")
    else:
        for name, feat in measured.items():
            inner = f"{where}measured_features[{name!r}]."
            if not isinstance(feat, dict):
                problems.append(f"{inner[:-1]} must be a dict, got {feat!r}")
                continue
            _check_number(problems, feat, "value", inner)
            _check_number(problems, feat, "bound", inner)
            if not isinstance(feat.get("satisfied"), bool):
                problems.append(f"{inner}'satisfied' must be a bool, "
                                f"got {feat.get('satisfied')!r}")
    report = entry.get("report")
    if not isinstance(report, dict):
        problems.append(f"{where}'report' must be a BatchReport dict, "
                        f"got {report!r}")
    else:
        for field in ("tasks", "ok", "quarantined", "retries", "waves"):
            _check_number(problems, report, field, where + "report.",
                          minimum=0)
        for field in ("breaker_state", "quality"):
            if not isinstance(report.get(field), str):
                problems.append(f"{where}report.{field!r} must be a string, "
                                f"got {report.get(field)!r}")


def _validate_selfhost_payload(problems: list[str], payload: dict) -> None:
    """The ``repro-selfhost-v1`` artifact: the closed analytic-empirical loop.

    Derived values only — no wall-clock timings and no worker counts, so
    ``repro selfhost --seed S`` is byte-identical across runtime worker
    counts and tracing modes (the contract the acceptance suite checks).
    """
    _check_number(problems, payload, "seed", "")
    _check_number(problems, payload, "beta", "", minimum=1)
    _check_number(problems, payload, "norm", "", minimum=1)
    _check_number(problems, payload, "rho", "", minimum=0)
    for field in ("weighting", "critical_feature"):
        if not isinstance(payload.get(field), str) or not payload.get(field):
            problems.append(f"{field!r} must be a non-empty string, "
                            f"got {payload.get(field)!r}")
    system = payload.get("system")
    if not isinstance(system, dict) \
            or not isinstance(system.get("model"), dict) \
            or not isinstance(system.get("origin_metrics"), dict):
        problems.append(f"'system' must be a dict with 'model' and "
                        f"'origin_metrics' dicts, got {system!r}")
    radii = payload.get("radii")
    if not isinstance(radii, dict) or not radii:
        problems.append(f"'radii' must be a non-empty dict, got {radii!r}")
    else:
        for name, entry in radii.items():
            where = f"radii[{name!r}]."
            if not isinstance(entry, dict):
                problems.append(f"{where[:-1]} must be a dict, got {entry!r}")
                continue
            _check_optional_number(problems, entry, "radius", where)
            for field in ("method", "quality"):
                if not isinstance(entry.get(field), str):
                    problems.append(f"{where}{field!r} must be a string, "
                                    f"got {entry.get(field)!r}")
    per_param = payload.get("per_parameter_radii")
    if not isinstance(per_param, dict) or not per_param:
        problems.append(f"'per_parameter_radii' must be a non-empty dict, "
                        f"got {per_param!r}")
    else:
        for name in per_param:
            _check_optional_number(problems, per_param, name,
                                   "per_parameter_radii.")
    calibration = payload.get("calibration")
    if not isinstance(calibration, dict):
        problems.append(f"'calibration' must be a dict, got {calibration!r}")
    else:
        for field in ("required_retries", "max_task_retries"):
            _check_number(problems, calibration, field, "calibration.",
                          minimum=0)
        _check_number(problems, calibration, "quarantine_budget",
                      "calibration.")
    legs = payload.get("legs")
    if not isinstance(legs, list) or not legs:
        problems.append(f"'legs' must be a non-empty list, got {legs!r}")
    else:
        for i, entry in enumerate(legs):
            _validate_selfhost_leg(problems, entry, f"legs[{i}].")
    for field in ("in_radius_recovered", "out_of_radius_violates",
                  "closed_loop"):
        if not isinstance(payload.get(field), bool):
            problems.append(f"{field!r} must be a bool, "
                            f"got {payload.get(field)!r}")
    for forbidden in ("workers", "runtime_workers", "solve_seconds",
                      "chaos_seconds"):
        if forbidden in payload:
            problems.append(
                f"{forbidden!r} must not appear in a {SELFHOST_SCHEMA} "
                "artifact (it would break the byte-identity contract)")


def validate_bench_payload(payload) -> dict:
    """Check a benchmark payload against its declared schema.

    Dispatches on ``payload["schema"]``: ``repro-bench-parallel-v1``
    (:func:`run_parallel_benchmark`), ``repro-bench-chaos-v1``
    (:func:`repro.resilience.chaos.run_chaos_benchmark`),
    ``repro-bench-solvers-v1``
    (:func:`repro.core.solvers.bench.run_solver_kernel_benchmark`),
    ``repro-bench-radii-v1``
    (:func:`repro.core.solvers.radii_bench.run_radius_batch_benchmark`),
    ``repro-lab-v1`` (:func:`repro.scenarios.lab.run_lab`),
    ``repro-bench-lab-v1``
    (:func:`repro.scenarios.bench.run_lab_benchmark`),
    ``repro-curve-v1`` (the CLI's ``repro curve`` artifact),
    ``repro-bench-sweep-v1``
    (:func:`repro.analysis.sweep_bench.run_sweep_benchmark`),
    ``repro-bench-service-v1``
    (:func:`repro.service.bench.run_service_benchmark`), and
    ``repro-selfhost-v1``
    (:func:`repro.resilience.calibrate.run_selfhost_loop`) are accepted.  Returns the payload unchanged when valid; raises
    :class:`~repro.exceptions.SpecificationError` listing every problem
    found otherwise.  CI runs this against the freshly emitted
    ``BENCH_parallel.json`` / ``BENCH_chaos.json`` / ``BENCH_solvers.json``
    / ``LAB.json`` / ``CURVE.json`` / ``BENCH_sweep.json`` so schema
    drift fails loudly.
    """
    if not isinstance(payload, dict):
        raise SpecificationError(
            f"payload must be a dict, got {type(payload).__name__}")
    problems: list[str] = []
    schema = payload.get("schema")
    if schema == BENCH_SCHEMA:
        _validate_parallel_payload(problems, payload)
    elif schema == CHAOS_BENCH_SCHEMA:
        _validate_chaos_payload(problems, payload)
    elif schema == SOLVER_BENCH_SCHEMA:
        _validate_solvers_payload(problems, payload)
    elif schema == RADII_BENCH_SCHEMA:
        _validate_radii_payload(problems, payload)
    elif schema == LAB_SCHEMA:
        _validate_lab_payload(problems, payload)
    elif schema == LAB_BENCH_SCHEMA:
        _validate_lab_bench_payload(problems, payload)
    elif schema == CURVE_SCHEMA:
        _validate_curve_payload(problems, payload)
    elif schema == SWEEP_BENCH_SCHEMA:
        _validate_sweep_bench_payload(problems, payload)
    elif schema == SERVICE_BENCH_SCHEMA:
        _validate_service_payload(problems, payload)
    elif schema == SELFHOST_SCHEMA:
        _validate_selfhost_payload(problems, payload)
    else:
        problems.append(f"'schema' must be {BENCH_SCHEMA!r}, "
                        f"{CHAOS_BENCH_SCHEMA!r}, {SOLVER_BENCH_SCHEMA!r}, "
                        f"{RADII_BENCH_SCHEMA!r}, "
                        f"{LAB_SCHEMA!r}, {LAB_BENCH_SCHEMA!r}, "
                        f"{CURVE_SCHEMA!r}, {SWEEP_BENCH_SCHEMA!r}, "
                        f"{SERVICE_BENCH_SCHEMA!r} or {SELFHOST_SCHEMA!r}, "
                        f"got {schema!r}")
    if problems:
        raise SpecificationError(
            "invalid benchmark payload: " + "; ".join(problems))
    return payload


def write_benchmark(payload: dict, path) -> pathlib.Path:
    """Validate a payload and write it to ``path`` as indented JSON."""
    validate_bench_payload(payload)
    path = pathlib.Path(path)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    logger.info("benchmark payload written to %s", path)
    return path
