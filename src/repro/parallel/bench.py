"""Benchmark harness: serial vs parallel experiment sweeps.

:func:`run_parallel_benchmark` runs the registered experiment suite twice
— once serially, once fanned out over a :class:`ParallelExecutor` — and
emits a ``repro-bench-parallel-v1`` payload with wall-clock timings, the
speedup, a byte-identity verdict over the serialized results (the
determinism contract, measured rather than assumed), and the radius-cache
hit counters from the serial leg.

The payload schema is stable so CI can smoke-test it and downstream
tooling can track speedups across commits; :func:`validate_bench_payload`
is the single source of truth for what a well-formed payload looks like.

This module is deliberately *not* imported by ``repro.parallel`` — it
pulls in the analysis layer, which already depends on the executor, and
eager import would create a cycle.  Import it explicitly::

    from repro.parallel.bench import run_parallel_benchmark
"""

from __future__ import annotations

import json
import logging
import numbers
import pathlib
import time
from typing import Sequence

from repro.exceptions import SpecificationError
from repro.observability import get_observability
from repro.parallel.cache import (
    RadiusCache,
    get_default_cache,
    install_default_cache,
    uninstall_default_cache,
)
from repro.parallel.executor import ParallelExecutor, default_workers

__all__ = [
    "BENCH_SCHEMA",
    "CHAOS_BENCH_SCHEMA",
    "SOLVER_BENCH_SCHEMA",
    "run_parallel_benchmark",
    "validate_bench_payload",
    "write_benchmark",
]

logger = logging.getLogger(__name__)

BENCH_SCHEMA = "repro-bench-parallel-v1"
#: Payloads of :func:`repro.resilience.chaos.run_chaos_benchmark` (defined
#: here so this module stays the single source of truth for bench schemas).
CHAOS_BENCH_SCHEMA = "repro-bench-chaos-v1"
#: Payloads of
#: :func:`repro.core.solvers.bench.run_solver_kernel_benchmark`.
SOLVER_BENCH_SCHEMA = "repro-bench-solvers-v1"


def _canonical(results) -> str:
    """Canonical JSON serialization of a results dict (for byte-identity)."""
    from repro.io.serialize import to_dict

    return json.dumps({eid: to_dict(res) for eid, res in results.items()},
                      sort_keys=True)


def run_parallel_benchmark(
    *,
    workers: int | None = None,
    seed: int = 2005,
    ids: Sequence[str] | None = None,
) -> dict:
    """Benchmark the experiment sweep serially and in parallel.

    Parameters
    ----------
    workers:
        Worker-process count for the parallel leg; defaults to
        :func:`~repro.parallel.executor.default_workers`.
    seed:
        Master seed for both legs (they must match for the identity
        check to be meaningful).
    ids:
        Optional subset of experiment ids; defaults to the full registry.

    Returns
    -------
    dict
        A ``repro-bench-parallel-v1`` payload (see
        :func:`validate_bench_payload` for the exact field set).  The
        cache counters come from the serial leg: worker processes build
        their own caches, whose counters do not propagate back.
    """
    from repro.analysis.runner import EXPERIMENT_REGISTRY, run_all_experiments

    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise SpecificationError(f"workers must be >= 1, got {workers}")
    if ids is None:
        ids = sorted(EXPERIMENT_REGISTRY,
                     key=lambda e: int(e[1:].rstrip("ab")))
    ids = list(ids)

    # Give the serial leg a fresh default cache so the reported counters
    # describe this run alone, restoring whatever was installed before.
    previous = get_default_cache()
    cache = RadiusCache()
    install_default_cache(cache)
    try:
        logger.info("benchmark: serial leg over %d experiment(s)", len(ids))
        t0 = time.perf_counter()
        serial = run_all_experiments(seed=seed, ids=ids)
        serial_seconds = time.perf_counter() - t0
        cache_stats = cache.stats()

        logger.info("benchmark: parallel leg with %d worker(s)", workers)
        with ParallelExecutor(workers) as pool:
            t0 = time.perf_counter()
            parallel = run_all_experiments(seed=seed, ids=ids, executor=pool)
            parallel_seconds = time.perf_counter() - t0
            executor_stats = pool.stats()
    finally:
        if previous is None:
            uninstall_default_cache()
        else:
            install_default_cache(previous)

    identical = _canonical(serial) == _canonical(parallel)
    if not identical:  # pragma: no cover - determinism contract violation
        logger.error("parallel results DIFFER from serial results")
    payload = {
        "schema": BENCH_SCHEMA,
        "workers": int(workers),
        "seed": int(seed),
        "ids": ids,
        "serial_seconds": float(serial_seconds),
        "parallel_seconds": float(parallel_seconds),
        "speedup": (float(serial_seconds / parallel_seconds)
                    if parallel_seconds > 0 else 0.0),
        "identical": bool(identical),
        "executor": executor_stats,
        "cache": cache_stats,
    }
    obs = get_observability()
    if obs is not None:
        # Observational extras only: the metric snapshot of the session so
        # far, never consulted by the identity check above.
        payload["observability"] = {
            "metrics": obs.metrics.snapshot(),
            "spans": len(obs.recorder.spans()),
            "events": len(obs.events.events()),
        }
    return payload


_CACHE_FIELDS = ("hits", "misses", "skips", "entries", "hit_rate")
_EXECUTOR_FIELDS = ("workers", "dispatched", "fallbacks")
_SUPERVISOR_FIELDS = ("retries", "quarantined", "pool_breaks", "respawns")
_CHAOS_RATE_FIELDS = ("kill_rate", "exception_rate", "latency_rate",
                      "corrupt_rate")


def _check_number(problems: list[str], container: dict, field: str,
                  where: str, minimum: float = 0.0) -> None:
    value = container.get(field)
    if isinstance(value, bool) or not isinstance(value, numbers.Real):
        problems.append(f"{where}{field!r} must be a number, got {value!r}")
    elif value < minimum:
        problems.append(f"{where}{field!r} must be >= {minimum}, "
                        f"got {value!r}")


def _check_common(problems: list[str], payload: dict) -> None:
    """Fields shared by every bench schema: workers, seed, ids, identical."""
    _check_number(problems, payload, "workers", "", minimum=1)
    _check_number(problems, payload, "seed", "")
    ids = payload.get("ids")
    if not isinstance(ids, list) or not ids \
            or not all(isinstance(e, str) for e in ids):
        problems.append(f"'ids' must be a non-empty list of strings, "
                        f"got {ids!r}")
    if not isinstance(payload.get("identical"), bool):
        problems.append(f"'identical' must be a bool, "
                        f"got {payload.get('identical')!r}")


def _check_executor(problems: list[str], payload: dict) -> dict | None:
    executor = payload.get("executor")
    if not isinstance(executor, dict):
        problems.append(f"'executor' must be a dict, got {executor!r}")
        return None
    for field in _EXECUTOR_FIELDS:
        _check_number(problems, executor, field, "executor.",
                      minimum=1 if field == "workers" else 0)
    return executor


def _validate_parallel_payload(problems: list[str], payload: dict) -> None:
    _check_common(problems, payload)
    for field in ("serial_seconds", "parallel_seconds", "speedup"):
        _check_number(problems, payload, field, "")
    _check_executor(problems, payload)
    cache = payload.get("cache")
    if not isinstance(cache, dict):
        problems.append(f"'cache' must be a dict, got {cache!r}")
    else:
        for field in _CACHE_FIELDS:
            _check_number(problems, cache, field, "cache.")
        rate = cache.get("hit_rate")
        if isinstance(rate, numbers.Real) and not isinstance(rate, bool) \
                and rate > 1.0:
            problems.append(f"cache.'hit_rate' must be <= 1, got {rate!r}")
    observability = payload.get("observability")
    if observability is not None:  # optional: only present on traced runs
        if not isinstance(observability, dict):
            problems.append(f"'observability' must be a dict when present, "
                            f"got {observability!r}")
        else:
            if not isinstance(observability.get("metrics"), dict):
                problems.append(
                    f"observability.'metrics' must be a dict, "
                    f"got {observability.get('metrics')!r}")
            for field in ("spans", "events"):
                _check_number(problems, observability, field,
                              "observability.")


def _validate_chaos_payload(problems: list[str], payload: dict) -> None:
    _check_common(problems, payload)
    for field in ("plain_seconds", "supervised_seconds", "chaos_seconds",
                  "supervision_overhead", "recovery_overhead"):
        _check_number(problems, payload, field, "")
    chaos = payload.get("chaos")
    if not isinstance(chaos, dict):
        problems.append(f"'chaos' must be a dict, got {chaos!r}")
    else:
        for field in _CHAOS_RATE_FIELDS:
            _check_number(problems, chaos, field, "chaos.")
            rate = chaos.get(field)
            if isinstance(rate, numbers.Real) and not isinstance(rate, bool) \
                    and rate > 1.0:
                problems.append(f"chaos.{field!r} must be <= 1, got {rate!r}")
        _check_number(problems, chaos, "latency", "chaos.")
        _check_number(problems, chaos, "seed", "chaos.")
        _check_number(problems, chaos, "max_injections_per_task", "chaos.")
    executor = _check_executor(problems, payload)
    if executor is not None:
        for field in _SUPERVISOR_FIELDS:
            _check_number(problems, executor, field, "executor.")
        if not isinstance(executor.get("breaker"), dict):
            problems.append(f"executor.'breaker' must be a dict, "
                            f"got {executor.get('breaker')!r}")


_KERNEL_SECTION_FIELDS = ("scalar_seconds", "batched_seconds", "speedup",
                          "scalar_evals", "batched_evals", "eval_reduction",
                          "batched_rows")


def _validate_solvers_payload(problems: list[str], payload: dict) -> None:
    _check_number(problems, payload, "seed", "")
    _check_number(problems, payload, "dimension", "", minimum=2)
    _check_number(problems, payload, "directions", "", minimum=1)
    if not isinstance(payload.get("identical"), bool):
        problems.append(f"'identical' must be a bool, "
                        f"got {payload.get('identical')!r}")
    for name in ("bisection", "gradient"):
        section = payload.get(name)
        if not isinstance(section, dict):
            problems.append(f"{name!r} must be a dict, got {section!r}")
            continue
        for field in _KERNEL_SECTION_FIELDS:
            _check_number(problems, section, field, f"{name}.")
        if not isinstance(section.get("identical"), bool):
            problems.append(f"{name}.'identical' must be a bool, "
                            f"got {section.get('identical')!r}")


def validate_bench_payload(payload) -> dict:
    """Check a benchmark payload against its declared schema.

    Dispatches on ``payload["schema"]``: ``repro-bench-parallel-v1``
    (:func:`run_parallel_benchmark`), ``repro-bench-chaos-v1``
    (:func:`repro.resilience.chaos.run_chaos_benchmark`), and
    ``repro-bench-solvers-v1``
    (:func:`repro.core.solvers.bench.run_solver_kernel_benchmark`) are
    accepted.  Returns the payload unchanged when valid; raises
    :class:`~repro.exceptions.SpecificationError` listing every problem
    found otherwise.  CI runs this against the freshly emitted
    ``BENCH_parallel.json`` / ``BENCH_chaos.json`` / ``BENCH_solvers.json``
    so schema drift fails loudly.
    """
    if not isinstance(payload, dict):
        raise SpecificationError(
            f"payload must be a dict, got {type(payload).__name__}")
    problems: list[str] = []
    schema = payload.get("schema")
    if schema == BENCH_SCHEMA:
        _validate_parallel_payload(problems, payload)
    elif schema == CHAOS_BENCH_SCHEMA:
        _validate_chaos_payload(problems, payload)
    elif schema == SOLVER_BENCH_SCHEMA:
        _validate_solvers_payload(problems, payload)
    else:
        problems.append(f"'schema' must be {BENCH_SCHEMA!r}, "
                        f"{CHAOS_BENCH_SCHEMA!r} or "
                        f"{SOLVER_BENCH_SCHEMA!r}, got {schema!r}")
    if problems:
        raise SpecificationError(
            "invalid benchmark payload: " + "; ".join(problems))
    return payload


def write_benchmark(payload: dict, path) -> pathlib.Path:
    """Validate a payload and write it to ``path`` as indented JSON."""
    validate_bench_payload(payload)
    path = pathlib.Path(path)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    logger.info("benchmark payload written to %s", path)
    return path
