"""Parallel execution engine and radius caching.

The ROADMAP north-star is a system that runs as fast as the hardware
allows; this package supplies the two mechanisms the rest of the library
uses to get there without ever changing a numerical answer:

* :mod:`repro.parallel.executor` — :class:`ParallelExecutor`, an
  order-preserving process-pool fan-out with a deterministic serial
  fallback (``workers=1``, non-picklable work, broken pools), plus the
  picklable :class:`Task` unit of work.  Used by the experiment runner,
  the chunked Monte-Carlo validator, and the per-parameter /
  per-bound radius solves.
* :mod:`repro.parallel.cache` — :class:`RadiusCache`, memoisation of
  radius solves keyed by a stable fingerprint of the problem (mapping
  structure, origin, bounds, norm, box constraints, method, seed), with
  hit/miss/skip counters surfaced in diagnostics and the benchmark
  payload.
* :mod:`repro.parallel.bench` — the serial-vs-parallel benchmark harness
  behind ``BENCH_parallel.json`` (imported lazily; it pulls in the whole
  experiment suite).

The determinism contract — results bit-identical for any worker count —
is documented in ``docs/PERFORMANCE.md`` and enforced by
``tests/parallel/test_worker_invariance.py``.
"""

from repro.parallel.cache import (
    RadiusCache,
    get_default_cache,
    install_default_cache,
    resolve_cache,
    uninstall_default_cache,
)
from repro.parallel.executor import (
    ParallelExecutor,
    Task,
    default_workers,
    executor_scope,
)

__all__ = [
    "ParallelExecutor",
    "Task",
    "default_workers",
    "executor_scope",
    "RadiusCache",
    "install_default_cache",
    "uninstall_default_cache",
    "get_default_cache",
    "resolve_cache",
]
