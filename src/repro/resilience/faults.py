"""Deterministic fault injection for mappings and solver callables.

The paper measures how *systems* survive perturbations; this module
perturbs the measurement pipeline itself.  A :class:`FaultInjector` wraps

* :class:`~repro.core.mappings.FeatureMapping`\\s — evaluations randomly
  raise, return NaN/Inf, or stall (:meth:`FaultInjector.wrap_mapping`);
* solver callables — invocations randomly raise, report fake
  non-convergence, or stall (:meth:`FaultInjector.wrap_callable`);

at configurable per-call rates from an explicit seed, so every degradation
path of the :class:`~repro.resilience.cascade.SolverCascade` can be forced
deterministically in tests and benchmarks.  Injected failures raise
:class:`InjectedFaultError` (a :class:`~repro.exceptions.SolverError`) so
assertions can tell injected faults from genuine solver bugs, and the
injector counts every fault it fires, keyed by ``"<site>:<kind>"``.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.core.mappings import FeatureMapping
from repro.exceptions import ConvergenceError, SolverError, SpecificationError
from repro.observability import emit_event, get_metrics
from repro.utils.rng import default_rng

__all__ = ["FaultSpec", "FaultInjector", "InjectedFaultError"]

logger = logging.getLogger(__name__)


class InjectedFaultError(SolverError):
    """An artificial failure raised by a :class:`FaultInjector`."""


@dataclass(frozen=True)
class FaultSpec:
    """Per-call fault rates for an injector.

    All rates are independent probabilities in ``[0, 1]`` drawn per call
    (``nan_rate``/``inf_rate`` are drawn per *row* for vectorised
    evaluations, so one batched call can return a partially corrupted
    batch, like a flaky accelerator).

    Attributes
    ----------
    exception_rate:
        Probability a call raises :class:`InjectedFaultError`.
    nan_rate:
        Probability a mapping evaluation returns NaN.
    inf_rate:
        Probability a mapping evaluation returns ``+inf``.
    latency_rate:
        Probability a call sleeps for ``latency`` seconds first (used to
        trip per-solver wall-clock timeouts).
    latency:
        Artificial delay in seconds for latency faults.
    nonconvergence_rate:
        Probability a *solver* call raises
        :class:`~repro.exceptions.ConvergenceError` (mappings ignore it).
    """

    exception_rate: float = 0.0
    nan_rate: float = 0.0
    inf_rate: float = 0.0
    latency_rate: float = 0.0
    latency: float = 0.0
    nonconvergence_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("exception_rate", "nan_rate", "inf_rate",
                     "latency_rate", "nonconvergence_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise SpecificationError(
                    f"{name} must be in [0, 1], got {rate}")
        if self.latency < 0:
            raise SpecificationError(
                f"latency must be non-negative, got {self.latency}")


class FaultInjector:
    """Injects faults into mappings and solver callables.

    Parameters
    ----------
    spec:
        The fault rates; defaults to an all-zero (transparent) spec.
    seed:
        Seed for the injection draws.  Two injectors with equal seeds and
        specs fire identical fault sequences for identical call patterns.

    Attributes
    ----------
    counts:
        :class:`collections.Counter` of fired faults, keyed by
        ``"<site>:<kind>"`` (e.g. ``"mapping:nan"``, ``"numeric:exception"``).
    """

    def __init__(self, spec: FaultSpec | None = None, *, seed=None) -> None:
        self.spec = spec if spec is not None else FaultSpec()
        if not isinstance(self.spec, FaultSpec):
            raise SpecificationError(
                f"spec must be a FaultSpec, got {type(self.spec).__name__}")
        self._rng = default_rng(seed)
        self._lock = threading.Lock()
        self.counts: Counter[str] = Counter()

    # ------------------------------------------------------------------
    # draw helpers
    # ------------------------------------------------------------------
    def _uniform(self, n: int = 1) -> np.ndarray:
        with self._lock:
            return self._rng.random(n)

    def _fire(self, site: str, kind: str) -> None:
        self.counts[f"{site}:{kind}"] += 1
        get_metrics().inc(f"faults.{kind}")
        emit_event("fault.injected", site=site, kind=kind)
        logger.debug("injected %s fault at %s", kind, site)

    def total_injected(self) -> int:
        """Total faults fired so far, across all sites and kinds."""
        return sum(self.counts.values())

    def _maybe_latency(self, site: str) -> None:
        if self.spec.latency_rate > 0 and \
                float(self._uniform()[0]) < self.spec.latency_rate:
            self._fire(site, "latency")
            time.sleep(self.spec.latency)

    def _maybe_raise(self, site: str, *, solver: bool) -> None:
        u = float(self._uniform()[0])
        if u < self.spec.exception_rate:
            self._fire(site, "exception")
            raise InjectedFaultError(f"injected exception at {site}")
        if solver and \
                u < self.spec.exception_rate + self.spec.nonconvergence_rate:
            self._fire(site, "nonconvergence")
            raise ConvergenceError(f"injected non-convergence at {site}")

    def _corrupt_scalar(self, site: str, value: float) -> float:
        u = float(self._uniform()[0])
        if u < self.spec.nan_rate:
            self._fire(site, "nan")
            return float("nan")
        if u < self.spec.nan_rate + self.spec.inf_rate:
            self._fire(site, "inf")
            return float("inf")
        return value

    # ------------------------------------------------------------------
    # wrappers
    # ------------------------------------------------------------------
    def wrap_mapping(self, mapping: FeatureMapping,
                     site: str = "mapping") -> FeatureMapping:
        """A view of ``mapping`` whose evaluations inject faults."""
        if not isinstance(mapping, FeatureMapping):
            raise SpecificationError(
                f"mapping must be a FeatureMapping, got "
                f"{type(mapping).__name__}")
        return _FaultingMapping(mapping, self, site)

    def wrap_callable(self, fn, name: str = "solver"):
        """Wrap a solver callable so each invocation may inject faults.

        The wrapped callable preserves positional/keyword arguments and the
        return value; injected failures raise before the real call runs.
        """

        def _wrapped(*args, **kwargs):
            self._maybe_latency(name)
            self._maybe_raise(name, solver=True)
            return fn(*args, **kwargs)

        _wrapped.__name__ = f"faulty_{name}"
        return _wrapped


class _FaultingMapping(FeatureMapping):
    """Delegating mapping view that injects faults per evaluation.

    Deliberately opaque to the structural probes
    (:func:`~repro.core.boundary.as_linear` and friends): a faulty linear
    mapping must *not* be routed to the closed-form solver, because the
    closed form would read the clean extracted coefficients and never see
    a fault.
    """

    def __init__(self, base: FeatureMapping, injector: FaultInjector,
                 site: str) -> None:
        super().__init__(base.n_inputs)
        self.base = base
        self._injector = injector
        self._site = site

    def value(self, x: np.ndarray) -> float:
        inj = self._injector
        inj._maybe_latency(self._site)
        inj._maybe_raise(self._site, solver=False)
        return inj._corrupt_scalar(self._site, self.base.value(x))

    def value_many(self, xs: np.ndarray) -> np.ndarray:
        inj = self._injector
        inj._maybe_latency(self._site)
        inj._maybe_raise(self._site, solver=False)
        values = np.array(self.base.value_many(xs), dtype=np.float64,
                          copy=True)
        spec = inj.spec
        if values.size and (spec.nan_rate > 0 or spec.inf_rate > 0):
            u = inj._uniform(values.size)
            nan_mask = u < spec.nan_rate
            inf_mask = (~nan_mask) & (u < spec.nan_rate + spec.inf_rate)
            for _ in range(int(nan_mask.sum())):
                inj._fire(self._site, "nan")
            for _ in range(int(inf_mask.sum())):
                inj._fire(self._site, "inf")
            values[nan_mask] = np.nan
            values[inf_mask] = np.inf
        return values

    def gradient(self, x: np.ndarray) -> np.ndarray | None:
        inj = self._injector
        inj._maybe_raise(self._site, solver=False)
        g = self.base.gradient(x)
        if g is None:
            return None
        g = np.array(g, dtype=np.float64, copy=True)
        u = float(inj._uniform()[0])
        if u < inj.spec.nan_rate:
            inj._fire(self._site, "nan")
            g[int(inj._uniform()[0] * g.size) % g.size] = np.nan
        return g

    def __repr__(self) -> str:
        return f"_FaultingMapping({self.base!r}, site={self._site!r})"
