"""Radius → supervisor-config calibration: the closed analytic-empirical loop.

The self-host system (:mod:`repro.systems.selfhost`) predicts, from a
fluid model, how much simultaneous task-cost and worker-failure
perturbation the :class:`~repro.resilience.supervisor.SupervisedExecutor`
policy tolerates.  This module *tests* that prediction on the real
executor:

1. solve the two-kind FePIA analysis for the radius ``rho`` and the
   boundary witness ``pi*`` of the critical feature;
2. **invert** the radius into a concrete
   :class:`~repro.resilience.supervisor.SupervisorConfig` — the smallest
   retry budget whose fluid-predicted quarantined mass at the boundary
   operating point stays under a budget (never below the policy the
   radius was computed for);
3. replay the *real* chaos harness at operating points scaled along the
   boundary direction — inside the radius (ratio < 1) and outside
   (ratio > 1) — with a :class:`PerTaskChaosPolicy` whose per-task
   exception rates equal each task's perturbed worker failure rate;
4. replay the measured per-task attempt counts through the *same* wave
   accounting the prediction used
   (:meth:`~repro.systems.selfhost.model.DispatchModel.replay`), and
   compare predicted against measured feasibility feature by feature.

Everything is wall-clock free: probe tasks return instantly and the
measured features are recomputed from attempt counts, so the emitted
``repro-selfhost-v1`` artifact is byte-identical for any runtime worker
count, with tracing on or off (the acceptance contract every subsystem
here carries).  Chaos schedules are pure functions of ``(seed, index,
attempt)``, so a pinned seed pins the whole loop.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np

from repro.exceptions import SpecificationError
from repro.parallel.bench import SELFHOST_SCHEMA
from repro.resilience.chaos import ChaosPolicy
from repro.resilience.retry import RetryPolicy
from repro.resilience.supervisor import SupervisedExecutor, SupervisorConfig
from repro.systems.selfhost.model import DispatchModel
from repro.systems.selfhost.system import SelfhostSystem

__all__ = [
    "SELFHOST_SCHEMA",
    "PerTaskChaosPolicy",
    "calibrate_supervisor",
    "run_selfhost_loop",
]


@dataclass(frozen=True)
class PerTaskChaosPolicy(ChaosPolicy):
    """A chaos schedule whose exception rate varies per task.

    The calibration loop maps each task's *perturbed worker failure
    rate* onto its exception probability, turning an abstract operating
    point of the self-host system into a concrete fault schedule for the
    real executor.  Draws stay a pure function of ``(seed, index,
    attempt)`` exactly like the base policy — only the threshold the
    second uniform is compared against becomes per-task.

    Only exception faults are scheduled (kill/latency/corrupt stay 0 in
    :meth:`from_rates`): exceptions never break the pool or charge
    collateral attempts, which is what makes the measured
    :class:`~repro.resilience.supervisor.BatchReport` — and hence the
    artifact — identical for any runtime worker count.
    """

    task_exception_rates: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        for rate in self.task_exception_rates:
            if not 0.0 <= rate <= 1.0:
                raise SpecificationError(
                    f"per-task exception rates must be in [0, 1], got {rate}")

    @classmethod
    def from_rates(cls, model: DispatchModel, worker_rates, *,
                   seed: int, max_injections_per_task: int
                   ) -> "PerTaskChaosPolicy":
        """The schedule realising one operating point of ``model``.

        Task ``i`` draws exceptions at its round-robin worker's rate,
        clipped to ``[0, 1]`` (boundary directions may overshoot the
        physical box before clipping).
        """
        rates = np.clip(np.asarray(worker_rates, dtype=np.float64).ravel(),
                        0.0, 1.0)
        if rates.size != model.workers:
            raise SpecificationError(
                f"worker_rates must have length {model.workers}, got "
                f"{rates.size}")
        per_task = tuple(float(rates[w]) for w in model.worker_of())
        return cls(seed=int(seed),
                   max_injections_per_task=int(max_injections_per_task),
                   task_exception_rates=per_task)

    def _rate_for(self, index: int) -> float:
        if not self.task_exception_rates:
            return self.exception_rate
        if not 0 <= index < len(self.task_exception_rates):
            raise SpecificationError(
                f"task index {index} outside the {len(self.task_exception_rates)}"
                f"-task schedule")
        return self.task_exception_rates[index]

    def _fatal_raw_at(self, index: int, u: np.ndarray) -> str | None:
        """Like the base ``_fatal_raw`` but with the per-task threshold."""
        if u[0] < self.kill_rate:
            return "kill"
        if u[1] < self._rate_for(index):
            return "exception"
        if u[3] < self.corrupt_rate:
            return "corrupt"
        return None

    def fatal_injections_before(self, index: int, attempt: int) -> int:
        count = 0
        for a in range(1, attempt):
            if count >= self.max_injections_per_task:
                break
            if self._fatal_raw_at(index, self._draws(index, a)) is not None:
                count += 1
        return count

    def fatal_kind(self, index: int, attempt: int) -> str | None:
        before = self.fatal_injections_before(index, attempt)
        if before >= self.max_injections_per_task:
            return None
        return self._fatal_raw_at(index, self._draws(index, attempt))

    def to_dict(self) -> dict:
        out = super().to_dict()
        out["task_exception_rates"] = [float(r)
                                       for r in self.task_exception_rates]
        return out


def calibrate_supervisor(
    model: DispatchModel,
    boundary_costs,
    boundary_rates,
    *,
    quarantine_budget: float = 0.5,
    retry_cap: int = 10,
) -> tuple[SupervisorConfig, dict]:
    """Invert a radius boundary point into supervisor retry parameters.

    Finds the smallest ``max_task_retries`` whose fluid-predicted
    quarantined mass *at the boundary operating point* — the worst
    schedule the radius promises to tolerate — stays under
    ``quarantine_budget`` tasks, then never goes below the retry budget
    the radius was computed for (running a weaker policy than the one
    analysed would invalidate the prediction).

    Returns the config (near-zero retry backoff, the model's deadline as
    ``task_timeout``) plus a diagnostics dict for the artifact.
    """
    if not quarantine_budget > 0:
        raise SpecificationError(
            f"quarantine_budget must be positive, got {quarantine_budget}")
    required = None
    for retries in range(retry_cap + 1):
        candidate = DispatchModel(
            n_tasks=model.n_tasks, workers=model.workers,
            max_task_retries=retries, deadline=model.deadline,
            breaker_threshold=model.breaker_threshold,
            breaker_cooldown=model.breaker_cooldown)
        mass = candidate.simulate(boundary_costs,
                                  boundary_rates).quarantined_mass
        if mass < quarantine_budget:
            required = retries
            break
    if required is None:
        raise SpecificationError(
            f"no retry budget <= {retry_cap} keeps the boundary operating "
            f"point under {quarantine_budget} quarantined task(s); the "
            "requirement is not recoverable by retries alone")
    chosen = max(required, model.max_task_retries)
    config = SupervisorConfig(
        task_timeout=model.deadline,
        max_task_retries=chosen,
        retry=RetryPolicy(backoff_base=1e-4, backoff_cap=1e-3))
    diagnostics = {
        "required_retries": int(required),
        "model_retries": int(model.max_task_retries),
        "max_task_retries": int(chosen),
        "task_timeout": None if model.deadline is None
        else float(model.deadline),
        "quarantine_budget": float(quarantine_budget),
        "boundary_quarantined_mass": float(mass),
    }
    return config, diagnostics


def _selfhost_probe(index: int, cost: float):
    """One schedulable unit of the closed-loop batch (picklable, instant).

    The cost is *virtual* — measured features are recomputed from
    attempt counts, never from wall clock — so the probe only echoes its
    identity deterministically.
    """
    return (int(index), float(cost))


def _clip_point(system: SelfhostSystem, flat: np.ndarray) -> np.ndarray:
    """Clip a flat operating point into the physical box."""
    n = system.n_tasks
    out = np.array(flat, dtype=np.float64)
    out[:n] = np.clip(out[:n], 0.0, None)
    out[n:] = np.clip(out[n:], 0.0, 1.0)
    return out


def run_selfhost_loop(
    system: SelfhostSystem | None = None,
    *,
    beta: float = 2.0,
    seed: int = 2005,
    ratios: tuple[float, ...] = (0.4, 1.8),
    quarantine_budget: float = 0.5,
    runtime_workers: int = 1,
    solver_workers: int = 1,
    executor=None,
    service=None,
) -> dict:
    """Run the full closed loop and return the ``repro-selfhost-v1`` payload.

    ``runtime_workers`` controls how many OS processes the chaos legs
    dispatch over; it deliberately appears nowhere in the payload — the
    artifact is byte-identical for any value (see the acceptance suite).
    ``solver_workers``/``executor``/``service`` are the usual radius
    fan-out seams.
    """
    if system is None:
        system = SelfhostSystem.baseline(seed=seed)
    if not ratios:
        raise SpecificationError("need at least one leg ratio")
    analysis = system.robustness_analysis(
        beta, seed=seed, workers=solver_workers, executor=executor,
        service=service)
    radii = analysis.radii()
    critical = analysis.critical_feature()
    rho = analysis.rho()
    result = radii[critical.name]
    if result.boundary_point is None or not np.isfinite(result.radius):
        raise SpecificationError(
            f"critical feature {critical.name!r} has no finite boundary "
            "witness; nothing to calibrate against")
    pspace = analysis.pspace(critical)
    pi_star = _clip_point(system, pspace.from_p(result.boundary_point))
    pi_orig = system.pi_orig()
    direction = pi_star - pi_orig

    n = system.n_tasks
    config, calibration = calibrate_supervisor(
        system.model, pi_star[:n], pi_star[n:],
        quarantine_budget=quarantine_budget)

    origin = system.origin_metrics()
    legs = []
    in_ok = True
    out_violates = True
    for leg_index, ratio in enumerate(ratios):
        point = _clip_point(system, pi_orig + float(ratio) * direction)
        costs_q, rates_q = point[:n], point[n:]
        predicted_values = analysis.feature_values(point)
        predicted_feasible = analysis.all_satisfied(point)
        expected = system.model.simulate(costs_q, rates_q)

        policy = PerTaskChaosPolicy.from_rates(
            system.model, rates_q, seed=seed * 100 + leg_index,
            max_injections_per_task=config.max_task_retries)
        tasks = [functools.partial(_selfhost_probe, i, float(costs_q[i]))
                 for i in range(n)]
        with SupervisedExecutor(runtime_workers, config=config,
                                chaos=policy, seed=seed) as ex:
            _, report = ex.run_report(tasks)
        attempts = [o.attempts for o in report.outcomes]
        quarantined = [o.status == "quarantined" for o in report.outcomes]
        measured = system.model.replay(costs_q, attempts, quarantined)

        measured_features = {}
        measured_feasible = True
        for spec in analysis.features:
            metric = spec.name.removeprefix("selfhost_")
            value = measured.value(metric)
            satisfied = spec.feature.is_satisfied(value)
            measured_features[spec.name] = {
                "value": float(value),
                "satisfied": bool(satisfied),
                "bound": float(spec.feature.bounds.beta_max),
            }
            measured_feasible = measured_feasible and satisfied

        legs.append({
            "ratio": float(ratio),
            "inside_radius": bool(ratio < 1.0),
            "operating_point": {
                "task_costs": [float(c) for c in costs_q],
                "worker_fail_rates": [float(r) for r in rates_q],
            },
            "predicted_feasible": bool(predicted_feasible),
            "predicted_features": {k: float(v)
                                   for k, v in predicted_values.items()},
            "expected_metrics": expected.to_dict(),
            "measured_feasible": bool(measured_feasible),
            "measured_features": measured_features,
            "measured_metrics": measured.to_dict(),
            "report": report.to_dict(),
            "injections": {k: int(v) for k, v in sorted(
                policy.scheduled_injections(attempts).items())},
            "chaos_seed": int(policy.seed),
        })
        if ratio < 1.0:
            in_ok = in_ok and predicted_feasible and measured_feasible \
                and report.ok
        else:
            out_violates = out_violates and not predicted_feasible \
                and not measured_feasible

    per_parameter = analysis.per_parameter_radii(critical)
    payload = {
        "schema": SELFHOST_SCHEMA,
        "seed": int(seed),
        "beta": float(beta),
        "norm": float(analysis.norm),
        "weighting": type(analysis.weighting).__name__,
        "system": {
            "model": system.model.to_dict(),
            "origin_metrics": origin.to_dict(),
        },
        "radii": {
            name: {
                "radius": float(r.radius),
                "method": r.method,
                "quality": r.quality.name,
            }
            for name, r in sorted(radii.items())
        },
        "per_parameter_radii": {k: float(v)
                                for k, v in sorted(per_parameter.items())},
        "rho": float(rho),
        "critical_feature": critical.name,
        "calibration": dict(calibration, policy_kind="PerTaskChaosPolicy"),
        "legs": legs,
        "in_radius_recovered": bool(in_ok),
        "out_of_radius_violates": bool(out_violates),
        "closed_loop": bool(in_ok and out_violates),
    }
    return payload
