"""Wall-clock timeout enforcement for solver calls.

The radius solvers are synchronous NumPy/SciPy code with no cooperative
cancellation points, so a hung or pathologically slow solve (an injected
latency fault, an adversarial mapping, a multistart that brackets forever)
would stall an entire sweep.  :func:`call_with_timeout` runs the callable
in a worker thread and abandons it when the budget expires, raising
:class:`~repro.exceptions.SolverTimeoutError` so the cascade can degrade
to the next solver.

The abandoned thread is a daemon and cannot be killed — it finishes (or
hangs) in the background without blocking interpreter exit.  This is the
standard CPython trade-off for timing out uncancellable code; the cascade
bounds how many such threads can pile up by refusing to retry timed-out
solvers.  Each abandonment emits a ``solver.abandoned`` event and updates
the ``timeouts.abandoned_threads`` gauge (the number of abandoned threads
*currently alive* — it decrements when a leaked thread eventually
finishes), so leaked threads are visible in ``repro stats`` instead of
only a log line.
"""

from __future__ import annotations

import logging
import threading
from typing import Any, Callable, TypeVar

from repro.exceptions import SolverTimeoutError, SpecificationError
from repro.observability import emit_event, get_metrics

__all__ = ["call_with_timeout", "abandoned_thread_count"]

logger = logging.getLogger(__name__)

T = TypeVar("T")

_abandoned_lock = threading.Lock()
_abandoned_alive = 0


def abandoned_thread_count() -> int:
    """Abandoned timeout-worker threads that are still running."""
    with _abandoned_lock:
        return _abandoned_alive


def _mark_abandoned() -> None:
    global _abandoned_alive
    _abandoned_alive += 1
    get_metrics().set_gauge("timeouts.abandoned_threads", _abandoned_alive)


def _mark_finished() -> None:
    global _abandoned_alive
    _abandoned_alive -= 1
    get_metrics().set_gauge("timeouts.abandoned_threads", _abandoned_alive)


def call_with_timeout(fn: Callable[[], T], *, timeout: float | None,
                      name: str = "solver") -> T:
    """Run ``fn()`` with a wall-clock budget.

    Parameters
    ----------
    fn:
        Zero-argument callable to run.
    timeout:
        Budget in seconds; ``None`` or non-positive values disable the
        timeout and call ``fn`` directly on the current thread.
    name:
        Label used in the timeout error message and logs.

    Returns
    -------
    Whatever ``fn`` returns.

    Raises
    ------
    SolverTimeoutError
        If ``fn`` does not finish within ``timeout`` seconds.  The worker
        thread keeps running as a daemon but its eventual result is
        discarded.  A ``solver.abandoned`` event is emitted and the
        ``timeouts.abandoned_threads`` gauge tracks how many such threads
        are still alive.
    """
    if timeout is not None and timeout != timeout:  # NaN guard
        raise SpecificationError("timeout must not be NaN")
    if timeout is None or timeout <= 0:
        return fn()

    outcome: dict[str, Any] = {}

    def _worker() -> None:
        try:
            try:
                outcome["value"] = fn()
            except BaseException as exc:  # propagated to the caller below
                outcome["error"] = exc
        finally:
            # Handshake with the parent: if we were abandoned, the leaked
            # thread just ended — decrement the live-leak gauge.  `done`
            # and `abandoned` are flipped under one lock so exactly one
            # side performs the accounting whichever way the race goes.
            with _abandoned_lock:
                outcome["done"] = True
                if outcome.get("abandoned"):
                    _mark_finished()

    thread = threading.Thread(target=_worker, name=f"timeout-{name}",
                              daemon=True)
    thread.start()
    thread.join(timeout)
    if thread.is_alive():
        with _abandoned_lock:
            if not outcome.get("done"):
                outcome["abandoned"] = True
                _mark_abandoned()
        if outcome.get("abandoned"):
            emit_event("solver.abandoned", name=name, timeout=float(timeout))
            logger.warning("%s exceeded its %.3g s wall-clock budget; "
                           "abandoning the worker thread", name, timeout)
            raise SolverTimeoutError(
                f"{name} exceeded its wall-clock budget of {timeout:g} s")
        # The worker slipped in between join() and the check: a result
        # (or error) is available after all — fall through and use it.
        thread.join()
    if "error" in outcome:
        raise outcome["error"]
    return outcome["value"]
