"""Wall-clock timeout enforcement for solver calls.

The radius solvers are synchronous NumPy/SciPy code with no cooperative
cancellation points, so a hung or pathologically slow solve (an injected
latency fault, an adversarial mapping, a multistart that brackets forever)
would stall an entire sweep.  :func:`call_with_timeout` runs the callable
in a worker thread and abandons it when the budget expires, raising
:class:`~repro.exceptions.SolverTimeoutError` so the cascade can degrade
to the next solver.

The abandoned thread is a daemon and cannot be killed — it finishes (or
hangs) in the background without blocking interpreter exit.  This is the
standard CPython trade-off for timing out uncancellable code; the cascade
bounds how many such threads can pile up by refusing to retry timed-out
solvers.
"""

from __future__ import annotations

import logging
import threading
from typing import Any, Callable, TypeVar

from repro.exceptions import SolverTimeoutError, SpecificationError

__all__ = ["call_with_timeout"]

logger = logging.getLogger(__name__)

T = TypeVar("T")


def call_with_timeout(fn: Callable[[], T], *, timeout: float | None,
                      name: str = "solver") -> T:
    """Run ``fn()`` with a wall-clock budget.

    Parameters
    ----------
    fn:
        Zero-argument callable to run.
    timeout:
        Budget in seconds; ``None`` or non-positive values disable the
        timeout and call ``fn`` directly on the current thread.
    name:
        Label used in the timeout error message and logs.

    Returns
    -------
    Whatever ``fn`` returns.

    Raises
    ------
    SolverTimeoutError
        If ``fn`` does not finish within ``timeout`` seconds.  The worker
        thread keeps running as a daemon but its eventual result is
        discarded.
    """
    if timeout is not None and timeout != timeout:  # NaN guard
        raise SpecificationError("timeout must not be NaN")
    if timeout is None or timeout <= 0:
        return fn()

    outcome: dict[str, Any] = {}

    def _worker() -> None:
        try:
            outcome["value"] = fn()
        except BaseException as exc:  # propagated to the caller below
            outcome["error"] = exc

    thread = threading.Thread(target=_worker, name=f"timeout-{name}",
                              daemon=True)
    thread.start()
    thread.join(timeout)
    if thread.is_alive():
        logger.warning("%s exceeded its %.3g s wall-clock budget; "
                       "abandoning the worker thread", name, timeout)
        raise SolverTimeoutError(
            f"{name} exceeded its wall-clock budget of {timeout:g} s")
    if "error" in outcome:
        raise outcome["error"]
    return outcome["value"]
