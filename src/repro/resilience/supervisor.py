"""Supervised task execution: per-task fault domains over the process pool.

:class:`~repro.parallel.executor.ParallelExecutor` treats a batch as one
fate-sharing unit — a single task exception aborts the whole ``pool.map``
and a broken pool silently re-runs everything serially.
:class:`SupervisedExecutor` rewires that into *per-task fault domains*:

* every task is submitted **individually** and carries its own wall-clock
  deadline (``task_timeout``, with the abandon-on-expiry semantics of
  :func:`~repro.resilience.timeouts.call_with_timeout`);
* failed tasks are **retried** with the library's seeded
  :class:`~repro.resilience.retry.RetryPolicy` jitter; because every task
  is a deterministic thunk deriving its randomness from its own seed, a
  retried task reproduces its fault-free result bit-for-bit;
* a task that keeps failing is **quarantined** after its retry budget:
  the batch completes and the poisoned slot yields a typed
  :class:`TaskFailure` sentinel tagged
  :class:`~repro.core.diagnostics.Quality` ``DEGRADED`` — consistent with
  the solver cascade's quality model — instead of aborting everything;
* a :class:`CircuitBreaker` watches *pool-level* failures (dead workers,
  :class:`~concurrent.futures.process.BrokenProcessPool`): after a
  threshold of consecutive breaks it opens and dispatch degrades to
  serial, then recovers automatically through deterministically scheduled
  half-open probes — no wall clocks, so recovery behaviour is replayable;
* dead pools are **respawned between waves** (``pool.respawn`` events)
  rather than falling back to serial for good.

Observability: supervision emits ``task.retry``, ``task.timeout``,
``task.quarantined``, ``breaker.open`` / ``breaker.half_open`` /
``breaker.close`` and ``pool.respawn`` events plus matching
``supervisor.*`` metrics, so ``repro stats`` shows exactly how a run
recovered.

Determinism contract: for a fixed seed, any failure pattern that leaves
every task recoverable within its retry budget yields results
bit-identical to a fault-free run, for any worker count, with tracing on
or off.  :mod:`repro.resilience.chaos` exercises (rather than assumes)
this contract.
"""

from __future__ import annotations

import logging
import pickle
import time
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.diagnostics import Quality
from repro.exceptions import SolverTimeoutError, SpecificationError
from repro.observability import (
    emit_event,
    get_metrics,
    get_observability,
    observed_call,
    span,
)
from repro.parallel.executor import ParallelExecutor
from repro.resilience.retry import RetryPolicy
from repro.resilience.timeouts import call_with_timeout

__all__ = [
    "BreakerConfig",
    "CircuitBreaker",
    "SupervisorConfig",
    "TaskFailure",
    "TaskOutcome",
    "BatchReport",
    "SupervisedExecutor",
    "resolve_task_failures",
]

logger = logging.getLogger(__name__)

#: Sentinel marking a slot whose result has not been produced yet.
_PENDING = object()


@dataclass(frozen=True)
class TaskFailure:
    """Typed sentinel standing in for a permanently-failed task's result.

    Returned (never raised) by :meth:`SupervisedExecutor.run` in the
    quarantined task's slot, so the rest of the batch survives.  Callers
    that need a real value can re-run ``tasks[index]`` in-process — the
    genuine exception then propagates exactly as on the serial path
    (:func:`resolve_task_failures` does this).

    Attributes
    ----------
    index:
        Position of the task in its batch.
    error:
        Description of the last failure (``"TypeName: message"``).
    attempts:
        Total invocations charged to the task (including collateral
        pool breaks) before it was quarantined.
    quality:
        Always :class:`~repro.core.diagnostics.Quality` ``DEGRADED`` —
        the failure was contained, not resolved.
    """

    index: int
    error: str
    attempts: int
    quality: Quality = Quality.DEGRADED

    def __str__(self) -> str:
        return (f"TaskFailure(task {self.index} quarantined after "
                f"{self.attempts} attempt(s): {self.error})")


@dataclass(frozen=True)
class TaskOutcome:
    """Per-task record in a :class:`BatchReport`.

    Attributes
    ----------
    index:
        Position of the task in its batch.
    status:
        ``"ok"`` or ``"quarantined"``.
    attempts:
        Invocations charged to the task (1 = clean first try).
    error:
        Last failure description, or ``None`` if none ever occurred.
    quality:
        ``EXACT`` for a successful task (its value is bit-identical to a
        fault-free run's), ``DEGRADED`` for a quarantined one.
    """

    index: int
    status: str
    attempts: int
    error: str | None
    quality: Quality

    @property
    def retries(self) -> int:
        """Re-invocations after the first attempt."""
        return max(0, self.attempts - 1)


@dataclass(frozen=True)
class BatchReport:
    """What happened to one supervised batch, task by task.

    Attributes
    ----------
    outcomes:
        One :class:`TaskOutcome` per task, in task order.
    waves:
        Dispatch waves the batch needed (1 = no retries).
    pool_breaks:
        :class:`BrokenProcessPool` incidents during the batch.
    respawns:
        Worker pools respawned during the batch.
    breaker_state:
        Circuit-breaker state when the batch finished.
    """

    outcomes: tuple[TaskOutcome, ...]
    waves: int
    pool_breaks: int
    respawns: int
    breaker_state: str

    @property
    def n_ok(self) -> int:
        """Tasks that produced a real result."""
        return sum(1 for o in self.outcomes if o.status == "ok")

    @property
    def n_quarantined(self) -> int:
        """Tasks replaced by a :class:`TaskFailure` sentinel."""
        return sum(1 for o in self.outcomes if o.status == "quarantined")

    @property
    def n_recovered(self) -> int:
        """Quarantined tasks later resolved by an in-process re-run.

        Set by :func:`resolve_task_failures`: the sentinel was replaced
        with a real value, but the task still went through quarantine,
        so its (and the batch's) quality stays ``DEGRADED``.
        """
        return sum(1 for o in self.outcomes if o.status == "recovered")

    @property
    def total_retries(self) -> int:
        """Re-invocations across the whole batch."""
        return sum(o.retries for o in self.outcomes)

    @property
    def quality(self) -> Quality:
        """Worst per-task quality (``EXACT`` when everything succeeded)."""
        degraded = self.n_quarantined or self.n_recovered
        return Quality.DEGRADED if degraded else Quality.EXACT

    @property
    def ok(self) -> bool:
        """Whether every task produced a real result."""
        return self.n_quarantined == 0

    def to_dict(self) -> dict:
        """JSON-safe summary (used by benchmark payloads and the CLI)."""
        return {
            "tasks": len(self.outcomes),
            "ok": self.n_ok,
            "quarantined": self.n_quarantined,
            "recovered": self.n_recovered,
            "retries": self.total_retries,
            "waves": self.waves,
            "pool_breaks": self.pool_breaks,
            "respawns": self.respawns,
            "breaker_state": self.breaker_state,
            "quality": self.quality.name,
        }


@dataclass(frozen=True)
class BreakerConfig:
    """Deterministic circuit-breaker tuning.

    All thresholds count *events*, never wall-clock time, so breaker
    behaviour replays identically run over run.

    Attributes
    ----------
    failure_threshold:
        Consecutive pool-level failures that open the breaker.
    cooldown:
        Serial task executions, while open, before a half-open probe is
        scheduled.
    """

    failure_threshold: int = 3
    cooldown: int = 8

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise SpecificationError(
                f"failure_threshold must be >= 1, got "
                f"{self.failure_threshold}")
        if self.cooldown < 1:
            raise SpecificationError(
                f"cooldown must be >= 1, got {self.cooldown}")


class CircuitBreaker:
    """Closed → open → half-open supervision of the process pool.

    *Closed* dispatches to the pool.  After ``failure_threshold``
    consecutive pool-level failures the breaker *opens*: dispatch
    degrades to serial in-process execution.  Every serial execution
    while open counts toward ``cooldown``; once it elapses the breaker
    goes *half-open* and the next wave probes the pool — success closes
    the breaker, another pool failure re-opens it (and restarts the
    cooldown).  The schedule is a pure function of the event sequence,
    so recovery is deterministic and testable.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"

    def __init__(self, config: BreakerConfig | None = None) -> None:
        self.config = config if config is not None else BreakerConfig()
        if not isinstance(self.config, BreakerConfig):
            raise SpecificationError(
                f"config must be a BreakerConfig, got "
                f"{type(self.config).__name__}")
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self._cooldown_left = 0
        #: Times the breaker has opened over its lifetime.
        self.opens = 0

    def allow_pool(self) -> bool:
        """Whether the next wave may dispatch to the process pool."""
        return self.state != self.OPEN

    def record_pool_failure(self) -> None:
        """A pool-level failure (broken pool / dead worker) occurred."""
        self.consecutive_failures += 1
        if self.state == self.HALF_OPEN:
            self._trip("half-open probe failed")
        elif self.state == self.CLOSED and \
                self.consecutive_failures >= self.config.failure_threshold:
            self._trip(f"{self.consecutive_failures} consecutive "
                       "pool failures")

    def record_pool_success(self) -> None:
        """A wave completed on the pool without a pool-level failure."""
        if self.state == self.HALF_OPEN:
            self.state = self.CLOSED
            get_metrics().inc("breaker.closes")
            emit_event("breaker.close")
            logger.info("circuit breaker closed: pool probe succeeded")
        self.consecutive_failures = 0

    def record_serial_execution(self, n: int = 1) -> None:
        """``n`` tasks ran serially; advances the open-state cooldown."""
        if self.state != self.OPEN:
            return
        self._cooldown_left -= n
        if self._cooldown_left <= 0:
            self.state = self.HALF_OPEN
            get_metrics().inc("breaker.half_opens")
            emit_event("breaker.half_open")
            logger.info("circuit breaker half-open: next wave probes "
                        "the pool")

    def _trip(self, reason: str) -> None:
        self.state = self.OPEN
        self.opens += 1
        self._cooldown_left = self.config.cooldown
        get_metrics().inc("breaker.opens")
        emit_event("breaker.open", reason=reason)
        logger.warning("circuit breaker OPEN (%s); dispatch degrades to "
                       "serial for %d task(s)", reason,
                       self.config.cooldown)

    def snapshot(self) -> dict:
        """JSON-safe breaker state for stats payloads."""
        return {"state": self.state, "opens": self.opens,
                "consecutive_failures": self.consecutive_failures}

    def __repr__(self) -> str:
        return (f"CircuitBreaker(state={self.state!r}, "
                f"opens={self.opens})")


@dataclass(frozen=True)
class SupervisorConfig:
    """Tuning knobs of a :class:`SupervisedExecutor`.

    Attributes
    ----------
    task_timeout:
        Wall-clock deadline per task attempt, in seconds (``None``
        disables deadlines).  On the pool path the deadline also covers
        queueing behind earlier tasks of the same wave; a timed-out pool
        task cannot be killed, so — exactly like
        :func:`~repro.resilience.timeouts.call_with_timeout` — its
        worker is abandoned and the eventual result discarded.
    max_task_retries:
        Re-invocations allowed per task after its first attempt before
        it is quarantined.
    retry:
        Backoff/jitter policy applied between retry waves.  The jitter
        draws from the executor's seeded stream, so sleep schedules are
        reproducible.
    fail_fast:
        When ``True``, the first quarantine re-raises the task's last
        exception instead of yielding a :class:`TaskFailure` sentinel.
    breaker:
        Circuit-breaker thresholds (see :class:`BreakerConfig`).
    """

    task_timeout: float | None = None
    max_task_retries: int = 2
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    fail_fast: bool = False
    breaker: BreakerConfig = field(default_factory=BreakerConfig)

    def __post_init__(self) -> None:
        if self.task_timeout is not None and not self.task_timeout > 0:
            raise SpecificationError(
                f"task_timeout must be positive or None, got "
                f"{self.task_timeout}")
        if self.max_task_retries < 0:
            raise SpecificationError(
                f"max_task_retries must be >= 0, got "
                f"{self.max_task_retries}")


class SupervisedExecutor(ParallelExecutor):
    """Order-preserving fan-out with per-task retries, quarantine and a
    circuit breaker.

    A drop-in :class:`~repro.parallel.executor.ParallelExecutor`: every
    call site accepting an executor accepts a supervised one.  The
    difference is failure behaviour — see the module docstring.

    Parameters
    ----------
    workers:
        Maximum concurrent worker processes (``1`` = serial, still
        supervised: deadlines, retries and quarantine all apply).
    config:
        Supervision tuning; defaults to 2 retries, no deadline.
    chaos:
        Optional :class:`~repro.resilience.chaos.ChaosPolicy` injected at
        the dispatch boundary — every task attempt may be killed,
        delayed, blown up or corrupted on the policy's seeded schedule.
    seed:
        Seed for the retry-jitter stream (and nothing else — task
        results never depend on it).
    """

    def __init__(self, workers: int = 1, *,
                 config: SupervisorConfig | None = None,
                 chaos=None, seed=None) -> None:
        super().__init__(workers)
        self.config = config if config is not None else SupervisorConfig()
        if not isinstance(self.config, SupervisorConfig):
            raise SpecificationError(
                f"config must be a SupervisorConfig, got "
                f"{type(self.config).__name__}")
        self.chaos = chaos
        self.breaker = CircuitBreaker(self.config.breaker)
        self._jitter_rng = np.random.default_rng(
            np.random.SeedSequence(seed) if seed is not None
            else np.random.SeedSequence())
        #: Cumulative supervision counters (across batches).
        self.retries = 0
        self.quarantined = 0
        self.pool_breaks = 0
        self.respawns = 0
        #: The most recent batch's :class:`BatchReport`.
        self.last_report: BatchReport | None = None

    # ------------------------------------------------------------------
    # pickling: degrade to a serial supervised executor (same contract
    # as the base class: nested pools oversubscribe and can deadlock)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = super().__getstate__()
        state.update({
            "config": self.config, "chaos": self.chaos,
            "breaker": None, "_jitter_rng": None,
            "retries": 0, "quarantined": 0, "pool_breaks": 0,
            "respawns": 0, "last_report": None,
        })
        return state

    def __setstate__(self, state: dict) -> None:
        super().__setstate__(state)
        self.breaker = CircuitBreaker(self.config.breaker)
        self._jitter_rng = np.random.default_rng(np.random.SeedSequence(0))

    # ------------------------------------------------------------------
    # task wrapping
    # ------------------------------------------------------------------
    def _attempt_call(self, task: Callable[[], Any], index: int,
                      attempt: int) -> Callable[[], Any]:
        """The callable actually dispatched for one task attempt."""
        if self.chaos is None:
            return task
        return self.chaos.wrap(task, index=index, attempt=attempt)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[Callable[[], Any]]) -> list[Any]:
        """Execute tasks under supervision; results in task order.

        Unlike the base executor, a task exception never escapes (unless
        ``fail_fast``): permanently-failing tasks are quarantined and
        their slots filled with :class:`TaskFailure` sentinels.  The
        batch's :class:`BatchReport` is available as :attr:`last_report`
        afterwards (or use :meth:`run_report`).
        """
        return self.run_report(tasks)[0]

    def run_report(self, tasks: Sequence[Callable[[], Any]]
                   ) -> tuple[list[Any], BatchReport]:
        """Like :meth:`run`, also returning the batch's report."""
        tasks = list(tasks)
        n = len(tasks)
        results: list[Any] = [_PENDING] * n
        attempts = [0] * n
        errors: list[str | None] = [None] * n
        last_exc: list[BaseException | None] = [None] * n
        max_attempts = 1 + self.config.max_task_retries
        pool_breaks = respawns = waves = 0
        retry_waves = 0

        picklable = True
        if self.workers > 1 and n > 0:
            try:
                pickle.dumps(tasks)
            except Exception as exc:
                picklable = False
                self.fallbacks += 1
                self.last_fallback_reason = \
                    f"non-picklable task batch: {exc!r}"
                get_metrics().inc("executor.fallbacks")
                emit_event("pool.fallback", tasks=n,
                           reason=self.last_fallback_reason)

        with span("supervisor.batch", tasks=n, workers=self.workers):
            while any(r is _PENDING for r in results):
                pending = [i for i in range(n) if results[i] is _PENDING]
                waves += 1
                use_pool = (self.workers > 1 and picklable
                            and self.breaker.allow_pool())
                if use_pool:
                    broke = self._pool_wave(tasks, pending, results,
                                            attempts, errors, last_exc)
                    if broke:
                        pool_breaks += 1
                        self.pool_breaks += 1
                        respawns += 1
                        self._respawn_pool()
                        self.breaker.record_pool_failure()
                    else:
                        self.breaker.record_pool_success()
                else:
                    self._serial_wave(tasks, pending, results, attempts,
                                      errors, last_exc)
                    self.breaker.record_serial_execution(len(pending))

                # ---- quarantine and retry bookkeeping --------------------
                still_failing = [i for i in pending
                                 if results[i] is _PENDING]
                retriable = []
                for i in still_failing:
                    if attempts[i] >= max_attempts:
                        self.quarantined += 1
                        get_metrics().inc("supervisor.quarantined")
                        emit_event("task.quarantined", index=i,
                                   attempts=attempts[i], error=errors[i])
                        logger.warning(
                            "task %d quarantined after %d attempt(s): %s",
                            i, attempts[i], errors[i])
                        if self.config.fail_fast:
                            exc = last_exc[i]
                            if exc is None:  # pragma: no cover - paranoia
                                exc = RuntimeError(errors[i] or
                                                   f"task {i} failed")
                            raise exc
                        results[i] = TaskFailure(
                            index=i, error=errors[i] or "unknown failure",
                            attempts=attempts[i])
                    else:
                        retriable.append(i)
                        self.retries += 1
                        get_metrics().inc("supervisor.retries")
                        emit_event("task.retry", index=i,
                                   attempt=attempts[i], error=errors[i])
                if retriable:
                    delay = self.config.retry.delay(
                        min(retry_waves, 62), self._jitter_rng)
                    retry_waves += 1
                    logger.info("retrying %d task(s) in %.3g s",
                                len(retriable), delay)
                    if delay > 0:
                        time.sleep(delay)

        report = BatchReport(
            outcomes=tuple(
                TaskOutcome(
                    index=i,
                    status=("quarantined"
                            if isinstance(results[i], TaskFailure)
                            else "ok"),
                    attempts=max(1, attempts[i]),
                    error=errors[i],
                    quality=(Quality.DEGRADED
                             if isinstance(results[i], TaskFailure)
                             else Quality.EXACT))
                for i in range(n)),
            waves=waves, pool_breaks=pool_breaks, respawns=respawns,
            breaker_state=self.breaker.state)
        self.last_report = report
        if report.n_quarantined:
            get_metrics().inc("supervisor.degraded_batches")
        return results, report

    # ------------------------------------------------------------------
    # waves
    # ------------------------------------------------------------------
    def _pool_wave(self, tasks, pending, results, attempts, errors,
                   last_exc) -> bool:
        """One wave on the process pool; returns True if the pool broke."""
        obs = get_observability()
        pool = self._ensure_pool()
        trampoline = observed_call if obs is not None else _call_direct
        futures = []
        for i in pending:
            attempts[i] += 1
            call = self._attempt_call(tasks[i], i, attempts[i])
            futures.append((i, pool.submit(trampoline, call)))
        timeout = self.config.task_timeout
        timeout = timeout if timeout is not None and timeout > 0 else None
        broke = False
        with span("supervisor.wave", tasks=len(pending), mode="pool"):
            for i, fut in futures:  # submission order
                try:
                    value = fut.result(timeout=timeout)
                except FuturesTimeoutError:
                    fut.cancel()
                    errors[i] = (f"task exceeded its {timeout:g} s "
                                 "wall-clock deadline")
                    last_exc[i] = SolverTimeoutError(errors[i])
                    get_metrics().inc("supervisor.timeouts")
                    emit_event("task.timeout", index=i, timeout=timeout)
                    continue
                except BrokenProcessPool as exc:
                    broke = True
                    errors[i] = f"{type(exc).__name__}: {exc}"
                    last_exc[i] = exc
                    continue
                except BaseException as exc:
                    errors[i] = f"{type(exc).__name__}: {exc}"
                    last_exc[i] = exc
                    continue
                if obs is not None:
                    value, payload = value
                    obs.absorb(payload)
                results[i] = value
                self.dispatched += 1
                get_metrics().inc("executor.dispatched")
        return broke

    def _serial_wave(self, tasks, pending, results, attempts, errors,
                     last_exc) -> None:
        """One in-process wave (serial path, broken pool, open breaker)."""
        with span("supervisor.wave", tasks=len(pending), mode="serial"):
            for i in pending:
                attempts[i] += 1
                call = self._attempt_call(tasks[i], i, attempts[i])
                try:
                    results[i] = call_with_timeout(
                        call, timeout=self.config.task_timeout,
                        name=f"task-{i}")
                except BaseException as exc:
                    errors[i] = f"{type(exc).__name__}: {exc}"
                    last_exc[i] = exc

    def _respawn_pool(self) -> None:
        """Replace a broken pool so the next wave gets live workers."""
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None
        self.respawns += 1
        get_metrics().inc("pool.respawns")
        emit_event("pool.respawn")
        logger.info("respawning broken worker pool")

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Executor counters plus supervision and breaker state."""
        stats = super().stats()
        stats.update({
            "retries": self.retries,
            "quarantined": self.quarantined,
            "pool_breaks": self.pool_breaks,
            "respawns": self.respawns,
            "breaker": self.breaker.snapshot(),
        })
        return stats

    def __repr__(self) -> str:
        return (f"SupervisedExecutor(workers={self.workers}, "
                f"breaker={self.breaker.state!r})")


def _call_direct(task: Callable[[], Any]) -> Any:
    """Top-level trampoline so the pool can pickle the invocation."""
    return task()


def resolve_task_failures(results: Sequence[Any],
                          tasks: Sequence[Callable[[], Any]],
                          executor: "SupervisedExecutor | None" = None,
                          ) -> list[Any]:
    """Replace :class:`TaskFailure` sentinels by in-process re-runs.

    Library fan-out sites that need *real* values (radius solves,
    checkpoint waves, scenario replays) call this after a supervised
    batch: a transient infrastructure fault was already retried away by
    the supervisor, so a surviving sentinel means the task genuinely
    fails — re-running it here propagates the genuine exception exactly
    as the serial path would have.  Batches without sentinels pass
    through untouched.

    When ``executor`` is given, its :attr:`~SupervisedExecutor.last_report`
    is rewritten so each resolved slot's outcome carries status
    ``"recovered"`` while **keeping** ``Quality.DEGRADED`` — the value is
    real now, but it did go through quarantine, and downstream summaries
    (:attr:`BatchReport.quality`, benchmark payloads) must not launder
    that into ``EXACT``.
    """
    if not any(isinstance(r, TaskFailure) for r in results):
        return list(results)
    resolved = list(results)
    recovered: list[int] = []
    for i, r in enumerate(resolved):
        if isinstance(r, TaskFailure):
            logger.warning("re-running quarantined task %d in-process", i)
            resolved[i] = tasks[i]()
            recovered.append(i)
    report = getattr(executor, "last_report", None)
    if report is not None:
        outcomes = list(report.outcomes)
        for i in recovered:
            if i < len(outcomes) and outcomes[i].status == "quarantined":
                outcomes[i] = replace(outcomes[i], status="recovered",
                                      quality=Quality.DEGRADED)
        executor.last_report = replace(report, outcomes=tuple(outcomes))
    return resolved
