"""Bounded retries with jittered exponential backoff.

Stochastic solvers (the multistart numeric projection, directional
bisection, Monte-Carlo sampling) can fail transiently — an injected fault,
an unlucky start set, a NumPy numerical quirk — and succeed on a re-roll
with a fresh RNG stream.  :class:`RetryPolicy` captures how often to
re-roll and how long to wait between attempts.

The jitter is drawn from an explicit seeded generator so a retried sweep
is still bit-for-bit reproducible; exponential growth with a cap keeps a
persistent failure from stalling a sweep for more than
``max_retries * backoff_cap`` seconds per solver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SpecificationError

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How to retry a failing solver invocation.

    Attributes
    ----------
    max_retries:
        Re-invocations allowed *after* the first attempt (0 disables
        retrying entirely).
    backoff_base:
        Sleep before the first retry, in seconds; doubles per retry.
    backoff_cap:
        Upper limit on any single sleep.
    jitter:
        Fractional random spread added on top of the deterministic delay:
        the sleep is ``delay * (1 + jitter * u)`` with ``u ~ U[0, 1)``.
        Jitter decorrelates retry storms when many workers share a
        failing resource.
    """

    max_retries: int = 2
    backoff_base: float = 0.02
    backoff_cap: float = 1.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise SpecificationError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise SpecificationError("backoff values must be non-negative")
        if not 0 <= self.jitter:
            raise SpecificationError(
                f"jitter must be non-negative, got {self.jitter}")

    def delay(self, retry_index: int, rng: np.random.Generator) -> float:
        """Sleep before the ``retry_index``-th retry (0-based), in seconds."""
        if retry_index < 0:
            raise SpecificationError(
                f"retry_index must be >= 0, got {retry_index}")
        base = self.backoff_base * (2.0 ** retry_index)
        # The cap bounds the *actual* sleep, so it must be applied after
        # jitter — otherwise the sleep can exceed it by up to ``jitter``x
        # and the documented ``max_retries * backoff_cap`` stall bound
        # no longer holds.
        return float(min(self.backoff_cap,
                         base * (1.0 + self.jitter * rng.random())))
