"""Fault-tolerant solver cascade with graceful degradation.

:class:`SolverCascade` computes robustness radii through the same solver
stack as :func:`~repro.core.radius.compute_radius`, but hardened for long
unattended sweeps: every solver runs under a wall-clock timeout, stochastic
solvers are retried with jittered exponential backoff and fresh RNG
streams, candidate boundary points are re-verified against the mapping
before being trusted, and — instead of raising when everything fails — the
cascade returns the best *rigorous upper bound* on the radius it obtained,
tagged with an honest :class:`~repro.core.diagnostics.Quality` grade and a
full :class:`~repro.core.diagnostics.SolverAttempt` trail.

The degradation ladder per tolerance bound is

    analytic / ellipsoid  →  numeric projection  →  directional bisection

with a whole-interval Monte-Carlo violation search as the final fallback
when no bound yields a verified crossing.  Soundness of the degraded
answers rests on one fact: any verified point *on or beyond* the boundary
lies at distance ``>=`` the true radius, so the minimum over whatever
bounds were resolved is always a valid upper bound.

The only exceptions that escape :meth:`SolverCascade.compute` are genuine
specification problems (an infeasible original operating point, malformed
inputs) — never solver failures, injected or otherwise.
"""

from __future__ import annotations

import logging
import math
import time
import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.core.boundary import (
    BoundaryCrossing,
    as_diagonal_quadratic,
    as_linear,
)
from repro.core.diagnostics import Quality, SolverAttempt
from repro.core.radius import RadiusProblem, RadiusResult
from repro.core.solvers.analytic import solve_linear_radius
from repro.core.solvers.bisection import solve_bisection_radius
from repro.core.solvers.box_linear import solve_linear_box_radius
from repro.core.solvers.ellipsoid import solve_ellipsoid_radius
from repro.core.solvers.numeric import solve_numeric_radius
from repro.core.solvers.sampling import sampling_upper_bound
from repro.exceptions import (
    BoundaryNotFoundError,
    DegradedResultWarning,
    InfeasibleAllocationError,
    SolverTimeoutError,
    SpecificationError,
)
from repro.observability import emit_event, get_metrics, span
from repro.resilience.retry import RetryPolicy
from repro.resilience.timeouts import call_with_timeout

__all__ = ["CascadeConfig", "SolverCascade"]

logger = logging.getLogger(__name__)

#: Quality severity order (worst last), used to combine per-bound grades.
_SEVERITY = [Quality.EXACT, Quality.CONVERGED, Quality.UPPER_BOUND,
             Quality.FAILED]


@dataclass(frozen=True)
class CascadeConfig:
    """Tuning knobs of a :class:`SolverCascade`.

    Attributes
    ----------
    solver_timeout:
        Wall-clock budget per solver invocation, in seconds (``None``
        disables timeouts).
    retry:
        Retry policy applied to failing solver invocations.
    verify_rtol:
        A candidate boundary point is accepted only if
        ``|f(point) - bound| <= verify_rtol * (1 + |bound|)`` in a fresh
        evaluation (guards against answers corrupted by transient faults).
    verify_attempts:
        Fresh evaluations tried per verification — a single confirming
        evaluation accepts, so transient NaN faults cannot veto a genuine
        boundary point.
    sampling_samples:
        Monte-Carlo points for the final violation-search fallback.
    sampling_distance_scale:
        The fallback searches within
        ``scale * max(1, ||origin||)`` of the origin.
    warn_on_degraded:
        Emit a :class:`~repro.exceptions.DegradedResultWarning` whenever
        the final quality is ``UPPER_BOUND`` or ``FAILED``.
    """

    solver_timeout: float | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    verify_rtol: float = 1e-6
    verify_attempts: int = 3
    sampling_samples: int = 8192
    sampling_distance_scale: float = 10.0
    warn_on_degraded: bool = True

    def __post_init__(self) -> None:
        if self.solver_timeout is not None and not self.solver_timeout > 0:
            raise SpecificationError(
                f"solver_timeout must be positive or None, got "
                f"{self.solver_timeout}")
        if self.verify_attempts < 1:
            raise SpecificationError("verify_attempts must be >= 1")
        if self.sampling_samples < 1:
            raise SpecificationError("sampling_samples must be >= 1")
        if self.sampling_distance_scale <= 0:
            raise SpecificationError("sampling_distance_scale must be > 0")


@dataclass
class _BoundOutcome:
    """What the cascade learned about one tolerance bound."""

    crossing: BoundaryCrossing | None = None
    quality: Quality | None = None
    #: "solved" | "proven" (unreachable, exactly) | "evidence" (unreachable
    #: per a best-effort solver) | "failed" (no information at all)
    status: str = "failed"
    method: str = ""


class SolverCascade:
    """Graceful-degradation radius computation.

    Parameters
    ----------
    config:
        Cascade configuration; defaults to no timeout, 2 retries.
    seed:
        Root seed for the per-attempt solver RNG streams and the retry
        jitter.  Identical seeds and call sequences reproduce identical
        results (modulo wall-clock-dependent timeouts).
    fault_injector:
        Optional :class:`~repro.resilience.faults.FaultInjector` whose
        :meth:`~repro.resilience.faults.FaultInjector.wrap_callable` is
        applied to every solver invocation — used by the fault-tolerance
        test suite and benchmarks to force each degradation path.
    """

    def __init__(self, config: CascadeConfig | None = None, *, seed=None,
                 fault_injector=None) -> None:
        self.config = config if config is not None else CascadeConfig()
        if not isinstance(self.config, CascadeConfig):
            raise SpecificationError(
                f"config must be a CascadeConfig, got "
                f"{type(self.config).__name__}")
        self._root_ss = np.random.SeedSequence(seed) if seed is not None \
            else np.random.SeedSequence()
        self._fault_injector = fault_injector

    # ------------------------------------------------------------------
    # attempt plumbing
    # ------------------------------------------------------------------
    def _invoke(self, solver: str, bound: float | None, fn, rng,
                trail: list[SolverAttempt], attempt: int):
        """One timed, timeout-guarded solver invocation.

        Returns ``(outcome, value)`` with outcome in ``{"ok",
        "unreachable", "timeout", "error"}``.
        """
        call = fn
        if self._fault_injector is not None:
            call = self._fault_injector.wrap_callable(fn, name=solver)
        t0 = time.perf_counter()
        with span("cascade.tier", solver=solver,
                  bound=None if bound is None else float(bound),
                  attempt=attempt) as sp:
            try:
                value = call_with_timeout(
                    lambda: call(rng), timeout=self.config.solver_timeout,
                    name=solver)
            except BoundaryNotFoundError as exc:
                outcome, value, detail = "unreachable", None, str(exc)
            except SolverTimeoutError as exc:
                outcome, value, detail = "timeout", None, str(exc)
            except Exception as exc:  # injected or numerical: degrade
                outcome, value = "error", None
                detail = f"{type(exc).__name__}: {exc}"
            else:
                outcome, detail = "ok", ""
            if sp is not None:
                sp.tags["outcome"] = outcome
        self._record(trail, solver, bound, attempt, t0, outcome, detail)
        get_metrics().inc(f"cascade.tier.{outcome}")
        emit_event("cascade.tier", solver=solver, bound=bound,
                   attempt=attempt, outcome=outcome)
        return outcome, value

    @staticmethod
    def _record(trail: list[SolverAttempt], solver: str, bound: float | None,
                attempt: int, t0: float, outcome: str,
                detail: str = "") -> None:
        trail.append(SolverAttempt(
            solver=solver, bound=bound, attempt=attempt,
            elapsed=time.perf_counter() - t0, outcome=outcome,
            detail=detail))

    def _run_with_retries(self, solver: str, bound: float | None, fn,
                          trail: list[SolverAttempt], jitter_rng,
                          seed_stream):
        """Run a solver with bounded retries; returns (outcome, value).

        ``unreachable`` is definitive for the solver and never retried;
        ``timeout`` is assumed persistent (the budget does not grow) and
        not retried either.  Every retry gets a fresh RNG stream so a
        stochastic solver actually re-rolls.
        """
        policy = self.config.retry
        attempts = 1 + policy.max_retries
        for i in range(attempts):
            rng = np.random.default_rng(seed_stream.spawn(1)[0])
            outcome, value = self._invoke(solver, bound, fn, rng, trail,
                                          attempt=i + 1)
            if outcome in ("ok", "unreachable", "timeout"):
                return outcome, value
            if i + 1 < attempts:
                delay = policy.delay(i, jitter_rng)
                get_metrics().inc("cascade.retries")
                emit_event("retry", solver=solver, attempt=i + 1,
                           delay=delay)
                logger.warning(
                    "solver %s failed (attempt %d/%d); retrying in %.3g s",
                    solver, i + 1, attempts, delay)
                if delay > 0:
                    time.sleep(delay)
        logger.warning("solver %s exhausted its %d attempts", solver,
                       attempts)
        return "error", None

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def _robust_value(self, mapping, point: np.ndarray) -> float | None:
        """Evaluate ``mapping`` at ``point``, shrugging off transient faults.

        Returns the first finite value obtained in ``verify_attempts``
        tries, or ``None``.
        """
        for _ in range(self.config.verify_attempts):
            try:
                v = float(call_with_timeout(
                    lambda: mapping.value(point),
                    timeout=self.config.solver_timeout, name="verify"))
            except Exception:
                continue
            if math.isfinite(v):
                return v
        return None

    def _verify_crossing(self, problem: RadiusProblem, bound: float,
                         crossing) -> bool:
        """Whether a candidate crossing is a genuine boundary point."""
        if not isinstance(crossing, BoundaryCrossing):
            return False
        point = np.asarray(crossing.point, dtype=np.float64)
        if point.shape != problem.origin.shape or \
                not np.all(np.isfinite(point)):
            return False
        if not math.isfinite(crossing.distance) or crossing.distance < 0:
            return False
        value = self._robust_value(problem.mapping, point)
        if value is None:
            return False
        return abs(value - bound) <= self.config.verify_rtol * \
            (1.0 + abs(bound))

    # ------------------------------------------------------------------
    # stage plans
    # ------------------------------------------------------------------
    def _stages(self, problem: RadiusProblem, bound: float):
        """The (name, is_exact, fn) degradation ladder for one bound."""
        stages = []
        has_box = problem.lower is not None or problem.upper is not None
        linear = as_linear(problem.mapping)
        if linear is not None:
            if has_box and problem.norm == 2:
                stages.append((
                    "analytic-box", True,
                    lambda rng: solve_linear_box_radius(
                        linear, problem.origin, bound,
                        lower=problem.lower, upper=problem.upper)))
            else:
                # With a box in a non-Euclidean norm the unboxed closed form
                # is not definitive; treat it as inexact evidence there.
                stages.append((
                    "analytic", not has_box,
                    lambda rng: solve_linear_radius(
                        linear, problem.origin, bound, norm=problem.norm,
                        lower=problem.lower, upper=problem.upper)))
        elif problem.norm == 2 and not has_box:
            diag = as_diagonal_quadratic(problem.mapping)
            if diag is not None:
                stages.append((
                    "ellipsoid", True,
                    lambda rng: solve_ellipsoid_radius(diag, problem.origin,
                                                       bound)))
        if problem.norm == 2:
            stages.append((
                "numeric", False,
                lambda rng: solve_numeric_radius(
                    problem.mapping, problem.origin, bound,
                    lower=problem.lower, upper=problem.upper, seed=rng)))
        stages.append((
            "bisection", False,
            lambda rng: solve_bisection_radius(
                problem.mapping, problem.origin, bound, norm=problem.norm,
                lower=problem.lower, upper=problem.upper, seed=rng)))
        return stages

    _STAGE_QUALITY = {"analytic": Quality.EXACT,
                      "analytic-box": Quality.EXACT,
                      "ellipsoid": Quality.EXACT,
                      "numeric": Quality.CONVERGED,
                      "bisection": Quality.UPPER_BOUND,
                      "sampling": Quality.UPPER_BOUND}

    # ------------------------------------------------------------------
    # the cascade
    # ------------------------------------------------------------------
    def _solve_bound(self, problem: RadiusProblem, bound: float,
                     trail: list[SolverAttempt], jitter_rng,
                     seed_stream) -> _BoundOutcome:
        outcome = _BoundOutcome()
        for name, is_exact, fn in self._stages(problem, bound):
            status, crossing = self._run_with_retries(
                name, bound, fn, trail, jitter_rng, seed_stream)
            if status == "ok":
                if is_exact or self._verify_crossing(problem, bound,
                                                     crossing):
                    return _BoundOutcome(
                        crossing=crossing,
                        quality=self._STAGE_QUALITY[name],
                        status="solved", method=name)
                self._record(trail, name, bound, 0, time.perf_counter(),
                             "rejected",
                             "candidate failed boundary re-verification")
                logger.warning(
                    "solver %s answer at bound %g failed verification; "
                    "degrading", name, bound)
                continue
            if status == "unreachable":
                if is_exact:
                    return _BoundOutcome(status="proven", method=name)
                outcome.status = "evidence"
                outcome.method = name
                # keep cascading: a later solver may still find a crossing
                continue
            # timeout / error: fall through to the next, cheaper solver
            logger.warning("solver %s degraded at bound %g (%s)",
                           name, bound, status)
        return outcome

    def _sampling_fallback(self, problem: RadiusProblem,
                           trail: list[SolverAttempt], jitter_rng,
                           seed_stream):
        """Whole-interval violation search; returns a crossing or None."""
        cfg = self.config
        max_distance = cfg.sampling_distance_scale * \
            max(1.0, float(np.linalg.norm(problem.origin)))

        def run(rng):
            return sampling_upper_bound(
                problem.mapping, problem.origin, problem.bounds,
                max_distance=max_distance, n_samples=cfg.sampling_samples,
                norm=problem.norm, lower=problem.lower, upper=problem.upper,
                seed=rng)

        status, report = self._run_with_retries(
            "sampling", None, run, trail, jitter_rng, seed_stream)
        if status != "ok" or report is None:
            return None, status
        if report.n_violations == 0:
            return None, "no-violations"
        point = np.asarray(report.closest_violation, dtype=np.float64)
        distance = float(report.min_violation_distance)
        if not np.all(np.isfinite(point)) or not math.isfinite(distance):
            return None, "rejected"
        # Re-verify that the point genuinely violates (a NaN-corrupted
        # batch can fake violations); one confirming evaluation suffices.
        value = self._robust_value(problem.mapping, point)
        if value is None or problem.bounds.contains(value):
            self._record(trail, "sampling", None, 0, time.perf_counter(),
                         "rejected", "closest violation did not re-verify")
            return None, "rejected"
        return BoundaryCrossing(point=point, bound=float(value),
                                distance=distance), "ok"

    def compute(self, problem: RadiusProblem, *,
                method: str = "auto") -> RadiusResult:
        """Compute a radius, degrading gracefully instead of raising.

        One ``cascade.compute`` span (with per-tier ``cascade.tier``
        child spans), a ``cascade.quality.*`` counter, and per-tier
        events are recorded when an observability session is active.

        Parameters
        ----------
        problem:
            The radius computation to perform.
        method:
            Accepted for interface compatibility with
            :func:`~repro.core.radius.compute_radius`; the cascade always
            runs its own ``auto`` degradation ladder.

        Returns
        -------
        RadiusResult
            With an honest ``quality`` tag: ``EXACT``/``CONVERGED`` when
            the ladder's upper stages succeeded for every bound,
            ``UPPER_BOUND`` when only degraded answers survived (the true
            radius is at most the reported value), and ``FAILED`` (radius
            NaN) when nothing usable was obtained.

        Raises
        ------
        InfeasibleAllocationError
            If the feature genuinely violates its tolerance interval at
            the original operating point.  This is a property of the
            *problem*, not a solver failure, so it is not absorbed.
        """
        if method != "auto":
            logger.debug("SolverCascade ignores method=%r and runs its own "
                         "degradation ladder", method)
        if not isinstance(problem, RadiusProblem):
            raise SpecificationError(
                f"problem must be a RadiusProblem, got "
                f"{type(problem).__name__}")
        with span("cascade.compute") as sp:
            result = self._compute(problem)
            if sp is not None:
                sp.tags["quality"] = result.quality.name
                sp.tags["method"] = result.method
        get_metrics().inc(f"cascade.quality.{result.quality.name}")
        return result

    def _compute(self, problem: RadiusProblem) -> RadiusResult:
        call_ss = self._root_ss.spawn(1)[0]
        jitter_rng = np.random.default_rng(call_ss.spawn(1)[0])
        trail: list[SolverAttempt] = []

        # --- original operating point (retried: the mapping may fault) ---
        t0 = time.perf_counter()
        value0 = self._robust_value(problem.mapping, problem.origin)
        if value0 is None:
            self._record(trail, "origin", None, 1, t0, "error",
                         "could not evaluate the original operating point")
            return self._finish(
                RadiusResult(
                    radius=math.nan, boundary_point=None, bound_hit=None,
                    method="none", original_value=math.nan, per_bound={},
                    quality=Quality.FAILED, diagnostics=tuple(trail)))
        if not problem.bounds.contains(value0):
            raise InfeasibleAllocationError(
                f"feature value {value0:g} violates the tolerance interval "
                f"[{problem.bounds.beta_min:g}, {problem.bounds.beta_max:g}]"
                " at the original operating point; robustness is undefined")

        finite_bounds = problem.bounds.finite_bounds
        for b in finite_bounds:
            if value0 == b:
                return RadiusResult(
                    radius=0.0, boundary_point=problem.origin.copy(),
                    bound_hit=b, method="degenerate", original_value=value0,
                    per_bound={b: 0.0}, quality=Quality.EXACT,
                    diagnostics=tuple(trail))

        # --- per-bound degradation ladders --------------------------------
        outcomes: dict[float, _BoundOutcome] = {}
        for b in finite_bounds:
            outcomes[b] = self._solve_bound(problem, b, trail, jitter_rng,
                                            call_ss)

        per_bound = {b: (o.crossing.distance if o.crossing is not None
                         else math.inf)
                     for b, o in outcomes.items()}
        solved = {b: o for b, o in outcomes.items() if o.status == "solved"}

        if solved:
            best_bound = min(solved, key=lambda b: solved[b].crossing.distance)
            best = solved[best_bound]
            grades = []
            for o in outcomes.values():
                if o.status == "solved":
                    grades.append(o.quality)
                elif o.status == "proven":
                    grades.append(Quality.EXACT)
                elif o.status == "evidence":
                    grades.append(Quality.CONVERGED)
                else:  # no information for this bound: the reported
                    # minimum is still an upper bound on the true radius
                    grades.append(Quality.UPPER_BOUND)
            quality = max(grades, key=_SEVERITY.index)
            return self._finish(RadiusResult(
                radius=best.crossing.distance,
                boundary_point=best.crossing.point,
                bound_hit=best.crossing.bound, method=best.method,
                original_value=value0, per_bound=per_bound,
                quality=quality, diagnostics=tuple(trail)))

        # --- nothing crossed: proven/evidence infinity, or sample --------
        statuses = {o.status for o in outcomes.values()}
        if statuses <= {"proven"}:
            return self._finish(RadiusResult(
                radius=math.inf, boundary_point=None, bound_hit=None,
                method="analytic", original_value=value0,
                per_bound=per_bound, quality=Quality.EXACT,
                diagnostics=tuple(trail)))
        crossing, sample_status = self._sampling_fallback(
            problem, trail, jitter_rng, call_ss)
        if crossing is not None:
            return self._finish(RadiusResult(
                radius=crossing.distance, boundary_point=crossing.point,
                bound_hit=None, method="sampling", original_value=value0,
                per_bound=per_bound, quality=Quality.UPPER_BOUND,
                diagnostics=tuple(trail)))
        if "failed" in statuses and sample_status != "no-violations":
            # Every ladder errored out and sampling produced nothing:
            # there is no evidence in any direction.
            return self._finish(RadiusResult(
                radius=math.nan, boundary_point=None, bound_hit=None,
                method="none", original_value=value0, per_bound=per_bound,
                quality=Quality.FAILED, diagnostics=tuple(trail)))
        # Consistent no-boundary evidence from best-effort solvers (and
        # possibly exact proofs for some bounds): report infinity as a
        # converged, non-rigorous answer.
        return self._finish(RadiusResult(
            radius=math.inf, boundary_point=None, bound_hit=None,
            method="bisection", original_value=value0, per_bound=per_bound,
            quality=Quality.CONVERGED, diagnostics=tuple(trail)))

    def _finish(self, result: RadiusResult) -> RadiusResult:
        if result.is_degraded:
            emit_event("cascade.degraded", quality=result.quality.name,
                       radius=(result.radius
                               if math.isfinite(result.radius) else
                               repr(result.radius)),
                       method=result.method)
            logger.warning("radius computation degraded to %s (radius=%g)",
                           result.quality, result.radius)
            if self.config.warn_on_degraded:
                warnings.warn(
                    f"radius computation degraded to quality="
                    f"{result.quality}: radius={result.radius:g} is "
                    f"{'an upper bound' if result.quality is Quality.UPPER_BOUND else 'unusable'}",
                    DegradedResultWarning, stacklevel=3)
        return result
