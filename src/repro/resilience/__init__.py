"""Fault tolerance for the radius pipeline.

The paper quantifies how *systems* survive perturbations; this package
makes the measurement pipeline itself survive them:

* :mod:`repro.resilience.cascade` — a graceful-degradation
  :class:`SolverCascade` (analytic → numeric → bisection → sampling) with
  per-solver wall-clock timeouts, bounded jittered retries, answer
  re-verification, and honest
  :class:`~repro.core.diagnostics.Quality` tagging instead of exceptions;
* :mod:`repro.resilience.faults` — deterministic :class:`FaultInjector`
  for mappings and solver callables (NaN/Inf returns, raised exceptions,
  artificial latency, fake non-convergence), used to *prove* every
  degradation path;
* :mod:`repro.resilience.checkpoint` — atomic JSON checkpoint/resume for
  long chunked runs (Monte-Carlo validation, experiment sweeps);
* :mod:`repro.resilience.timeouts` / :mod:`repro.resilience.retry` — the
  wall-clock and backoff primitives the cascade is built from.

See ``docs/RESILIENCE.md`` for the full design.
"""

from repro.core.diagnostics import Quality, SolverAttempt
from repro.resilience.cascade import CascadeConfig, SolverCascade
from repro.resilience.checkpoint import Checkpoint, run_checkpointed
from repro.resilience.faults import FaultInjector, FaultSpec, InjectedFaultError
from repro.resilience.retry import RetryPolicy
from repro.resilience.timeouts import call_with_timeout

__all__ = [
    "Quality",
    "SolverAttempt",
    "CascadeConfig",
    "SolverCascade",
    "Checkpoint",
    "run_checkpointed",
    "FaultInjector",
    "FaultSpec",
    "InjectedFaultError",
    "RetryPolicy",
    "call_with_timeout",
]
