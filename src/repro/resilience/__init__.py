"""Fault tolerance for the radius pipeline.

The paper quantifies how *systems* survive perturbations; this package
makes the measurement pipeline itself survive them:

* :mod:`repro.resilience.cascade` — a graceful-degradation
  :class:`SolverCascade` (analytic → numeric → bisection → sampling) with
  per-solver wall-clock timeouts, bounded jittered retries, answer
  re-verification, and honest
  :class:`~repro.core.diagnostics.Quality` tagging instead of exceptions;
* :mod:`repro.resilience.faults` — deterministic :class:`FaultInjector`
  for mappings and solver callables (NaN/Inf returns, raised exceptions,
  artificial latency, fake non-convergence), used to *prove* every
  degradation path;
* :mod:`repro.resilience.supervisor` — :class:`SupervisedExecutor`,
  per-task fault domains over the process pool: individual submission
  with wall-clock deadlines, seeded retries, poison-task quarantine
  (:class:`TaskFailure` sentinels tagged ``Quality.DEGRADED``), a
  :class:`CircuitBreaker` that degrades a repeatedly-broken pool to
  serial and recovers through deterministic half-open probes, and pool
  respawn between waves;
* :mod:`repro.resilience.chaos` — the deterministic chaos harness:
  :class:`ChaosPolicy` injects worker kills, latency, exception storms
  and pickling corruption at the dispatch boundary on a seeded schedule,
  and :class:`ChaosRunner` asserts recovery is bit-identical to a
  fault-free run;
* :mod:`repro.resilience.calibrate` — the closed analytic-empirical
  loop: invert a self-host radius
  (:mod:`repro.systems.selfhost`) into concrete
  :class:`SupervisorConfig` retry parameters, replay the *real* chaos
  harness inside and outside the predicted radius, and emit the
  byte-stable ``repro-selfhost-v1`` artifact comparing predicted vs
  measured feasibility;
* :mod:`repro.resilience.checkpoint` — atomic JSON checkpoint/resume for
  long chunked runs (Monte-Carlo validation, experiment sweeps);
* :mod:`repro.resilience.timeouts` / :mod:`repro.resilience.retry` — the
  wall-clock and backoff primitives the cascade is built from.

See ``docs/RESILIENCE.md`` and ``docs/CHAOS.md`` for the full design.
"""

from repro.core.diagnostics import Quality, SolverAttempt
from repro.resilience.calibrate import (
    SELFHOST_SCHEMA,
    PerTaskChaosPolicy,
    calibrate_supervisor,
    run_selfhost_loop,
)
from repro.resilience.cascade import CascadeConfig, SolverCascade
from repro.resilience.chaos import (
    ChaosError,
    ChaosPolicy,
    ChaosReport,
    ChaosRunner,
    bit_identical,
    run_chaos_benchmark,
)
from repro.resilience.checkpoint import Checkpoint, run_checkpointed
from repro.resilience.faults import FaultInjector, FaultSpec, InjectedFaultError
from repro.resilience.retry import RetryPolicy
from repro.resilience.supervisor import (
    BatchReport,
    BreakerConfig,
    CircuitBreaker,
    SupervisedExecutor,
    SupervisorConfig,
    TaskFailure,
    TaskOutcome,
    resolve_task_failures,
)
from repro.resilience.timeouts import abandoned_thread_count, call_with_timeout

__all__ = [
    "Quality",
    "SolverAttempt",
    "CascadeConfig",
    "SolverCascade",
    "Checkpoint",
    "run_checkpointed",
    "FaultInjector",
    "FaultSpec",
    "InjectedFaultError",
    "RetryPolicy",
    "call_with_timeout",
    "abandoned_thread_count",
    "BatchReport",
    "BreakerConfig",
    "CircuitBreaker",
    "SupervisedExecutor",
    "SupervisorConfig",
    "TaskFailure",
    "TaskOutcome",
    "resolve_task_failures",
    "ChaosError",
    "ChaosPolicy",
    "ChaosReport",
    "ChaosRunner",
    "bit_identical",
    "run_chaos_benchmark",
    "SELFHOST_SCHEMA",
    "PerTaskChaosPolicy",
    "calibrate_supervisor",
    "run_selfhost_loop",
]
