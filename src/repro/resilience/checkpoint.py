"""Checkpointed chunked execution for long-running sweeps.

A multi-hour Monte-Carlo validation or experiment sweep must not lose
everything to a crash, an OOM kill, or a pre-empted node.  The pattern
here is deliberately simple and crash-safe:

* the caller names every unit of work with a stable string key and a
  zero-argument thunk;
* :func:`run_checkpointed` executes the thunks in order, persisting the
  accumulated results to a JSON checkpoint file every ``every``
  completions (written atomically: temp file + ``os.replace``, so a kill
  mid-write can never corrupt an existing checkpoint);
* on restart with the same checkpoint path, completed keys are skipped
  and their persisted payloads returned as-is.

Determinism contract: as long as each thunk derives its randomness from
its own key/index (e.g. via :func:`repro.utils.rng.spawn_rngs`), a killed
and resumed run returns results identical to an uninterrupted one.  The
checkpoint records caller-supplied ``meta`` (seed, sample counts,
chunking) and refuses to resume when it disagrees — mixing two different
experiments' partial results would be silent corruption.
"""

from __future__ import annotations

import contextlib
import json
import logging
import os
import pathlib
import tempfile
from typing import Any, Callable, Sequence

from repro.exceptions import CheckpointError, SpecificationError

__all__ = ["Checkpoint", "run_checkpointed"]

logger = logging.getLogger(__name__)

_FORMAT = "repro-checkpoint-v1"


class Checkpoint:
    """Atomic JSON persistence of a partially-completed keyed run.

    Parameters
    ----------
    path:
        Checkpoint file location; parent directories are created on the
        first save.
    """

    def __init__(self, path) -> None:
        self.path = pathlib.Path(path)

    def exists(self) -> bool:
        """Whether a checkpoint file is present on disk."""
        return self.path.is_file()

    def load(self, *, expect_meta: dict | None = None) -> dict[str, Any]:
        """Read the checkpoint; returns ``{key: payload}`` of completed work.

        Parameters
        ----------
        expect_meta:
            When given, the stored run metadata must equal it exactly;
            a mismatch raises :class:`~repro.exceptions.CheckpointError`
            (the checkpoint belongs to a different run).

        Returns an empty dict when no checkpoint file exists.
        """
        if not self.exists():
            return {}
        try:
            state = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"unreadable checkpoint {self.path}: {exc}") from exc
        if not isinstance(state, dict) or state.get("format") != _FORMAT:
            raise CheckpointError(
                f"{self.path} is not a {_FORMAT} checkpoint")
        if expect_meta is not None and state.get("meta") != expect_meta:
            raise CheckpointError(
                f"checkpoint {self.path} was written by a different run: "
                f"stored meta {state.get('meta')!r} != expected "
                f"{expect_meta!r}; delete the file to start over")
        completed = state.get("completed", {})
        logger.info("resuming from %s: %d completed item(s)", self.path,
                    len(completed))
        return dict(completed)

    def save(self, completed: dict[str, Any],
             meta: dict | None = None) -> None:
        """Atomically persist the completed payloads (temp + rename)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        state = {"format": _FORMAT, "meta": meta or {},
                 "completed": completed}
        fd, tmp = tempfile.mkstemp(dir=self.path.parent,
                                   prefix=self.path.name + ".", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(state, fh)
            os.replace(tmp, self.path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        logger.debug("checkpointed %d item(s) to %s", len(completed),
                     self.path)

    def delete(self) -> None:
        """Remove the checkpoint file if present."""
        with contextlib.suppress(OSError):
            self.path.unlink()


def run_checkpointed(
    items: Sequence[tuple[str, Callable[[], Any]]],
    *,
    path=None,
    meta: dict | None = None,
    every: int = 1,
    resume: bool = True,
    encode: Callable[[Any], Any] = lambda x: x,
    decode: Callable[[Any], Any] = lambda x: x,
) -> dict[str, Any]:
    """Run keyed thunks in order with periodic checkpointing.

    Parameters
    ----------
    items:
        ``(key, thunk)`` pairs; keys must be unique strings.
    path:
        Checkpoint file, or ``None`` to run without persistence.
    meta:
        Run metadata stored in (and verified against) the checkpoint —
        put the seed and scale parameters here.
    every:
        Save after this many completed thunks (a final save always runs).
    resume:
        When ``False``, any existing checkpoint at ``path`` is discarded
        and the run starts fresh.
    encode, decode:
        Payload (de)serialisers bridging thunk results and JSON — e.g.
        :func:`repro.io.serialize.to_dict` / ``from_dict``.

    Returns
    -------
    dict
        ``{key: result}`` for every item, in ``items`` order, mixing
        resumed payloads and freshly computed ones.
    """
    keys = [k for k, _ in items]
    if len(set(keys)) != len(keys):
        raise SpecificationError(f"duplicate checkpoint keys in {keys}")
    if every < 1:
        raise SpecificationError(f"every must be >= 1, got {every}")

    ckpt = Checkpoint(path) if path is not None else None
    stored: dict[str, Any] = {}
    if ckpt is not None:
        if not resume:
            ckpt.delete()
        else:
            stored = ckpt.load(expect_meta=meta)

    results: dict[str, Any] = {}
    pending_since_save = 0
    for key, thunk in items:
        if key in stored:
            results[key] = decode(stored[key])
            continue
        logger.debug("running checkpoint item %r", key)
        value = thunk()
        results[key] = value
        stored[key] = encode(value)
        pending_since_save += 1
        if ckpt is not None and pending_since_save >= every:
            ckpt.save(stored, meta)
            pending_since_save = 0
    if ckpt is not None and pending_since_save > 0:
        ckpt.save(stored, meta)
    return results
