"""Checkpointed chunked execution for long-running sweeps.

A multi-hour Monte-Carlo validation or experiment sweep must not lose
everything to a crash, an OOM kill, or a pre-empted node.  The pattern
here is deliberately simple and crash-safe:

* the caller names every unit of work with a stable string key and a
  zero-argument thunk;
* :func:`run_checkpointed` executes the thunks in order, persisting the
  accumulated results to a JSON checkpoint file every ``every``
  completions (written atomically: temp file + ``os.replace``, so a kill
  mid-write can never corrupt an existing checkpoint);
* on restart with the same checkpoint path, completed keys are skipped
  and their persisted payloads returned as-is.

Determinism contract: as long as each thunk derives its randomness from
its own key/index (e.g. via :func:`repro.utils.rng.spawn_rngs`), a killed
and resumed run returns results identical to an uninterrupted one.  The
checkpoint records caller-supplied ``meta`` (seed, sample counts,
chunking) and refuses to resume when it disagrees — mixing two different
experiments' partial results would be silent corruption.
"""

from __future__ import annotations

import contextlib
import json
import logging
import os
import pathlib
import tempfile
from typing import Any, Callable, Sequence

from repro.exceptions import CheckpointError, SpecificationError
from repro.observability import emit_event, get_metrics, span

__all__ = ["Checkpoint", "run_checkpointed"]

logger = logging.getLogger(__name__)

_FORMAT = "repro-checkpoint-v1"


def _process_umask() -> int:
    """The process umask (os offers no read-only accessor)."""
    current = os.umask(0)
    os.umask(current)
    return current


class Checkpoint:
    """Atomic JSON persistence of a partially-completed keyed run.

    Parameters
    ----------
    path:
        Checkpoint file location; parent directories are created on the
        first save.
    """

    def __init__(self, path) -> None:
        self.path = pathlib.Path(path)

    def exists(self) -> bool:
        """Whether a checkpoint file is present on disk."""
        return self.path.is_file()

    def load(self, *, expect_meta: dict | None = None) -> dict[str, Any]:
        """Read the checkpoint; returns ``{key: payload}`` of completed work.

        Parameters
        ----------
        expect_meta:
            When given, the stored run metadata must equal it exactly;
            a mismatch raises :class:`~repro.exceptions.CheckpointError`
            (the checkpoint belongs to a different run).

        Returns an empty dict when no checkpoint file exists.
        """
        if not self.exists():
            return {}
        try:
            state = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"unreadable checkpoint {self.path}: {exc}") from exc
        if not isinstance(state, dict) or state.get("format") != _FORMAT:
            raise CheckpointError(
                f"{self.path} is not a {_FORMAT} checkpoint")
        if expect_meta is not None:
            # The stored meta went through a JSON round-trip (tuples become
            # lists, int keys become strings); canonicalize the expectation
            # the same way or identical runs would never match.
            try:
                expect_meta = json.loads(json.dumps(expect_meta))
            except (TypeError, ValueError) as exc:
                raise CheckpointError(
                    f"expect_meta is not JSON-serialisable: {exc}") from exc
            if state.get("meta") != expect_meta:
                raise CheckpointError(
                    f"checkpoint {self.path} was written by a different run: "
                    f"stored meta {state.get('meta')!r} != expected "
                    f"{expect_meta!r}; delete the file to start over")
        completed = state.get("completed", {})
        get_metrics().inc("checkpoint.resumes")
        emit_event("checkpoint.resume", path=str(self.path),
                   completed=len(completed))
        logger.info("resuming from %s: %d completed item(s)", self.path,
                    len(completed))
        return dict(completed)

    def save(self, completed: dict[str, Any],
             meta: dict | None = None) -> None:
        """Atomically persist the completed payloads (temp + rename)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        state = {"format": _FORMAT, "meta": meta or {},
                 "completed": completed}
        fd, tmp = tempfile.mkstemp(dir=self.path.parent,
                                   prefix=self.path.name + ".", suffix=".tmp")
        try:
            # mkstemp creates the file 0600 regardless of the umask, and
            # os.replace preserves that — give the final checkpoint the
            # permissions a regular open() would have produced.
            os.fchmod(fd, 0o666 & ~_process_umask())
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(state, fh)
            os.replace(tmp, self.path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        get_metrics().inc("checkpoint.saves")
        emit_event("checkpoint.save", path=str(self.path),
                   completed=len(completed))
        logger.debug("checkpointed %d item(s) to %s", len(completed),
                     self.path)

    def delete(self) -> None:
        """Remove the checkpoint file if present."""
        with contextlib.suppress(OSError):
            self.path.unlink()


def run_checkpointed(
    items: Sequence[tuple[str, Callable[[], Any]]],
    *,
    path=None,
    meta: dict | None = None,
    every: int = 1,
    resume: bool = True,
    encode: Callable[[Any], Any] = lambda x: x,
    decode: Callable[[Any], Any] = lambda x: x,
    executor=None,
) -> dict[str, Any]:
    """Run keyed thunks in order with periodic checkpointing.

    Parameters
    ----------
    items:
        ``(key, thunk)`` pairs; keys must be unique strings.
    path:
        Checkpoint file, or ``None`` to run without persistence.
    meta:
        Run metadata stored in (and verified against) the checkpoint —
        put the seed and scale parameters here.  Deliberately *not* the
        worker count: a checkpoint written serially resumes under any
        parallelism and vice versa.
    every:
        Save after this many completed thunks (a final save always runs).
    resume:
        When ``False``, any existing checkpoint at ``path`` is discarded
        and the run starts fresh.
    encode, decode:
        Payload (de)serialisers bridging thunk results and JSON — e.g.
        :func:`repro.io.serialize.to_dict` / ``from_dict``.
    executor:
        Optional :class:`~repro.parallel.executor.ParallelExecutor`.
        Pending thunks then run in waves of ``max(every, workers)``
        concurrent tasks, checkpointing after each wave; a kill loses at
        most the in-flight wave, and the resumed run recomputes exactly
        those items (bit-identically, as long as each thunk derives its
        randomness from its own key — the same contract the serial path
        already requires).  Thunks that cross the process boundary must
        be picklable (use :class:`~repro.parallel.executor.Task`); the
        executor transparently falls back to serial when they are not.

    Returns
    -------
    dict
        ``{key: result}`` for every item, in ``items`` order, mixing
        resumed payloads and freshly computed ones.
    """
    keys = [k for k, _ in items]
    if len(set(keys)) != len(keys):
        raise SpecificationError(f"duplicate checkpoint keys in {keys}")
    if every < 1:
        raise SpecificationError(f"every must be >= 1, got {every}")

    ckpt = Checkpoint(path) if path is not None else None
    stored: dict[str, Any] = {}
    if ckpt is not None:
        if not resume:
            ckpt.delete()
        else:
            stored = ckpt.load(expect_meta=meta)

    if executor is not None and getattr(executor, "workers", 1) > 1:
        fresh: dict[str, Any] = {}
        pending = [(key, thunk) for key, thunk in items if key not in stored]
        wave = max(every, executor.workers)
        for start in range(0, len(pending), wave):
            batch = pending[start:start + wave]
            logger.debug("running checkpoint wave of %d item(s)", len(batch))
            with span("checkpoint.wave", items=len(batch),
                      wave=start // wave):
                # Imported lazily: this module is part of the resilience
                # package the supervisor lives in, and an eager top-level
                # import would cycle through the package __init__.
                from repro.resilience.supervisor import resolve_task_failures

                thunks = [thunk for _, thunk in batch]
                # A supervised executor yields TaskFailure sentinels for
                # quarantined tasks instead of raising; checkpoints must
                # store real values, so surviving sentinels are re-run
                # in-process (propagating any genuine exception exactly
                # like the serial path below would).
                values = resolve_task_failures(executor.run(thunks), thunks,
                                               executor=executor)
                for (key, _), value in zip(batch, values):
                    fresh[key] = value
                    stored[key] = encode(value)
                if ckpt is not None:
                    ckpt.save(stored, meta)
        return {key: fresh[key] if key in fresh else decode(stored[key])
                for key, _ in items}

    results: dict[str, Any] = {}
    pending_since_save = 0
    for key, thunk in items:
        if key in stored:
            results[key] = decode(stored[key])
            continue
        logger.debug("running checkpoint item %r", key)
        value = thunk()
        results[key] = value
        stored[key] = encode(value)
        pending_since_save += 1
        if ckpt is not None and pending_since_save >= every:
            ckpt.save(stored, meta)
            pending_since_save = 0
    if ckpt is not None and pending_since_save > 0:
        ckpt.save(stored, meta)
    return results
