"""Deterministic chaos harness for the supervised executor.

Cusick's resiliency survey (PAPERS.md) argues recovery paths must be
*exercised*, not assumed.  This module injects infrastructure-level
faults — worker SIGKILL, task latency, exception storms, result-pickling
corruption — at the executor dispatch boundary, on a schedule that is a
pure function of ``(seed, task index, attempt number)``:

* a :class:`ChaosPolicy` (the executor-level sibling of
  :class:`~repro.resilience.faults.FaultSpec` /
  :class:`~repro.resilience.faults.FaultInjector`, which perturbs
  mappings and solvers *inside* a task) decides, for every task attempt,
  which faults fire.  The decision draws come from a
  :class:`numpy.random.SeedSequence` spawned at ``(index, attempt)``, so
  they do not depend on worker count, scheduling order, or how other
  tasks fared — the same attempt always meets the same fault;
* ``max_injections_per_task`` caps how many *fatal* faults (kill,
  exception, corruption) a single task can meet, so a chaos schedule is
  recoverable by construction: give the
  :class:`~repro.resilience.supervisor.SupervisedExecutor` a retry
  budget of at least the cap (plus headroom for collateral pool breaks,
  which charge an attempt to every task in flight) and every task
  eventually yields its fault-free result.  Latency faults are never
  fatal and are not capped;
* process-killing and result-corrupting faults only make sense on a
  worker process; when the schedule fires one while the attempt runs
  in-process (serial path, open circuit breaker), it downgrades to a
  raised :class:`ChaosError` — still a failed attempt, still recoverable;
* a :class:`ChaosRunner` replays a policy against a task batch and
  compares the recovered results **bit-for-bit** with an in-process
  fault-free baseline, turning the determinism contract of
  :mod:`repro.resilience.supervisor` into an executable assertion; and
* :func:`run_chaos_benchmark` measures what the hardening costs: the
  experiment suite on a plain executor, under fault-free supervision,
  and under chaos, with a ``repro-bench-chaos-v1`` payload recording
  overheads, recovery counters, and the byte-identity verdict.
"""

from __future__ import annotations

import json
import logging
import os
import pickle
import signal
import time
from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.exceptions import ReproError, SpecificationError
from repro.observability import emit_event, get_metrics
from repro.utils.specs import SpecField, parse_kv_spec
from repro.resilience.retry import RetryPolicy
from repro.resilience.supervisor import (
    SupervisedExecutor,
    SupervisorConfig,
    TaskFailure,
)

__all__ = [
    "ChaosError",
    "ChaosPolicy",
    "ChaosReport",
    "ChaosRunner",
    "run_chaos_benchmark",
]

logger = logging.getLogger(__name__)

#: Fatal fault kinds, in the order the schedule resolves ties.
_FATAL_KINDS = ("kill", "exception", "corrupt")


class ChaosError(ReproError):
    """An artificial failure raised by the chaos harness.

    Typed so tests and retry accounting can tell injected chaos from
    genuine task bugs, exactly like
    :class:`~repro.resilience.faults.InjectedFaultError` does for
    solver-level faults.
    """


def _parse_latency(value: str) -> tuple[float, float | None]:
    """Parse the ``rate`` / ``rate:seconds`` form of ``latency=``."""
    rate, _, seconds = value.partition(":")
    return float(rate), (float(seconds) if seconds else None)


#: Grammar of the CLI ``--chaos`` spec (shared parser: repro.utils.specs).
_CHAOS_SPEC_FIELDS = (
    SpecField("kill", float, dest="kill_rate",
              hint="a worker-kill rate in [0, 1]"),
    SpecField("exception", float, aliases=("exc",), dest="exception_rate",
              hint="an exception rate in [0, 1]"),
    SpecField("latency", _parse_latency, dest="latency_spec",
              hint="RATE or RATE:SECONDS, e.g. 0.2:0.005"),
    SpecField("corrupt", float, dest="corrupt_rate",
              hint="a pickling-corruption rate in [0, 1]"),
    SpecField("seed", int, hint="an integer RNG seed"),
    SpecField("cap", int, aliases=("max",), dest="max_injections_per_task",
              hint="a per-task fatal-injection cap"),
)


@dataclass(frozen=True)
class ChaosPolicy:
    """A seeded schedule of executor-boundary faults.

    Every task attempt draws four independent uniforms from an RNG
    spawned at ``(index, attempt)``, checked against the rates below in
    a fixed order (kill, exception, latency, corruption).  At most one
    *fatal* fault fires per attempt — kill wins over exception wins over
    corruption — and at most :attr:`max_injections_per_task` fatal
    faults ever fire against one task; latency is independent and
    uncapped.

    Attributes
    ----------
    kill_rate:
        Probability an attempt SIGKILLs its worker process mid-task
        (breaking the pool; in-process attempts downgrade to a raised
        :class:`ChaosError`).
    exception_rate:
        Probability an attempt raises :class:`ChaosError` before the
        task body runs (an "exception storm" when set high).
    latency_rate:
        Probability an attempt sleeps :attr:`latency` seconds first.
    latency:
        Artificial delay in seconds for latency faults (used to trip
        per-task deadlines).
    corrupt_rate:
        Probability the attempt's *result* is wrapped so it cannot be
        pickled back from the worker (in-process attempts downgrade to
        a raised :class:`ChaosError`).
    seed:
        Non-negative entropy for the decision draws.  Equal policies
        fire identical schedules — on any machine, any worker count.
    max_injections_per_task:
        Fatal-fault budget per task; the recoverability guarantee.
    """

    kill_rate: float = 0.0
    exception_rate: float = 0.0
    latency_rate: float = 0.0
    latency: float = 0.01
    corrupt_rate: float = 0.0
    seed: int = 0
    max_injections_per_task: int = 1

    def __post_init__(self) -> None:
        for name in ("kill_rate", "exception_rate", "latency_rate",
                     "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise SpecificationError(
                    f"{name} must be in [0, 1], got {rate}")
        if self.latency < 0:
            raise SpecificationError(
                f"latency must be non-negative, got {self.latency}")
        if not isinstance(self.seed, (int, np.integer)) or self.seed < 0:
            raise SpecificationError(
                f"seed must be a non-negative int, got {self.seed!r}")
        if self.max_injections_per_task < 0:
            raise SpecificationError(
                f"max_injections_per_task must be >= 0, got "
                f"{self.max_injections_per_task}")

    # ------------------------------------------------------------------
    # parsing (CLI `--chaos SPEC`)
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "ChaosPolicy":
        """Build a policy from a compact CLI spec string.

        The spec is a comma-separated list of ``key=value`` entries::

            kill=0.2,exception=0.3,latency=0.1:0.05,corrupt=0.1,seed=7,cap=2

        Keys: ``kill``, ``exception`` (alias ``exc``), ``corrupt``
        (rates in ``[0, 1]``); ``latency`` as ``rate`` or
        ``rate:seconds``; ``seed`` (int); ``cap`` (alias ``max``) for
        :attr:`max_injections_per_task`.

        Malformed specs raise
        :class:`~repro.exceptions.SpecGrammarError` (a
        :class:`ValueError`) naming the offending token and the accepted
        grammar; the same grammar machinery backs ``repro lab --shock``
        (see :func:`repro.scenarios.shocks.parse_shock_spec`).
        """
        parsed = parse_kv_spec(spec, _CHAOS_SPEC_FIELDS, name="chaos spec")
        latency_spec = parsed.pop("latency_spec", None)
        if latency_spec is not None:
            parsed["latency_rate"] = latency_spec[0]
            if latency_spec[1] is not None:
                parsed["latency"] = latency_spec[1]
        return cls(**parsed)

    # ------------------------------------------------------------------
    # the deterministic schedule
    # ------------------------------------------------------------------
    def _draws(self, index: int, attempt: int) -> np.ndarray:
        """The four uniforms for one ``(task, attempt)`` pair."""
        ss = np.random.SeedSequence(entropy=int(self.seed),
                                    spawn_key=(int(index), int(attempt)))
        return np.random.default_rng(ss).random(4)

    def _fatal_raw(self, u: np.ndarray) -> str | None:
        """The fatal kind the draws select, ignoring the per-task cap."""
        if u[0] < self.kill_rate:
            return "kill"
        if u[1] < self.exception_rate:
            return "exception"
        if u[3] < self.corrupt_rate:
            return "corrupt"
        return None

    def fatal_injections_before(self, index: int, attempt: int) -> int:
        """Fatal faults fired against ``index`` in attempts before this one.

        Recomputed from the seed rather than remembered, so the answer
        is available in any process without shared state.
        """
        count = 0
        for a in range(1, attempt):
            if count >= self.max_injections_per_task:
                break
            if self._fatal_raw(self._draws(index, a)) is not None:
                count += 1
        return count

    def fatal_kind(self, index: int, attempt: int) -> str | None:
        """The fatal fault this attempt meets (``None`` once capped)."""
        before = self.fatal_injections_before(index, attempt)
        if before >= self.max_injections_per_task:
            return None
        return self._fatal_raw(self._draws(index, attempt))

    def latency_decision(self, index: int, attempt: int) -> bool:
        """Whether this attempt sleeps :attr:`latency` seconds first."""
        return (self.latency_rate > 0 and self.latency > 0
                and self._draws(index, attempt)[2] < self.latency_rate)

    def scheduled_injections(self, attempts: Sequence[int]) -> dict:
        """Faults the schedule fired, given per-task attempt counts.

        Because the schedule is a pure function, the injections a run
        met can be *recomputed* afterwards from its
        :class:`~repro.resilience.supervisor.BatchReport` attempt
        counts — no feedback channel from (possibly killed) workers is
        needed.  Attempts charged collaterally by another task's pool
        break count as attempts here too, exactly as the supervisor
        charged them.
        """
        counts: Counter[str] = Counter()
        for index, n_attempts in enumerate(attempts):
            for a in range(1, int(n_attempts) + 1):
                kind = self.fatal_kind(index, a)
                if kind is not None:
                    counts[kind] += 1
                if self.latency_decision(index, a):
                    counts["latency"] += 1
        return dict(counts)

    # ------------------------------------------------------------------
    # executor integration
    # ------------------------------------------------------------------
    def wrap(self, task: Callable[[], Any], *, index: int,
             attempt: int) -> "_ChaosCall":
        """The faulting callable dispatched for one task attempt.

        Called by :class:`~repro.resilience.supervisor.SupervisedExecutor`
        at the dispatch boundary; the wrapper is picklable whenever the
        task is, and captures the submitting process's PID so
        process-level faults only ever fire on a *worker*.
        """
        if index < 0 or attempt < 1:
            raise SpecificationError(
                f"need index >= 0 and attempt >= 1, got "
                f"index={index}, attempt={attempt}")
        return _ChaosCall(task=task, policy=self, index=int(index),
                          attempt=int(attempt), parent_pid=os.getpid())

    def to_dict(self) -> dict:
        """JSON-safe policy description (for benchmark payloads)."""
        return {
            "kill_rate": float(self.kill_rate),
            "exception_rate": float(self.exception_rate),
            "latency_rate": float(self.latency_rate),
            "latency": float(self.latency),
            "corrupt_rate": float(self.corrupt_rate),
            "seed": int(self.seed),
            "max_injections_per_task": int(self.max_injections_per_task),
        }


class _Unpicklable:
    """A result wrapper that refuses to cross the process boundary.

    Returned by a corruption fault in a worker: the pool's attempt to
    pickle the result fails, the parent sees the error on the future,
    and the supervisor retries — a faithful stand-in for a task whose
    payload got mangled in transit.
    """

    def __init__(self, value: Any) -> None:
        self.value = value

    def __reduce__(self):
        raise ChaosError("injected result corruption: this object "
                         "deliberately cannot be pickled")


@dataclass
class _ChaosCall:
    """One task attempt with its scheduled faults applied."""

    task: Callable[[], Any]
    policy: ChaosPolicy
    index: int
    attempt: int
    parent_pid: int

    def _fire(self, kind: str) -> None:
        get_metrics().inc(f"chaos.{kind}")
        emit_event("chaos.injected", kind=kind, index=self.index,
                   attempt=self.attempt)
        logger.debug("chaos %s fault: task %d attempt %d", kind,
                     self.index, self.attempt)

    def __call__(self) -> Any:
        policy, index, attempt = self.policy, self.index, self.attempt
        in_worker = os.getpid() != self.parent_pid
        if policy.latency_decision(index, attempt):
            self._fire("latency")
            time.sleep(policy.latency)
        fatal = policy.fatal_kind(index, attempt)
        if fatal == "kill":
            self._fire("kill")
            if in_worker:
                os.kill(os.getpid(), signal.SIGKILL)
            raise ChaosError(
                f"injected worker kill for task {index} attempt "
                f"{attempt} (downgraded to an exception in-process)")
        if fatal == "exception":
            self._fire("exception")
            raise ChaosError(
                f"injected exception for task {index} attempt {attempt}")
        value = self.task()
        if fatal == "corrupt":
            self._fire("corrupt")
            if in_worker:
                return _Unpicklable(value)
            raise ChaosError(
                f"injected result corruption for task {index} attempt "
                f"{attempt} (downgraded to an exception in-process)")
        return value


# ----------------------------------------------------------------------
# replay + assertion
# ----------------------------------------------------------------------
def bit_identical(a: Any, b: Any) -> bool:
    """Byte-level equality via pickling (``repr`` when unpicklable).

    Pickled floats carry their exact bit patterns, so this is a genuine
    bit-identity check for the numeric results the library produces.
    """
    try:
        return pickle.dumps(a, protocol=4) == pickle.dumps(b, protocol=4)
    except Exception:
        return repr(a) == repr(b)


@dataclass(frozen=True)
class ChaosReport:
    """Verdict of one chaos replay (see :class:`ChaosRunner`).

    Attributes
    ----------
    identical:
        Every slot produced a real result bit-identical to the
        fault-free baseline's.
    quarantined:
        Tasks that exhausted their retry budget under chaos.
    baseline_seconds / chaos_seconds:
        Wall-clock of the in-process baseline and the chaos leg.
    scheduled:
        Faults the policy fired, per kind, recomputed from the batch's
        attempt counts (see :meth:`ChaosPolicy.scheduled_injections`).
    batch:
        The chaos leg's :class:`~repro.resilience.supervisor.BatchReport`
        as a dict.
    executor:
        The chaos executor's :meth:`stats` snapshot (retries, pool
        breaks, respawns, breaker state).
    """

    identical: bool
    quarantined: int
    baseline_seconds: float
    chaos_seconds: float
    scheduled: dict
    batch: dict
    executor: dict

    @property
    def ok(self) -> bool:
        """Whether the run fully recovered (no quarantine, bit-identical)."""
        return self.identical and self.quarantined == 0

    def assert_recovered(self) -> None:
        """Raise :class:`ChaosError` unless the run fully recovered."""
        if self.ok:
            return
        problems = []
        if self.quarantined:
            problems.append(f"{self.quarantined} task(s) quarantined")
        if not self.identical:
            problems.append("results differ from the fault-free baseline")
        raise ChaosError("chaos replay did not recover: "
                         + "; ".join(problems)
                         + f" (scheduled faults: {self.scheduled})")

    def to_dict(self) -> dict:
        """JSON-safe report (used by the CLI and benchmark payloads)."""
        return {
            "identical": bool(self.identical),
            "quarantined": int(self.quarantined),
            "baseline_seconds": float(self.baseline_seconds),
            "chaos_seconds": float(self.chaos_seconds),
            "scheduled": dict(self.scheduled),
            "batch": dict(self.batch),
            "executor": dict(self.executor),
        }


class ChaosRunner:
    """Replays a chaos schedule and checks the recovery was perfect.

    The runner executes a task batch twice: once in-process with no
    faults (the ground truth) and once on a fresh
    :class:`~repro.resilience.supervisor.SupervisedExecutor` with the
    policy injected at the dispatch boundary.  The two result lists must
    match bit-for-bit — :meth:`ChaosReport.assert_recovered` turns any
    divergence or leftover quarantine into a :class:`ChaosError`.

    Parameters
    ----------
    policy:
        The chaos schedule to replay.
    workers:
        Worker processes for the chaos leg (``1`` exercises the
        in-process downgrades, ``> 1`` real worker kills).
    config:
        Supervision tuning for the chaos leg.  The default allows
        ``max_injections_per_task + 6`` retries with near-zero backoff:
        enough budget for every scheduled fault plus collateral pool
        breaks, without making tests slow.
    seed:
        Retry-jitter seed for the supervised executor.
    """

    def __init__(self, policy: ChaosPolicy, *, workers: int = 1,
                 config: SupervisorConfig | None = None,
                 seed: int = 0) -> None:
        if not isinstance(policy, ChaosPolicy):
            raise SpecificationError(
                f"policy must be a ChaosPolicy, got "
                f"{type(policy).__name__}")
        self.policy = policy
        self.workers = int(workers)
        self.config = config if config is not None else SupervisorConfig(
            max_task_retries=policy.max_injections_per_task + 6,
            retry=RetryPolicy(backoff_base=1e-4, backoff_cap=1e-3))
        self.seed = seed

    def run(self, tasks: Sequence[Callable[[], Any]]
            ) -> tuple[list[Any], ChaosReport]:
        """Run the baseline and the chaos leg; return (results, report)."""
        tasks = list(tasks)
        t0 = time.perf_counter()
        baseline = [task() for task in tasks]
        baseline_seconds = time.perf_counter() - t0
        with SupervisedExecutor(self.workers, config=self.config,
                                chaos=self.policy, seed=self.seed) as ex:
            t0 = time.perf_counter()
            results, batch = ex.run_report(tasks)
            chaos_seconds = time.perf_counter() - t0
            stats = ex.stats()
        identical = (len(results) == len(baseline) and all(
            not isinstance(r, TaskFailure) and bit_identical(r, b)
            for r, b in zip(results, baseline)))
        report = ChaosReport(
            identical=identical,
            quarantined=batch.n_quarantined,
            baseline_seconds=baseline_seconds,
            chaos_seconds=chaos_seconds,
            scheduled=self.policy.scheduled_injections(
                [o.attempts for o in batch.outcomes]),
            batch=batch.to_dict(),
            executor=stats)
        logger.info("chaos replay: %d task(s), faults %s, identical=%s, "
                    "quarantined=%d", len(tasks), report.scheduled,
                    identical, report.quarantined)
        return results, report


# ----------------------------------------------------------------------
# benchmark
# ----------------------------------------------------------------------
def _canonical(results: dict) -> str:
    """Canonical JSON of an experiment-suite result dict (identity check)."""
    from repro.io.serialize import to_dict

    return json.dumps({eid: to_dict(res) for eid, res in results.items()},
                      sort_keys=True)


def run_chaos_benchmark(
    *,
    workers: int | None = None,
    seed: int = 2005,
    ids: Sequence[str] | None = None,
    policy: ChaosPolicy | None = None,
    config: SupervisorConfig | None = None,
) -> dict:
    """Measure what chaos-hardening costs on the experiment suite.

    Runs the registered experiments three times — on a plain
    :class:`~repro.parallel.executor.ParallelExecutor`, on a fault-free
    :class:`~repro.resilience.supervisor.SupervisedExecutor` (the
    supervision overhead), and under a seeded :class:`ChaosPolicy` (the
    recovery overhead) — and emits a ``repro-bench-chaos-v1`` payload.
    All three legs must produce byte-identical serialized results; the
    payload records the verdict rather than assuming it.

    Parameters
    ----------
    workers:
        Worker processes for every leg; defaults to
        :func:`~repro.parallel.executor.default_workers`.
    seed:
        Master seed shared by all legs (and the default chaos policy).
    ids:
        Optional experiment-id subset; defaults to the full registry.
    policy:
        Chaos schedule for the third leg; the default kills, delays,
        blows up and corrupts at modest rates so every recovery path is
        exercised without dominating the wall-clock.
    config:
        Supervision tuning for the supervised legs; the default allows
        generous retries with near-zero backoff.
    """
    from repro.analysis.runner import EXPERIMENT_REGISTRY, run_all_experiments
    from repro.parallel.bench import CHAOS_BENCH_SCHEMA
    from repro.parallel.executor import ParallelExecutor, default_workers

    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise SpecificationError(f"workers must be >= 1, got {workers}")
    if ids is None:
        ids = sorted(EXPERIMENT_REGISTRY,
                     key=lambda e: int(e[1:].rstrip("ab")))
    ids = list(ids)
    if policy is None:
        policy = ChaosPolicy(kill_rate=0.05, exception_rate=0.1,
                             latency_rate=0.1, latency=0.002,
                             corrupt_rate=0.05, seed=int(seed))
    if config is None:
        config = SupervisorConfig(
            max_task_retries=policy.max_injections_per_task + 6,
            retry=RetryPolicy(backoff_base=1e-4, backoff_cap=1e-3))

    logger.info("chaos benchmark: plain leg, %d worker(s)", workers)
    with ParallelExecutor(workers) as pool:
        t0 = time.perf_counter()
        plain = run_all_experiments(seed=seed, ids=ids, executor=pool)
        plain_seconds = time.perf_counter() - t0

    logger.info("chaos benchmark: supervised (fault-free) leg")
    with SupervisedExecutor(workers, config=config, seed=seed) as sup:
        t0 = time.perf_counter()
        supervised = run_all_experiments(seed=seed, ids=ids, executor=sup)
        supervised_seconds = time.perf_counter() - t0

    logger.info("chaos benchmark: chaos leg (%s)", policy.to_dict())
    with SupervisedExecutor(workers, config=config, chaos=policy,
                            seed=seed) as cha:
        t0 = time.perf_counter()
        chaotic = run_all_experiments(seed=seed, ids=ids, executor=cha)
        chaos_seconds = time.perf_counter() - t0
        chaos_stats = cha.stats()

    canonical = _canonical(plain)
    identical = (canonical == _canonical(supervised)
                 and canonical == _canonical(chaotic))
    if not identical:  # pragma: no cover - determinism contract violation
        logger.error("chaos-leg results DIFFER from the plain executor's")
    return {
        "schema": CHAOS_BENCH_SCHEMA,
        "workers": int(workers),
        "seed": int(seed),
        "ids": ids,
        "plain_seconds": float(plain_seconds),
        "supervised_seconds": float(supervised_seconds),
        "chaos_seconds": float(chaos_seconds),
        "supervision_overhead": (float(supervised_seconds / plain_seconds)
                                 if plain_seconds > 0 else 0.0),
        "recovery_overhead": (float(chaos_seconds / supervised_seconds)
                              if supervised_seconds > 0 else 0.0),
        "identical": bool(identical),
        "chaos": policy.to_dict(),
        "executor": chaos_stats,
        "report": (cha.last_report.to_dict()
                   if cha.last_report is not None else None),
    }
