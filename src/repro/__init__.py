"""repro — a reproduction of *A Measure of Robustness Against Multiple Kinds
of Perturbations* (Eslamnour & Ali, IPDPS 2005).

The library implements:

* the **FePIA** robustness-metric framework of Ali et al. (TPDS 2004) —
  performance features, perturbation parameters, impact mappings, and
  robustness radii (:mod:`repro.core`);
* the IPDPS'05 extension to **multiple kinds** of perturbations —
  sensitivity-based and normalized weighting schemes, the dimensionless
  P-space, the ``1/sqrt(n)`` degeneracy closed forms, and the operating-point
  feasibility procedure;
* the **substrates** the papers evaluate on — an independent-task
  heterogeneous-computing system with ETC matrices and makespan features,
  and a HiPer-D-like continuously-running sensor/application DAG system with
  throughput and latency constraints (:mod:`repro.systems`);
* allocation **heuristics** (OLB/MET/MCT/min-min/max-min/sufferage and
  robustness-maximising local search) used as comparison baselines;
* a **Monte-Carlo validation** harness and the experiment/benchmark layer
  (:mod:`repro.montecarlo`, :mod:`repro.analysis`, :mod:`repro.reporting`);
* an **observability** subsystem — spans, metrics, and an event log woven
  through the solver, parallel, and resilience stacks
  (:mod:`repro.observability`, ``repro --trace`` / ``repro stats``).

Quickstart::

    import numpy as np
    from repro import (PerformanceFeature, ToleranceBounds,
                       PerturbationParameter, LinearMapping, FeatureSpec,
                       RobustnessAnalysis, robustness_metric)

    # Feature: phi = 2*e1 + 3*m1, must stay below 1.2x its original value.
    exec_times = PerturbationParameter.nonnegative("exec", [4.0], unit="s")
    msg_sizes = PerturbationParameter.nonnegative("msg", [2.0], unit="bytes")
    mapping = LinearMapping([2.0, 3.0])
    phi0 = mapping.value(np.array([4.0, 2.0]))
    feature = PerformanceFeature("latency", ToleranceBounds.relative(phi0, 1.2))

    analysis = RobustnessAnalysis([FeatureSpec(feature, mapping)],
                                  [exec_times, msg_sizes])
    print(robustness_metric(analysis))
"""

from repro.core import (
    CallableMapping,
    ConcatenatedPerturbation,
    CriticalityReport,
    criticality_report,
    CustomWeighting,
    FeasibilityChecker,
    FeasibilityVerdict,
    FeatureMapping,
    FeatureSpec,
    IdentityWeighting,
    LinearMapping,
    MaxMapping,
    NormalizedWeighting,
    PerformanceFeature,
    PerturbationParameter,
    ProductMapping,
    QuadraticMapping,
    Quality,
    RadiusProblem,
    RadiusResult,
    RestrictedMapping,
    ReweightedMapping,
    RobustnessAnalysis,
    RobustnessReport,
    SensitivityWeighting,
    SolverAttempt,
    ToleranceBounds,
    WeightingScheme,
    compute_radii,
    compute_radius,
    robustness_metric,
)
from repro.core.degeneracy import (
    LinearCase,
    normalized_radius_linear,
    per_parameter_radius_linear,
    sensitivity_alphas_linear,
    sensitivity_radius_linear,
)
from repro.exceptions import (
    BoundaryNotFoundError,
    CheckpointError,
    ConvergenceError,
    DegradedResultWarning,
    DimensionMismatchError,
    InfeasibleAllocationError,
    ReproError,
    SolverError,
    SolverTimeoutError,
    SpecificationError,
    UnitMismatchError,
)
from repro.observability import (
    Observability,
    emit_event,
    get_metrics,
    observing,
    span,
)
from repro.parallel import (
    ParallelExecutor,
    RadiusCache,
    Task,
    install_default_cache,
    uninstall_default_cache,
)
from repro.resilience import (
    CascadeConfig,
    FaultInjector,
    FaultSpec,
    RetryPolicy,
    SolverCascade,
)

__version__ = "1.0.0"

__all__ = [
    # core model
    "PerformanceFeature",
    "ToleranceBounds",
    "PerturbationParameter",
    "FeatureMapping",
    "LinearMapping",
    "QuadraticMapping",
    "ProductMapping",
    "CallableMapping",
    "MaxMapping",
    "RestrictedMapping",
    "ReweightedMapping",
    # radii
    "RadiusProblem",
    "RadiusResult",
    "compute_radii",
    "compute_radius",
    # weighting / P-space
    "WeightingScheme",
    "IdentityWeighting",
    "SensitivityWeighting",
    "NormalizedWeighting",
    "CustomWeighting",
    "ConcatenatedPerturbation",
    # orchestration
    "FeatureSpec",
    "RobustnessAnalysis",
    "RobustnessReport",
    "robustness_metric",
    "FeasibilityChecker",
    "FeasibilityVerdict",
    "CriticalityReport",
    "criticality_report",
    # closed forms
    "LinearCase",
    "per_parameter_radius_linear",
    "sensitivity_alphas_linear",
    "sensitivity_radius_linear",
    "normalized_radius_linear",
    # parallel execution + caching
    "ParallelExecutor",
    "Task",
    "RadiusCache",
    "install_default_cache",
    "uninstall_default_cache",
    # observability
    "Observability",
    "observing",
    "span",
    "emit_event",
    "get_metrics",
    # resilience
    "Quality",
    "SolverAttempt",
    "SolverCascade",
    "CascadeConfig",
    "FaultInjector",
    "FaultSpec",
    "RetryPolicy",
    # exceptions
    "ReproError",
    "SpecificationError",
    "DimensionMismatchError",
    "UnitMismatchError",
    "SolverError",
    "BoundaryNotFoundError",
    "ConvergenceError",
    "SolverTimeoutError",
    "CheckpointError",
    "DegradedResultWarning",
    "InfeasibleAllocationError",
    "__version__",
]
