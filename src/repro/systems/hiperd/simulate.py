"""Dataflow simulation of a HiPer-D system.

Two independent evaluation paths for the same quantities the feature
mappings compute, used to cross-validate the assembled mappings and to
study time-varying load traces:

* :func:`steady_state_features` — direct graph-recursion evaluation of
  every computation time, communication time, and path latency at one
  operating point (no mapping assembly involved);
* :func:`simulate_dataflow` — a per-data-set pipeline simulation over a
  trace of time-varying sensor loads (and optional unit-time / size
  traces): data set ``t`` is emitted by all sensors, flows through the
  DAG (each application starts when *all* its inputs have arrived), and
  the simulator records each actuator's arrival lag and any QoS
  violations — the runtime counterpart of the paper's operating-point
  feasibility test.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SpecificationError
from repro.systems.hiperd.model import HiPerDSystem
from repro.utils.validation import as_2d_float_array

__all__ = ["steady_state_features", "DataflowRecord", "simulate_dataflow"]


def steady_state_features(
    system: HiPerDSystem,
    *,
    loads: np.ndarray | None = None,
    unit_times: np.ndarray | None = None,
    sizes: np.ndarray | None = None,
) -> dict[str, float]:
    """Evaluate all timing features directly from the graph.

    Returns a dict with keys matching the feature names produced by
    :func:`repro.systems.hiperd.constraints.build_feature_specs`
    (``latency[...]``, ``throughput[...]``, ``msg_throughput[...]``,
    ``utilization[...]``), so mapping-based and direct evaluations can be
    compared key-by-key.
    """
    out: dict[str, float] = {}
    for path in system.sensor_actuator_paths():
        label = "->".join(path)
        out[f"latency[{label}]"] = system.path_latency(
            path, loads=loads, unit_times=unit_times, sizes=sizes)
    for app in system.applications:
        out[f"throughput[{app.name}]"] = system.computation_time(
            app.name, loads=loads, unit_times=unit_times)
    for msg in system.messages:
        out[f"msg_throughput[{msg.src}->{msg.dst}]"] = (
            system.communication_time(msg, sizes=sizes))
    for j, machine in enumerate(system.machines):
        apps = system.apps_on_machine(j)
        if apps:
            out[f"utilization[{machine.name}]"] = sum(
                system.computation_time(a, loads=loads, unit_times=unit_times)
                for a in apps)
    return out


@dataclass(frozen=True)
class DataflowRecord:
    """Result of a dataflow simulation run.

    Attributes
    ----------
    completion_times:
        ``(n_datasets, n_nodes)`` matrix of completion times, columns
        ordered by ``node_order``.
    node_order:
        The node names corresponding to the columns.
    actuator_latencies:
        ``(n_datasets, n_actuators)`` end-to-end latencies (arrival at the
        actuator minus emission time), columns ordered as
        ``system.actuators``.
    violations:
        ``(n_datasets,)`` boolean array: data set exceeded ``deadline``.
    deadline:
        The latency deadline violations were checked against (``inf``
        disables the check).
    """

    completion_times: np.ndarray
    node_order: tuple[str, ...]
    actuator_latencies: np.ndarray
    violations: np.ndarray
    deadline: float


def simulate_dataflow(
    system: HiPerDSystem,
    load_trace: np.ndarray,
    *,
    unit_time_trace: np.ndarray | None = None,
    size_trace: np.ndarray | None = None,
    deadline: float = float("inf"),
) -> DataflowRecord:
    """Run data sets with time-varying parameters through the DAG.

    Each data set is processed independently (dedicated machines, pipeline
    semantics): within a data set, an application starts once every input
    message has arrived, so its completion time is

        C(v) = max over predecessors u of [C(u) + T_comm(u->v)] + T_comp(v),

    with sensor completion times equal to the emission instant (taken as 0
    for every data set; latencies are relative).

    Parameters
    ----------
    system:
        The HiPer-D system.
    load_trace:
        ``(n_datasets, n_sensors)`` sensor loads per data set.
    unit_time_trace:
        Optional ``(n_datasets, n_apps)`` unit execution times per data
        set (default: originals, constant).
    size_trace:
        Optional ``(n_datasets, n_messages)`` message sizes per data set
        (default: originals, constant).
    deadline:
        Latency deadline used to flag per-data-set violations (applied to
        the *maximum* actuator latency of the data set).
    """
    import networkx as nx

    loads = as_2d_float_array(load_trace, name="load_trace")
    n_datasets = loads.shape[0]
    if loads.shape[1] != system.n_sensors:
        raise SpecificationError(
            f"load_trace has {loads.shape[1]} columns, expected "
            f"{system.n_sensors} sensors")

    def _trace_or_default(trace, n_cols: int, default: np.ndarray, name: str):
        if trace is None:
            return np.tile(default, (n_datasets, 1))
        arr = as_2d_float_array(trace, name=name)
        if arr.shape != (n_datasets, n_cols):
            raise SpecificationError(
                f"{name} must have shape ({n_datasets}, {n_cols}), got "
                f"{arr.shape}")
        return arr

    unit_times = _trace_or_default(
        unit_time_trace, system.n_applications,
        system.original_unit_times(), "unit_time_trace")
    sizes = _trace_or_default(
        size_trace, system.n_messages,
        system.original_msg_sizes(), "size_trace")

    order = tuple(nx.topological_sort(system.graph))
    col = {name: i for i, name in enumerate(order)}
    app_names = {a.name for a in system.applications}
    msg_index = {m.key: i for i, m in enumerate(system.messages)}

    completion = np.zeros((n_datasets, len(order)))
    for v in order:
        preds = list(system.graph.predecessors(v))
        if not preds:
            continue  # sensors complete at the emission instant (0)
        arrive = np.zeros(n_datasets)
        for u in preds:
            msg = system.graph.edges[u, v]["message"]
            bw = system.message_bandwidth(msg)
            comm = (np.zeros(n_datasets) if np.isinf(bw)
                    else sizes[:, msg_index[msg.key]] / bw)
            arrive = np.maximum(arrive, completion[:, col[u]] + comm)
        if v in app_names:
            a = system.app_index(v)
            w = system.reach_weights()[a]
            comp = unit_times[:, a] * (loads @ w)
            completion[:, col[v]] = arrive + comp
        else:
            completion[:, col[v]] = arrive

    act_cols = [col[a.name] for a in system.actuators]
    latencies = completion[:, act_cols]
    worst = latencies.max(axis=1)
    return DataflowRecord(
        completion_times=completion,
        node_order=order,
        actuator_latencies=latencies,
        violations=worst > deadline,
        deadline=float(deadline),
    )
