"""Shock catalogue for the HiPer-D multi-kind system.

HiPer-D is the paper's motivating substrate: unlike perturbation kinds
(sensor loads in objects/set, execution-time scales, message sizes in
bytes) that may *not* be concatenated without a weighting.  The
catalogue therefore leans on the ``correlated`` shock kind — one latent
factor co-moving all kinds at once, the regime the concatenated P-space
exists to measure — plus single-kind drift and spike probes.

Magnitudes are scaled from the mean original value of each kind (the
catalogue cannot assume an analytic radius here; the generic solvers
provide it to the lab at run time).
"""

from __future__ import annotations

import numpy as np

from repro.core.fepia import RobustnessAnalysis
from repro.scenarios.shocks import ShockScenario

__all__ = ["hiperd_scenario_catalogue"]


def hiperd_scenario_catalogue(
    analysis: RobustnessAnalysis,
    *,
    n_steps: int = 30,
    relative_magnitude: float = 0.4,
) -> list[ShockScenario]:
    """The shipped scenarios for a HiPer-D analysis.

    Parameters
    ----------
    analysis:
        The multi-kind analysis built by
        :func:`~repro.systems.hiperd.constraints.build_analysis`; the
        catalogue reads its parameter kinds and original values.
    n_steps:
        Trajectory length for every scenario.
    relative_magnitude:
        Shock scale as a fraction of the mean original value of the
        touched kind(s).
    """
    means = {p.name: float(np.mean(p.original)) for p in analysis.params}
    all_mean = float(np.mean([m for m in means.values()])) or 1.0
    catalogue = [
        ShockScenario(
            name="multi-kind-burst",
            kind="correlated",
            magnitude=relative_magnitude * all_mean,
            n_steps=n_steps,
            description="one latent factor co-moving every perturbation "
                        "kind (loads, exec scales, message sizes)"),
    ]
    if "loads" in means:
        catalogue.append(ShockScenario(
            name="load-drift",
            kind="drift",
            magnitude=relative_magnitude * means["loads"],
            n_steps=n_steps,
            jitter=0.1,
            params=("loads",),
            description="steady sensor-load growth with jitter"))
        catalogue.append(ShockScenario(
            name="sensor-spike",
            kind="spike",
            magnitude=relative_magnitude * means["loads"],
            n_steps=n_steps,
            rate=0.25,
            params=("loads",),
            description="sporadic sensor-load spikes"))
    if "msgsize" in means:
        catalogue.append(ShockScenario(
            name="message-bloat",
            kind="drift",
            magnitude=relative_magnitude * means["msgsize"],
            n_steps=n_steps,
            params=("msgsize",),
            description="uniform message-size inflation"))
    return catalogue
