"""Robustness-aware application placement for HiPer-D systems.

The papers measure the robustness of a *given* allocation; the natural
next step (their motivating use-case: "determine which resource allocation
tolerates the largest load increase") is to *search* for a more robust
placement.  :func:`improve_placement` hill-climbs over single-application
moves, accepting any move that raises ``rho`` while keeping the original
operating point feasible.

Keeping the searched perturbation kinds small (default: loads only, all
mappings affine) keeps each candidate evaluation analytic and the search
fast.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import SpecificationError
from repro.systems.hiperd.constraints import QoSSpec, build_analysis
from repro.systems.hiperd.model import HiPerDSystem

__all__ = ["placement_rho", "PlacementStep", "improve_placement"]


def _with_allocation(system: HiPerDSystem, allocation: dict[str, int]
                     ) -> HiPerDSystem:
    """Copy of the system with a different application placement."""
    return HiPerDSystem(
        machines=system.machines,
        sensors=system.sensors,
        applications=system.applications,
        actuators=system.actuators,
        messages=system.messages,
        allocation=allocation,
        bandwidths=system.bandwidths,
        default_bandwidth=system.default_bandwidth,
    )


def placement_rho(system: HiPerDSystem, qos: QoSSpec, *,
                  kinds=("loads",), seed=None) -> float:
    """The robustness metric of a placement, ``-inf`` when infeasible.

    Infeasibility (the original operating point violating the QoS under
    this placement) is mapped to ``-inf`` so optimisers can compare
    candidates uniformly.
    """
    try:
        return build_analysis(system, qos, kinds=kinds, seed=seed).rho()
    except SpecificationError:
        return float("-inf")


@dataclass(frozen=True)
class PlacementStep:
    """One accepted move of the placement search.

    Attributes
    ----------
    application:
        The application moved.
    from_machine, to_machine:
        Machine indices before/after.
    rho:
        The robustness metric after the move.
    """

    application: str
    from_machine: int
    to_machine: int
    rho: float


def improve_placement(
    system: HiPerDSystem,
    qos: QoSSpec,
    *,
    kinds=("loads",),
    max_rounds: int = 10,
    seed=None,
) -> tuple[HiPerDSystem, list[PlacementStep]]:
    """Hill-climb the application placement to maximise ``rho``.

    In each round, every (application, machine) move is evaluated and the
    single best strictly-improving move is applied; the search stops when
    no move improves or ``max_rounds`` is reached.

    Parameters
    ----------
    system:
        The starting system (must be feasible).
    qos:
        QoS promises. Note that *relative* latency budgets are rebuilt per
        candidate (each placement is judged against its own baseline), the
        same convention the heuristic-comparison experiments use for
        per-allocation ``beta``.
    kinds:
        Perturbation kinds for the robustness objective.
    max_rounds:
        Maximum accepted moves.
    seed:
        Seed for the underlying solvers (affine cases are deterministic).

    Returns
    -------
    (best_system, steps)
        The improved system and the accepted-move history.
    """
    if max_rounds < 1:
        raise SpecificationError("max_rounds must be >= 1")
    current = system
    current_rho = placement_rho(current, qos, kinds=kinds, seed=seed)
    if current_rho == float("-inf"):
        raise SpecificationError(
            "starting placement is infeasible under the QoS")
    steps: list[PlacementStep] = []
    n_machines = len(system.machines)
    for _ in range(max_rounds):
        best_move = None
        best_rho = current_rho
        for app in current.applications:
            here = current.allocation[app.name]
            for m in range(n_machines):
                if m == here:
                    continue
                candidate_alloc = dict(current.allocation)
                candidate_alloc[app.name] = m
                candidate = _with_allocation(current, candidate_alloc)
                rho = placement_rho(candidate, qos, kinds=kinds, seed=seed)
                if rho > best_rho + 1e-12:
                    best_rho = rho
                    best_move = (app.name, here, m, candidate)
        if best_move is None:
            break
        app_name, here, m, candidate = best_move
        current = candidate
        current_rho = best_rho
        steps.append(PlacementStep(application=app_name, from_machine=here,
                                   to_machine=m, rho=best_rho))
    return current, steps
