"""Assembling HiPer-D timing quantities into FePIA feature mappings.

The flat perturbation layout concatenates the *selected* perturbation
kinds in canonical order:

    [ loads (n_sensors) | exec (n_apps) | msgsize (n_messages) ]

with unselected kinds frozen at their original values and folded into the
mappings' coefficients/constants.  Because a computation time is bilinear
(``e_a * sum_s w_as * lambda_s``), features are assembled as a quadratic
accumulator ``x' Q x + k . x + c`` and emitted as a
:class:`~repro.core.mappings.QuadraticMapping` when any cross term is
active — or collapsed to an exactly-solvable
:class:`~repro.core.mappings.LinearMapping` when not.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.mappings import FeatureMapping, LinearMapping, QuadraticMapping
from repro.core.perturbation import PerturbationParameter
from repro.exceptions import SpecificationError
from repro.systems.hiperd.model import HiPerDSystem, Message

__all__ = ["KINDS", "FlatLayout", "MappingAssembler"]

#: Canonical ordering of the perturbation kinds.
KINDS = ("loads", "exec", "msgsize")

#: Units per kind, as the paper lists them ("seconds, objects per data
#: set, bytes, etc.").
_UNITS = {"loads": "objects/set", "exec": "s/object", "msgsize": "bytes"}


class FlatLayout:
    """Index bookkeeping for a chosen subset of perturbation kinds.

    Parameters
    ----------
    system:
        The HiPer-D system the layout describes.
    kinds:
        Subset of :data:`KINDS` to expose as perturbations; order is
        normalised to canonical order.
    """

    def __init__(self, system: HiPerDSystem, kinds: Sequence[str]) -> None:
        chosen = [k for k in KINDS if k in kinds]
        unknown = set(kinds) - set(KINDS)
        if unknown:
            raise SpecificationError(
                f"unknown perturbation kind(s) {sorted(unknown)}; "
                f"valid kinds are {KINDS}")
        if not chosen:
            raise SpecificationError("select at least one perturbation kind")
        self.system = system
        self.kinds = tuple(chosen)
        sizes = {
            "loads": system.n_sensors,
            "exec": system.n_applications,
            "msgsize": system.n_messages,
        }
        self._slices: dict[str, slice] = {}
        offset = 0
        for k in self.kinds:
            self._slices[k] = slice(offset, offset + sizes[k])
            offset += sizes[k]
        self.dimension = offset
        self._originals = {
            "loads": system.original_loads(),
            "exec": system.original_unit_times(),
            "msgsize": system.original_msg_sizes(),
        }

    def has(self, kind: str) -> bool:
        """Whether ``kind`` is a free perturbation in this layout."""
        return kind in self._slices

    def index(self, kind: str, local_index: int) -> int:
        """Flat index of element ``local_index`` of ``kind``."""
        sl = self._slices[kind]
        if not 0 <= local_index < sl.stop - sl.start:
            raise SpecificationError(
                f"index {local_index} out of range for kind {kind!r}")
        return sl.start + local_index

    def original(self, kind: str) -> np.ndarray:
        """Original values of a kind (frozen or free)."""
        return self._originals[kind].copy()

    def flat_origin(self) -> np.ndarray:
        """Original values of the free kinds, concatenated."""
        return np.concatenate([self._originals[k] for k in self.kinds])

    def parameters(self) -> list[PerturbationParameter]:
        """One :class:`PerturbationParameter` per free kind, in order."""
        return [
            PerturbationParameter.nonnegative(
                kind, self._originals[kind], unit=_UNITS[kind],
                description=f"HiPer-D {kind} perturbation")
            for kind in self.kinds
        ]


class MappingAssembler:
    """Builds feature mappings over a :class:`FlatLayout`.

    The assembler produces one mapping per feature; each call returns a
    fresh mapping (no shared mutable state).
    """

    def __init__(self, layout: FlatLayout) -> None:
        self.layout = layout
        self.system = layout.system

    # ------------------------------------------------------------------
    # accumulator plumbing
    # ------------------------------------------------------------------
    def _new_acc(self) -> tuple[np.ndarray, np.ndarray, float]:
        d = self.layout.dimension
        return np.zeros((d, d)), np.zeros(d), 0.0

    def _add_comp(self, acc, app_name: str) -> tuple:
        """Accumulate ``T_comp(app) = e_a * sum_s w_as lambda_s``."""
        Q, k, c = acc
        layout, system = self.layout, self.system
        a = system.app_index(app_name)
        w = system.reach_weights()[a]            # (n_sensors,)
        e_orig = layout.original("exec")[a]
        lam_orig = layout.original("loads")
        has_e = layout.has("exec")
        has_l = layout.has("loads")
        if has_e and has_l:
            ie = layout.index("exec", a)
            for s in np.flatnonzero(w):
                il = layout.index("loads", int(s))
                Q[ie, il] += 0.5 * w[s]
                Q[il, ie] += 0.5 * w[s]
        elif has_l:
            for s in np.flatnonzero(w):
                k[layout.index("loads", int(s))] += e_orig * w[s]
        elif has_e:
            k[layout.index("exec", a)] += float(w @ lam_orig)
        else:
            c += e_orig * float(w @ lam_orig)
        return Q, k, c

    def _add_comm(self, acc, msg: Message) -> tuple:
        """Accumulate ``T_comm(msg) = m_k / bandwidth`` (0 co-located)."""
        Q, k, c = acc
        layout, system = self.layout, self.system
        bw = system.message_bandwidth(msg)
        if np.isinf(bw):
            return Q, k, c
        idx = system.messages.index(msg)
        if layout.has("msgsize"):
            k[layout.index("msgsize", idx)] += 1.0 / bw
        else:
            c += layout.original("msgsize")[idx] / bw
        return Q, k, c

    @staticmethod
    def _emit(acc) -> FeatureMapping:
        Q, k, c = acc
        if np.any(Q):
            return QuadraticMapping(Q, k, c)
        return LinearMapping(k, c)

    # ------------------------------------------------------------------
    # feature mappings
    # ------------------------------------------------------------------
    def computation_time(self, app_name: str) -> FeatureMapping:
        """Mapping for one application's per-data-set computation time."""
        return self._emit(self._add_comp(self._new_acc(), app_name))

    def communication_time(self, msg: Message) -> FeatureMapping:
        """Mapping for one message's per-data-set transfer time."""
        return self._emit(self._add_comm(self._new_acc(), msg))

    def path_latency(self, path: tuple[str, ...]) -> FeatureMapping:
        """Mapping for the end-to-end latency of a sensor-actuator path."""
        system = self.system
        acc = self._new_acc()
        for u, v in zip(path, path[1:]):
            msg = system.graph.edges[u, v]["message"]
            acc = self._add_comm(acc, msg)
            if v in {a.name for a in system.applications}:
                acc = self._add_comp(acc, v)
        return self._emit(acc)

    def machine_utilization(self, machine_index: int) -> FeatureMapping:
        """Mapping for the summed computation time on one machine.

        Interpreted against the data-set period, this is the machine's
        utilisation constraint: the dedicated machine must finish all its
        applications' work for one data set before the next arrives.
        """
        acc = self._new_acc()
        for app_name in self.system.apps_on_machine(machine_index):
            acc = self._add_comp(acc, app_name)
        return self._emit(acc)
