"""Synthetic time-varying load traces.

The HiPer-D scenario is a *dynamic environment*: "the sensor loads are
expected to change unpredictably" (Section 1).  These generators produce
the canonical drift shapes used by the runtime-monitoring experiment —
slow ramps (a developing engagement), transient spikes (a burst of
contacts), mean-reverting random walks (clutter), and periodic swells
(scan patterns) — as ``(n_steps, n_sensors)`` matrices of loads.

All generators clip at a small positive floor: a sensor can fall silent
but cannot emit negative objects.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SpecificationError
from repro.utils.rng import default_rng
from repro.utils.validation import as_1d_float_array

__all__ = ["ramp_trace", "spike_trace", "random_walk_trace", "sinusoid_trace"]

_FLOOR = 1e-9


def _base(base) -> np.ndarray:
    arr = as_1d_float_array(base, name="base")
    if np.any(arr <= 0):
        raise SpecificationError("base loads must be positive")
    return arr


def _steps(n_steps: int) -> int:
    if n_steps < 1:
        raise SpecificationError(f"n_steps must be >= 1, got {n_steps}")
    return int(n_steps)


def ramp_trace(base, n_steps: int, *, end_factor: float = 2.0) -> np.ndarray:
    """Linear ramp from the base loads to ``end_factor`` times them.

    Parameters
    ----------
    base:
        Original sensor loads.
    n_steps:
        Number of data sets.
    end_factor:
        Multiplier reached at the final step (may be below 1 for a
        decaying load).
    """
    base = _base(base)
    n_steps = _steps(n_steps)
    if end_factor <= 0:
        raise SpecificationError("end_factor must be positive")
    factors = np.linspace(1.0, end_factor, n_steps)
    return np.maximum(base[None, :] * factors[:, None], _FLOOR)


def spike_trace(base, n_steps: int, *, spike_at: int, magnitude: float = 3.0,
                width: int = 3) -> np.ndarray:
    """A Gaussian-shaped transient spike on top of constant loads.

    Parameters
    ----------
    base, n_steps:
        As in :func:`ramp_trace`.
    spike_at:
        Step index of the spike's peak.
    magnitude:
        Peak load multiplier.
    width:
        Spike standard deviation in steps.
    """
    base = _base(base)
    n_steps = _steps(n_steps)
    if not 0 <= spike_at < n_steps:
        raise SpecificationError(
            f"spike_at={spike_at} outside [0, {n_steps})")
    if magnitude <= 0 or width <= 0:
        raise SpecificationError("magnitude and width must be positive")
    t = np.arange(n_steps)
    bump = (magnitude - 1.0) * np.exp(-0.5 * ((t - spike_at) / width) ** 2)
    factors = 1.0 + bump
    return np.maximum(base[None, :] * factors[:, None], _FLOOR)


def random_walk_trace(base, n_steps: int, *, step_std: float = 0.05,
                      reversion: float = 0.05, seed=None) -> np.ndarray:
    """Mean-reverting multiplicative random walk (Ornstein-Uhlenbeck-ish).

    Each sensor's log-multiplier follows
    ``x_{t+1} = (1 - reversion) * x_t + N(0, step_std)``, so the loads
    wander but are pulled back toward the base.

    Parameters
    ----------
    step_std:
        Per-step log-multiplier noise.
    reversion:
        Pull-back strength in ``[0, 1]``.
    seed:
        RNG seed.
    """
    base = _base(base)
    n_steps = _steps(n_steps)
    if step_std < 0 or not 0 <= reversion <= 1:
        raise SpecificationError(
            "need step_std >= 0 and reversion in [0, 1]")
    rng = default_rng(seed)
    log_mult = np.zeros((n_steps, base.size))
    for t in range(1, n_steps):
        log_mult[t] = ((1.0 - reversion) * log_mult[t - 1]
                       + rng.normal(0.0, step_std, size=base.size))
    return np.maximum(base[None, :] * np.exp(log_mult), _FLOOR)


def sinusoid_trace(base, n_steps: int, *, amplitude: float = 0.3,
                   period: float = 20.0, phase: float = 0.0) -> np.ndarray:
    """Periodic load swell: ``base * (1 + amplitude * sin(...))``.

    Parameters
    ----------
    amplitude:
        Relative swing; must be in ``[0, 1)`` so loads stay positive.
    period:
        Oscillation period in steps.
    phase:
        Phase offset in radians.
    """
    base = _base(base)
    n_steps = _steps(n_steps)
    if not 0 <= amplitude < 1:
        raise SpecificationError("amplitude must be in [0, 1)")
    if period <= 0:
        raise SpecificationError("period must be positive")
    t = np.arange(n_steps)
    factors = 1.0 + amplitude * np.sin(2.0 * np.pi * t / period + phase)
    return np.maximum(base[None, :] * factors[:, None], _FLOOR)
