"""Entities and the assembled HiPer-D system model.

A :class:`HiPerDSystem` is a DAG whose sources are :class:`Sensor`\\ s,
sinks are :class:`Actuator`\\ s, and interior nodes are continuously
running :class:`Application`\\ s placed on dedicated :class:`Machine`\\ s;
edges are :class:`Message`\\ s carried over links with finite bandwidth.

Timing model (the functional forms the papers compute with):

* each application ``a`` has a *unit execution time* ``e_a`` (seconds per
  object) on its assigned machine, ``e_a = complexity_a / speed(machine)``;
* the load arriving at ``a`` per data set is the sum of the loads of every
  sensor that reaches ``a`` through the DAG, so its computation time per
  data set is ``T_comp(a) = e_a * sum_s w_as * lambda_s`` — bilinear in
  (unit times, loads);
* a message ``k`` of size ``m_k`` bytes between different locations with
  bandwidth ``B_k`` takes ``T_comm(k) = m_k / B_k`` (zero when source and
  destination share a location);
* a sensor-to-actuator path's latency is the sum of the computation and
  communication times along it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import networkx as nx
import numpy as np

from repro.exceptions import SpecificationError
from repro.utils.validation import check_same_length

__all__ = [
    "Machine",
    "Sensor",
    "Application",
    "Actuator",
    "Message",
    "HiPerDSystem",
]


@dataclass(frozen=True)
class Machine:
    """A dedicated compute node.

    Attributes
    ----------
    name:
        Unique identifier.
    speed:
        Processing rate in operations per second (positive).
    """

    name: str
    speed: float

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecificationError("machine name must be non-empty")
        if self.speed <= 0:
            raise SpecificationError(
                f"machine {self.name!r} must have positive speed")


@dataclass(frozen=True)
class Sensor:
    """A data-set source (radar, sonar, ...).

    Attributes
    ----------
    name:
        Unique identifier.
    load:
        Original load ``lambda_s^orig`` in objects per data set.
    period:
        Data-set inter-arrival time in seconds; the throughput requirement
        asks each stage to process one data set within this period.
    """

    name: str
    load: float
    period: float

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecificationError("sensor name must be non-empty")
        if self.load <= 0:
            raise SpecificationError(f"sensor {self.name!r} needs positive load")
        if self.period <= 0:
            raise SpecificationError(f"sensor {self.name!r} needs positive period")


@dataclass(frozen=True)
class Application:
    """A continuously-running processing stage.

    Attributes
    ----------
    name:
        Unique identifier.
    complexity:
        Work per object, in operations per object (positive).
    """

    name: str
    complexity: float

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecificationError("application name must be non-empty")
        if self.complexity <= 0:
            raise SpecificationError(
                f"application {self.name!r} needs positive complexity")


@dataclass(frozen=True)
class Actuator:
    """A data sink (display, weapon system, logger, ...)."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecificationError("actuator name must be non-empty")


@dataclass(frozen=True)
class Message:
    """A directed data transfer between two nodes of the DAG.

    Attributes
    ----------
    src, dst:
        Names of the endpoint nodes (sensor/application -> application/
        actuator).
    size:
        Original size ``m_k^orig`` in bytes per data set (positive).
    """

    src: str
    dst: str
    size: float

    def __post_init__(self) -> None:
        if not self.src or not self.dst:
            raise SpecificationError("message endpoints must be non-empty")
        if self.src == self.dst:
            raise SpecificationError(f"message {self.src!r} -> itself is illegal")
        if self.size <= 0:
            raise SpecificationError(
                f"message {self.src}->{self.dst} needs positive size")

    @property
    def key(self) -> tuple[str, str]:
        """The (src, dst) edge key."""
        return (self.src, self.dst)


class HiPerDSystem:
    """A complete HiPer-D system: topology, placement, and link table.

    Parameters
    ----------
    machines:
        The compute nodes.
    sensors, applications, actuators:
        DAG node populations (names must be globally unique).
    messages:
        DAG edges.  Every application must be reachable from some sensor
        (otherwise its computation time is zero and it does no work), and
        the graph must be acyclic.
    allocation:
        Mapping from application name to machine index — the resource
        allocation ``mu`` whose robustness the metric measures.
    bandwidths:
        Mapping from *location pairs* to bandwidth in bytes per second.
        An application's location is its machine's name; sensors and
        actuators are their own locations.  Missing pairs fall back to
        ``default_bandwidth``; same-location transfers cost zero.
    default_bandwidth:
        Fallback bandwidth (bytes/second).
    """

    def __init__(
        self,
        machines: Iterable[Machine],
        sensors: Iterable[Sensor],
        applications: Iterable[Application],
        actuators: Iterable[Actuator],
        messages: Iterable[Message],
        allocation: Mapping[str, int],
        *,
        bandwidths: Mapping[tuple[str, str], float] | None = None,
        default_bandwidth: float = 1e6,
    ) -> None:
        self.machines = list(machines)
        self.sensors = list(sensors)
        self.applications = list(applications)
        self.actuators = list(actuators)
        self.messages = list(messages)
        if not self.machines:
            raise SpecificationError("need at least one machine")
        if not self.sensors:
            raise SpecificationError("need at least one sensor")
        if not self.applications:
            raise SpecificationError("need at least one application")
        if not self.actuators:
            raise SpecificationError("need at least one actuator")
        if default_bandwidth <= 0:
            raise SpecificationError("default_bandwidth must be positive")
        self.default_bandwidth = float(default_bandwidth)
        self.bandwidths = dict(bandwidths) if bandwidths else {}
        for pair, bw in self.bandwidths.items():
            if bw <= 0:
                raise SpecificationError(
                    f"bandwidth for {pair} must be positive, got {bw}")

        names = ([m.name for m in self.machines]
                 + [s.name for s in self.sensors]
                 + [a.name for a in self.applications]
                 + [a.name for a in self.actuators])
        app_sens_act = names[len(self.machines):]
        if len(set(app_sens_act)) != len(app_sens_act):
            raise SpecificationError("node names must be unique")

        self._sensor_index = {s.name: i for i, s in enumerate(self.sensors)}
        self._app_index = {a.name: i for i, a in enumerate(self.applications)}
        self._actuator_names = {a.name for a in self.actuators}

        self.allocation = dict(allocation)
        missing = set(self._app_index) - set(self.allocation)
        if missing:
            raise SpecificationError(
                f"allocation missing applications {sorted(missing)}")
        for app_name, m in self.allocation.items():
            if app_name not in self._app_index:
                raise SpecificationError(
                    f"allocation mentions unknown application {app_name!r}")
            if not 0 <= m < len(self.machines):
                raise SpecificationError(
                    f"allocation of {app_name!r} refers to machine {m}, "
                    f"have {len(self.machines)}")

        self.graph = self._build_graph()
        self._reach = self._reachability()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _build_graph(self) -> nx.DiGraph:
        g = nx.DiGraph()
        for s in self.sensors:
            g.add_node(s.name, kind="sensor")
        for a in self.applications:
            g.add_node(a.name, kind="application")
        for a in self.actuators:
            g.add_node(a.name, kind="actuator")
        for msg in self.messages:
            for end in (msg.src, msg.dst):
                if end not in g:
                    raise SpecificationError(
                        f"message endpoint {end!r} is not a declared node")
            if g.nodes[msg.src]["kind"] == "actuator":
                raise SpecificationError(
                    f"actuator {msg.src!r} cannot send messages")
            if g.nodes[msg.dst]["kind"] == "sensor":
                raise SpecificationError(
                    f"sensor {msg.dst!r} cannot receive messages")
            if g.has_edge(msg.src, msg.dst):
                raise SpecificationError(
                    f"duplicate message {msg.src!r} -> {msg.dst!r}")
            g.add_edge(msg.src, msg.dst, message=msg)
        if not nx.is_directed_acyclic_graph(g):
            raise SpecificationError("the message graph must be acyclic")
        for a in self.applications:
            if g.in_degree(a.name) == 0:
                raise SpecificationError(
                    f"application {a.name!r} receives no input")
        return g

    def _reachability(self) -> np.ndarray:
        """``w[a, s] = 1`` iff sensor ``s`` reaches application ``a``."""
        w = np.zeros((len(self.applications), len(self.sensors)))
        for s_name, s_idx in self._sensor_index.items():
            for node in nx.descendants(self.graph, s_name):
                a_idx = self._app_index.get(node)
                if a_idx is not None:
                    w[a_idx, s_idx] = 1.0
        return w

    # ------------------------------------------------------------------
    # indices / lookups
    # ------------------------------------------------------------------
    @property
    def n_sensors(self) -> int:
        """Number of sensors."""
        return len(self.sensors)

    @property
    def n_applications(self) -> int:
        """Number of applications."""
        return len(self.applications)

    @property
    def n_messages(self) -> int:
        """Number of messages."""
        return len(self.messages)

    def sensor_index(self, name: str) -> int:
        """Index of a sensor by name."""
        try:
            return self._sensor_index[name]
        except KeyError as exc:
            raise SpecificationError(f"unknown sensor {name!r}") from exc

    def app_index(self, name: str) -> int:
        """Index of an application by name."""
        try:
            return self._app_index[name]
        except KeyError as exc:
            raise SpecificationError(f"unknown application {name!r}") from exc

    def machine_of(self, app_name: str) -> Machine:
        """The machine an application is placed on."""
        return self.machines[self.allocation[app_name]]

    def location_of(self, node: str) -> str:
        """The location label used by the link table for a node."""
        if node in self._app_index:
            return self.machine_of(node).name
        return node

    def reach_weights(self) -> np.ndarray:
        """Copy of the (apps x sensors) reachability weight matrix."""
        return self._reach.copy()

    def apps_on_machine(self, machine_index: int) -> list[str]:
        """Names of applications placed on a machine."""
        if not 0 <= machine_index < len(self.machines):
            raise SpecificationError(f"machine {machine_index} out of range")
        return [a for a, m in self.allocation.items() if m == machine_index]

    # ------------------------------------------------------------------
    # original timing quantities
    # ------------------------------------------------------------------
    def original_loads(self) -> np.ndarray:
        """Sensor loads ``lambda^orig`` (objects per data set)."""
        return np.array([s.load for s in self.sensors])

    def original_unit_times(self) -> np.ndarray:
        """Unit execution times ``e^orig = complexity / speed`` per app."""
        return np.array([
            a.complexity / self.machine_of(a.name).speed
            for a in self.applications
        ])

    def original_msg_sizes(self) -> np.ndarray:
        """Message sizes ``m^orig`` (bytes per data set)."""
        return np.array([m.size for m in self.messages])

    def message_bandwidth(self, msg: Message) -> float:
        """Effective bandwidth of a message, ``inf`` for co-located ends."""
        loc_u = self.location_of(msg.src)
        loc_v = self.location_of(msg.dst)
        if loc_u == loc_v:
            return float("inf")
        bw = self.bandwidths.get((loc_u, loc_v))
        if bw is None:
            bw = self.bandwidths.get((loc_v, loc_u), self.default_bandwidth)
        return float(bw)

    def arriving_load(self, app_name: str,
                      loads: np.ndarray | None = None) -> float:
        """Objects per data set arriving at an application."""
        lam = self.original_loads() if loads is None else np.asarray(loads, float)
        check_same_length(lam, self.sensors, names=["loads", "sensors"])
        return float(self._reach[self.app_index(app_name)] @ lam)

    def computation_time(self, app_name: str, *,
                         loads: np.ndarray | None = None,
                         unit_times: np.ndarray | None = None) -> float:
        """Per-data-set computation time ``T_comp(a) = e_a * arriving load``."""
        e = (self.original_unit_times() if unit_times is None
             else np.asarray(unit_times, float))
        check_same_length(e, self.applications, names=["unit_times", "apps"])
        return float(e[self.app_index(app_name)]
                     * self.arriving_load(app_name, loads))

    def communication_time(self, msg: Message, *,
                           sizes: np.ndarray | None = None) -> float:
        """Per-data-set transfer time ``m_k / bandwidth`` (0 co-located)."""
        m = (self.original_msg_sizes() if sizes is None
             else np.asarray(sizes, float))
        check_same_length(m, self.messages, names=["sizes", "messages"])
        idx = self.messages.index(msg)
        bw = self.message_bandwidth(msg)
        if np.isinf(bw):
            return 0.0
        return float(m[idx] / bw)

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def sensor_actuator_paths(self) -> list[tuple[str, ...]]:
        """Every sensor-to-actuator path, as node-name tuples.

        Sorted for determinism; these drive the per-path latency features.
        """
        paths = []
        for s in self.sensors:
            for a in sorted(self._actuator_names):
                for p in nx.all_simple_paths(self.graph, s.name, a):
                    paths.append(tuple(p))
        paths.sort()
        return paths

    def path_latency(self, path: tuple[str, ...], *,
                     loads: np.ndarray | None = None,
                     unit_times: np.ndarray | None = None,
                     sizes: np.ndarray | None = None) -> float:
        """End-to-end latency of a path: sum of comp + comm along it."""
        total = 0.0
        for u, v in zip(path, path[1:]):
            msg = self.graph.edges[u, v]["message"]
            total += self.communication_time(msg, sizes=sizes)
            if v in self._app_index:
                total += self.computation_time(v, loads=loads,
                                               unit_times=unit_times)
        return total

    def __repr__(self) -> str:
        return (f"HiPerDSystem({self.n_sensors} sensors, "
                f"{self.n_applications} apps, {len(self.actuators)} "
                f"actuators, {len(self.machines)} machines, "
                f"{self.n_messages} messages)")
