"""Initial-placement heuristics for HiPer-D applications.

The HiPer-D analogue of the independent-task mapping heuristics: given the
topology, produce the application-to-machine map the robustness metric
then evaluates.  Three constructive strategies plus a random baseline:

* :func:`balanced_work_placement` — greedy least-accumulated-work (what
  the generator uses by default);
* :func:`fastest_machine_placement` — every application on the fastest
  machine (the MET analogue: minimises each computation time in
  isolation, piles work onto one node);
* :func:`colocate_paths_placement` — walk sensor-to-actuator paths and
  keep consecutive applications co-located where possible (co-located
  messages cost zero), balancing across paths;
* :func:`random_placement` — the floor.

All return a *new* :class:`HiPerDSystem` with the same topology.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.systems.hiperd.model import HiPerDSystem
from repro.utils.rng import default_rng

__all__ = [
    "replace_allocation",
    "balanced_work_placement",
    "fastest_machine_placement",
    "colocate_paths_placement",
    "random_placement",
    "PLACEMENT_HEURISTICS",
]


def replace_allocation(system: HiPerDSystem,
                       allocation: dict[str, int]) -> HiPerDSystem:
    """A copy of ``system`` under a different application placement."""
    return HiPerDSystem(
        machines=system.machines,
        sensors=system.sensors,
        applications=system.applications,
        actuators=system.actuators,
        messages=system.messages,
        allocation=allocation,
        bandwidths=system.bandwidths,
        default_bandwidth=system.default_bandwidth,
    )


def balanced_work_placement(system: HiPerDSystem, *, seed=None
                            ) -> HiPerDSystem:
    """Greedy least-accumulated-work placement.

    Applications are placed in declaration order on the machine whose
    accumulated per-data-set computation time is smallest, accounting for
    speeds and arriving loads.
    """
    loads = system.reach_weights() @ system.original_loads()
    work = np.zeros(len(system.machines))
    allocation: dict[str, int] = {}
    for i, app in enumerate(system.applications):
        per_machine = app.complexity * loads[i] / np.array(
            [m.speed for m in system.machines])
        j = int(np.argmin(work + per_machine))
        allocation[app.name] = j
        work[j] += per_machine[j]
    return replace_allocation(system, allocation)


def fastest_machine_placement(system: HiPerDSystem, *, seed=None
                              ) -> HiPerDSystem:
    """Every application on the single fastest machine (MET analogue)."""
    j = int(np.argmax([m.speed for m in system.machines]))
    return replace_allocation(
        system, {a.name: j for a in system.applications})


def colocate_paths_placement(system: HiPerDSystem, *, seed=None
                             ) -> HiPerDSystem:
    """Keep consecutive path applications co-located, balance across paths.

    Paths are assigned to machines round-robin (fastest first); every
    application takes the machine of the first path it appears on, so
    intra-path messages are free wherever the DAG allows.
    """
    order = np.argsort([-m.speed for m in system.machines])
    allocation: dict[str, int] = {}
    app_names = {a.name for a in system.applications}
    for p_idx, path in enumerate(system.sensor_actuator_paths()):
        machine = int(order[p_idx % len(order)])
        for node in path:
            if node in app_names and node not in allocation:
                allocation[node] = machine
    # apps on no enumerated path (possible with exotic topologies) fall
    # back to the fastest machine
    for a in system.applications:
        allocation.setdefault(a.name, int(order[0]))
    return replace_allocation(system, allocation)


def random_placement(system: HiPerDSystem, *, seed=None) -> HiPerDSystem:
    """Uniformly random placement (the baseline)."""
    rng = default_rng(seed)
    allocation = {a.name: int(rng.integers(len(system.machines)))
                  for a in system.applications}
    return replace_allocation(system, allocation)


#: Named placement strategies used by the comparison experiment.
PLACEMENT_HEURISTICS: dict[str, Callable[..., HiPerDSystem]] = {
    "balanced": balanced_work_placement,
    "fastest": fastest_machine_placement,
    "colocate": colocate_paths_placement,
    "random": random_placement,
}
