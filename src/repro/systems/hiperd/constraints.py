"""QoS constraints and the FePIA analysis builder for HiPer-D systems.

A HiPer-D allocation "must enforce these quality of service constraints by
ensuring that the computation and communication times are within certain
limits" (Section 1).  Three feature families are built:

* **latency** — one feature per sensor-to-actuator path, bounded above by
  either an absolute deadline or ``latency_slack x`` its original value;
* **throughput** — one feature per application (and optionally per
  message), its per-data-set processing time bounded by the tightest
  period among the sensors that feed it, scaled by ``throughput_margin``;
* **utilization** — one feature per machine, the summed computation time
  of its applications bounded by the system's tightest sensor period.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core.features import PerformanceFeature, ToleranceBounds
from repro.core.fepia import FeatureSpec, RobustnessAnalysis
from repro.core.weighting import NormalizedWeighting, WeightingScheme
from repro.exceptions import SpecificationError
from repro.systems.hiperd.model import HiPerDSystem
from repro.systems.hiperd.timing import FlatLayout, MappingAssembler

__all__ = ["QoSSpec", "build_feature_specs", "build_analysis"]


@dataclass(frozen=True)
class QoSSpec:
    """The quality-of-service requirements imposed on a HiPer-D system.

    Attributes
    ----------
    latency_slack:
        Relative latency budget: every path's deadline is
        ``latency_slack * (its original latency)``.  Must exceed 1 so the
        original point is strictly feasible.  Ignored for paths that have
        an absolute deadline.
    absolute_latency_limits:
        Optional absolute per-path deadlines keyed by the path tuple.
    throughput_margin:
        Fraction of a stage's driving period that its processing time may
        use (in ``(0, 1]``); smaller is stricter.
    include_latency, include_throughput, include_message_throughput,
    include_utilization:
        Which feature families to build.
    """

    latency_slack: float = 1.3
    absolute_latency_limits: Mapping[tuple[str, ...], float] = field(
        default_factory=dict)
    throughput_margin: float = 1.0
    include_latency: bool = True
    include_throughput: bool = True
    include_message_throughput: bool = False
    include_utilization: bool = False

    def __post_init__(self) -> None:
        if self.latency_slack <= 1.0:
            raise SpecificationError(
                f"latency_slack must exceed 1, got {self.latency_slack}")
        if not 0 < self.throughput_margin <= 1:
            raise SpecificationError(
                f"throughput_margin must be in (0, 1], got "
                f"{self.throughput_margin}")
        if not (self.include_latency or self.include_throughput
                or self.include_message_throughput or self.include_utilization):
            raise SpecificationError("QoSSpec selects no feature family")


def _driving_period(system: HiPerDSystem, app_name: str) -> float:
    """Tightest period among the sensors that reach an application."""
    w = system.reach_weights()[system.app_index(app_name)]
    periods = [system.sensors[int(s)].period for s in np.flatnonzero(w)]
    if not periods:  # unreachable apps are rejected at construction
        raise SpecificationError(
            f"application {app_name!r} is fed by no sensor")
    return min(periods)


def build_feature_specs(system: HiPerDSystem, layout: FlatLayout,
                        qos: QoSSpec) -> list[FeatureSpec]:
    """Construct the FePIA feature specifications for a system under a QoS.

    Raises
    ------
    SpecificationError
        If a throughput or utilisation constraint is already violated at
        the original operating point (the allocation is invalid, not
        merely fragile — robustness is undefined for it).
    """
    assembler = MappingAssembler(layout)
    origin = layout.flat_origin()
    specs: list[FeatureSpec] = []

    if qos.include_latency:
        for path in system.sensor_actuator_paths():
            mapping = assembler.path_latency(path)
            orig = mapping.value(origin)
            limit = qos.absolute_latency_limits.get(path)
            if limit is None:
                limit = qos.latency_slack * orig
            label = "->".join(path)
            specs.append(FeatureSpec(
                PerformanceFeature(
                    name=f"latency[{label}]",
                    bounds=ToleranceBounds.upper(float(limit)),
                    unit="s",
                    description=f"end-to-end latency of path {label}"),
                mapping))

    if qos.include_throughput:
        for app in system.applications:
            mapping = assembler.computation_time(app.name)
            limit = qos.throughput_margin * _driving_period(system, app.name)
            specs.append(FeatureSpec(
                PerformanceFeature(
                    name=f"throughput[{app.name}]",
                    bounds=ToleranceBounds.upper(limit),
                    unit="s",
                    description=(f"per-data-set computation time of "
                                 f"{app.name} vs its driving period")),
                mapping))

    if qos.include_message_throughput:
        for i, msg in enumerate(system.messages):
            if math.isinf(system.message_bandwidth(msg)):
                continue  # co-located transfer: zero time, no constraint
            mapping = assembler.communication_time(msg)
            src_app = msg.src if msg.src in {a.name for a in system.applications} else None
            if src_app is not None:
                period = _driving_period(system, src_app)
            else:
                period = system.sensors[system.sensor_index(msg.src)].period
            limit = qos.throughput_margin * period
            specs.append(FeatureSpec(
                PerformanceFeature(
                    name=f"msg_throughput[{msg.src}->{msg.dst}]",
                    bounds=ToleranceBounds.upper(limit),
                    unit="s",
                    description=f"transfer time of message {i} vs period"),
                mapping))

    if qos.include_utilization:
        tightest = min(s.period for s in system.sensors)
        for j, machine in enumerate(system.machines):
            if not system.apps_on_machine(j):
                continue
            mapping = assembler.machine_utilization(j)
            limit = qos.throughput_margin * tightest
            specs.append(FeatureSpec(
                PerformanceFeature(
                    name=f"utilization[{machine.name}]",
                    bounds=ToleranceBounds.upper(limit),
                    unit="s",
                    description=(f"summed per-data-set computation time on "
                                 f"{machine.name}")),
                mapping))

    infeasible = [s.name for s in specs
                  if not s.feature.is_satisfied(s.mapping.value(origin))]
    if infeasible:
        raise SpecificationError(
            "QoS is violated at the original operating point by "
            f"{infeasible}; tighten the allocation or loosen the QoS")
    return specs


def build_analysis(
    system: HiPerDSystem,
    qos: QoSSpec,
    *,
    kinds: Sequence[str] = ("loads", "exec", "msgsize"),
    weighting: WeightingScheme | None = None,
    respect_physical_bounds: bool = False,
    norm: float = 2,
    seed=None,
    solver_timeout: float | None = None,
) -> RobustnessAnalysis:
    """The full FePIA robustness analysis of a HiPer-D allocation.

    Parameters
    ----------
    system:
        The system (with its allocation) under study.
    qos:
        The QoS requirements defining the performance features.
    kinds:
        Which perturbation kinds are free (subset of
        ``("loads", "exec", "msgsize")``).
    weighting:
        Multi-kind weighting; defaults to the paper's
        :class:`NormalizedWeighting`.
    respect_physical_bounds:
        Restrict boundary searches to non-negative perturbations.
    norm:
        Distance norm.
    seed:
        Solver seed.
    solver_timeout:
        Optional per-solver wall-clock budget in seconds; when set, radii
        are computed through the fault-tolerant
        :class:`~repro.resilience.SolverCascade`.
    """
    layout = FlatLayout(system, kinds)
    specs = build_feature_specs(system, layout, qos)
    params = layout.parameters()
    if weighting is None:
        weighting = NormalizedWeighting()
    return RobustnessAnalysis(
        specs, params, weighting=weighting,
        respect_physical_bounds=respect_physical_bounds,
        norm=norm, seed=seed, solver_timeout=solver_timeout)
