"""Random HiPer-D system generation.

Builds layered sensor -> application -> actuator DAGs with heterogeneous
machines and links, places applications with a load-balancing rule (or
randomly), and returns a system whose original operating point is feasible
under a configurable QoS slack — the precondition for a well-defined
robustness radius.

This generator is the substitute for the proprietary HiPer-D testbed: the
papers' metric only consumes the functional relationships (bilinear
computation times, linear communication times, DAG path latencies), all of
which the synthetic systems exercise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SpecificationError
from repro.systems.hiperd.model import (
    Actuator,
    Application,
    HiPerDSystem,
    Machine,
    Message,
    Sensor,
)
from repro.utils.rng import default_rng

__all__ = ["HiPerDGenerationSpec", "generate_hiperd_system"]


@dataclass(frozen=True)
class HiPerDGenerationSpec:
    """Knobs for :func:`generate_hiperd_system`.

    Attributes
    ----------
    n_sensors, n_actuators, n_machines:
        Population sizes.
    app_layers:
        Application counts per DAG layer, e.g. ``(3, 2)`` for a two-stage
        pipeline with 3 then 2 applications.
    load_range:
        Uniform range of sensor loads (objects per data set).
    period_range:
        Uniform range of sensor periods (seconds).
    complexity_range:
        Uniform range of application complexities (ops per object).
    speed_range:
        Uniform range of machine speeds (ops per second).
    msg_size_range:
        Uniform range of message sizes (bytes per data set).
    bandwidth_range:
        Uniform range of pairwise link bandwidths (bytes per second).
    extra_edge_prob:
        Probability of adding each possible extra skip/cross edge beyond
        the spanning connections.
    balanced_placement:
        Place each application on the machine with the least accumulated
        work (True) or uniformly at random (False).
    """

    n_sensors: int = 2
    n_actuators: int = 2
    n_machines: int = 4
    app_layers: tuple[int, ...] = (3, 3)
    load_range: tuple[float, float] = (50.0, 200.0)
    period_range: tuple[float, float] = (0.5, 2.0)
    complexity_range: tuple[float, float] = (1e3, 1e4)
    speed_range: tuple[float, float] = (1e6, 5e6)
    msg_size_range: tuple[float, float] = (1e4, 1e5)
    bandwidth_range: tuple[float, float] = (1e6, 1e7)
    extra_edge_prob: float = 0.25
    balanced_placement: bool = True

    def __post_init__(self) -> None:
        if (self.n_sensors < 1 or self.n_actuators < 1
                or self.n_machines < 1):
            raise SpecificationError("populations must be >= 1")
        if not self.app_layers or any(n < 1 for n in self.app_layers):
            raise SpecificationError("app_layers must be non-empty positives")
        for name in ("load_range", "period_range", "complexity_range",
                     "speed_range", "msg_size_range", "bandwidth_range"):
            lo, hi = getattr(self, name)
            if not 0 < lo <= hi:
                raise SpecificationError(
                    f"{name} must satisfy 0 < lo <= hi, got ({lo}, {hi})")
        if not 0.0 <= self.extra_edge_prob <= 1.0:
            raise SpecificationError("extra_edge_prob must be in [0, 1]")


def _uniform(rng, rng_pair) -> float:
    lo, hi = rng_pair
    return float(rng.uniform(lo, hi))


def generate_hiperd_system(
    spec: HiPerDGenerationSpec | None = None, *, seed=None
) -> HiPerDSystem:
    """Generate a random, feasibility-checked HiPer-D system.

    The DAG is layered: every sensor feeds at least one first-layer
    application; each application in layer ``l+1`` receives from at least
    one application in layer ``l``; every last-layer application drives at
    least one actuator.  Extra forward edges are sprinkled with
    ``extra_edge_prob``.  Machine speeds are then rescaled, if necessary,
    so every application's computation time fits within half of its
    driving period — guaranteeing room for a meaningful robustness radius.

    Parameters
    ----------
    spec:
        Generation knobs (defaults to :class:`HiPerDGenerationSpec()`).
    seed:
        RNG seed.
    """
    spec = spec if spec is not None else HiPerDGenerationSpec()
    rng = default_rng(seed)

    machines = [Machine(f"m{j}", _uniform(rng, spec.speed_range))
                for j in range(spec.n_machines)]
    sensors = [Sensor(f"s{i}", _uniform(rng, spec.load_range),
                      _uniform(rng, spec.period_range))
               for i in range(spec.n_sensors)]
    actuators = [Actuator(f"act{i}") for i in range(spec.n_actuators)]

    layers: list[list[Application]] = []
    counter = 0
    for layer_size in spec.app_layers:
        layer = [Application(f"a{counter + i}",
                             _uniform(rng, spec.complexity_range))
                 for i in range(layer_size)]
        counter += layer_size
        layers.append(layer)
    applications = [a for layer in layers for a in layer]

    messages: list[Message] = []
    edges: set[tuple[str, str]] = set()

    def add_edge(u: str, v: str) -> None:
        if (u, v) not in edges:
            edges.add((u, v))
            messages.append(Message(u, v, _uniform(rng, spec.msg_size_range)))

    # Spanning connections: sensors -> layer 0.
    for i, app in enumerate(layers[0]):
        add_edge(sensors[i % spec.n_sensors].name, app.name)
    for s in sensors:
        if not any(u == s.name for u, _ in edges):
            add_edge(s.name, rng.choice(layers[0]).name)
    # Layer l -> layer l+1.
    for prev, nxt in zip(layers, layers[1:]):
        for i, app in enumerate(nxt):
            add_edge(prev[i % len(prev)].name, app.name)
        for app in prev:
            if not any(u == app.name for u, _ in edges):
                add_edge(app.name, rng.choice(nxt).name)
    # Last layer -> actuators.
    for i, act in enumerate(actuators):
        add_edge(layers[-1][i % len(layers[-1])].name, act.name)
    for app in layers[-1]:
        if not any(u == app.name for u, _ in edges):
            add_edge(app.name, rng.choice(actuators).name)
    # Extra forward edges.
    for li, layer in enumerate(layers[:-1]):
        for u in layer:
            for nxt in layers[li + 1:]:
                for v in nxt:
                    if rng.random() < spec.extra_edge_prob:
                        add_edge(u.name, v.name)

    # Placement.
    allocation: dict[str, int] = {}
    if spec.balanced_placement:
        work = np.zeros(spec.n_machines)
        for app in applications:
            j = int(np.argmin(work))
            allocation[app.name] = j
            work[j] += app.complexity / machines[j].speed
    else:
        for app in applications:
            allocation[app.name] = int(rng.integers(spec.n_machines))

    # Link table over all location pairs that occur.
    locations = ([m.name for m in machines]
                 + [s.name for s in sensors]
                 + [a.name for a in actuators])
    bandwidths = {}
    for i, u in enumerate(locations):
        for v in locations[i + 1:]:
            bandwidths[(u, v)] = _uniform(rng, spec.bandwidth_range)

    system = HiPerDSystem(
        machines, sensors, applications, actuators, messages, allocation,
        bandwidths=bandwidths)

    # Feasibility head-room: rescale machine speeds until every
    # application's computation time is at most half its driving period.
    factor = 1.0
    for app in applications:
        w = system.reach_weights()[system.app_index(app.name)]
        periods = [sensors[int(s)].period for s in np.flatnonzero(w)]
        period = min(periods)
        t_comp = system.computation_time(app.name)
        needed = t_comp / (0.5 * period)
        factor = max(factor, needed)
    if factor > 1.0:
        machines = [Machine(m.name, m.speed * factor) for m in machines]
        system = HiPerDSystem(
            machines, sensors, applications, actuators, messages, allocation,
            bandwidths=bandwidths)
    return system
