"""Link failures in HiPer-D systems (the paper's other discrete uncertainty).

Section 1 lists "sudden machine or link failures" among the uncertainties.
For the continuously-running HiPer-D model a link failure is modelled as
**bandwidth degradation**: traffic between the affected location pair is
rerouted over a slow shared backup, multiplying the pair's bandwidth by
``degraded_factor`` (a full outage with no backup is the limit
``degraded_factor -> 0``; default 0.1).

Two questions are answered:

* :func:`critical_links` — which single link's failure hurts the QoS
  margins most (ranked by the worst post-failure violation margin);
* :func:`link_failure_radius` — the discrete analogue of the robustness
  radius: the largest ``k`` such that the system still meets every QoS
  constraint at the original operating point after *any* ``k`` simultaneous
  link failures.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.exceptions import SpecificationError
from repro.systems.hiperd.constraints import QoSSpec, build_feature_specs
from repro.systems.hiperd.model import HiPerDSystem
from repro.systems.hiperd.timing import FlatLayout

__all__ = ["used_link_pairs", "system_with_failed_links",
           "critical_links", "LinkFailureAnalysis", "link_failure_radius"]


def used_link_pairs(system: HiPerDSystem) -> list[tuple[str, str]]:
    """The location pairs actually carrying at least one message.

    Co-located transfers (infinite bandwidth) carry no link and are
    excluded.  Pairs are canonicalised so ``(a, b)`` and ``(b, a)`` are the
    same link.
    """
    pairs = set()
    for msg in system.messages:
        loc_u = system.location_of(msg.src)
        loc_v = system.location_of(msg.dst)
        if loc_u == loc_v:
            continue
        pairs.add(tuple(sorted((loc_u, loc_v))))
    return sorted(pairs)


def system_with_failed_links(
    system: HiPerDSystem,
    failed_pairs,
    *,
    degraded_factor: float = 0.1,
) -> HiPerDSystem:
    """A copy of the system with the given links degraded.

    Parameters
    ----------
    system:
        The original system (not modified).
    failed_pairs:
        Iterable of location pairs (order-insensitive).
    degraded_factor:
        Multiplier applied to each failed pair's bandwidth, in ``(0, 1]``.
    """
    if not 0.0 < degraded_factor <= 1.0:
        raise SpecificationError(
            f"degraded_factor must be in (0, 1], got {degraded_factor}")
    failed = {tuple(sorted(p)) for p in failed_pairs}
    known = set(used_link_pairs(system))
    unknown = failed - known
    if unknown:
        raise SpecificationError(
            f"failed pairs {sorted(unknown)} carry no message in this system")
    bandwidths = dict(system.bandwidths)
    for pair in failed:
        # the stored table may hold either orientation (or neither, when
        # the pair rides the default bandwidth)
        a, b = pair
        if (a, b) in bandwidths:
            bandwidths[(a, b)] *= degraded_factor
        elif (b, a) in bandwidths:
            bandwidths[(b, a)] *= degraded_factor
        else:
            bandwidths[(a, b)] = system.default_bandwidth * degraded_factor
    return HiPerDSystem(
        machines=system.machines,
        sensors=system.sensors,
        applications=system.applications,
        actuators=system.actuators,
        messages=system.messages,
        allocation=system.allocation,
        bandwidths=bandwidths,
        default_bandwidth=system.default_bandwidth,
    )


def _worst_margin(system: HiPerDSystem, qos: QoSSpec) -> float:
    """Worst relative QoS margin at the original operating point.

    Positive = some feature violates its bound; the magnitude is the
    relative overshoot.  Negative = all constraints met with room.
    Feature specs are built against the *original* (pre-failure) system's
    bounds, so degraded systems are judged by the original promises.
    """
    layout = FlatLayout(system, ("loads",))
    worst = -float("inf")
    for spec in build_feature_specs(system, layout, qos):
        value = spec.mapping.value(origin)
        bound = spec.feature.bounds.beta_max
        worst = max(worst, (value - bound) / abs(bound))
    return worst


def critical_links(system: HiPerDSystem, qos: QoSSpec, *,
                   degraded_factor: float = 0.1
                   ) -> list[tuple[tuple[str, str], float]]:
    """Rank single-link failures by post-failure worst QoS margin.

    Returns ``(pair, margin)`` tuples sorted most-damaging first; a
    positive margin means that single failure already violates the QoS.

    Note the baseline bounds come from the *original* system (relative
    latency budgets are computed pre-failure and held fixed).
    """
    # Freeze the original bounds: build absolute limits from the healthy
    # system, then re-evaluate the degraded systems against them.
    layout = FlatLayout(system, ("loads",))
    healthy_specs = build_feature_specs(system, layout, qos)
    limits = {s.name: s.feature.bounds.beta_max for s in healthy_specs}

    results = []
    for pair in used_link_pairs(system):
        degraded = system_with_failed_links(system, [pair],
                                            degraded_factor=degraded_factor)
        d_layout = FlatLayout(degraded, ("loads",))
        assembler_specs = _evaluate_against_limits(degraded, d_layout, limits)
        results.append((pair, assembler_specs))
    results.sort(key=lambda t: -t[1])
    return results


def _evaluate_against_limits(system: HiPerDSystem, layout: FlatLayout,
                             limits: dict[str, float]) -> float:
    """Worst relative margin of a (possibly degraded) system against fixed
    absolute limits from the healthy system."""
    from repro.systems.hiperd.simulate import steady_state_features

    values = steady_state_features(system)
    worst = -float("inf")
    for name, bound in limits.items():
        if name not in values:  # pragma: no cover - names are stable
            continue
        worst = max(worst, (values[name] - bound) / abs(bound))
    return worst


@dataclass(frozen=True)
class LinkFailureAnalysis:
    """Result of the adversarial link-failure search.

    Attributes
    ----------
    radius:
        Largest ``k`` such that every ``k``-subset of link failures keeps
        all original QoS promises.
    breaking_set:
        A smallest set of links whose joint failure violates the QoS
        (``None`` if even all-links-degraded is survivable).
    n_links:
        Number of distinct links considered.
    """

    radius: int
    breaking_set: tuple[tuple[str, str], ...] | None
    n_links: int


def link_failure_radius(system: HiPerDSystem, qos: QoSSpec, *,
                        degraded_factor: float = 0.1,
                        max_k: int | None = None) -> LinkFailureAnalysis:
    """Adversarial link-failure radius by exhaustive subset search.

    Parameters
    ----------
    system, qos:
        The system and its QoS promises (bounds frozen at the healthy
        system's values).
    degraded_factor:
        Bandwidth multiplier per failed link.
    max_k:
        Cap on the searched subset size (defaults to all links); with
        ``L`` links the search is ``O(sum_k C(L, k))``, fine for the
        papers' scales.
    """
    pairs = used_link_pairs(system)
    layout = FlatLayout(system, ("loads",))
    healthy_specs = build_feature_specs(system, layout, qos)
    limits = {s.name: s.feature.bounds.beta_max for s in healthy_specs}

    limit_k = len(pairs) if max_k is None else min(max_k, len(pairs))
    for k in range(1, limit_k + 1):
        for subset in itertools.combinations(pairs, k):
            degraded = system_with_failed_links(
                system, subset, degraded_factor=degraded_factor)
            d_layout = FlatLayout(degraded, ("loads",))
            margin = _evaluate_against_limits(degraded, d_layout, limits)
            if margin > 0.0:
                return LinkFailureAnalysis(radius=k - 1,
                                           breaking_set=subset,
                                           n_links=len(pairs))
    return LinkFailureAnalysis(radius=limit_k, breaking_set=None,
                               n_links=len(pairs))
